"""E2 -- the BCC Laplacian solver: accuracy and per-instance rounds (Theorem 1.3)."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.solvers import BCCLaplacianSolver


@pytest.fixture(scope="module")
def solver():
    graph = generators.random_weighted_graph(48, average_degree=8, max_weight=16, seed=5)
    return BCCLaplacianSolver(graph, seed=6, t_override=2)


@pytest.mark.parametrize("eps", [1e-2, 1e-5, 1e-8])
def test_solve_rounds_scale_with_log_eps(benchmark, solver, eps):
    rng = np.random.default_rng(7)
    b = rng.normal(size=solver.graph.n)

    report = benchmark(lambda: solver.solve(b, eps=eps, check=True))

    benchmark.extra_info["eps"] = eps
    benchmark.extra_info["relative_error_measured"] = float(report.measured_relative_error)
    benchmark.extra_info["error_bound_holds"] = bool(report.error_bound_holds)
    benchmark.extra_info["chebyshev_iterations"] = report.chebyshev.iterations
    benchmark.extra_info["rounds_measured"] = report.rounds
    benchmark.extra_info["rounds_bound_O(log(1/eps) log(nU/eps))"] = round(
        solver.per_instance_round_bound(eps)
    )
    assert report.error_bound_holds


def test_preprocessing_rounds(benchmark):
    graph = generators.random_weighted_graph(32, average_degree=8, max_weight=8, seed=8)
    solver = benchmark(lambda: BCCLaplacianSolver(graph, seed=9, t_override=2))
    benchmark.extra_info["preprocessing_rounds_measured"] = solver.preprocessing.rounds
    benchmark.extra_info["preprocessing_bound_O(log^5 n log(nU))"] = round(
        solver.preprocessing_round_bound()
    )
    benchmark.extra_info["sparsifier_edges"] = solver.preprocessing.sparsifier_edges


@pytest.mark.parametrize("n", [2000, 5000])
def test_large_instance_sparse_backend(benchmark, n):
    """The sizes the dense path cannot touch: n >= 2000, m >= 10000.

    Runs one high-precision solve end to end on the sparse CSR backend
    (grounded splu preconditioner); the dense path at n=5000 would need a
    ~200 MB Laplacian plus an O(n^3) pseudoinverse.
    """
    graph = generators.random_weighted_graph(n, average_degree=11.0, max_weight=16, seed=5)
    rng = np.random.default_rng(7)
    b = rng.normal(size=graph.n)

    def run():
        solver = BCCLaplacianSolver(graph, exact_preconditioner=True, backend="sparse")
        return solver.solve(b, eps=1e-8, check=True)

    report = benchmark(run)
    benchmark.extra_info["n"] = graph.n
    benchmark.extra_info["m"] = graph.m
    benchmark.extra_info["relative_error_measured"] = float(report.measured_relative_error)
    benchmark.extra_info["error_bound_holds"] = bool(report.error_bound_holds)
    assert report.error_bound_holds
