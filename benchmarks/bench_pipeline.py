"""E9 -- the Figure 1 pipeline end to end: spanner -> sparsifier -> Laplacian
solver -> LP solver -> min-cost max-flow, with per-stage round accounting."""

from repro.core import run_full_pipeline
from repro.graphs import generators


def test_full_pipeline(benchmark):
    network = generators.random_flow_network(12, seed=99, max_capacity=8, max_cost=6)

    report = benchmark.pedantic(lambda: run_full_pipeline(network, seed=99), rounds=1, iterations=1)

    benchmark.extra_info["spanner_edges"] = report.spanner_edges
    benchmark.extra_info["sparsifier_edges"] = report.sparsifier_edges
    benchmark.extra_info["laplacian_relative_error"] = report.laplacian_relative_error
    benchmark.extra_info["flow_value"] = report.flow_value
    benchmark.extra_info["flow_cost"] = report.flow_cost
    benchmark.extra_info["stage_rounds"] = {k: round(v) for k, v in report.stage_rounds.items()}
    benchmark.extra_info["total_rounds"] = round(report.total_rounds)
    assert report.flow_value > 0
    assert report.laplacian_relative_error <= 1e-6
