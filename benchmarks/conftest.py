"""Shared helpers for the benchmark harness.

Every module ``bench_*.py`` regenerates one experiment of EXPERIMENTS.md
(E1-E10).  pytest-benchmark measures wall-clock time of the building blocks;
the quantities the paper actually bounds (rounds, sizes, iteration counts) are
attached to each benchmark through ``benchmark.extra_info`` and printed in the
saved benchmark JSON, so `pytest benchmarks/ --benchmark-only` reproduces the
full claimed-vs-measured table.
"""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(2022)
