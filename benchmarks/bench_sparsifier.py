"""E1 -- spectral sparsifiers: size, quality, rounds, out-degree (Theorem 1.2)."""

import math

import pytest

from repro.graphs import generators, spectral_approximation_factor
from repro.sparsify import spectral_sparsify


@pytest.mark.parametrize("n", [32, 64])
def test_sparsifier_with_paper_parameters(benchmark, n):
    graph = generators.erdos_renyi(n, 0.4, max_weight=8, seed=1)
    eps = 0.5

    result = benchmark(lambda: spectral_sparsify(graph, eps=eps, seed=2))

    lo, hi = spectral_approximation_factor(graph, result.sparsifier)
    size_bound = graph.n * math.log2(graph.n) ** 4 / eps**2
    round_bound = math.log2(graph.n) ** 5 / eps**2 * math.log2(graph.n * graph.max_weight() / eps)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["m"] = graph.m
    benchmark.extra_info["sparsifier_edges"] = result.size
    benchmark.extra_info["size_bound_O(n eps^-2 log^4 n)"] = round(size_bound)
    benchmark.extra_info["spectral_window"] = [round(lo, 3), round(hi, 3)]
    benchmark.extra_info["rounds_measured"] = result.rounds
    benchmark.extra_info["rounds_bound_O(log^5 n eps^-2 log(nU/eps))"] = round(round_bound)
    benchmark.extra_info["max_out_degree"] = result.max_out_degree()
    assert lo >= 1 - eps - 1e-7 and hi <= 1 + eps + 1e-7


@pytest.mark.parametrize("t", [1, 4, 16])
def test_sparsifier_quality_vs_bundle_size(benchmark, t):
    """Ablation: how the spectral window tightens as the bundle grows."""
    graph = generators.erdos_renyi(48, 0.6, max_weight=4, seed=3)
    result = benchmark(lambda: spectral_sparsify(graph, eps=0.5, seed=4, t_override=t, k_override=2))
    lo, hi = spectral_approximation_factor(graph, result.sparsifier)
    benchmark.extra_info["t"] = t
    benchmark.extra_info["edges"] = result.size
    benchmark.extra_info["spectral_window"] = [round(lo, 3), round(hi, 3)]
    # degenerate outputs (empty/disconnected) are reported as failures now,
    # never silently certified
    benchmark.extra_info["certified_eps_0.5"] = result.certify(graph, eps=0.5)


def test_sparsifier_large_instance(benchmark):
    """Sparsification at 10-20x the seed benchmark sizes (edge-array hot loops).

    Certification at this n goes through the dense eigensolver and is the slow
    part, so the benchmark times the sparsify call alone and certifies once.
    """
    graph = generators.random_weighted_graph(1024, average_degree=8, max_weight=8, seed=5)
    result = benchmark(lambda: spectral_sparsify(graph, eps=0.5, seed=6, t_override=4))
    benchmark.extra_info["n"] = graph.n
    benchmark.extra_info["m"] = graph.m
    benchmark.extra_info["sparsifier_edges"] = result.size
    benchmark.extra_info["rounds_measured"] = result.rounds
