"""E8 -- approximate Lewis weights (Definition 4.3, Lemma 4.6)."""

import numpy as np
import pytest

from repro.linalg.lewis import (
    compute_apx_weights,
    exact_lewis_weights,
    initial_weight_iteration_count,
    lewis_p_parameter,
)


@pytest.mark.parametrize("eta", [0.1, 0.02])
def test_lewis_weight_accuracy(benchmark, eta, rng):
    M = rng.normal(size=(80, 8))
    p = lewis_p_parameter(M.shape[0])
    exact = exact_lewis_weights(M, p)

    report = benchmark(lambda: compute_apx_weights(M, p, eta=eta, seed=17, use_sketching=False))

    rel = float(np.max(np.abs(report.weights - exact) / exact))
    benchmark.extra_info["eta_target"] = eta
    benchmark.extra_info["relative_error_measured"] = rel
    benchmark.extra_info["fixed_point_iterations"] = report.iterations
    benchmark.extra_info["leverage_score_calls"] = report.leverage_calls
    benchmark.extra_info["homotopy_bound_O(sqrt(n) log mn)"] = initial_weight_iteration_count(
        M.shape[1], M.shape[0], p
    )
    assert rel <= eta + 1e-6
