"""E-cluster -- sharded multi-process serving vs the single-process service.

The two acceptance measurements of the ``repro.serve.cluster`` subsystem,
appended to a ``BENCH_cluster.json`` trajectory at the repo root:

* **correctness under sharding** -- the same seeded traffic trace (mixed
  solves, resistance queries, batched resistance queries and interleaved
  mutations over 8 graphs) replayed sequentially against a single-process
  :class:`~repro.serve.LaplacianService` and a 4-worker
  :class:`~repro.serve.ClusterService`.  Answers are compared event-for-event
  with :func:`~repro.serve.compare_answers`; the gate is agreement to
  ``1e-8`` with zero failed events on either side.
* **throughput under concurrency** -- a longer read-mostly trace driven by 8
  concurrent clients against a 1-worker cluster (one serving process behind
  the same IPC front door) and a 4-worker cluster.  Both runs record
  throughput, p50/p99 end-to-end latency and shed rate.  The hard floor --
  the 4-worker cluster at >= ``SCALING_FLOOR`` x the single-process
  throughput -- is only asserted when the machine actually has >= 4 usable
  cores; on smaller containers the measured ratio is recorded with a
  ``cpu_limited`` flag instead (process parallelism cannot beat the core
  count).
* **availability under a mid-trace kill** -- the same mixed trace replayed
  against a 2-worker cluster at ``replication_factor=1`` and ``=2`` while a
  worker is SIGKILLed partway through.  Both runs record failed-event counts
  and p99 latency; the gate is that the *replicated* run completes with zero
  failed events (in-flight orphans fail over to the surviving replica), while
  the single-replica run's failures are recorded as the contrast column.

Workloads are 8 seeded graphs at ``n`` between ~200 and 400 -- grids,
random weighted graphs, a power-law graph and a small-world graph -- so the
hash ring has something real to shard.  Runs as a plain script (what CI
executes); the module stays import-safe because spawned worker processes
re-import ``__main__``:

    PYTHONPATH=src python benchmarks/bench_cluster.py
"""

import json
import os
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.graphs import generators
from repro.serve import (
    ClusterService,
    LaplacianService,
    TrafficConfig,
    WorkerConfig,
    compare_answers,
    generate_trace,
    run_trace,
    solve_rhs,
)

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

#: sparsifier iteration knob used everywhere (paper constants swallow small n)
T_OVERRIDE = 2

#: worker count of the scaled cluster (the acceptance configuration)
CLUSTER_WORKERS = 4

#: asserted floor: 4-worker throughput over single-process throughput,
#: gated on the container actually having >= CLUSTER_WORKERS usable cores
SCALING_FLOOR = 2.0

#: answers of the sharded and single-process replays must agree to this
AGREEMENT_ATOL = 1e-8

#: sequential correctness trace: the default mixed read/mutate workload
CORRECTNESS_CONFIG = TrafficConfig(seed=17, queries=120, clients=4)

#: availability trace: mixed read/mutate workload replayed while a worker
#: is killed partway through (sequential, so failed counts are deterministic
#: modulo which single event is in flight at the kill instant)
AVAILABILITY_CONFIG = TrafficConfig(seed=31, queries=80, clients=4)

#: when (seconds into the availability replay) the victim worker is killed
AVAILABILITY_KILL_AFTER = 0.4

#: concurrent throughput trace: read-mostly (mutations serialise on artifact
#: rebuilds, which is a repair benchmark, not a scaling one)
THROUGHPUT_CONFIG = TrafficConfig(
    seed=23,
    queries=400,
    clients=8,
    mix=(
        ("solve", 0.35),
        ("resistance", 0.30),
        ("resistance_batch", 0.30),
        ("mutate", 0.05),
    ),
)


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def make_workloads():
    """Eight seeded graphs at n ~ 200..400 for the ring to shard."""
    return [
        ("grid-14x15", lambda: generators.grid_graph(14, 15)),
        ("grid-16x20", lambda: generators.grid_graph(16, 20)),
        ("grid-15x15", lambda: generators.grid_graph(15, 15)),
        ("random-256", lambda: generators.random_weighted_graph(256, average_degree=6, seed=7)),
        ("random-300", lambda: generators.random_weighted_graph(300, average_degree=6, seed=11)),
        ("random-400", lambda: generators.random_weighted_graph(400, average_degree=5, seed=13)),
        ("barabasi-albert-240", lambda: generators.barabasi_albert(240, attach=3, seed=19)),
        ("watts-strogatz-280", lambda: generators.watts_strogatz(280, k=6, beta=0.1, seed=23)),
    ]


def fresh_graphs():
    """Fresh identical graph objects, so each service mutates its own copies."""
    return [factory() for _, factory in make_workloads()]


def graph_sizes():
    return [graph.n for graph in fresh_graphs()]


def register_all(service, graphs):
    return [service.register(g, name=name) for (name, _), g in zip(make_workloads(), graphs)]


def prime(service, keys, sizes):
    """One solve per graph: artifact builds happen here, not in the timing."""
    for key, n in zip(keys, sizes):
        service.solve(key, solve_rhs(n, rhs_seed=0))


def measure_correctness(sizes) -> dict:
    """Sequential replay on single-process vs 4-worker cluster; compare answers."""
    trace = generate_trace(sizes, CORRECTNESS_CONFIG)

    single = LaplacianService(t_override=T_OVERRIDE)
    single_keys = register_all(single, fresh_graphs())
    single_report = run_trace(
        single, single_keys, sizes, trace, concurrent=False, record_answers=True
    )
    single.close()

    with ClusterService(
        num_workers=CLUSTER_WORKERS, worker_config=WorkerConfig(t_override=T_OVERRIDE)
    ) as cluster:
        cluster_keys = register_all(cluster, fresh_graphs())
        shards = len({cluster.shard_of(key) for key in cluster_keys})
        cluster_report = run_trace(
            cluster, cluster_keys, sizes, trace, concurrent=False, record_answers=True
        )

    compared, worst = compare_answers(single_report, cluster_report, atol=AGREEMENT_ATOL)
    return {
        "queries": CORRECTNESS_CONFIG.queries,
        "graphs": len(sizes),
        "shards_used": shards,
        "single_failed": single_report.failed,
        "cluster_failed": cluster_report.failed,
        "answers_compared": compared,
        "max_abs_difference": worst,
    }


def _run_throughput(service, sizes, trace) -> dict:
    keys = register_all(service, fresh_graphs())
    prime(service, keys, sizes)
    report = run_trace(service, keys, sizes, trace, concurrent=True)
    if report.ok + report.shed + report.failed != report.events_total:
        raise SystemExit(
            f"FAIL: lost events -- ok={report.ok} shed={report.shed} "
            f"failed={report.failed} of {report.events_total}"
        )
    summary = report.summary()
    summary["throughput_qps"] = round(summary["throughput_qps"], 2)
    for field in ("seconds", "shed_rate", "latency_p50", "latency_p99"):
        summary[field] = round(summary[field], 5)
    return summary


def measure_throughput(sizes) -> dict:
    """Concurrent trace on a 1-worker vs a 4-worker cluster."""
    trace = generate_trace(sizes, THROUGHPUT_CONFIG)
    config = WorkerConfig(t_override=T_OVERRIDE)
    with ClusterService(num_workers=1, worker_config=config) as single:
        single_summary = _run_throughput(single, sizes, trace)
    with ClusterService(num_workers=CLUSTER_WORKERS, worker_config=config) as cluster:
        cluster_summary = _run_throughput(cluster, sizes, trace)
    cores = usable_cores()
    ratio = cluster_summary["throughput_qps"] / max(
        single_summary["throughput_qps"], 1e-12
    )
    return {
        "queries": THROUGHPUT_CONFIG.queries,
        "clients": THROUGHPUT_CONFIG.clients,
        "cluster_workers": CLUSTER_WORKERS,
        "cpu_count": cores,
        "cpu_limited": cores < CLUSTER_WORKERS,
        "single_process": single_summary,
        "cluster": cluster_summary,
        "throughput_ratio": round(ratio, 2),
    }


def _run_availability(replication_factor: int, sizes, trace) -> dict:
    """Replay ``trace`` on a 2-worker cluster, killing worker-0 mid-trace."""
    config = WorkerConfig(t_override=T_OVERRIDE)
    with ClusterService(
        num_workers=2,
        worker_config=config,
        replication_factor=replication_factor,
    ) as cluster:
        keys = register_all(cluster, fresh_graphs())
        timer = threading.Timer(
            AVAILABILITY_KILL_AFTER, cluster.kill_worker, args=("worker-0",)
        )
        timer.start()
        try:
            report = run_trace(cluster, keys, sizes, trace, concurrent=False)
        finally:
            timer.cancel()
        recovered = cluster.wait_recovered(timeout=60.0)
        metrics = cluster.metrics_snapshot()
    if report.ok + report.shed + report.failed != report.events_total:
        raise SystemExit(
            f"FAIL: availability replay (rf={replication_factor}) lost events -- "
            f"ok={report.ok} shed={report.shed} failed={report.failed} "
            f"of {report.events_total}"
        )
    summary = report.summary()
    return {
        "replication_factor": replication_factor,
        "ok": report.ok,
        "failed": report.failed,
        "shed": report.shed,
        "failover_resubmits": metrics.get("failover_resubmits", 0),
        "worker_crashes": metrics.get("worker_crashes", 0),
        "worker_respawns": metrics.get("worker_respawns", 0),
        "recovered": recovered,
        "latency_p99": round(summary["latency_p99"], 5),
    }


def measure_availability(sizes) -> dict:
    """Mid-trace worker kill at replication_factor 1 vs 2 on a 2-worker ring."""
    trace = generate_trace(sizes, AVAILABILITY_CONFIG)
    return {
        "queries": AVAILABILITY_CONFIG.queries,
        "kill_after_seconds": AVAILABILITY_KILL_AFTER,
        "single_replica": _run_availability(1, sizes, trace),
        "replicated": _run_availability(2, sizes, trace),
    }


def append_trajectory(record: dict) -> None:
    history = []
    if TRAJECTORY_PATH.exists():
        history = json.loads(TRAJECTORY_PATH.read_text())
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def main():
    sizes = graph_sizes()
    started = time.perf_counter()

    correctness = measure_correctness(sizes)
    print(
        f"correctness: {correctness['answers_compared']} answers compared across "
        f"{correctness['graphs']} graphs on {correctness['shards_used']} shards, "
        f"max |diff| = {correctness['max_abs_difference']:.2e}"
    )
    throughput = measure_throughput(sizes)
    single_qps = throughput["single_process"]["throughput_qps"]
    cluster_qps = throughput["cluster"]["throughput_qps"]
    print(
        f"throughput ({throughput['queries']} queries, {throughput['clients']} clients, "
        f"{throughput['cpu_count']} cores): single {single_qps:.1f} q/s "
        f"(p99 {throughput['single_process']['latency_p99']*1000:.1f}ms), "
        f"{CLUSTER_WORKERS}-worker {cluster_qps:.1f} q/s "
        f"(p99 {throughput['cluster']['latency_p99']*1000:.1f}ms) -> "
        f"{throughput['throughput_ratio']:.2f}x"
        + (" [cpu_limited]" if throughput["cpu_limited"] else "")
    )

    availability = measure_availability(sizes)
    for column in (availability["single_replica"], availability["replicated"]):
        print(
            f"availability (rf={column['replication_factor']}, worker killed at "
            f"{availability['kill_after_seconds']}s): ok={column['ok']} "
            f"failed={column['failed']} failovers={column['failover_resubmits']} "
            f"p99 {column['latency_p99']*1000:.1f}ms"
        )

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "t_override": T_OVERRIDE,
        "total_seconds": round(time.perf_counter() - started, 2),
        "correctness": correctness,
        "throughput": throughput,
        "availability": availability,
    }
    append_trajectory(record)

    if correctness["single_failed"] or correctness["cluster_failed"]:
        raise SystemExit(
            f"FAIL: correctness replay had failures (single="
            f"{correctness['single_failed']}, cluster={correctness['cluster_failed']})"
        )
    if correctness["answers_compared"] == 0:
        raise SystemExit("FAIL: correctness replay compared zero answers")
    if correctness["max_abs_difference"] > AGREEMENT_ATOL:
        raise SystemExit(
            f"FAIL: sharded answers diverge from single-process by "
            f"{correctness['max_abs_difference']:.3e} > {AGREEMENT_ATOL:.1e}"
        )
    if throughput["cpu_limited"]:
        # a 4-worker cluster cannot scale past the core count; record the
        # measured ratio instead of asserting a floor it physically cannot meet
        print(
            f"NOTE: only {throughput['cpu_count']} usable core(s); the "
            f"{SCALING_FLOOR}x scaling floor needs >= {CLUSTER_WORKERS} and is skipped"
        )
    elif throughput["throughput_ratio"] < SCALING_FLOOR:
        raise SystemExit(
            f"FAIL: {CLUSTER_WORKERS}-worker throughput only "
            f"{throughput['throughput_ratio']}x single-process, below the "
            f"{SCALING_FLOOR}x floor on a {throughput['cpu_count']}-core machine"
        )
    replicated = availability["replicated"]
    if replicated["failed"] != 0:
        raise SystemExit(
            f"FAIL: replicated cluster dropped {replicated['failed']} events "
            f"during a mid-trace worker kill (the availability contract is zero)"
        )
    if not replicated["recovered"]:
        raise SystemExit(
            "FAIL: replicated cluster never recovered after the mid-trace kill"
        )
    print(f"PASS (trajectory appended to {TRAJECTORY_PATH.name})")


if __name__ == "__main__":
    main()
