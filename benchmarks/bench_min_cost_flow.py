"""E5 -- exact min-cost max-flow: LP pipeline vs combinatorial baselines (Theorem 1.1)."""

import pytest

from repro.flow import min_cost_max_flow, networkx_min_cost_max_flow, successive_shortest_paths
from repro.flow.mincostflow import theorem_round_bound
from repro.graphs import generators


@pytest.mark.parametrize("n", [8, 16, 32])
def test_pipeline_exactness_and_rounds(benchmark, n):
    network = generators.random_flow_network(n, seed=n, max_capacity=12, max_cost=8)

    result = benchmark(lambda: min_cost_max_flow(network, seed=n))

    value, cost, _ = networkx_min_cost_max_flow(network)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["m"] = network.m
    benchmark.extra_info["flow_value"] = result.value
    benchmark.extra_info["exact"] = bool(abs(result.cost - cost) < 1e-6 and abs(result.value - value) < 1e-6)
    benchmark.extra_info["lp_iterations"] = result.lp_iterations
    benchmark.extra_info["rounding_fallback"] = result.rounding_fallback
    benchmark.extra_info["rounds_measured"] = result.rounds
    benchmark.extra_info["rounds_bound_Otilde(sqrt(n) log^3 M)"] = round(
        theorem_round_bound(n, network.max_capacity())
    )
    assert abs(result.cost - cost) < 1e-6


@pytest.mark.parametrize("n", [16, 32])
def test_baseline_successive_shortest_paths(benchmark, n):
    network = generators.random_flow_network(n, seed=n + 100, max_capacity=12, max_cost=8)
    value, cost, _ = benchmark(lambda: successive_shortest_paths(network))
    benchmark.extra_info["n"] = n
    benchmark.extra_info["flow_value"] = value
    benchmark.extra_info["flow_cost"] = cost
