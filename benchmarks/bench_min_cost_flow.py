"""E5 -- exact min-cost max-flow: serving-tier amortisation and LP baselines.

Two families of measurements, appended to a ``BENCH_flow.json`` trajectory at
the repo root:

* **cold vs warm IPM wall time** -- the first ``min_cost_flow`` on a
  registered network pays the full pipeline (phase-1 max flow, one ``splu``
  grounded factorisation per Newton reweight); the second replays the same
  deterministic weight trajectory against the artifact cache and must hit
  every factorisation warm.  The asserted CI floor on the headline layered
  workload is a ``3x`` wall-time speedup.
* **per-iteration gram-solve cost** -- the bridge's
  :class:`~repro.lp.gram.GramBridgeStats` trajectory (factorisation count,
  cache hits, mean/max per-solve seconds) for both runs, the signal that the
  reweight-delta strategies and the cache are doing the work the wall-time
  numbers claim.

The classical pytest-benchmark comparisons against the combinatorial
baselines (networkx, successive shortest paths) are kept below.  Runs as a
plain script (what CI executes) or as an explicitly named pytest-benchmark
module (directory collection only picks up ``test_*.py``):

    PYTHONPATH=src python benchmarks/bench_min_cost_flow.py
    PYTHONPATH=src python -m pytest benchmarks/bench_min_cost_flow.py --benchmark-only
"""

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.flow import (
    min_cost_max_flow,
    networkx_min_cost_max_flow,
    successive_shortest_paths,
)
from repro.flow.mincostflow import theorem_round_bound
from repro.graphs import generators
from repro.serve import LaplacianService

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_flow.json"

#: sparsifier iteration knob used everywhere (paper constants swallow small n)
T_OVERRIDE = 2

#: asserted CI floor: warm (cache-served) IPM wall time vs cold on the
#: headline workload
WARM_SPEEDUP_FLOOR = 3.0

#: served answers must agree with the combinatorial baseline to this
EXACTNESS_ATOL = 1e-6

#: the headline workload the floor is asserted on
HEADLINE_CASE = "layered-10x8"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def make_workloads():
    """Named seeded flow workloads; the layered DAGs are the paper's framing."""
    return [
        ("random-24", lambda: generators.random_flow_network(24, seed=3)),
        ("layered-6x5", lambda: generators.layered_flow_network(6, 5, seed=3)),
        ("layered-10x8", lambda: generators.layered_flow_network(10, 8, seed=3)),
    ]


def _gram_summary(result) -> dict:
    stats = result.gram_stats or {}
    return {
        "solves": stats.get("solves", 0),
        "factorisations": stats.get("factorisations", 0),
        "cache_hits": stats.get("cache_hits", 0),
        "gram_seconds": round(stats.get("seconds_total", 0.0), 4),
        "per_solve_mean_seconds": round(stats.get("per_solve_mean_seconds", 0.0), 6),
        "per_solve_max_seconds": round(stats.get("per_solve_max_seconds", 0.0), 6),
    }


def run_case(name: str, network) -> dict:
    """One cold and one warm served solve; exactness checked against networkx."""
    service = LaplacianService(t_override=T_OVERRIDE)
    key = service.register(network, name=name)

    cold, cold_seconds = _timed(lambda: service.min_cost_flow(key, seed=0))
    warm, warm_seconds = _timed(lambda: service.min_cost_flow(key, seed=0))

    value, cost, _ = networkx_min_cost_max_flow(network)
    exact = (
        abs(cold.value - value) < EXACTNESS_ATOL
        and abs(cold.cost - cost) < EXACTNESS_ATOL
        and abs(warm.value - value) < EXACTNESS_ATOL
        and abs(warm.cost - cost) < EXACTNESS_ATOL
    )
    warm_gram = _gram_summary(warm)
    service.close()
    return {
        "case": name,
        "n": network.n,
        "m": network.m,
        "flow_value": cold.value,
        "flow_cost": cold.cost,
        "exact": exact,
        "lp_iterations": cold.lp_iterations,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(cold_seconds / max(warm_seconds, 1e-12), 2),
        "warm_all_hits": warm_gram["cache_hits"] == warm_gram["factorisations"],
        "gram_cold": _gram_summary(cold),
        "gram_warm": warm_gram,
    }


def append_trajectory(cases) -> None:
    history = []
    if TRAJECTORY_PATH.exists():
        history = json.loads(TRAJECTORY_PATH.read_text())
    stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    for case in cases:
        history.append({"timestamp": stamp, **case})
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


# -- pytest entry points --------------------------------------------------------


@pytest.mark.parametrize("n", [8, 16, 32])
def test_pipeline_exactness_and_rounds(benchmark, n):
    network = generators.random_flow_network(n, seed=n, max_capacity=12, max_cost=8)

    result = benchmark(lambda: min_cost_max_flow(network, seed=n))

    value, cost, _ = networkx_min_cost_max_flow(network)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["m"] = network.m
    benchmark.extra_info["flow_value"] = result.value
    benchmark.extra_info["exact"] = bool(abs(result.cost - cost) < 1e-6 and abs(result.value - value) < 1e-6)
    benchmark.extra_info["lp_iterations"] = result.lp_iterations
    benchmark.extra_info["rounding_fallback"] = result.rounding_fallback
    benchmark.extra_info["rounds_measured"] = result.rounds
    benchmark.extra_info["rounds_bound_Otilde(sqrt(n) log^3 M)"] = round(
        theorem_round_bound(n, network.max_capacity())
    )
    assert abs(result.cost - cost) < 1e-6


@pytest.mark.parametrize("n", [16, 32])
def test_baseline_successive_shortest_paths(benchmark, n):
    network = generators.random_flow_network(n, seed=n + 100, max_capacity=12, max_cost=8)
    value, cost, _ = benchmark(lambda: successive_shortest_paths(network))
    benchmark.extra_info["n"] = n
    benchmark.extra_info["flow_value"] = value
    benchmark.extra_info["flow_cost"] = cost


@pytest.mark.parametrize("name,factory", make_workloads())
def test_served_flow_throughput(benchmark, name, factory):
    network = factory()
    stats = benchmark.pedantic(lambda: run_case(name, network), iterations=1, rounds=1)
    for key, value in stats.items():
        benchmark.extra_info[key] = value
    assert stats["exact"]
    assert stats["warm_all_hits"]


# -- script entry point ---------------------------------------------------------


def _print_case(stats):
    print(
        f"{stats['case']:>14} (n={stats['n']}, m={stats['m']}): "
        f"cold {stats['cold_seconds']:.3f}s, warm {stats['warm_seconds']:.3f}s "
        f"({stats['warm_speedup']:.1f}x), "
        f"gram {stats['gram_cold']['gram_seconds']:.3f}s -> "
        f"{stats['gram_warm']['gram_seconds']:.3f}s "
        f"({stats['gram_warm']['cache_hits']}/{stats['gram_warm']['factorisations']} hits), "
        f"exact={stats['exact']}"
    )


def main():
    cases = []
    for name, factory in make_workloads():
        stats = run_case(name, factory())
        cases.append(stats)
        _print_case(stats)
    append_trajectory(cases)
    by_case = {c["case"]: c for c in cases}
    for case in cases:
        if not case["exact"]:
            raise SystemExit(
                f"FAIL: {case['case']} served answers disagree with the "
                f"combinatorial baseline"
            )
        if not case["warm_all_hits"]:
            raise SystemExit(
                f"FAIL: {case['case']} warm run missed the gram cache "
                f"({case['gram_warm']['cache_hits']}/{case['gram_warm']['factorisations']})"
            )
    headline = by_case[HEADLINE_CASE]
    if headline["warm_speedup"] < WARM_SPEEDUP_FLOOR:
        raise SystemExit(
            f"FAIL: warm IPM speedup {headline['warm_speedup']}x below floor "
            f"{WARM_SPEEDUP_FLOOR}x on {HEADLINE_CASE}"
        )
    print(f"PASS (trajectory appended to {TRAJECTORY_PATH.name})")


if __name__ == "__main__":
    main()
