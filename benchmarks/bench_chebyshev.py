"""E10 -- preconditioned Chebyshev iteration count (Theorem 2.3 / Corollary 2.4)."""

import numpy as np
import pytest

from repro.graphs import generators, laplacian_matrix
from repro.solvers.chebyshev import chebyshev_iteration_count, preconditioned_chebyshev


@pytest.mark.parametrize("eps", [1e-3, 1e-6, 1e-9])
def test_kappa3_iteration_count(benchmark, eps):
    """Corollary 2.4: with a (1 +/- 1/2)-sparsifier preconditioner (kappa = 3)
    the solve needs O(log 1/eps) iterations."""
    graph = generators.random_weighted_graph(40, average_degree=8, seed=10)
    L = laplacian_matrix(graph)
    B_pinv = np.linalg.pinv(1.5 * L)
    rng = np.random.default_rng(11)
    x_true = rng.normal(size=graph.n)
    x_true -= x_true.mean()
    b = L @ x_true

    def run():
        return preconditioned_chebyshev(
            apply_A=lambda v: L @ v,
            solve_B=lambda r: B_pinv @ r,
            b=b,
            kappa=3.0,
            eps=eps,
        )

    x, report = benchmark(run)
    a_norm = lambda v: float(np.sqrt(max(0.0, v @ L @ v)))  # noqa: E731
    benchmark.extra_info["eps"] = eps
    benchmark.extra_info["iterations_measured"] = report.iterations
    benchmark.extra_info["iterations_bound_O(sqrt(3) log 1/eps)"] = chebyshev_iteration_count(3.0, eps)
    benchmark.extra_info["relative_error"] = a_norm(x - x_true) / a_norm(x_true)
