"""E-sparsify-pipeline -- end-to-end sparsify + certify trajectory benchmark.

Times ``spectral_sparsify`` followed by sparse certification at
``n in {512, 2000}`` (the workload the PR-2 vectorisation targets: the
pre-vectorisation path took ~1.9s / ~18.9s end-to-end on these cases, the
array-native path ~0.6s / ~3.5s) and appends the measurements to a
``BENCH_sparsify.json`` trajectory file at the repo root, so perf regressions
of the spanner/bundle/sparsify hot path and of sparse certification show up
as a kink in the recorded series rather than silently.

Runs both as a pytest-benchmark module and as a plain script:

    PYTHONPATH=src python benchmarks/bench_sparsify_pipeline.py
"""

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.graphs import generators
from repro.graphs.laplacian import spectral_approximation_factor
from repro.sparsify import spectral_sparsify

#: benchmark sizes; the larger one is infeasible for the dense certifier path
SIZES = (512, 2000)

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_sparsify.json"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_case(n: int, seed: int = 7, eps: float = 0.5, t_override: int = 2) -> dict:
    """Sparsify + certify one seeded random graph; return the measurements."""
    graph = generators.random_weighted_graph(n, average_degree=8, seed=seed)
    result, sparsify_seconds = _timed(
        lambda: spectral_sparsify(graph, eps=eps, seed=seed + 4, t_override=t_override)
    )
    (lo, hi), certify_seconds = _timed(
        lambda: spectral_approximation_factor(graph, result.sparsifier, backend="sparse")
    )
    return {
        "n": n,
        "m": graph.m,
        "eps": eps,
        "t_override": t_override,
        "sparsifier_edges": result.size,
        "sparsify_seconds": round(sparsify_seconds, 4),
        "certify_seconds": round(certify_seconds, 4),
        "total_seconds": round(sparsify_seconds + certify_seconds, 4),
        "spectral_window": [round(lo, 6), round(hi, 6)],
        "max_out_degree": result.max_out_degree(),
        "rounds": result.rounds,
    }


def append_trajectory(cases: list) -> list:
    """Append the measured cases to the BENCH_sparsify.json trajectory.

    The trajectory is a flat list with one record per measured case (tagged
    with a shared timestamp), so the pytest-parametrized runs and the script
    path produce identical schemas and a consumer can plot per-``n`` series
    with a simple filter.
    """
    trajectory = []
    if TRAJECTORY_PATH.exists():
        try:
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        except json.JSONDecodeError:
            trajectory = []
    timestamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    records = [{"timestamp": timestamp, **case} for case in cases]
    trajectory.extend(records)
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
    return records


@pytest.mark.parametrize("n", SIZES)
def test_sparsify_and_certify_pipeline(benchmark, n):
    case = {}

    def run():
        case.clear()
        case.update(run_case(n))
        return case

    benchmark.pedantic(run, rounds=1, iterations=1)
    for key, value in case.items():
        benchmark.extra_info[key] = value
    append_trajectory([case])
    lo, hi = case["spectral_window"]
    # the sparsifier must at least be non-degenerate at these parameters
    assert lo > 0 and hi < float("inf")


def main():
    cases = [run_case(n) for n in SIZES]
    records = append_trajectory(cases)
    for case in cases:
        print(
            f"n={case['n']} m={case['m']}: sparsify {case['sparsify_seconds']:.2f}s, "
            f"certify {case['certify_seconds']:.2f}s, window {case['spectral_window']}"
        )
    print(f"appended {len(records)} records to {TRAJECTORY_PATH.name}")


if __name__ == "__main__":
    main()
