"""E6 -- projection on the mixed norm ball (Lemma 4.10)."""

import numpy as np
import pytest

from repro.congest.ledger import CommunicationPrimitives
from repro.linalg.mixed_ball import project_mixed_ball, project_mixed_ball_reference


@pytest.mark.parametrize("m", [64, 512, 4096])
def test_mixed_ball_projection_scaling(benchmark, m, rng):
    a = rng.normal(size=m)
    l = rng.uniform(0.2, 4.0, size=m)

    def run():
        comm = CommunicationPrimitives(64)
        return project_mixed_ball(a, l, comm=comm)

    result = benchmark(run)
    benchmark.extra_info["m"] = m
    benchmark.extra_info["evaluations"] = result.evaluations
    benchmark.extra_info["rounds_measured"] = result.rounds
    benchmark.extra_info["constraint_value"] = round(result.constraint_value(l), 6)
    assert result.constraint_value(l) <= 1 + 1e-6


def test_mixed_ball_matches_reference(benchmark, rng):
    a = rng.normal(size=128)
    l = rng.uniform(0.2, 4.0, size=128)
    fast = benchmark(lambda: project_mixed_ball(a, l))
    reference = project_mixed_ball_reference(a, l)
    benchmark.extra_info["value_fast"] = fast.value
    benchmark.extra_info["value_reference"] = reference.value
    assert fast.value == pytest.approx(reference.value, rel=1e-4)
