"""E4 -- LP solver iteration counts: sqrt(n) weighted path following vs sqrt(m)
classical path following (Theorem 1.4)."""

import numpy as np
import pytest

from repro.congest.ledger import CommunicationPrimitives
from repro.lp import BarrierIPM, LeeSidfordSolver, LPProblem
from repro.lp.barrier_ipm import (
    theoretical_iteration_bound_sqrt_m,
    theoretical_iteration_bound_sqrt_n,
)


def random_lp(m, n, seed):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(m, n))
    x0 = rng.uniform(0.35, 0.65, size=m)
    return LPProblem(A=A, b=A.T @ x0, c=rng.normal(size=m), lower=np.zeros(m), upper=np.ones(m)), x0


@pytest.mark.parametrize("n", [3, 6, 12])
def test_barrier_ipm_iterations(benchmark, n):
    problem, x0 = random_lp(m=6 * n, n=n, seed=n)

    def run():
        comm = CommunicationPrimitives(n + 1)
        return BarrierIPM(problem, comm=comm).solve(x0, eps=1e-6)

    solution = benchmark(run)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["m"] = problem.m
    benchmark.extra_info["newton_iterations_measured"] = solution.iterations
    benchmark.extra_info["bound_sqrt_m"] = round(theoretical_iteration_bound_sqrt_m(problem.m, 1e-6))
    benchmark.extra_info["bound_sqrt_n_(paper)"] = round(
        theoretical_iteration_bound_sqrt_n(n, 2.0, 1e-6)
    )
    benchmark.extra_info["rounds_measured"] = solution.rounds
    assert solution.converged


def test_lee_sidford_path_following_steps(benchmark):
    problem, x0 = random_lp(m=18, n=4, seed=42)

    def run():
        solver = LeeSidfordSolver(problem, reweight=True, seed=1)
        solution = solver.solve(x0, eps=1e-2)
        return solver, solution

    solver, solution = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["path_following_steps"] = solution.iterations
    benchmark.extra_info["iteration_bound_O(sqrt(n) log(U/eps))"] = round(solver.iteration_bound(1e-2))
    benchmark.extra_info["gram_solves"] = solver.report.gram_solves
    benchmark.extra_info["objective"] = solution.objective
