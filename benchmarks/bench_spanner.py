"""E3 -- probabilistic spanners: stretch, size and rounds (Lemmas 3.1 / 3.2)."""

import math

import numpy as np
import pytest

from repro.graphs import generators
from repro.spanners import probabilistic_spanner


@pytest.mark.parametrize("k", [2, 3, 4])
def test_spanner_stretch_size_rounds(benchmark, k):
    graph = generators.random_weighted_graph(64, average_degree=10, max_weight=16, seed=3)

    result = benchmark(lambda: probabilistic_spanner(graph, k=k, seed=5))

    spanner_graph = result.spanner_graph(graph)
    d_g = graph.all_pairs_shortest_paths()
    d_s = spanner_graph.all_pairs_shortest_paths()
    mask = np.isfinite(d_g) & (d_g > 0)
    stretch = float(np.max(d_s[mask] / d_g[mask]))
    size_bound = k * graph.n ** (1 + 1.0 / k)
    round_bound = k * graph.n ** (1.0 / k) * (math.log2(graph.n) + math.log2(graph.max_weight()))

    benchmark.extra_info["stretch_measured"] = round(stretch, 3)
    benchmark.extra_info["stretch_bound"] = 2 * k - 1
    benchmark.extra_info["edges_measured"] = spanner_graph.m
    benchmark.extra_info["edges_bound_O(k n^{1+1/k})"] = round(size_bound)
    benchmark.extra_info["rounds_measured"] = result.rounds
    benchmark.extra_info["rounds_bound_O(k n^{1/k} log(nW))"] = round(round_bound)
    assert stretch <= 2 * k - 1 + 1e-9


@pytest.mark.parametrize("n", [32, 64, 128])
def test_spanner_round_scaling_with_n(benchmark, n):
    graph = generators.random_weighted_graph(n, average_degree=8, max_weight=8, seed=7)
    result = benchmark(lambda: probabilistic_spanner(graph, k=2, seed=9))
    benchmark.extra_info["n"] = n
    benchmark.extra_info["rounds_measured"] = result.rounds
    benchmark.extra_info["rounds_bound_O(k sqrt(n) log n)"] = round(
        2 * math.sqrt(n) * math.log2(n)
    )
