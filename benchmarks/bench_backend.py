"""E-backend -- dense vs sparse Laplacian backend smoke benchmark.

Asserts that the sparse CSR path is actually faster than the dense reference
above a size threshold, so a perf regression in the backend fails loudly
instead of silently re-capping the pipeline at toy sizes.  Runs both as a
pytest-benchmark module and as a plain script:

    PYTHONPATH=src python benchmarks/bench_backend.py

The workload is a 2-D grid (good separators: the regime sparse direct solvers
are built for) at a size where the dense path's ``n^3`` pseudoinverse is
already clearly behind the grounded ``splu`` factorisation.
"""

import time

import numpy as np
import pytest

from repro.graphs import effective_resistances, generators, laplacian_matrix
from repro.solvers import BCCLaplacianSolver

#: grid side: n = SIDE^2 vertices, m ~ 2 n edges
SIDE = 40

#: sparse must beat dense by at least this factor at the benchmark size
SPEEDUP_FLOOR = 2.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_smoke(side: int = SIDE, speedup_floor: float = SPEEDUP_FLOOR) -> dict:
    """Time dense vs sparse effective resistances; return the measurements."""
    graph = generators.grid_graph(side, side)
    sparse_res, sparse_time = _timed(lambda: effective_resistances(graph, backend="sparse"))
    dense_res, dense_time = _timed(lambda: effective_resistances(graph, backend="dense"))
    np.testing.assert_allclose(sparse_res, dense_res, atol=1e-8)
    return {
        "n": graph.n,
        "m": graph.m,
        "dense_seconds": dense_time,
        "sparse_seconds": sparse_time,
        "speedup": dense_time / max(sparse_time, 1e-12),
        "speedup_floor": speedup_floor,
    }


def test_sparse_effective_resistances_beat_dense(benchmark):
    graph = generators.grid_graph(SIDE, SIDE)
    benchmark(lambda: effective_resistances(graph, backend="sparse"))
    stats = run_smoke()
    for key, value in stats.items():
        benchmark.extra_info[key] = value
    assert stats["speedup"] >= SPEEDUP_FLOOR, (
        f"sparse backend no longer faster than dense at n={stats['n']}: "
        f"{stats['sparse_seconds']:.3f}s vs {stats['dense_seconds']:.3f}s"
    )


def test_sparse_solver_beats_dense_preconditioner_setup(benchmark):
    """Solver preprocessing: grounded splu vs dense pseudoinverse."""
    graph = generators.grid_graph(SIDE, SIDE)
    rng = np.random.default_rng(0)
    b = rng.normal(size=graph.n)

    def run(backend):
        solver = BCCLaplacianSolver(graph, exact_preconditioner=True, backend=backend)
        return solver.solve(b, eps=1e-8, check=False)

    report = benchmark(lambda: run("sparse"))
    _, sparse_time = _timed(lambda: run("sparse"))
    _, dense_time = _timed(lambda: run("dense"))
    benchmark.extra_info["sparse_seconds"] = sparse_time
    benchmark.extra_info["dense_seconds"] = dense_time
    benchmark.extra_info["chebyshev_iterations"] = report.chebyshev.iterations
    assert sparse_time < dense_time, (
        f"sparse solver setup+solve slower than dense at n={graph.n}: "
        f"{sparse_time:.3f}s vs {dense_time:.3f}s"
    )


def test_sparse_certification_beats_dense_at_n2000(benchmark):
    """Certification: eigsh on the reduced pencil vs the dense eigh reference.

    At n=2000 the dense path spends seconds in ``O(n^3)`` eigendecompositions;
    the sparse path must beat it outright (and agree to 1e-8), otherwise the
    ROADMAP's "sparse certification unblocks n >= 2000" claim has regressed.
    """
    from repro.graphs import generators as gen
    from repro.graphs.laplacian import spectral_approximation_factor
    from repro.sparsify import spectral_sparsify

    graph = gen.random_weighted_graph(2000, average_degree=8, seed=7)
    sparsifier = spectral_sparsify(graph, eps=0.5, seed=11, t_override=2).sparsifier

    sparse_factors = benchmark(
        lambda: spectral_approximation_factor(graph, sparsifier, backend="sparse")
    )
    _, sparse_time = _timed(
        lambda: spectral_approximation_factor(graph, sparsifier, backend="sparse")
    )
    dense_factors, dense_time = _timed(
        lambda: spectral_approximation_factor(graph, sparsifier, backend="dense")
    )
    np.testing.assert_allclose(sparse_factors, dense_factors, rtol=1e-8, atol=1e-8)
    benchmark.extra_info["n"] = graph.n
    benchmark.extra_info["sparse_seconds"] = sparse_time
    benchmark.extra_info["dense_seconds"] = dense_time
    benchmark.extra_info["speedup"] = dense_time / max(sparse_time, 1e-12)
    assert sparse_time < dense_time, (
        f"sparse certification no longer faster than dense at n={graph.n}: "
        f"{sparse_time:.3f}s vs {dense_time:.3f}s"
    )


def main():
    stats = run_smoke()
    print(
        f"grid {SIDE}x{SIDE} (n={stats['n']}, m={stats['m']}): "
        f"dense {stats['dense_seconds']:.3f}s, sparse {stats['sparse_seconds']:.3f}s, "
        f"speedup {stats['speedup']:.1f}x (floor {stats['speedup_floor']}x)"
    )
    if stats["speedup"] < stats["speedup_floor"]:
        raise SystemExit("FAIL: sparse backend slower than the asserted floor")
    print("PASS")


if __name__ == "__main__":
    main()
