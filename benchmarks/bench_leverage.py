"""E7 -- JL-sketched leverage scores (Theorem 4.4, Lemma 4.5)."""

import numpy as np
import pytest

from repro.congest.ledger import CommunicationPrimitives
from repro.linalg.jl import kane_nelson_random_bits
from repro.linalg.leverage import approximate_leverage_scores, exact_leverage_scores


@pytest.mark.parametrize("eta", [0.5, 0.25])
def test_leverage_score_accuracy_and_cost(benchmark, eta, rng):
    M = rng.normal(size=(120, 8))
    exact = exact_leverage_scores(M)

    def run():
        comm = CommunicationPrimitives(16)
        return approximate_leverage_scores(M, eta=eta, seed=13, comm=comm)

    report = benchmark(run)
    ratio = report.scores / exact
    benchmark.extra_info["eta"] = eta
    benchmark.extra_info["max_multiplicative_error"] = float(np.max(np.abs(ratio - 1)))
    benchmark.extra_info["sketch_rows_k"] = report.sketch_rows
    benchmark.extra_info["random_bits_used"] = report.random_bits
    benchmark.extra_info["random_bits_bound_O(log^2 m)"] = kane_nelson_random_bits(120)
    benchmark.extra_info["rounds_measured"] = report.rounds
    assert np.max(np.abs(ratio - 1)) <= eta + 0.05


def test_leverage_scores_sparse_incidence(benchmark):
    """Graph-structured M = W^{1/2} B as a CSR matrix (the LP solver's shape).

    The sparse path never materialises the m x n dense incidence matrix; every
    product in Algorithm 6 stays a sparse matvec.
    """
    import scipy.sparse as sp

    from repro.graphs import generators
    from repro.linalg import incidence_csr

    graph = generators.grid_graph(30, 30)
    B, w = incidence_csr(graph)
    M = sp.diags(np.sqrt(w)) @ B
    exact = exact_leverage_scores(M)

    report = benchmark(lambda: approximate_leverage_scores(M, eta=0.5, seed=13))
    ratio = report.scores / exact
    benchmark.extra_info["m"] = M.shape[0]
    benchmark.extra_info["n"] = M.shape[1]
    benchmark.extra_info["max_multiplicative_error"] = float(np.max(np.abs(ratio - 1)))
    benchmark.extra_info["sketch_rows_k"] = report.sketch_rows
    assert np.max(np.abs(ratio - 1)) <= 0.55
