"""E-serve -- throughput benchmark of the batched Laplacian query service.

Measures the two amortisations the serving layer exists for and appends the
measurements to a ``BENCH_serve.json`` trajectory at the repo root:

* **cold vs warm cache** -- a cold query pays per-query solver construction
  (sparsifier + factorisation); a warm query reuses the cached artifacts.
  The floor asserted at ``n = 2000`` is a 5x speedup.
* **batch=1 vs batch=64** -- 64 sequential effective-resistance queries vs
  one coalesced batch through the cached grounded factorisation.  The floor
  asserted at ``n = 2000`` is 3x.

Workloads cover the scenario spread: random weighted graphs at
``n in {512, 2000}``, a ``100 x 100`` grid (``n = 10^4``), a Barabasi-Albert
power-law graph and a Watts-Strogatz small-world graph.  Runs as a plain
script (what CI executes) or as an explicitly named pytest-benchmark module
(directory collection only picks up ``test_*.py``):

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py --benchmark-only
"""

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np
import pytest

from repro.graphs import generators
from repro.serve import LaplacianService
from repro.solvers import BCCLaplacianSolver

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: sparsifier iteration knob used everywhere (paper constants swallow small n)
T_OVERRIDE = 2

#: queries per warm-phase measurement
WARM_QUERIES = 8

#: resistance batch size of the coalescing measurement
RESISTANCE_BATCH = 64

#: asserted floors at n = 2000 (the ISSUE 3 acceptance criteria)
WARM_SPEEDUP_FLOOR = 5.0
BATCH_SPEEDUP_FLOOR = 3.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def make_workloads():
    """Named seeded workloads; ``heavy`` marks the n = 10^4 grid."""
    return [
        ("random-512", lambda: generators.random_weighted_graph(512, average_degree=8, seed=7), False),
        ("random-2000", lambda: generators.random_weighted_graph(2000, average_degree=8, seed=7), False),
        ("barabasi-albert-2000", lambda: generators.barabasi_albert(2000, attach=4, seed=11), False),
        ("watts-strogatz-2000", lambda: generators.watts_strogatz(2000, k=6, beta=0.1, seed=13), False),
        ("grid-100x100", lambda: generators.grid_graph(100, 100), True),
    ]


def run_case(name: str, graph, warm_queries: int = WARM_QUERIES) -> dict:
    """Serve one workload; return cold/warm/batched throughput measurements."""
    rng = np.random.default_rng(42)
    rhs = [rng.normal(size=graph.n) for _ in range(warm_queries)]

    # cold per-query construction: what the facade did before the serving
    # layer existed -- build solver preprocessing from scratch for one query.
    def cold_query():
        solver = BCCLaplacianSolver(graph, seed=0, t_override=T_OVERRIDE)
        return solver.solve(rhs[0], eps=1e-6)

    _, cold_seconds = _timed(cold_query)

    service = LaplacianService(t_override=T_OVERRIDE, auto_flush=False)
    key = service.register(graph, name=name)
    service.solve(key, rhs[0], eps=1e-6)  # populate the cache

    _, warm_total = _timed(
        lambda: [service.solve(key, b, eps=1e-6) for b in rhs]
    )
    warm_seconds = warm_total / warm_queries

    pairs = [
        (int(u), int(v))
        for u, v in zip(
            rng.integers(0, graph.n, RESISTANCE_BATCH),
            rng.integers(0, graph.n, RESISTANCE_BATCH),
        )
    ]
    service.effective_resistance(key, *pairs[0])  # warm the factorisation
    sequential, sequential_seconds = _timed(
        lambda: [service.effective_resistance(key, u, v) for u, v in pairs]
    )
    batched, batched_seconds = _timed(
        lambda: service.effective_resistances(key, pairs)
    )
    np.testing.assert_allclose(batched, sequential, rtol=1e-9, atol=1e-12)

    snapshot = service.metrics_snapshot()
    service.close()
    return {
        "case": name,
        "n": graph.n,
        "m": graph.m,
        "t_override": T_OVERRIDE,
        "cold_solve_seconds": round(cold_seconds, 4),
        "warm_solve_seconds": round(warm_seconds, 6),
        "warm_speedup": round(cold_seconds / max(warm_seconds, 1e-12), 2),
        "warm_queries_per_second": round(1.0 / max(warm_seconds, 1e-12), 1),
        "resistance_batch": RESISTANCE_BATCH,
        "sequential_resistance_seconds": round(sequential_seconds, 4),
        "batched_resistance_seconds": round(batched_seconds, 4),
        "batch_speedup": round(sequential_seconds / max(batched_seconds, 1e-12), 2),
        "cache_hit_rate": round(snapshot["cache"]["hit_rate"], 4),
        "batch_occupancy": round(snapshot["batch_occupancy"], 2),
        "cache_bytes": snapshot["cache_bytes"],
    }


def append_trajectory(cases) -> None:
    history = []
    if TRAJECTORY_PATH.exists():
        history = json.loads(TRAJECTORY_PATH.read_text())
    stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    for case in cases:
        history.append({"timestamp": stamp, **case})
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


# -- pytest entry points --------------------------------------------------------


@pytest.mark.parametrize(
    "name,factory", [(n, f) for n, f, heavy in make_workloads() if not heavy]
)
def test_serve_throughput(benchmark, name, factory):
    graph = factory()
    stats = benchmark.pedantic(lambda: run_case(name, graph), iterations=1, rounds=1)
    for key, value in stats.items():
        benchmark.extra_info[key] = value
    assert stats["warm_speedup"] >= 1.0


def test_serve_floors_at_n2000():
    """The ISSUE 3 acceptance floors, asserted on the n=2000 random workload."""
    graph = generators.random_weighted_graph(2000, average_degree=8, seed=7)
    stats = run_case("random-2000", graph)
    assert stats["warm_speedup"] >= WARM_SPEEDUP_FLOOR, (
        f"warm-cache speedup regressed below {WARM_SPEEDUP_FLOOR}x: {stats}"
    )
    assert stats["batch_speedup"] >= BATCH_SPEEDUP_FLOOR, (
        f"batched resistance speedup regressed below {BATCH_SPEEDUP_FLOOR}x: {stats}"
    )


# -- script entry point ---------------------------------------------------------


def main():
    cases = []
    for name, factory, heavy in make_workloads():
        graph = factory()
        stats = run_case(name, graph)
        cases.append(stats)
        print(
            f"{name:>22} (n={stats['n']}, m={stats['m']}): "
            f"cold {stats['cold_solve_seconds']:.3f}s, "
            f"warm {stats['warm_solve_seconds']*1000:.1f}ms "
            f"({stats['warm_speedup']:.0f}x, {stats['warm_queries_per_second']:.0f} q/s), "
            f"ER batch={RESISTANCE_BATCH} {stats['batch_speedup']:.1f}x"
        )
    append_trajectory(cases)
    by_case = {c["case"]: c for c in cases}
    floors = by_case["random-2000"]
    if floors["warm_speedup"] < WARM_SPEEDUP_FLOOR:
        raise SystemExit(
            f"FAIL: warm-cache speedup {floors['warm_speedup']}x below floor "
            f"{WARM_SPEEDUP_FLOOR}x at n=2000"
        )
    if floors["batch_speedup"] < BATCH_SPEEDUP_FLOOR:
        raise SystemExit(
            f"FAIL: batched resistance speedup {floors['batch_speedup']}x below "
            f"floor {BATCH_SPEEDUP_FLOOR}x at n=2000"
        )
    print(f"PASS (trajectory appended to {TRAJECTORY_PATH.name})")


if __name__ == "__main__":
    main()
