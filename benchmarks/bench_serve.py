"""E-serve -- throughput benchmark of the batched Laplacian query service.

Measures the three amortisations the serving layer exists for and appends the
measurements to a ``BENCH_serve.json`` trajectory at the repo root:

* **cold vs warm cache** -- a cold query pays per-query solver construction
  (sparsifier + factorisation); a warm query reuses the cached artifacts.
  The floor asserted at ``n = 2000`` is a 5x speedup.
* **batch=1 vs batch=64** -- 64 sequential effective-resistance queries vs
  one coalesced batch through the cached oracle.  The floor asserted at
  ``n = 2000`` is 3x.
* **sketched vs splu fallback** -- above the dense-oracle gate
  (``n > RESISTANCE_ORACLE_LIMIT``), ``eta``-bounded resistance batches are
  served from the JL-sketched oracle instead of per-batch triangular solves.
  The ``eta`` sweep records, per accuracy bound: sketch dimension ``k``,
  build time, batched serving time, speedup over the splu fallback, and the
  *measured* max relative error against the exact path (the accuracy
  contract, must stay <= eta).  The floor asserted on grid-100x100 is a 5x
  win for the sketched batch over the splu batch -- well under the measured
  two-orders-of-magnitude gain, like the other floors.
* **resilience overhead** -- the same grid-100x100 warm workload served
  fault-free and under a 1% *transient* injected build-failure rate
  (``FaultPlan``/``FaultRule``, retried with the default backoff policy).
  The containment machinery -- injector seams on every batch, retry
  wrapping, breaker bookkeeping -- must not tax healthy serving: the floor
  asserts the faulted warm workload stays within 2x of fault-free.
* **repair vs rebuild under mutation** -- a single ``add_edge`` on a
  registered graph invalidates the whole warm artifact stack; the repair
  path absorbs it with low-rank updates (Sherman-Morrison on the grounded
  factorisation and dense oracle, an embedding row-append on any cached
  sketches, a kappa-preserving edge-add on the solver preprocessing) while
  the rebuild path pays cold construction again.  The measurement mutates
  the warm service, times the first post-mutation queries, then clears the
  cache and times the same queries cold; repaired and rebuilt resistance
  answers must agree to 1e-8, and the floor asserted on grid-100x100
  (``n = 10^4``) is a 10x repair win -- the ISSUE 5 acceptance criterion.
* **sustained mutate/query stream** -- an interleaved stream of queries and
  add/reweight/remove mutations against the lazily-repairing warm service:
  per-tick latencies of a mutation-free phase vs a phase with a mutation
  every third tick.  Because repair is deferred to first lookup and costs a
  handful of rank-1 updates, tail latency must not cliff on a mutation: the
  ceiling asserted on grid-100x100 (the ROADMAP sketch-workload target) is
  ``p99(mutation phase) <= 5x p99(clean phase)``, with end-of-stream answers
  agreeing with a fresh-rebuild reference to 1e-8 and the cache stats proving
  the stream was served by repairs alone -- the ISSUE 10 acceptance
  criterion.

Workloads cover the scenario spread: random weighted graphs at
``n in {512, 2000}``, a Barabasi-Albert power-law graph, a Watts-Strogatz
small-world graph (exact-path cases, untouched by the sketch), plus a
``100 x 100`` grid (``n = 10^4``) and a ``200 x 200`` grid (``n = 4*10^4``,
resistance serving only -- the point of the sketched oracle) as the large-n
cases.  Runs as a plain script (what CI executes) or as an explicitly named
pytest-benchmark module (directory collection only picks up ``test_*.py``):

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py --benchmark-only
"""

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np
import pytest

from repro.graphs import generators
from repro.linalg.jl import resistance_sketch_dimension
from repro.serve import ArtifactCache, FaultPlan, FaultRule, LaplacianService
from repro.solvers import BCCLaplacianSolver

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: sparsifier iteration knob used everywhere (paper constants swallow small n)
T_OVERRIDE = 2

#: queries per warm-phase measurement
WARM_QUERIES = 8

#: resistance batch size of the coalescing measurement
RESISTANCE_BATCH = 64

#: accuracy bounds swept on the large-n workloads; the first is the headline
ETA_SWEEP = (0.5, 0.25)

#: asserted floors at n = 2000 (the ISSUE 3 acceptance criteria)
WARM_SPEEDUP_FLOOR = 5.0
BATCH_SPEEDUP_FLOOR = 3.0

#: asserted floor on grid-100x100: sketched batch vs splu-fallback batch
SKETCH_VS_SPLU_FLOOR = 5.0

#: asserted floor on grid-100x100: post-mutation repaired path vs cold rebuild
MUTATION_SPEEDUP_FLOOR = 10.0

#: asserted ceiling on grid-100x100: warm workload under a 1% transient
#: build-failure rate vs the identical fault-free workload
RESILIENCE_SLOWDOWN_CEILING = 2.0

#: injected transient build-failure probability of the resilience measurement
RESILIENCE_FAULT_RATE = 0.01

#: warm workload repetitions timed by the resilience measurement
RESILIENCE_ROUNDS = 3

#: repaired and rebuilt answers must agree to this on the exact path
MUTATION_AGREEMENT_ATOL = 1e-8

#: ticks per phase of the sustained mutate/query stream measurement
STREAM_TICKS = 60

#: one mutation lands every this-many ticks of the stream's mutation phase
STREAM_MUTATE_EVERY = 3

#: resistance pairs per stream tick
STREAM_PAIRS = 64

#: asserted ceiling: p99 tick latency under sustained mutation vs clean
STREAM_CLIFF_CEILING = 5.0

#: pairs in the post-mutation resistance probe
MUTATION_PAIRS = 32

#: cache budget for the large-n cases (an eta=0.25 sketch of the 200x200
#: grid alone weighs ~280 MiB; the default budget would thrash)
SKETCH_CACHE_BYTES = 1 << 30


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def make_workloads():
    """Named seeded workloads with their measurement mode.

    ``standard`` is the exact serving path (bit-identical to before the
    sketched oracle existed); ``sketch`` adds the eta sweep on top of the
    full case; ``sketch-only`` skips the solve phase (at n = 4*10^4 a cold
    sparsifier build would dominate the benchmark without measuring
    anything new) and benchmarks resistance serving alone.
    """
    return [
        ("random-512", lambda: generators.random_weighted_graph(512, average_degree=8, seed=7), "standard"),
        ("random-2000", lambda: generators.random_weighted_graph(2000, average_degree=8, seed=7), "standard"),
        ("barabasi-albert-2000", lambda: generators.barabasi_albert(2000, attach=4, seed=11), "standard"),
        ("watts-strogatz-2000", lambda: generators.watts_strogatz(2000, k=6, beta=0.1, seed=13), "standard"),
        ("grid-100x100", lambda: generators.grid_graph(100, 100), "sketch"),
        ("grid-200x200", lambda: generators.grid_graph(200, 200), "sketch-only"),
    ]


def _measure_solves(service, key, graph, warm_queries):
    """Cold per-query construction vs warm cached solves."""
    rng = np.random.default_rng(42)
    rhs = [rng.normal(size=graph.n) for _ in range(warm_queries)]

    # cold per-query construction: what the facade did before the serving
    # layer existed -- build solver preprocessing from scratch for one query.
    def cold_query():
        solver = BCCLaplacianSolver(graph, seed=0, t_override=T_OVERRIDE)
        return solver.solve(rhs[0], eps=1e-6)

    _, cold_seconds = _timed(cold_query)
    service.solve(key, rhs[0], eps=1e-6)  # populate the cache
    _, warm_total = _timed(lambda: [service.solve(key, b, eps=1e-6) for b in rhs])
    warm_seconds = warm_total / warm_queries
    return {
        "cold_solve_seconds": round(cold_seconds, 4),
        "warm_solve_seconds": round(warm_seconds, 6),
        "warm_speedup": round(cold_seconds / max(warm_seconds, 1e-12), 2),
        "warm_queries_per_second": round(1.0 / max(warm_seconds, 1e-12), 1),
    }


def _measure_eta_sweep(service, key, graph, pairs, exact_values, batched_exact_seconds):
    """Sketched serving at each accuracy bound, with measured error vs exact."""
    sweep = []
    positive = np.isfinite(exact_values) & (exact_values > 0)
    for eta in ETA_SWEEP:
        _, prime_seconds = _timed(
            lambda: service.effective_resistances(key, pairs, eta=eta)
        )  # first bulk call pays the sketch build (k blocked grounded solves)
        sequential, sequential_seconds = _timed(
            lambda: [service.effective_resistance(key, u, v, eta=eta) for u, v in pairs]
        )
        batched, batched_seconds = _timed(
            lambda: service.effective_resistances(key, pairs, eta=eta)
        )
        np.testing.assert_allclose(batched, sequential, rtol=1e-6, atol=1e-12)
        relative = np.abs(batched[positive] - exact_values[positive]) / exact_values[positive]
        sweep.append({
            "eta": eta,
            "k": resistance_sketch_dimension(graph.m, eta),
            "prime_seconds": round(prime_seconds, 4),
            "sequential_seconds": round(sequential_seconds, 4),
            "batched_seconds": round(batched_seconds, 6),
            "batch_speedup": round(sequential_seconds / max(batched_seconds, 1e-12), 2),
            "sketch_vs_splu_speedup": round(
                batched_exact_seconds / max(batched_seconds, 1e-12), 2
            ),
            "max_rel_error": round(float(relative.max()), 4),
        })
    return sweep


def _fresh_edge(graph):
    """A vertex pair with no edge yet (the mutation the benchmark injects)."""
    for v in range(graph.n - 1, 0, -1):
        if not graph.has_edge(0, v):
            return 0, v
    raise RuntimeError("graph is complete; no fresh edge to insert")


def _measure_mutation(service, key, graph, mode):
    """Single-edge ``add_edge`` on the warm service: repair vs cold rebuild.

    Runs last in a case, against the fully warmed artifact stack (solver
    preprocessing, grounded factorisation, dense or sketched oracles).  The
    repaired timing covers the first post-mutation queries -- which pull the
    whole repair path -- and the rebuild timing covers the same queries after
    ``cache.clear()``, i.e. what every mutation used to cost.
    """
    rng = np.random.default_rng(44)
    pairs = [
        (int(u), int(v))
        for u, v in zip(
            rng.integers(0, graph.n, MUTATION_PAIRS),
            rng.integers(0, graph.n, MUTATION_PAIRS),
        )
    ]
    b = rng.normal(size=graph.n)
    u, v = _fresh_edge(graph)

    def post_mutation_queries():
        values = {"resistances": service.effective_resistances(key, pairs)}
        if mode != "standard":
            # the sketched regime is this workload's point: the repaired path
            # appends a row to the cached sketch, the rebuild path pays the
            # k blocked solves of a fresh one
            values["sketched"] = service.effective_resistances(
                key, pairs, eta=ETA_SWEEP[0]
            )
        if mode != "sketch-only":
            values["solution"] = service.solve(key, b, eps=1e-6).solution
        return values

    repairs_before = service.cache.stats.repairs
    graph.add_edge(u, v, 1.0)
    repaired, repaired_seconds = _timed(post_mutation_queries)
    artifacts_repaired = service.cache.stats.repairs - repairs_before

    service.cache.clear()  # the pre-repair world: every mutation rebuilds
    rebuilt, rebuild_seconds = _timed(post_mutation_queries)

    agreement = float(
        np.abs(np.asarray(repaired["resistances"]) - np.asarray(rebuilt["resistances"])).max()
    )
    np.testing.assert_allclose(
        repaired["resistances"],
        rebuilt["resistances"],
        rtol=0,
        atol=MUTATION_AGREEMENT_ATOL,
    )
    stats = {
        "mutation_repaired_seconds": round(repaired_seconds, 4),
        "mutation_rebuild_seconds": round(rebuild_seconds, 4),
        "mutation_speedup": round(rebuild_seconds / max(repaired_seconds, 1e-12), 2),
        "mutation_artifacts_repaired": artifacts_repaired,
        "mutation_resistance_agreement": agreement,
    }
    if mode != "sketch-only":
        x_rep, x_reb = repaired["solution"], rebuilt["solution"]
        stats["mutation_solve_rel_diff"] = round(
            float(np.linalg.norm(x_rep - x_reb) / max(np.linalg.norm(x_reb), 1e-300)), 10
        )
    return stats


def _measure_mutation_stream(service, key, graph, mode):
    """Sustained interleaved mutate/query stream: tail latency must not cliff.

    Two equal phases of identical resistance-serving ticks (an exact batch,
    plus a sketched batch in sketch modes): a mutation-free baseline, then a
    phase where every :data:`STREAM_MUTATE_EVERY`-th tick is preceded by a
    mutation (rotating add / reweight / removal; removals take back edges the
    stream itself added, so they never split a component).  Ticks do not
    solve: the solver preprocessing's kappa-preserving repair is
    insertion-only by design (a weight decrease can break the sparsifier's
    spectral sandwich), so a solve-after-removal pays a documented rebuild --
    and under lazy repair a stream that never solves never pays it, which is
    exactly the property this measurement pins down on the resistance plane
    where removals ARE repairable end to end.
    With lazy repair each mutation's cost is a few rank-1 updates paid by the
    next lookup, so the mutation phase's p99 tick latency stays within
    :data:`STREAM_CLIFF_CEILING` of the clean phase's -- the rebuild world
    would pay cold construction (100-1000x a tick) on every mutation.  Ends
    with a fresh-rebuild reference agreement check at 1e-8 on the exact path.
    """
    rng = np.random.default_rng(46)
    added = []

    def pick_pairs():
        return [
            (int(u), int(v))
            for u, v in zip(
                rng.integers(0, graph.n, STREAM_PAIRS),
                rng.integers(0, graph.n, STREAM_PAIRS),
            )
        ]

    def tick():
        pairs = pick_pairs()
        service.effective_resistances(key, pairs)
        if mode != "standard":
            service.effective_resistances(key, pairs, eta=ETA_SWEEP[0])

    def mutate(step):
        op = ("add", "update", "remove")[step % 3]
        if op == "remove" and added:
            u, v = added.pop()
            graph.remove_edge(u, v)
        elif op == "update":
            edges = graph.edge_list()
            u, v, w = edges[int(rng.integers(0, len(edges)))]
            graph.add_edge(u, v, w + float(rng.uniform(0.1, 1.0)))
        else:
            while True:
                u, v = (int(x) for x in rng.integers(0, graph.n, 2))
                if u != v and not graph.has_edge(u, v):
                    break
            graph.add_edge(u, v, float(rng.uniform(0.5, 2.0)))
            added.append((u, v))

    def phase(mutating):
        latencies = []
        mutations = 0
        for step in range(STREAM_TICKS):
            if mutating and step % STREAM_MUTATE_EVERY == 0:
                mutate(mutations)
                mutations += 1
            _, seconds = _timed(tick)
            latencies.append(seconds)
        return np.asarray(latencies), mutations

    tick()  # warm every artifact the ticks touch before timing anything
    clean, _ = phase(mutating=False)
    repairs_before = service.cache.stats.repairs
    misses_before = service.cache.stats.misses
    stream, mutations = phase(mutating=True)
    repairs = service.cache.stats.repairs - repairs_before
    rebuilds = service.cache.stats.misses - misses_before

    # end-of-stream differential check: the lazily repaired service must
    # agree with a from-scratch reference on the final graph, inf included
    probe = pick_pairs()
    got = np.asarray(service.effective_resistances(key, probe))
    reference = LaplacianService(t_override=T_OVERRIDE, auto_flush=False, repair=False)
    ref_key = reference.register(graph)
    want = np.asarray(reference.effective_resistances(ref_key, probe))
    reference.close()
    agreement = float(np.abs(got - want).max())
    np.testing.assert_allclose(got, want, rtol=0, atol=MUTATION_AGREEMENT_ATOL)

    clean_p99 = float(np.percentile(clean, 99))
    stream_p99 = float(np.percentile(stream, 99))
    return {
        "stream_ticks": int(STREAM_TICKS),
        "stream_mutations": mutations,
        "stream_clean_p99_ms": round(clean_p99 * 1000, 3),
        "stream_mutation_p99_ms": round(stream_p99 * 1000, 3),
        "stream_cliff_ratio": round(stream_p99 / max(clean_p99, 1e-12), 2),
        "stream_repairs": repairs,
        "stream_rebuilds": rebuilds,
        "stream_agreement": agreement,
    }


def _measure_resilience(graph_factory):
    """Warm-workload cost of serving under a 1% transient build-failure rate.

    Two services, identical seeded workloads: one fault-free, one armed with
    a probabilistic transient ``build`` rule.  Both prime cold (where the
    injected failures actually fire and the retry policy absorbs them), then
    the *warm* workload is timed -- the steady state a production service
    lives in, where the containment machinery's only legitimate cost is the
    per-batch seam checks and retry wrapping.
    """
    plan = FaultPlan(
        (FaultRule(op="build", probability=RESILIENCE_FAULT_RATE, transient=True),),
        seed=3,
    )
    timings = {}
    ledger = {}
    for label, faults in (("fault_free", None), ("faulted", plan)):
        service = LaplacianService(
            t_override=T_OVERRIDE,
            auto_flush=False,
            cache=ArtifactCache(max_bytes=SKETCH_CACHE_BYTES),
            faults=faults,
        )
        graph = graph_factory()
        key = service.register(graph)
        rng = np.random.default_rng(45)
        rhs = [rng.normal(size=graph.n) for _ in range(WARM_QUERIES)]
        pairs = [
            (int(u), int(v))
            for u, v in zip(
                rng.integers(0, graph.n, RESISTANCE_BATCH),
                rng.integers(0, graph.n, RESISTANCE_BATCH),
            )
        ]

        def workload():
            for b in rhs:
                service.solve(key, b, eps=1e-6)
            service.effective_resistances(key, pairs)

        workload()  # prime cold: builds run (and injected flakes retry) here
        _, seconds = _timed(lambda: [workload() for _ in range(RESILIENCE_ROUNDS)])
        timings[label] = seconds
        if label == "faulted":
            snapshot = service.metrics_snapshot()
            ledger = {
                "resilience_retries": snapshot["retries_total"],
                "resilience_failures": snapshot["failures_total"],
            }
        service.close()
    return {
        "resilience_fault_rate": RESILIENCE_FAULT_RATE,
        "resilience_fault_free_seconds": round(timings["fault_free"], 4),
        "resilience_faulted_seconds": round(timings["faulted"], 4),
        "resilience_slowdown": round(
            timings["faulted"] / max(timings["fault_free"], 1e-12), 2
        ),
        **ledger,
    }


def run_case(
    name: str,
    graph,
    warm_queries: int = WARM_QUERIES,
    mode: str = "standard",
    stream: bool = False,
) -> dict:
    """Serve one workload; return cold/warm/batched throughput measurements."""
    cache = ArtifactCache(max_bytes=SKETCH_CACHE_BYTES) if mode != "standard" else None
    service = LaplacianService(t_override=T_OVERRIDE, auto_flush=False, cache=cache)
    key = service.register(graph, name=name)

    stats = {"case": name, "n": graph.n, "m": graph.m, "t_override": T_OVERRIDE, "mode": mode}
    if mode != "sketch-only":
        stats.update(_measure_solves(service, key, graph, warm_queries))

    rng = np.random.default_rng(42)
    rng.normal(size=graph.n * warm_queries)  # keep the pair stream stable across modes
    pairs = [
        (int(u), int(v))
        for u, v in zip(
            rng.integers(0, graph.n, RESISTANCE_BATCH),
            rng.integers(0, graph.n, RESISTANCE_BATCH),
        )
    ]
    service.effective_resistance(key, *pairs[0])  # warm the factorisation
    sequential, sequential_seconds = _timed(
        lambda: [service.effective_resistance(key, u, v) for u, v in pairs]
    )
    batched, batched_seconds = _timed(
        lambda: service.effective_resistances(key, pairs)
    )
    np.testing.assert_allclose(batched, sequential, rtol=1e-9, atol=1e-12)
    stats.update({
        "resistance_batch": RESISTANCE_BATCH,
        "sequential_resistance_seconds": round(sequential_seconds, 4),
        "batched_resistance_seconds": round(batched_seconds, 4),
        "batch_speedup": round(sequential_seconds / max(batched_seconds, 1e-12), 2),
    })

    if mode != "standard":
        sweep = _measure_eta_sweep(
            service, key, graph, pairs, np.asarray(batched), batched_seconds
        )
        headline = sweep[0]
        stats.update({
            # headline numbers come from the sketched path at the first eta;
            # the exact splu-fallback numbers stay recorded alongside
            "batch_speedup": headline["batch_speedup"],
            "batch_speedup_exact": round(
                sequential_seconds / max(batched_seconds, 1e-12), 2
            ),
            "eta": headline["eta"],
            "max_rel_error": headline["max_rel_error"],
            "sketch_vs_splu_speedup": headline["sketch_vs_splu_speedup"],
            "eta_sweep": sweep,
        })

    snapshot = service.metrics_snapshot()
    stats.update({
        "cache_hit_rate": round(snapshot["cache"]["hit_rate"], 4),
        "batch_occupancy": round(snapshot["batch_occupancy"], 2),
        "cache_bytes": snapshot["cache_bytes"],
    })
    # mutate last: the repair measurement wants the warm stack (and clears
    # the cache for its rebuild baseline, which would skew the stats above)
    stats.update(_measure_mutation(service, key, graph, mode))
    # the stream runs after: its rebuild baseline left the stack freshly
    # rebuilt, so the stream's 20 mutations get a sketch with full
    # eta_effective headroom (running it first would hand _measure_mutation
    # a sketch already at the accuracy boundary, turning its repair into a
    # legitimate-but-floor-breaking rebuild)
    if stream:
        stats.update(_measure_mutation_stream(service, key, graph, mode))
    service.close()
    return stats


def append_trajectory(cases) -> None:
    history = []
    if TRAJECTORY_PATH.exists():
        history = json.loads(TRAJECTORY_PATH.read_text())
    stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    for case in cases:
        history.append({"timestamp": stamp, **case})
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


# -- pytest entry points --------------------------------------------------------


@pytest.mark.parametrize(
    "name,factory", [(n, f) for n, f, mode in make_workloads() if mode == "standard"]
)
def test_serve_throughput(benchmark, name, factory):
    graph = factory()
    stats = benchmark.pedantic(lambda: run_case(name, graph), iterations=1, rounds=1)
    for key, value in stats.items():
        benchmark.extra_info[key] = value
    assert stats["warm_speedup"] >= 1.0


def test_serve_floors_at_n2000():
    """The ISSUE 3 acceptance floors, asserted on the n=2000 random workload."""
    graph = generators.random_weighted_graph(2000, average_degree=8, seed=7)
    stats = run_case("random-2000", graph)
    assert stats["warm_speedup"] >= WARM_SPEEDUP_FLOOR, (
        f"warm-cache speedup regressed below {WARM_SPEEDUP_FLOOR}x: {stats}"
    )
    assert stats["batch_speedup"] >= BATCH_SPEEDUP_FLOOR, (
        f"batched resistance speedup regressed below {BATCH_SPEEDUP_FLOOR}x: {stats}"
    )


# -- script entry point ---------------------------------------------------------


def _print_case(stats):
    parts = [f"{stats['case']:>22} (n={stats['n']}, m={stats['m']}):"]
    if "warm_speedup" in stats:
        parts.append(
            f"cold {stats['cold_solve_seconds']:.3f}s, "
            f"warm {stats['warm_solve_seconds']*1000:.1f}ms "
            f"({stats['warm_speedup']:.0f}x, {stats['warm_queries_per_second']:.0f} q/s),"
        )
    parts.append(f"ER batch={RESISTANCE_BATCH} {stats['batch_speedup']:.1f}x")
    if "eta_sweep" in stats:
        parts.append(
            f"[sketched eta={stats['eta']}: {stats['sketch_vs_splu_speedup']:.0f}x vs splu, "
            f"max_rel_err {stats['max_rel_error']:.3f}; exact path {stats['batch_speedup_exact']:.1f}x]"
        )
    if "mutation_speedup" in stats:
        parts.append(
            f"[mutate+query: repaired {stats['mutation_repaired_seconds']:.3f}s vs "
            f"rebuild {stats['mutation_rebuild_seconds']:.3f}s, "
            f"{stats['mutation_speedup']:.0f}x]"
        )
    if "stream_cliff_ratio" in stats:
        parts.append(
            f"[stream: {stats['stream_mutations']} mutations over "
            f"{stats['stream_ticks']} ticks, p99 {stats['stream_mutation_p99_ms']:.1f}ms "
            f"vs clean {stats['stream_clean_p99_ms']:.1f}ms "
            f"({stats['stream_cliff_ratio']:.2f}x), {stats['stream_repairs']} repairs]"
        )
    if "resilience_slowdown" in stats:
        parts.append(
            f"[{stats['resilience_fault_rate']:.0%} fault rate: "
            f"{stats['resilience_slowdown']:.2f}x of fault-free, "
            f"{stats['resilience_retries']} retries]"
        )
    print(" ".join(parts))


def main():
    cases = []
    for name, factory, mode in make_workloads():
        graph = factory()
        stats = run_case(name, graph, mode=mode, stream=name == "grid-100x100")
        if name == "grid-100x100":
            stats.update(_measure_resilience(factory))
        cases.append(stats)
        _print_case(stats)
    append_trajectory(cases)
    by_case = {c["case"]: c for c in cases}
    floors = by_case["random-2000"]
    if floors["warm_speedup"] < WARM_SPEEDUP_FLOOR:
        raise SystemExit(
            f"FAIL: warm-cache speedup {floors['warm_speedup']}x below floor "
            f"{WARM_SPEEDUP_FLOOR}x at n=2000"
        )
    if floors["batch_speedup"] < BATCH_SPEEDUP_FLOOR:
        raise SystemExit(
            f"FAIL: batched resistance speedup {floors['batch_speedup']}x below "
            f"floor {BATCH_SPEEDUP_FLOOR}x at n=2000"
        )
    grid = by_case["grid-100x100"]
    if grid["sketch_vs_splu_speedup"] < SKETCH_VS_SPLU_FLOOR:
        raise SystemExit(
            f"FAIL: sketched resistance batch {grid['sketch_vs_splu_speedup']}x over "
            f"the splu fallback, below floor {SKETCH_VS_SPLU_FLOOR}x on grid-100x100"
        )
    if grid["mutation_speedup"] < MUTATION_SPEEDUP_FLOOR:
        raise SystemExit(
            f"FAIL: post-mutation repaired path {grid['mutation_speedup']}x over the "
            f"cold rebuild, below floor {MUTATION_SPEEDUP_FLOOR}x on grid-100x100"
        )
    if grid["resilience_slowdown"] > RESILIENCE_SLOWDOWN_CEILING:
        raise SystemExit(
            f"FAIL: warm workload under {RESILIENCE_FAULT_RATE:.0%} injected "
            f"build-failure rate is {grid['resilience_slowdown']}x fault-free, "
            f"above the {RESILIENCE_SLOWDOWN_CEILING}x ceiling on grid-100x100"
        )
    if grid["stream_cliff_ratio"] > STREAM_CLIFF_CEILING:
        raise SystemExit(
            f"FAIL: grid-100x100 p99 tick latency under sustained mutation is "
            f"{grid['stream_cliff_ratio']}x the mutation-free p99, above the "
            f"{STREAM_CLIFF_CEILING}x no-cliff ceiling"
        )
    if grid["stream_repairs"] == 0 or grid["stream_rebuilds"] != 0:
        raise SystemExit(
            f"FAIL: grid-100x100 mutation stream was not served by repairs alone "
            f"({grid['stream_repairs']} repairs, {grid['stream_rebuilds']} rebuilds)"
        )
    if grid["resilience_failures"] != 0:
        raise SystemExit(
            f"FAIL: {grid['resilience_failures']} queries failed under the "
            f"transient fault plan; retries should have absorbed every flake"
        )
    for case in cases:
        for entry in case.get("eta_sweep", ()):
            if entry["max_rel_error"] > entry["eta"]:
                raise SystemExit(
                    f"FAIL: {case['case']} eta={entry['eta']} measured max relative "
                    f"error {entry['max_rel_error']} breaks the accuracy contract"
                )
    print(f"PASS (trajectory appended to {TRAJECTORY_PATH.name})")


if __name__ == "__main__":
    main()
