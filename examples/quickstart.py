"""Quickstart: the whole Laplacian-paradigm toolchain on one small input.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import core
from repro.graphs import generators, is_spectral_sparsifier


def main() -> None:
    # 1. A weighted graph and a (2k-1)-spanner of it (Section 3.1).
    graph = generators.random_weighted_graph(40, average_degree=8, max_weight=16, seed=7)
    spanner = core.spanner(graph, k=3, seed=1)
    print(f"graph: n={graph.n}, m={graph.m}")
    print(
        f"spanner (k=3): {len(spanner.f_plus)} edges, "
        f"{spanner.rounds} Broadcast-CONGEST rounds"
    )

    # 2. A spectral sparsifier (Theorem 1.2).
    sparsifier = core.spectral_sparsifier(graph, eps=0.5, seed=2)
    print(
        f"sparsifier: {sparsifier.size} edges, valid (1 +/- 0.5)-approximation: "
        f"{is_spectral_sparsifier(graph, sparsifier.sparsifier, eps=0.5)}"
    )

    # 3. Solve a Laplacian system L_G x = b (Theorem 1.3).
    rng = np.random.default_rng(3)
    b = rng.normal(size=graph.n)
    report = core.solve_laplacian(graph, b, eps=1e-8, seed=4, t_override=2)
    print(
        f"Laplacian solve: {report.chebyshev.iterations} Chebyshev iterations, "
        f"{report.rounds:.0f} BCC rounds"
    )

    # 4. Exact minimum cost maximum flow (Theorem 1.1).
    network = generators.random_flow_network(16, seed=5, max_capacity=10, max_cost=8)
    flow = core.min_cost_max_flow(network, seed=6, verify_against_baseline=True)
    print(
        f"min-cost max-flow: value={flow.value:.0f}, cost={flow.cost:.0f}, "
        f"{flow.lp_iterations} interior-point iterations, {flow.rounds:.0f} BCC rounds"
    )


if __name__ == "__main__":
    main()
