"""Probabilistic spanners and the sampling trick of Section 3.1.

Shows why the Broadcast CONGEST model needs the paper's ad-hoc sampling: the
spanner decides edge existence lazily inside the Connect procedure and the
other endpoint learns the outcome implicitly from the broadcast.  The demo
computes spanners of increasing stretch and a spanner over a probabilistic
graph, then verifies the stretch guarantee of Lemma 3.1 empirically.

Run with:  python examples/distributed_spanner_demo.py
"""

import numpy as np

from repro.graphs import generators
from repro.spanners import probabilistic_spanner


def empirical_stretch(reference, spanner_graph):
    d_ref = reference.all_pairs_shortest_paths()
    d_spa = spanner_graph.all_pairs_shortest_paths()
    mask = np.isfinite(d_ref) & (d_ref > 0)
    return float(np.max(d_spa[mask] / d_ref[mask]))


def main() -> None:
    graph = generators.random_weighted_graph(60, average_degree=10, max_weight=32, seed=13)
    print(f"input graph: n={graph.n}, m={graph.m}")

    print("deterministic spanners (p = 1):")
    for k in (2, 3, 4):
        result = probabilistic_spanner(graph, k=k, seed=k)
        stretch = empirical_stretch(graph, result.spanner_graph(graph))
        print(
            f"  k={k}: {len(result.f_plus):>4} edges, stretch {stretch:.2f} "
            f"(bound {2 * k - 1}), {result.rounds} BC rounds, "
            f"max out-degree {result.max_out_degree()}"
        )

    print("probabilistic spanner (p = 1/2, the sparsifier's sampling step):")
    probabilities = {edge.key: 0.5 for edge in graph.edges()}
    result = probabilistic_spanner(graph, probabilities=probabilities, k=3, seed=17)
    undecided = [e.key for e in graph.edges() if e.key not in result.f]
    print(
        f"  |F+| = {len(result.f_plus)}, |F-| = {len(result.f_minus)}, "
        f"undecided = {len(undecided)}"
    )
    reference = graph.subgraph_with_edges(list(result.f_plus) + undecided)
    stretch = empirical_stretch(reference, result.spanner_graph(graph))
    print(f"  stretch w.r.t. F+ plus undecided edges: {stretch:.2f} (bound 5)")


if __name__ == "__main__":
    main()
