"""Serving-layer quickstart: register once, query many times.

Demonstrates the amortisation the paper promises (one expensive preprocessing
artifact, many cheap queries) through the `repro.serve` subsystem: graph
registration, warm-cache solves, coalesced effective-resistance batches,
sparsifier certification, incremental artifact repair under edge mutation,
and the service metrics.

Run with:  PYTHONPATH=src python examples/serve_quickstart.py
"""

import time

import numpy as np

from repro.graphs import generators
from repro.serve import LaplacianService


def main() -> None:
    graph = generators.barabasi_albert(1000, attach=4, seed=7)
    service = LaplacianService(t_override=2, auto_flush=False)
    key = service.register(graph, name="social-graph")
    print(f"registered {key!r}: n={graph.n}, m={graph.m}")

    rng = np.random.default_rng(0)
    b = rng.normal(size=graph.n)

    # 1. Cold query: builds sparsifier + factorisation, caches both.
    start = time.perf_counter()
    report = service.solve(key, b, eps=1e-8)
    cold = time.perf_counter() - start
    print(f"cold solve:  {cold * 1000:7.1f} ms ({report.chebyshev.iterations} Chebyshev iters)")

    # 2. Warm queries reuse the cached artifacts.
    start = time.perf_counter()
    for _ in range(10):
        service.solve(key, rng.normal(size=graph.n), eps=1e-8)
    warm = (time.perf_counter() - start) / 10
    print(f"warm solve:  {warm * 1000:7.1f} ms per query ({cold / warm:.0f}x faster)")

    # 3. Batched effective resistances: one queue entry, one kernel call.
    pairs = [(0, int(v)) for v in rng.integers(1, graph.n, 64)]
    resistances = service.effective_resistances(key, pairs)
    print(f"batch of {len(pairs)} resistances: min={resistances.min():.4f} max={resistances.max():.4f}")

    # 4. Certify the cached sparsifier against the graph (Definition 2.1).
    certificate = service.certify(key, eps=0.5)
    print(
        f"certify eps=0.5: ok={certificate.ok} "
        f"window=[{certificate.lo:.3f}, {certificate.hi:.3f}] "
        f"({certificate.sparsifier_edges}/{certificate.graph_edges} edges)"
    )

    # 5. Mutating a registered graph makes its cached artifacts stale: the
    #    next query detects the version drift and, because a single add_edge
    #    is a short journal delta, *repairs* the warm stack with rank-1
    #    updates (seconds of rebuild -> milliseconds) instead of rebuilding.
    graph.add_edge(0, graph.n - 1, 10.0)
    start = time.perf_counter()
    service.solve(key, b, eps=1e-8)
    repaired = time.perf_counter() - start
    snapshot = service.metrics_snapshot()
    print(
        f"solve after mutation: {repaired * 1000:7.1f} ms "
        f"(repairs={snapshot['cache']['repairs']}, "
        f"invalidations={snapshot['cache']['invalidations']})"
    )
    print(
        f"cache: hit rate={snapshot['cache']['hit_rate']:.2f}, "
        f"{snapshot['cache_bytes'] / 1e6:.1f} MB in {snapshot['cache_entries']} artifacts"
    )
    latency = snapshot["latency_seconds"]
    print(
        f"served {snapshot['queries_total']} queries, "
        f"p50={latency['p50'] * 1000:.2f} ms p99={latency['p99'] * 1000:.1f} ms"
    )
    service.close()


if __name__ == "__main__":
    main()
