"""Spectral sparsification and Laplacian solving on a dense graph.

Demonstrates Theorem 1.2 + Theorem 1.3: sparsify a dense graph in the
Broadcast CONGEST model, then reuse the sparsifier to solve several Laplacian
systems (an electrical-potential computation) cheaply.

Run with:  python examples/sparsify_and_solve.py
"""

import numpy as np

from repro.graphs import generators, spectral_approximation_factor
from repro.solvers import BCCLaplacianSolver
from repro.sparsify import spectral_sparsify


def main() -> None:
    graph = generators.erdos_renyi(80, 0.5, max_weight=8, seed=21)
    print(f"dense graph: n={graph.n}, m={graph.m}")

    # Sweep the bundle size to show the size/quality trade-off (the paper's
    # t = 400 log^2 n / eps^2 keeps every edge at this scale).
    for t in (1, 4, 16, None):
        label = "paper t" if t is None else f"t={t}"
        result = spectral_sparsify(graph, eps=0.5, seed=5, t_override=t)
        lo, hi = spectral_approximation_factor(graph, result.sparsifier)
        print(
            f"  {label:>8}: {result.size:>5} edges, spectral window [{lo:.3f}, {hi:.3f}], "
            f"{result.rounds} BC rounds"
        )

    # Electrical potentials: inject one unit of current at vertex 0, extract at
    # the last vertex, and solve L x = b for the potentials.
    solver = BCCLaplacianSolver(graph, seed=6, t_override=2)
    b = np.zeros(graph.n)
    b[0], b[-1] = 1.0, -1.0
    report = solver.solve(b, eps=1e-10, check=True)
    potentials = report.solution
    print(
        f"electrical potentials: effective resistance 0<->{graph.n - 1} = "
        f"{potentials[0] - potentials[-1]:.4f}, relative error {report.measured_relative_error:.2e}, "
        f"{report.rounds:.0f} BCC rounds per solve"
    )

    # Reusing the preprocessing: three more right-hand sides.
    rng = np.random.default_rng(7)
    extra = solver.solve_many([rng.normal(size=graph.n) for _ in range(3)], eps=1e-8)
    print(f"three more solves reuse the sparsifier: {[f'{r.rounds:.0f}' for r in extra]} rounds each")


if __name__ == "__main__":
    main()
