"""Routing traffic through a layered data-centre-style network.

The motivating workload of the paper's introduction: a network with bounded
link capacities and per-link costs, where we want to push as much traffic as
possible from an ingress to an egress at minimum total cost.  The example
compares the Broadcast-Congested-Clique LP pipeline (Theorem 1.1) against the
exact combinatorial baseline and prints the per-stage round accounting.

Run with:  python examples/network_flow_routing.py
"""

from repro.flow import min_cost_max_flow, networkx_min_cost_max_flow, successive_shortest_paths
from repro.flow.mincostflow import theorem_round_bound
from repro.graphs import generators


def main() -> None:
    network = generators.layered_flow_network(layers=4, width=4, max_capacity=12, max_cost=6, seed=11)
    print(f"layered network: n={network.n}, m={network.m} links")

    result = min_cost_max_flow(network, seed=3, verify_against_baseline=True)
    print(f"LP pipeline:   value={result.value:.0f}, cost={result.cost:.0f}")
    print(f"  interior-point iterations: {result.lp_iterations}")
    print(f"  BCC rounds charged:        {result.rounds:.0f}")
    print(f"  Theorem 1.1 round bound:   {theorem_round_bound(network.n, network.max_capacity()):.0f}")
    print(f"  rounding fallback used:    {result.rounding_fallback}")

    ssp_value, ssp_cost, _ = successive_shortest_paths(network)
    nx_value, nx_cost, _ = networkx_min_cost_max_flow(network)
    print(f"SSP baseline:  value={ssp_value:.0f}, cost={ssp_cost:.0f}")
    print(f"networkx:      value={nx_value:.0f}, cost={nx_cost:.0f}")

    busiest = sorted(result.flow.items(), key=lambda kv: -kv[1])[:5]
    print("busiest links:")
    for (u, v), f in busiest:
        edge = network.edge(u, v)
        print(f"  {u:>3} -> {v:<3} flow {f:>4.0f} / capacity {edge.capacity:>4.0f} (cost {edge.cost:.0f})")


if __name__ == "__main__":
    main()
