"""Documentation gate run by the CI ``docs`` job.

Two checks, both fast and dependency-free beyond the package's own imports:

1. **Markdown link check** -- every relative link target in the repo's
   markdown files (root-level ``*.md`` and ``docs/*.md``) must resolve to an
   existing file or directory.  External schemes (``http(s)``, ``mailto``)
   and pure in-page anchors are skipped; a ``path#anchor`` link is checked
   for the path part only.
2. **Docstring gate** -- every public symbol of ``repro.serve`` and
   ``repro.linalg`` (module, function, class, and the methods/properties a
   class itself defines) must carry a non-empty docstring.  Public means
   "not underscore-prefixed"; inherited members are the parent's problem.

Exit code 0 when clean; prints every violation and exits 1 otherwise.

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: packages whose public API the docstring gate walks
GATED_PACKAGES = ("repro.serve", "repro.linalg")

#: markdown link syntax [text](target); images ![alt](target) match too
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: link targets that are not filesystem paths
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


#: generated retrieval artifacts whose content this repo does not maintain
SKIP_MARKDOWN = {"PAPERS.md", "SNIPPETS.md", "ISSUE.md"}


def markdown_files():
    for path in sorted(REPO_ROOT.glob("*.md")):
        if path.name not in SKIP_MARKDOWN:
            yield path
    yield from sorted((REPO_ROOT / "docs").glob("*.md"))


def check_markdown_links() -> list:
    problems = []
    for md_file in markdown_files():
        for line_number, line in enumerate(
            md_file.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for match in LINK_PATTERN.finditer(line):
                target = match.group(1)
                if target.startswith(EXTERNAL_SCHEMES) or target.startswith("#"):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                resolved = (md_file.parent / path_part).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{md_file.relative_to(REPO_ROOT)}:{line_number}: "
                        f"broken link -> {target}"
                    )
    return problems


def iter_package_modules(package_name: str):
    package = importlib.import_module(package_name)
    yield package_name, package
    for info in pkgutil.iter_modules(package.__path__, prefix=package_name + "."):
        yield info.name, importlib.import_module(info.name)


def has_docstring(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


def public_module_symbols(module_name: str, module):
    """Public objects the module itself defines (imports are not its API)."""
    names = getattr(module, "__all__", None)
    if names is None:
        names = [name for name in vars(module) if not name.startswith("_")]
    for name in names:
        obj = vars(module).get(name)
        if obj is None or not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue
        yield name, obj


def check_class_members(module_name: str, cls, problems: list) -> None:
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue  # dunders/privates; __init__ is covered by the class doc
        target = None
        if inspect.isfunction(member):
            target = member
        elif isinstance(member, property):
            target = member.fget
        elif isinstance(member, (classmethod, staticmethod)):
            target = member.__func__
        if target is None:
            continue
        if not has_docstring(target):
            problems.append(
                f"{module_name}.{cls.__name__}.{name}: missing docstring"
            )


def check_docstrings() -> list:
    problems = []
    for package_name in GATED_PACKAGES:
        for module_name, module in iter_package_modules(package_name):
            if not has_docstring(module):
                problems.append(f"{module_name}: missing module docstring")
            for name, obj in public_module_symbols(module_name, module):
                if not has_docstring(obj):
                    problems.append(f"{module_name}.{name}: missing docstring")
                if inspect.isclass(obj):
                    check_class_members(module_name, obj, problems)
    return problems


def main() -> int:
    problems = check_markdown_links() + check_docstrings()
    for problem in problems:
        print(problem)
    if problems:
        print(f"\nFAIL: {len(problems)} documentation problem(s)")
        return 1
    print("PASS: markdown links resolve, public API fully docstringed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
