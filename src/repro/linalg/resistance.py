"""Sketched effective-resistance oracle (Spielman-Srivastava via Theorem 4.4).

The exact :class:`~repro.linalg.sparse_backend.ResistanceOracle` answers pair
queries in O(1) but stores the full ``n x n`` grounded inverse, which gates it
at ``RESISTANCE_ORACLE_LIMIT`` vertices; above the gate the serving layer fell
back to per-batch ``splu`` triangular solves that barely amortise.  This
module is the middle regime the paper's own leverage-score machinery implies:
effective resistance is a squared Euclidean distance,

    ``R(u, v) = || W^{1/2} B L^+ (e_u - e_v) ||^2``,

so a Johnson-Lindenstrauss sketch ``Q`` with ``k = O(eta^{-2} log m)`` rows
(Theorem 4.4, the Kane-Nelson transform of :mod:`repro.linalg.jl`) compresses
the ``m``-dimensional embedding to ``k`` dimensions while preserving every
pair distance to relative error ``eta`` with high probability:

    ``R(u, v) ~= || E[u] - E[v] ||^2``,   ``E = (Q W^{1/2} B) L^+``.

Building ``E`` costs ``k`` *blocked* grounded solves against the sketched
incidence (one ``splu`` factorisation shared with the rest of the serving
layer, right-hand sides in batches), after which the oracle stores ``n x k``
floats -- ``O(n log m / eta^2)`` memory instead of ``O(n^2)`` -- and answers a
batch of pair queries with one vectorised einsum.

The same sketch is exactly what ``ComputeLeverageScores`` (Algorithm 6) wants
for edge leverage scores ``sigma_e = w_e R(u_e, v_e)``:
:meth:`SketchedResistanceOracle.edge_leverage_scores` reads them off the
cached embedding, so sparsifier construction and resistance serving share one
artifact (see :func:`repro.linalg.leverage.approximate_edge_leverage_scores`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np
import scipy.sparse as sp

import math

from repro.linalg.jl import (
    kane_nelson_built_columns,
    kane_nelson_column,
    kane_nelson_random_bits,
    kane_nelson_sketch,
    resistance_sketch_dimension,
    resistance_sketch_eta,
)
from repro.linalg.sparse_backend import (
    DEFAULT_BATCH_SIZE,
    GroundedLaplacianSolver,
    apply_pair_semantics,
    check_finite,
    incidence_csr,
    validate_pair_indices,
)

if TYPE_CHECKING:  # annotation-only: avoid importing the graph module at runtime
    from repro.graphs.graph import WeightedGraph

#: Default storage dtype of the ``n x k`` embedding.  The JL distortion
#: (``eta >= 0.01``) dwarfs single-precision rounding, and float32 halves the
#: cache weight of large-n embeddings (grid 200x200 at eta=0.5: 69 MiB).
SKETCH_DTYPE = np.float32


class SketchedResistanceOracle:
    """JL-compressed effective-resistance oracle with accuracy bound ``eta``.

    Answers arbitrary pair queries to relative error ``eta`` (with high
    probability over the sketch seed) in O(k) per pair; bulk queries are one
    vectorised einsum over the ``n x k`` embedding.  Cross-component pairs
    report ``inf`` and ``u == v`` pairs ``0``, matching the exact oracles.

    When the sketch dimension ``k`` would reach the ambient dimension ``m``,
    sketching gains nothing and the identity sketch is used instead -- the
    oracle is then *exact* (the embedding is the full ``W^{1/2} B L^+``).

    Parameters
    ----------
    graph:
        The weighted graph to serve.
    eta:
        Relative accuracy bound in ``(0, 1)``.
    seed:
        Models the leader's coin flips for the shared Kane-Nelson seed; the
        expansion downstream of the seed is deterministic (Theorem 4.4).
    grounded:
        Optional pre-built :class:`GroundedLaplacianSolver` to reuse (the
        serving layer caches one per graph); built on demand otherwise.
    delta:
        Per-pair failure probability of the accuracy bound; default
        ``1/m^2`` so a union bound covers poly(m) queried pairs.
    k_override:
        Explicit sketch dimension (experiment knob; bypasses ``delta``).
    batch_size:
        Right-hand sides per blocked grounded solve during the build.
    """

    def __init__(
        self,
        graph: "WeightedGraph",
        eta: float,
        seed: Optional[int] = 0,
        grounded: Optional[GroundedLaplacianSolver] = None,
        delta: Optional[float] = None,
        k_override: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        dtype=SKETCH_DTYPE,
    ):
        if not (0.0 < eta < 1.0):
            raise ValueError(f"distortion eta must lie in (0, 1), got {eta}")
        self.n = graph.n
        self.eta = float(eta)
        m = graph.m
        if k_override is not None:
            if k_override < 1:
                raise ValueError(f"k_override must be >= 1, got {k_override}")
            k = int(k_override)
        else:
            k = resistance_sketch_dimension(m, eta, delta)
        self.exact = bool(m == 0 or k >= m)
        self.k = m if self.exact else k
        #: failure probability the sketch was sized for; the repair widening
        #: must re-solve the dimension bound at the same confidence level
        self.delta = delta
        #: ambient dimension currently sketched: the built edge count plus one
        #: per repaired-in insertion (the accuracy bound widens with it)
        self._ambient = m
        self._built_m = m
        self.appended = 0
        self.reweighted = 0
        self.removed = 0
        # Per-edge sketch-column identity: a built edge owns the column at its
        # position in canonical (sorted) edge order, re-derivable from
        # (seed_bits, index) alone; an appended edge owns the fresh column
        # append_edge drew for it.  This is what turns a reweight/removal into
        # a rank-1 repair (subtract the old column contribution, add the new)
        # instead of a k-solve rebuild.  Kept as one int64 key array plus a
        # retirement mask (8+1 bytes/edge) rather than a dict (~100x that).
        u_arr, v_arr, _ = graph.edge_array()
        self._built_keys = u_arr.astype(np.int64) * self.n + v_arr.astype(np.int64)
        self._built_retired = np.zeros(m, dtype=bool)
        self._appended_cols = {}
        if self.exact:
            # the identity sketch promises *exact* answers, and a tight eta
            # (below float32 rounding) can only reach this branch: store in
            # full precision so the promise holds
            dtype = np.float64
        self.random_bits = kane_nelson_random_bits(m)
        rng = np.random.default_rng(seed)
        self.seed_bits = int(rng.integers(0, 2 ** min(62, self.random_bits)))

        solver = grounded if grounded is not None else GroundedLaplacianSolver(graph)
        self._labels = solver.component_labels().copy()
        if m == 0:
            self._embedding = np.zeros((self.n, 0), dtype=dtype)
            return
        B, w = incidence_csr(graph)
        sqrt_w = sp.diags(np.sqrt(w))
        if self.exact:
            # identity sketch: the embedding is the full W^{1/2} B L^+ and
            # every answer is exact (small graphs, or eta so tight that
            # sketching past the ambient dimension would gain nothing)
            sketched_incidence = (sqrt_w @ B).tocsr()
        else:
            Q = kane_nelson_sketch(self.k, m, self.seed_bits)
            sketched_incidence = (Q @ sqrt_w @ B).tocsr()
        # E^T = L^+ S^T, built by blocked grounded solves: each column of S^T
        # is a signed combination of edge indicator differences, hence
        # consistent per component as solve_many requires; the per-component
        # re-centring it applies cancels in every pair difference.
        embedding = np.empty((self.n, self.k), dtype=dtype)
        for start in range(0, self.k, batch_size):
            stop = min(self.k, start + batch_size)
            block = sketched_incidence[start:stop].toarray().T
            embedding[:, start:stop] = solver.solve_many(block)
        # an overflowed/poisoned embedding would corrupt *every* later pair
        # answer: refuse the build rather than cache a sick artifact (the
        # serving tier degrades such a failure to the grounded exact path)
        check_finite(embedding, "sketched resistance embedding")
        self._embedding = embedding

    @property
    def eta_effective(self) -> float:
        """Accuracy bound the oracle honours *now*, repairs included.

        Equal to ``eta`` as built (or ``0.0`` in exact mode, where answers
        carry no sketching error at all).  Every repaired-in edge
        (:meth:`append_edge`) grows the ambient dimension by one while the
        sketch keeps its ``k`` rows, so the bound widens to
        :func:`repro.linalg.jl.resistance_sketch_eta` at the current ambient
        dimension -- logarithmically slowly, but honestly: consumers that
        promised a client ``eta`` must check this value, not ``eta``, after
        repairs (``inf`` in the pathological case where no bound below 1 is
        honoured any more).

        Mixed-traffic contract: only *insertions* widen the bound.  A
        reweight or removal absorbed by :meth:`repair_edge` reproduces, to
        rounding, the sketch the same ``seed_bits`` would have assigned the
        surviving edges' columns, introducing no new randomness -- the
        union bound the build sized ``k`` for was over a superset of the
        surviving columns, so the per-pair guarantee is preserved and
        ``eta_effective`` is unchanged.  A removed edge that is later
        re-added counts as an insertion (it gets a fresh appended column,
        the retired one stays in the ambient count).
        """
        if self.exact:
            return 0.0
        if self._ambient == self._built_m:
            return self.eta
        widened = resistance_sketch_eta(self.k, self._ambient, self.delta)
        if widened is None:
            return float("inf")
        return max(self.eta, widened)

    def append_edge(self, u: int, v: int, weight: float, solver=None, z=None) -> bool:
        """Repair the oracle in place for the *insertion* of edge ``{u, v}``.

        The mutated graph's embedding differs from the stored one by two
        rank-1 terms, both computable from one triangular solve
        ``z = L_new^+ (e_u - e_v)`` against ``solver`` -- a grounded solver
        that must already reflect the mutated graph (the serving layer passes
        its freshly repaired :class:`RepairableGroundedSolver`):

        * the pseudoinverse moved: ``E -= w z (E[u] - E[v])^T`` by
          Sherman-Morrison through the stored embedding;
        * the incidence gained a row: ``E += sqrt(w) z q^T`` with ``q`` a
          fresh Kane-Nelson column (``s`` rows, ``+/- 1/sqrt(s)``) expanded
          deterministically from ``(seed_bits, ambient index)``.

        The result is *exactly* the ``k``-row Kane-Nelson-sketched embedding
        of the mutated graph at ambient dimension ``m + 1``, so the accuracy
        contract survives with the widened :attr:`eta_effective`; in exact
        (identity-sketch) mode a new exact column is appended instead and the
        oracle stays exact.  Returns ``False`` (oracle unchanged) for
        cross-component insertions, which change the component structure the
        stored labels encode.  Reweights and removals of *existing* edges go
        through :meth:`repair_edge`, which re-derives the edge's column from
        its recorded ``(seed_bits, ambient index)`` identity.  Not
        thread-safe against concurrent queries; the serving layer serialises
        repairs behind its execute lock.
        """
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge endpoints out of range [0, {self.n})")
        if u == v:
            raise ValueError(f"self-loops are not allowed: ({u}, {v})")
        weight = float(weight)
        if weight <= 0:
            raise ValueError(f"edge weights must be positive, got {weight}")
        if not self.exact and not self._embedding.flags.writeable:
            # shared-memory backed oracle (see repro.serve.shm): the sketch
            # is a read-only view other processes serve from concurrently,
            # so the in-place rank-1 repair is refused and the caller
            # rebuilds.  Exact mode reallocates instead of mutating, so a
            # read-only base embedding repairs fine there.
            return False
        if self._labels[u] != self._labels[v]:
            return False
        if z is None:
            # ``z`` may instead be passed directly: the serving layer reuses
            # the post-record solve its RepairableGroundedSolver recorded for
            # this same mutation (update_log), skipping the solve here.  Any
            # per-component constant shift between the two is harmless -- the
            # oracle only ever reads row *differences* of the embedding.
            chi = np.zeros(self.n)
            chi[u] = 1.0
            chi[v] = -1.0
            z = solver.solve(chi)
        duv = (self._embedding[u] - self._embedding[v]).astype(np.float64, copy=False)
        sqrt_w = math.sqrt(weight)
        if self.exact:
            # identity sketch: the new row of W^{1/2} B gets its own exact
            # embedding column and every old column is corrected in place
            updated = self._embedding - weight * np.outer(z, duv)
            self._embedding = np.concatenate([updated, sqrt_w * z[:, None]], axis=1)
            self.k += 1
        else:
            q = kane_nelson_column(self.k, self.seed_bits, self._ambient)
            # both corrections share the left factor z, so they fuse into ONE
            # rank-1 update E += z (sqrt_w q - w duv)^T, applied blockwise in
            # the storage dtype: at n ~ 4*10^4, k ~ 10^3 a float64 np.outer
            # would allocate a transient several times the embedding itself
            row = (sqrt_w * q - weight * duv).astype(self._embedding.dtype)
            zcol = z.astype(self._embedding.dtype)
            block = 8192
            for start in range(0, self.n, block):
                stop = min(self.n, start + block)
                self._embedding[start:stop] += np.outer(zcol[start:stop], row)
        if self._appended_cols is not None:
            # the fresh column's contribution entered as +sqrt(w) (e_u - e_v)
            # in *call* order; record its sign relative to the canonical
            # (min, max) orientation so repair_edge subtracts what was added
            self._appended_cols[(min(u, v), max(u, v))] = (
                self._ambient,
                1.0 if u < v else -1.0,
            )
        self._ambient += 1
        self.appended += 1
        return True

    def _column_identity(self, u: int, v: int):
        """``(ambient index, sign)`` of the live column owned by edge ``{u, v}``.

        The sign is the orientation of the column's contribution to the
        sketched incidence relative to ``e_min - e_max``: built columns enter
        through :func:`incidence_csr` (larger endpoint ``+1``) as ``-1``,
        appended columns carry the sign :meth:`append_edge` recorded.
        Returns ``None`` when the edge owns no recoverable column (removed,
        never known, or the identity map was not shipped -- shared-memory
        attached oracles serve queries only).
        """
        if self._appended_cols is None or self._built_keys is None:
            return None
        key = (min(u, v), max(u, v))
        appended = self._appended_cols.get(key)
        if appended is not None:
            return appended
        packed = key[0] * self.n + key[1]
        pos = int(np.searchsorted(self._built_keys, packed))
        if pos >= self._built_keys.size or self._built_keys[pos] != packed:
            return None
        if self._built_retired[pos]:
            return None
        return pos, -1.0

    def repair_edge(self, u, v, old_weight, new_weight, solver=None, z=None) -> bool:
        """Repair the oracle in place for a *reweight or removal* of ``{u, v}``.

        The edge keeps (reweight) or retires (removal, ``new_weight == 0``)
        the sketch column it owns; both corrections are rank-1 terms sharing
        the left factor ``z = L_new^+ (e_min - e_max)``:

        * the pseudoinverse moved: ``E -= delta z (E[min] - E[max])^T`` with
          ``delta = w_new - w_old`` (Sherman-Morrison through the stored
          embedding);
        * the edge's incidence row was rescaled: ``E += sigma (sqrt(w_new) -
          sqrt(w_old)) z q^T`` where ``q`` is the edge's own Kane-Nelson
          column re-derived from ``(seed_bits, ambient index)`` --
          :func:`kane_nelson_built_columns` for built edges,
          :func:`kane_nelson_column` for appended ones, the identity column
          in exact mode.

        The result equals (to rounding) the same-seed sketch of the mutated
        graph over the surviving columns, so :attr:`eta_effective` does not
        widen (see its docstring for the mixed-traffic contract).

        ``solver`` must be a grounded solver already reflecting the *mutated*
        graph; alternatively the caller passes the post-record solve ``z``
        directly (the serving layer reuses the one its
        :class:`~repro.linalg.sparse_backend.RepairableGroundedSolver`
        recorded for the same mutation).  Bridge removals are NOT repairable
        here -- ``e_min - e_max`` is inconsistent across the split, so the
        caller must drop the oracle when the grounded repair re-grounded a
        component.  Returns ``False`` (oracle unchanged) when the edge's
        column identity is unknown or the embedding is a read-only
        shared-memory view.
        """
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge endpoints out of range [0, {self.n})")
        if u == v:
            raise ValueError(f"self-loops are not allowed: ({u}, {v})")
        old_weight = float(old_weight)
        new_weight = float(new_weight)
        if old_weight <= 0:
            raise ValueError(f"previous weight must be positive, got {old_weight}")
        if new_weight < 0:
            raise ValueError(f"new weight must be >= 0, got {new_weight}")
        if z is None and solver is None:
            raise ValueError("repair_edge needs a mutated-graph solver or its solve z")
        if not self._embedding.flags.writeable:
            # shared-memory backed view (exact or sketched): other processes
            # serve from it concurrently, refuse the in-place repair
            return False
        if self._labels[u] != self._labels[v]:
            return False
        if new_weight == old_weight:
            return True
        identity = self._column_identity(u, v)
        if identity is None:
            return False
        index, sigma = identity
        lo, hi = min(u, v), max(u, v)
        if z is None:
            chi = np.zeros(self.n)
            chi[lo] = 1.0
            chi[hi] = -1.0
            z = solver.solve(chi)
        delta = new_weight - old_weight
        scale = sigma * (math.sqrt(new_weight) - math.sqrt(old_weight))
        duv = (self._embedding[lo] - self._embedding[hi]).astype(np.float64, copy=False)
        if self.exact:
            q = np.zeros(self.k)
            q[index] = 1.0
        elif index < self._built_m:
            q = kane_nelson_built_columns(
                self.k, self._built_m, self.seed_bits, [index]
            )[:, 0]
        else:
            q = kane_nelson_column(self.k, self.seed_bits, index)
        row = (scale * q - delta * duv).astype(self._embedding.dtype)
        zcol = np.asarray(z, dtype=self._embedding.dtype)
        block = 8192
        for start in range(0, self.n, block):
            stop = min(self.n, start + block)
            self._embedding[start:stop] += np.outer(zcol[start:stop], row)
        if new_weight == 0.0:
            key = (lo, hi)
            if key in self._appended_cols:
                del self._appended_cols[key]
            else:
                self._built_retired[index] = True
            self.removed += 1
        else:
            self.reweighted += 1
        return True

    def pair_resistances(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """``(1 +/- eta_effective)``-approximate resistances for arbitrary pairs."""
        u, v = validate_pair_indices(u, v, self.n)
        diff = (self._embedding[u] - self._embedding[v]).astype(np.float64, copy=False)
        resistances = np.einsum("ij,ij->i", diff, diff)
        return apply_pair_semantics(resistances, self._labels, u, v)

    def edge_leverage_scores(self, graph: "WeightedGraph") -> np.ndarray:
        """Approximate leverage scores ``sigma_e = w_e R(u_e, v_e)`` of every edge.

        The leverage score of row ``e`` of ``W^{1/2} B`` is exactly the edge's
        weighted effective resistance, so the cached embedding answers all of
        them in one einsum -- the reuse Algorithm 6 is after.  ``graph`` must
        be the graph this oracle was built for; a mismatched graph whose
        vertices happen to be in range would silently read another graph's
        embedding, so at least the vertex count is checked.
        """
        if graph.n != self.n:
            raise ValueError(
                f"oracle was built for a graph on {self.n} vertices, got {graph.n}"
            )
        u, v, w = graph.edge_array()
        return w * self.pair_resistances(u, v)

    def share_arrays(self):
        """Arrays + scalar metadata for shared-memory publication.

        The ``(arrays, meta)`` pair is what
        :meth:`repro.serve.shm.SharedArtifactStore.publish` packs into a
        segment; :meth:`from_shared` inverts it in the attaching process.
        """
        arrays = {"embedding": self._embedding, "labels": self._labels}
        meta = {
            "n": int(self.n),
            "eta": float(self.eta),
            "exact": bool(self.exact),
            "k": int(self.k),
            "delta": self.delta,
            "ambient": int(self._ambient),
            "built_m": int(self._built_m),
            "appended": int(self.appended),
            "reweighted": int(self.reweighted),
            "removed": int(self.removed),
            "random_bits": int(self.random_bits),
            "seed_bits": int(self.seed_bits),
        }
        return arrays, meta

    @classmethod
    def from_shared(cls, arrays, meta) -> "SketchedResistanceOracle":
        """Rebuild an oracle over shared read-only views, skipping the build.

        The attached views serve pair queries exactly like privately owned
        arrays; :meth:`append_edge` sees the read-only flag on the sketched
        embedding and refuses in-place repair, so mutations rebuild.
        """
        oracle = cls.__new__(cls)
        oracle.n = int(meta["n"])
        oracle.eta = float(meta["eta"])
        oracle.exact = bool(meta["exact"])
        oracle.k = int(meta["k"])
        oracle.delta = meta["delta"]
        oracle._ambient = int(meta["ambient"])
        oracle._built_m = int(meta["built_m"])
        oracle.appended = int(meta["appended"])
        oracle.reweighted = int(meta.get("reweighted", 0))
        oracle.removed = int(meta.get("removed", 0))
        oracle.random_bits = int(meta["random_bits"])
        oracle.seed_bits = int(meta["seed_bits"])
        oracle._embedding = arrays["embedding"]
        oracle._labels = arrays["labels"]
        # column-identity map not shipped: an attached oracle serves queries
        # only (repairs are refused on the read-only view anyway)
        oracle._built_keys = None
        oracle._built_retired = None
        oracle._appended_cols = None
        return oracle

    def nbytes(self) -> int:
        """Resident size for cache accounting (the embedding dominates)."""
        total = int(self._embedding.nbytes + self._labels.nbytes)
        if self._built_keys is not None:
            total += int(self._built_keys.nbytes + self._built_retired.nbytes)
        return total

    def __repr__(self) -> str:
        return (
            f"SketchedResistanceOracle(n={self.n}, k={self.k}, eta={self.eta}"
            f"{', exact' if self.exact else ''})"
        )
