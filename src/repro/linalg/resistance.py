"""Sketched effective-resistance oracle (Spielman-Srivastava via Theorem 4.4).

The exact :class:`~repro.linalg.sparse_backend.ResistanceOracle` answers pair
queries in O(1) but stores the full ``n x n`` grounded inverse, which gates it
at ``RESISTANCE_ORACLE_LIMIT`` vertices; above the gate the serving layer fell
back to per-batch ``splu`` triangular solves that barely amortise.  This
module is the middle regime the paper's own leverage-score machinery implies:
effective resistance is a squared Euclidean distance,

    ``R(u, v) = || W^{1/2} B L^+ (e_u - e_v) ||^2``,

so a Johnson-Lindenstrauss sketch ``Q`` with ``k = O(eta^{-2} log m)`` rows
(Theorem 4.4, the Kane-Nelson transform of :mod:`repro.linalg.jl`) compresses
the ``m``-dimensional embedding to ``k`` dimensions while preserving every
pair distance to relative error ``eta`` with high probability:

    ``R(u, v) ~= || E[u] - E[v] ||^2``,   ``E = (Q W^{1/2} B) L^+``.

Building ``E`` costs ``k`` *blocked* grounded solves against the sketched
incidence (one ``splu`` factorisation shared with the rest of the serving
layer, right-hand sides in batches), after which the oracle stores ``n x k``
floats -- ``O(n log m / eta^2)`` memory instead of ``O(n^2)`` -- and answers a
batch of pair queries with one vectorised einsum.

The same sketch is exactly what ``ComputeLeverageScores`` (Algorithm 6) wants
for edge leverage scores ``sigma_e = w_e R(u_e, v_e)``:
:meth:`SketchedResistanceOracle.edge_leverage_scores` reads them off the
cached embedding, so sparsifier construction and resistance serving share one
artifact (see :func:`repro.linalg.leverage.approximate_edge_leverage_scores`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np
import scipy.sparse as sp

import math

from repro.linalg.jl import (
    kane_nelson_column,
    kane_nelson_random_bits,
    kane_nelson_sketch,
    resistance_sketch_dimension,
    resistance_sketch_eta,
)
from repro.linalg.sparse_backend import (
    DEFAULT_BATCH_SIZE,
    GroundedLaplacianSolver,
    apply_pair_semantics,
    check_finite,
    incidence_csr,
    validate_pair_indices,
)

if TYPE_CHECKING:  # annotation-only: avoid importing the graph module at runtime
    from repro.graphs.graph import WeightedGraph

#: Default storage dtype of the ``n x k`` embedding.  The JL distortion
#: (``eta >= 0.01``) dwarfs single-precision rounding, and float32 halves the
#: cache weight of large-n embeddings (grid 200x200 at eta=0.5: 69 MiB).
SKETCH_DTYPE = np.float32


class SketchedResistanceOracle:
    """JL-compressed effective-resistance oracle with accuracy bound ``eta``.

    Answers arbitrary pair queries to relative error ``eta`` (with high
    probability over the sketch seed) in O(k) per pair; bulk queries are one
    vectorised einsum over the ``n x k`` embedding.  Cross-component pairs
    report ``inf`` and ``u == v`` pairs ``0``, matching the exact oracles.

    When the sketch dimension ``k`` would reach the ambient dimension ``m``,
    sketching gains nothing and the identity sketch is used instead -- the
    oracle is then *exact* (the embedding is the full ``W^{1/2} B L^+``).

    Parameters
    ----------
    graph:
        The weighted graph to serve.
    eta:
        Relative accuracy bound in ``(0, 1)``.
    seed:
        Models the leader's coin flips for the shared Kane-Nelson seed; the
        expansion downstream of the seed is deterministic (Theorem 4.4).
    grounded:
        Optional pre-built :class:`GroundedLaplacianSolver` to reuse (the
        serving layer caches one per graph); built on demand otherwise.
    delta:
        Per-pair failure probability of the accuracy bound; default
        ``1/m^2`` so a union bound covers poly(m) queried pairs.
    k_override:
        Explicit sketch dimension (experiment knob; bypasses ``delta``).
    batch_size:
        Right-hand sides per blocked grounded solve during the build.
    """

    def __init__(
        self,
        graph: "WeightedGraph",
        eta: float,
        seed: Optional[int] = 0,
        grounded: Optional[GroundedLaplacianSolver] = None,
        delta: Optional[float] = None,
        k_override: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        dtype=SKETCH_DTYPE,
    ):
        if not (0.0 < eta < 1.0):
            raise ValueError(f"distortion eta must lie in (0, 1), got {eta}")
        self.n = graph.n
        self.eta = float(eta)
        m = graph.m
        if k_override is not None:
            if k_override < 1:
                raise ValueError(f"k_override must be >= 1, got {k_override}")
            k = int(k_override)
        else:
            k = resistance_sketch_dimension(m, eta, delta)
        self.exact = bool(m == 0 or k >= m)
        self.k = m if self.exact else k
        #: failure probability the sketch was sized for; the repair widening
        #: must re-solve the dimension bound at the same confidence level
        self.delta = delta
        #: ambient dimension currently sketched: the built edge count plus one
        #: per repaired-in insertion (the accuracy bound widens with it)
        self._ambient = m
        self._built_m = m
        self.appended = 0
        if self.exact:
            # the identity sketch promises *exact* answers, and a tight eta
            # (below float32 rounding) can only reach this branch: store in
            # full precision so the promise holds
            dtype = np.float64
        self.random_bits = kane_nelson_random_bits(m)
        rng = np.random.default_rng(seed)
        self.seed_bits = int(rng.integers(0, 2 ** min(62, self.random_bits)))

        solver = grounded if grounded is not None else GroundedLaplacianSolver(graph)
        self._labels = solver.component_labels().copy()
        if m == 0:
            self._embedding = np.zeros((self.n, 0), dtype=dtype)
            return
        B, w = incidence_csr(graph)
        sqrt_w = sp.diags(np.sqrt(w))
        if self.exact:
            # identity sketch: the embedding is the full W^{1/2} B L^+ and
            # every answer is exact (small graphs, or eta so tight that
            # sketching past the ambient dimension would gain nothing)
            sketched_incidence = (sqrt_w @ B).tocsr()
        else:
            Q = kane_nelson_sketch(self.k, m, self.seed_bits)
            sketched_incidence = (Q @ sqrt_w @ B).tocsr()
        # E^T = L^+ S^T, built by blocked grounded solves: each column of S^T
        # is a signed combination of edge indicator differences, hence
        # consistent per component as solve_many requires; the per-component
        # re-centring it applies cancels in every pair difference.
        embedding = np.empty((self.n, self.k), dtype=dtype)
        for start in range(0, self.k, batch_size):
            stop = min(self.k, start + batch_size)
            block = sketched_incidence[start:stop].toarray().T
            embedding[:, start:stop] = solver.solve_many(block)
        # an overflowed/poisoned embedding would corrupt *every* later pair
        # answer: refuse the build rather than cache a sick artifact (the
        # serving tier degrades such a failure to the grounded exact path)
        check_finite(embedding, "sketched resistance embedding")
        self._embedding = embedding

    @property
    def eta_effective(self) -> float:
        """Accuracy bound the oracle honours *now*, repairs included.

        Equal to ``eta`` as built (or ``0.0`` in exact mode, where answers
        carry no sketching error at all).  Every repaired-in edge
        (:meth:`append_edge`) grows the ambient dimension by one while the
        sketch keeps its ``k`` rows, so the bound widens to
        :func:`repro.linalg.jl.resistance_sketch_eta` at the current ambient
        dimension -- logarithmically slowly, but honestly: consumers that
        promised a client ``eta`` must check this value, not ``eta``, after
        repairs (``inf`` in the pathological case where no bound below 1 is
        honoured any more).
        """
        if self.exact:
            return 0.0
        if self._ambient == self._built_m:
            return self.eta
        widened = resistance_sketch_eta(self.k, self._ambient, self.delta)
        if widened is None:
            return float("inf")
        return max(self.eta, widened)

    def append_edge(self, u: int, v: int, weight: float, solver) -> bool:
        """Repair the oracle in place for the *insertion* of edge ``{u, v}``.

        The mutated graph's embedding differs from the stored one by two
        rank-1 terms, both computable from one triangular solve
        ``z = L_new^+ (e_u - e_v)`` against ``solver`` -- a grounded solver
        that must already reflect the mutated graph (the serving layer passes
        its freshly repaired :class:`RepairableGroundedSolver`):

        * the pseudoinverse moved: ``E -= w z (E[u] - E[v])^T`` by
          Sherman-Morrison through the stored embedding;
        * the incidence gained a row: ``E += sqrt(w) z q^T`` with ``q`` a
          fresh Kane-Nelson column (``s`` rows, ``+/- 1/sqrt(s)``) expanded
          deterministically from ``(seed_bits, ambient index)``.

        The result is *exactly* the ``k``-row Kane-Nelson-sketched embedding
        of the mutated graph at ambient dimension ``m + 1``, so the accuracy
        contract survives with the widened :attr:`eta_effective`; in exact
        (identity-sketch) mode a new exact column is appended instead and the
        oracle stays exact.  Returns ``False`` (oracle unchanged) for
        cross-component insertions, which change the component structure the
        stored labels encode.  Reweights and removals are not repairable
        here -- the sketch column of an existing edge is not recoverable --
        and must rebuild.  Not thread-safe against concurrent queries; the
        serving layer serialises repairs behind its execute lock.
        """
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge endpoints out of range [0, {self.n})")
        if u == v:
            raise ValueError(f"self-loops are not allowed: ({u}, {v})")
        weight = float(weight)
        if weight <= 0:
            raise ValueError(f"edge weights must be positive, got {weight}")
        if not self.exact and not self._embedding.flags.writeable:
            # shared-memory backed oracle (see repro.serve.shm): the sketch
            # is a read-only view other processes serve from concurrently,
            # so the in-place rank-1 repair is refused and the caller
            # rebuilds.  Exact mode reallocates instead of mutating, so a
            # read-only base embedding repairs fine there.
            return False
        if self._labels[u] != self._labels[v]:
            return False
        chi = np.zeros(self.n)
        chi[u] = 1.0
        chi[v] = -1.0
        z = solver.solve(chi)
        duv = (self._embedding[u] - self._embedding[v]).astype(np.float64, copy=False)
        sqrt_w = math.sqrt(weight)
        if self.exact:
            # identity sketch: the new row of W^{1/2} B gets its own exact
            # embedding column and every old column is corrected in place
            updated = self._embedding - weight * np.outer(z, duv)
            self._embedding = np.concatenate([updated, sqrt_w * z[:, None]], axis=1)
            self.k += 1
        else:
            q = kane_nelson_column(self.k, self.seed_bits, self._ambient)
            # both corrections share the left factor z, so they fuse into ONE
            # rank-1 update E += z (sqrt_w q - w duv)^T, applied blockwise in
            # the storage dtype: at n ~ 4*10^4, k ~ 10^3 a float64 np.outer
            # would allocate a transient several times the embedding itself
            row = (sqrt_w * q - weight * duv).astype(self._embedding.dtype)
            zcol = z.astype(self._embedding.dtype)
            block = 8192
            for start in range(0, self.n, block):
                stop = min(self.n, start + block)
                self._embedding[start:stop] += np.outer(zcol[start:stop], row)
        self._ambient += 1
        self.appended += 1
        return True

    def pair_resistances(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """``(1 +/- eta_effective)``-approximate resistances for arbitrary pairs."""
        u, v = validate_pair_indices(u, v, self.n)
        diff = (self._embedding[u] - self._embedding[v]).astype(np.float64, copy=False)
        resistances = np.einsum("ij,ij->i", diff, diff)
        return apply_pair_semantics(resistances, self._labels, u, v)

    def edge_leverage_scores(self, graph: "WeightedGraph") -> np.ndarray:
        """Approximate leverage scores ``sigma_e = w_e R(u_e, v_e)`` of every edge.

        The leverage score of row ``e`` of ``W^{1/2} B`` is exactly the edge's
        weighted effective resistance, so the cached embedding answers all of
        them in one einsum -- the reuse Algorithm 6 is after.  ``graph`` must
        be the graph this oracle was built for; a mismatched graph whose
        vertices happen to be in range would silently read another graph's
        embedding, so at least the vertex count is checked.
        """
        if graph.n != self.n:
            raise ValueError(
                f"oracle was built for a graph on {self.n} vertices, got {graph.n}"
            )
        u, v, w = graph.edge_array()
        return w * self.pair_resistances(u, v)

    def share_arrays(self):
        """Arrays + scalar metadata for shared-memory publication.

        The ``(arrays, meta)`` pair is what
        :meth:`repro.serve.shm.SharedArtifactStore.publish` packs into a
        segment; :meth:`from_shared` inverts it in the attaching process.
        """
        arrays = {"embedding": self._embedding, "labels": self._labels}
        meta = {
            "n": int(self.n),
            "eta": float(self.eta),
            "exact": bool(self.exact),
            "k": int(self.k),
            "delta": self.delta,
            "ambient": int(self._ambient),
            "built_m": int(self._built_m),
            "appended": int(self.appended),
            "random_bits": int(self.random_bits),
            "seed_bits": int(self.seed_bits),
        }
        return arrays, meta

    @classmethod
    def from_shared(cls, arrays, meta) -> "SketchedResistanceOracle":
        """Rebuild an oracle over shared read-only views, skipping the build.

        The attached views serve pair queries exactly like privately owned
        arrays; :meth:`append_edge` sees the read-only flag on the sketched
        embedding and refuses in-place repair, so mutations rebuild.
        """
        oracle = cls.__new__(cls)
        oracle.n = int(meta["n"])
        oracle.eta = float(meta["eta"])
        oracle.exact = bool(meta["exact"])
        oracle.k = int(meta["k"])
        oracle.delta = meta["delta"]
        oracle._ambient = int(meta["ambient"])
        oracle._built_m = int(meta["built_m"])
        oracle.appended = int(meta["appended"])
        oracle.random_bits = int(meta["random_bits"])
        oracle.seed_bits = int(meta["seed_bits"])
        oracle._embedding = arrays["embedding"]
        oracle._labels = arrays["labels"]
        return oracle

    def nbytes(self) -> int:
        """Resident size for cache accounting (the embedding dominates)."""
        return int(self._embedding.nbytes + self._labels.nbytes)

    def __repr__(self) -> str:
        return (
            f"SketchedResistanceOracle(n={self.n}, k={self.k}, eta={self.eta}"
            f"{', exact' if self.exact else ''})"
        )
