"""Sparse CSR Laplacian backend (scaling substrate for the Figure-1 pipeline).

Every numerical stage of the reproduction (spanner -> sparsifier -> Laplacian
solver -> LP/min-cost flow) consumes Laplacians, incidence matrices, quadratic
forms and effective resistances.  The dense ``np.zeros((n, n))`` kernels in
:mod:`repro.graphs.laplacian` are fine as numerical references but cap the
pipeline at toy sizes: building the Laplacian is ``Theta(n^2)`` memory and the
per-edge Python loops make ``effective_resistances`` ``Theta(m n^2)``.

This module is the sparse counterpart.  It builds ``scipy.sparse`` CSR
matrices straight from the cached edge-array views of
:meth:`repro.graphs.graph.WeightedGraph.edge_array` (three aligned numpy
columns, no Python-level edge iteration), factorises grounded Laplacians once
with ``splu`` and solves many right-hand sides in batches.

Backend selection
-----------------
Public entry points in :mod:`repro.graphs.laplacian` accept
``backend={'auto', 'dense', 'sparse'}``.  ``'auto'`` (the default where
offered) picks the sparse path once ``graph.n > DENSE_BACKEND_LIMIT``; both
explicit values force the matter.  The dense path remains the numerical
reference -- ``tests/linalg/test_sparse_backend.py`` pins dense/sparse
agreement to ~1e-8 on path/cycle/grid/barbell graphs.

Disconnected graphs are handled by grounding one vertex per connected
component; solves then require (and assume) right-hand sides that are
consistent per component, which is exactly the promise the paper's solver
statements make.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

if TYPE_CHECKING:  # import only for annotations: repro.graphs.laplacian
    # imports this module, so a runtime import here would be circular.
    from repro.graphs.graph import WeightedGraph

#: Vertex count above which ``backend='auto'`` switches to the sparse path.
DENSE_BACKEND_LIMIT = 256

#: Number of right-hand sides per batched grounded solve (memory knob: each
#: batch materialises an ``(n - #components) x batch`` dense block).
DEFAULT_BATCH_SIZE = 512

BACKENDS = ("auto", "dense", "sparse")


class NumericalHealthError(ArithmeticError):
    """A kernel produced -- or was fed -- non-finite values (NaN/inf).

    The serving tier's numerical-health guard: a solver output containing
    NaN, or a factorisation attempted over non-finite edge weights, is
    *refused* with this typed error instead of being returned (or cached) as
    a silently wrong answer.  Defined here, at the bottom of the import
    graph, so :mod:`repro.linalg`, :mod:`repro.lp` and :mod:`repro.serve`
    can all raise and catch the same type; re-exported by
    :mod:`repro.serve.resilience`.  Subclasses :class:`ArithmeticError`
    because the root cause is always arithmetic (singular systems, overflow,
    poisoned inputs).
    """


def check_finite(values, what: str, allow_inf: bool = False) -> None:
    """Raise :class:`NumericalHealthError` if ``values`` contains NaN (or inf).

    ``allow_inf=True`` tolerates infinities -- effective resistances across
    components are legitimately ``inf``, so resistance outputs are checked
    for NaN only, while solve/gram outputs must be entirely finite.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        return
    bad = np.isnan(arr) if allow_inf else ~np.isfinite(arr)
    count = int(np.count_nonzero(bad))
    if count:
        raise NumericalHealthError(
            f"{what} contains {count} non-finite value(s); refusing to serve it"
        )


def resolve_backend_for_size(n: int, backend: str) -> str:
    """Resolve ``'auto'`` to a concrete backend for a system of ``n`` unknowns."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; use one of {BACKENDS}")
    if backend == "auto":
        return "sparse" if n > DENSE_BACKEND_LIMIT else "dense"
    return backend


def resolve_backend(graph: WeightedGraph, backend: str) -> str:
    """Resolve ``'auto'`` to a concrete backend based on the graph size."""
    return resolve_backend_for_size(graph.n, backend)


# -- matrix construction -------------------------------------------------------


def laplacian_csr(graph: WeightedGraph) -> sp.csr_matrix:
    """CSR Laplacian ``L = B^T W B`` built by one ``coo_matrix`` call."""
    u, v, w = graph.edge_array()
    n = graph.n
    rows = np.concatenate([u, v, u, v])
    cols = np.concatenate([u, v, v, u])
    data = np.concatenate([w, w, -w, -w])
    return sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()


def incidence_csr(graph: WeightedGraph) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Sparse edge-vertex incidence ``B`` (m x n) and the weight vector ``w``.

    Orientation matches the dense reference: the larger endpoint is the head
    (+1), the smaller the tail (-1); rows follow canonical edge order.
    """
    u, v, w = graph.edge_array()
    m, n = graph.m, graph.n
    edge_ids = np.arange(m)
    rows = np.concatenate([edge_ids, edge_ids])
    cols = np.concatenate([u, v])
    data = np.concatenate([-np.ones(m), np.ones(m)])
    B = sp.coo_matrix((data, (rows, cols)), shape=(m, n)).tocsr()
    return B, w.copy()


def laplacian_quadratic_form_vectorized(graph: WeightedGraph, x: np.ndarray) -> float:
    """``x^T L x = sum_e w_e (x_u - x_v)^2`` via fancy indexing (no matrix)."""
    u, v, w = graph.edge_array()
    x = np.asarray(x, dtype=float)
    diff = x[u] - x[v]
    return float(np.dot(w, diff * diff))


def validate_pair_indices(u, v, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Shared validation for pair-resistance queries: aligned int64 arrays.

    Every ``pair_resistances`` implementation (grounded solver, dense oracle,
    sketched oracle) must agree on this contract, so it lives in one place.
    """
    u = np.asarray(u, dtype=np.int64).ravel()
    v = np.asarray(v, dtype=np.int64).ravel()
    if u.shape != v.shape:
        raise ValueError(f"pair arrays must align, got {u.shape} vs {v.shape}")
    if u.size and (
        int(min(u.min(), v.min())) < 0 or int(max(u.max(), v.max())) >= n
    ):
        raise ValueError(f"pair endpoints out of range [0, {n})")
    return u, v


def apply_pair_semantics(
    resistances: np.ndarray, labels: np.ndarray, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """The shared pair conventions: ``inf`` across components, ``0`` on ties."""
    resistances[labels[u] != labels[v]] = np.inf
    resistances[u == v] = 0.0
    return resistances


# -- grounded factorisation ----------------------------------------------------


def grounding_keep_indices(n: int, components) -> np.ndarray:
    """Indices that survive grounding one (minimum) vertex per component."""
    grounded = np.fromiter(
        sorted(int(min(c)) for c in components), dtype=np.int64
    )
    keep = np.ones(n, dtype=bool)
    keep[grounded] = False
    return np.flatnonzero(keep)


class GroundedLaplacianSolver:
    """Direct Laplacian solver: ground one vertex per component, ``splu`` once.

    For a right-hand side that is consistent per component (sums to zero over
    every component -- i.e. ``b`` lies in the range of ``L``), :meth:`solve`
    returns the minimum-norm solution ``L^+ b``: the grounded solution differs
    from ``L^+ b`` by a constant per component, which we remove by re-centring
    each component to mean zero.
    """

    def __init__(self, graph: WeightedGraph):
        self.n = graph.n
        self._nbytes: Optional[int] = None
        self._component_label: Optional[np.ndarray] = None
        # refuse to factorise poisoned content: a NaN weight would not make
        # splu fail loudly, it would silently propagate into every answer
        check_finite(graph.edge_array()[2], "graph edge weights")
        L = laplacian_csr(graph)
        components = graph.connected_components()
        self._components: List[np.ndarray] = [
            np.fromiter(sorted(c), dtype=np.int64, count=len(c)) for c in components
        ]
        self._keep_idx = grounding_keep_indices(self.n, components)
        # position of each vertex inside the reduced system (-1 = grounded)
        self._position = np.full(self.n, -1, dtype=np.int64)
        self._position[self._keep_idx] = np.arange(self._keep_idx.size)
        if self._keep_idx.size:
            reduced = L[self._keep_idx][:, self._keep_idx].tocsc()
            # MMD on A^T + A: the grounded Laplacian is structurally symmetric,
            # and this ordering roughly halves fill-in (and solve time) versus
            # the default COLAMD on the graphs we benchmark.
            try:
                self._lu = spla.splu(reduced, permc_spec="MMD_AT_PLUS_A")
            except RuntimeError as error:
                # SuperLU signals singular/badly-scaled systems as a bare
                # RuntimeError; surface it as the typed numerical-health
                # failure the serving tier's degradation ladder catches
                raise NumericalHealthError(
                    f"grounded splu factorisation failed: {error}"
                ) from error
        else:
            self._lu = None

    def _reduced_solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve the grounded (reduced) system for a ``(k,)`` or ``(k, j)`` block.

        Every consumer of the factorisation funnels through here, which is the
        seam :class:`RepairableGroundedSolver` overrides to apply its
        accumulated Sherman-Morrison corrections on top of the base ``splu``.
        """
        return self._lu.solve(rhs)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Minimum-norm solution of ``L x = b`` (``b`` consistent per component)."""
        b = np.asarray(b, dtype=float)
        if b.shape != (self.n,):
            raise ValueError(f"right-hand side must have shape ({self.n},), got {b.shape}")
        x = np.zeros(self.n)
        if self._lu is not None:
            x[self._keep_idx] = self._reduced_solve(b[self._keep_idx])
        for component in self._components:
            x[component] -= x[component].mean()
        return x

    def solve_many(self, B: np.ndarray) -> np.ndarray:
        """Column-wise minimum-norm solves ``L X = B`` for a dense ``(n, k)`` block."""
        B = np.asarray(B, dtype=float)
        X = np.zeros_like(B)
        if self._lu is not None:
            X[self._keep_idx] = self._reduced_solve(B[self._keep_idx])
        for component in self._components:
            X[component] -= X[component].mean(axis=0)
        return X

    def edge_resistances(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """``chi_e^T L^+ chi_e`` for the vertex pairs ``(u_i, v_i)`` in one batch.

        Each pair must lie in one connected component (edges always do).  The
        right-hand sides are built directly in the reduced (grounded)
        coordinates, so no per-edge re-centring is needed: the resistance is
        the grounded solution's potential difference across the pair.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        k = u.size
        cols = np.arange(k)
        pu, pv = self._position[u], self._position[v]
        rhs = np.zeros((self._keep_idx.size, k))
        mask_u, mask_v = pu >= 0, pv >= 0
        rhs[pu[mask_u], cols[mask_u]] += 1.0
        rhs[pv[mask_v], cols[mask_v]] -= 1.0
        X = self._reduced_solve(rhs) if self._lu is not None else rhs
        xu = np.where(mask_u, X[np.maximum(pu, 0), cols], 0.0)
        xv = np.where(mask_v, X[np.maximum(pv, 0), cols], 0.0)
        return xu - xv

    def component_labels(self) -> np.ndarray:
        """Component identifier per vertex (lazily built, cached)."""
        if self._component_label is None:
            labels = np.empty(self.n, dtype=np.int64)
            for i, component in enumerate(self._components):
                labels[component] = i
            self._component_label = labels
        return self._component_label

    def pair_resistances(
        self, u: np.ndarray, v: np.ndarray, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> np.ndarray:
        """Effective resistance of arbitrary vertex pairs ``(u_i, v_i)``.

        Unlike :meth:`edge_resistances` the pairs need not be edges (or even
        lie in one component): cross-component pairs are reported as ``inf``
        and ``u_i == v_i`` pairs as ``0``.  Within-component pairs go through
        the grounded factorisation in batches of ``batch_size``.
        """
        u, v = validate_pair_indices(u, v, self.n)
        labels = self.component_labels()
        resistances = np.full(u.shape[0], np.inf)
        resistances[u == v] = 0.0
        solvable = np.flatnonzero((labels[u] == labels[v]) & (u != v))
        for start in range(0, solvable.size, batch_size):
            idx = solvable[start : start + batch_size]
            resistances[idx] = self.edge_resistances(u[idx], v[idx])
        return resistances

    def nbytes(self) -> int:
        """Approximate resident size of the factorisation (cache accounting).

        The LU factors dominate; SuperLU stores ~12 bytes per stored nonzero
        (8-byte value + 4-byte row index) plus the permutation vectors.
        """
        if self._nbytes is None:
            total = self._keep_idx.nbytes + self._position.nbytes
            total += sum(c.nbytes for c in self._components)
            if self._lu is not None:
                total += 12 * int(self._lu.nnz)
                total += self._lu.perm_r.nbytes + self._lu.perm_c.nbytes
            self._nbytes = int(total)
        return self._nbytes

    __call__ = solve


def laplacian_solver(graph: WeightedGraph) -> GroundedLaplacianSolver:
    """Factorise ``graph``'s Laplacian once and return a reusable solver."""
    return GroundedLaplacianSolver(graph)


# -- incremental repair --------------------------------------------------------

#: Sherman-Morrison denominator guard.  The update ``L += delta chi chi^T``
#: multiplies solve errors by ``~1/denom`` with ``denom = 1 + delta R(u, v)``;
#: for a removal ``denom = 1 - w R(u, v)`` hits 0 exactly when the edge is a
#: bridge (removal disconnects), and near-0 when it almost is.  Below this
#: threshold the repair is refused and the caller must refactorise.
REPAIR_DENOM_TOL = 1e-6


def default_update_budget(n: int) -> int:
    """Accumulated-update budget before refactorisation: ``O(sqrt(n))``.

    Each pending rank-1 correction adds one dense ``O(n)`` vector of storage
    and one ``O(n)`` pass per solve, so ``sqrt(n)`` corrections keep both the
    repair overhead (``O(n^{1.5})`` per solve) safely below the cost of the
    triangular solves they postpone, and the accumulated floating-point error
    (one inner product per correction) at the ``1e-8`` agreement the tests
    pin.
    """
    return max(4, math.isqrt(max(0, int(n))))


@dataclass
class _RankOneUpdate:
    """One applied Sherman-Morrison correction, in reduced coordinates."""

    pu: int  # reduced position of u (-1 = grounded)
    pv: int  # reduced position of v (-1 = grounded)
    delta: float  # weight change on the Laplacian
    z: np.ndarray  # (inverse after previous updates) @ chi
    denom: float  # 1 + delta * chi^T z
    u: int = -1  # global endpoint ids (kept for the repair log)
    v: int = -1
    split: bool = False  # True when this removal re-grounded a split

    def chi_dot(self, X: np.ndarray) -> np.ndarray:
        """``chi^T X`` for a ``(k,)`` vector or ``(k, j)`` block."""
        xu = X[self.pu] if self.pu >= 0 else 0.0
        xv = X[self.pv] if self.pv >= 0 else 0.0
        return xu - xv


@dataclass
class _IndicatorUpdate:
    """Rank-1 regulariser ``A += rho kappa kappa^T`` over an index set.

    ``kappa`` is the (reduced-coordinate) indicator of a freshly split-off
    component that has no grounded vertex of its own: adding ``rho kappa
    kappa^T`` before the bridge-removal correction keeps the composed system
    invertible and pins the new component's solutions to mean zero over
    ``idx`` -- exactly the normalisation the per-component re-centring
    expects.  Never exposed in the repair log (it is the *grounding* half of
    a split removal, not an edge mutation).
    """

    idx: np.ndarray  # reduced positions of the ungrounded side, all >= 0
    delta: float  # rho > 0
    z: np.ndarray  # (inverse after previous updates) @ kappa
    denom: float  # 1 + rho * kappa^T z

    def chi_dot(self, X: np.ndarray) -> np.ndarray:
        """``kappa^T X`` for a ``(k,)`` vector or ``(k, j)`` block."""
        return X[self.idx].sum(axis=0)


class RepairableGroundedSolver(GroundedLaplacianSolver):
    """Grounded ``splu`` solver that absorbs edge mutations as rank-1 updates.

    A single ``add_edge`` / reweight / ``remove_edge`` changes the Laplacian
    by ``delta chi chi^T`` with ``chi = e_u - e_v``; instead of refactorising
    (seconds at ``n >= 10^4``), :meth:`apply_update` solves one right-hand
    side against the current state (one triangular solve, ``O(n)``-ish) and
    records a Sherman-Morrison correction that every later
    :meth:`_reduced_solve` applies on top of the base factorisation:

        ``A_new^{-1} b = A^{-1} b - (delta / denom) z (chi^T A^{-1} b)``

    with ``z = A^{-1} chi`` and ``denom = 1 + delta chi^T z``.  Corrections
    compose sequentially, so a chain of mutations stays exact (to rounding)
    relative to a from-scratch rebuild -- the property the repair tests pin
    to 1e-8.

    :meth:`apply_update` *refuses* (returns ``False``, caller must rebuild)
    when the mutation changes what a rank-1 update can express:

    * the endpoints lie in different components (insertion would merge them,
      changing the grounding structure);
    * the denominator falls below :data:`REPAIR_DENOM_TOL` (a removed edge is
      a bridge -- removal disconnects -- or the update is too ill-conditioned
      to stay within the accuracy contract) *and* the caller did not supply
      ``split_side`` -- with it, a genuine bridge removal is absorbed by
      re-grounding the split-off component (see below) instead of refusing;
    * the accumulated-update budget ``max_updates`` (default
      :func:`default_update_budget`, ``O(sqrt(n))``) is exhausted (a split
      removal consumes two slots).

    **Component-split re-grounding.**  Removing a bridge ``{u, v}`` splits
    its component in two; the side that loses the original grounded vertex
    leaves the reduced system singular, which is exactly what the
    ``denom -> 0`` guard detects.  Given ``split_side`` (the vertex set of
    one side of the split, e.g. a BFS from ``v`` in the post-removal graph),
    the solver first adds a rank-1 regulariser ``rho kappa kappa^T`` over the
    ungrounded side's indicator ``kappa`` -- an implicit new ground pinning
    that side to mean zero -- and then applies the removal's Sherman-Morrison
    correction against the regularised (invertible) system.  Both corrections
    ride the same ``_reduced_solve`` seam; ``self._components`` and the
    cached component labels are updated so pair queries across the split
    correctly report ``inf``.

    A refused update leaves the solver exactly as it was.  The solver is not
    thread-safe during :meth:`apply_update`; the serving layer serialises
    repairs behind its execute lock.
    """

    def __init__(self, graph: WeightedGraph, max_updates: Optional[int] = None):
        super().__init__(graph)
        self.max_updates = (
            int(max_updates) if max_updates is not None else default_update_budget(self.n)
        )
        self._updates: List[_RankOneUpdate] = []

    @property
    def updates_applied(self) -> int:
        """Number of rank-1 corrections currently riding on the factorisation."""
        return len(self._updates)

    @property
    def update_budget_remaining(self) -> int:
        """Updates left before :meth:`apply_update` starts refusing."""
        return max(0, self.max_updates - len(self._updates))

    def apply_update(self, u: int, v: int, delta: float, split_side=None) -> bool:
        """Absorb ``L += delta (e_u - e_v)(e_u - e_v)^T``; ``False`` = rebuild.

        ``delta`` is the *weight change* of the edge ``{u, v}``: the new
        weight for an insertion, ``w_new - w_old`` for a reweight, and
        ``-w_old`` for a removal.  A ``True`` return means every later solve
        reflects the mutated Laplacian; ``False`` means the mutation is not
        rank-1-repairable here (cross-component edge, bridge removal without
        ``split_side``, ill-conditioned update, or budget exhausted) and the
        solver is unchanged.

        ``split_side`` (optional, removals only) is the vertex set of one
        side of the split the removal causes -- e.g. the set reachable from
        ``v`` in the post-removal graph.  When the conditioning guard fires
        on a genuine bridge removal and ``split_side`` is given, the solver
        re-grounds the split-off component and absorbs the removal anyway
        (two update slots; see the class docstring).
        """
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge endpoints out of range [0, {self.n})")
        if u == v:
            raise ValueError(f"self-loops are not allowed: ({u}, {v})")
        delta = float(delta)
        if delta == 0.0:
            return True
        labels = self.component_labels()
        if labels[u] != labels[v]:
            # merging (or having merged) components changes which vertices are
            # grounded: structurally not a rank-1 update of the reduced system
            return False
        if len(self._updates) >= self.max_updates or self._lu is None:
            return False
        pu, pv = int(self._position[u]), int(self._position[v])
        c = np.zeros(self._keep_idx.size)
        if pu >= 0:
            c[pu] += 1.0
        if pv >= 0:
            c[pv] -= 1.0
        z = self._reduced_solve(c)
        ctz = (z[pu] if pu >= 0 else 0.0) - (z[pv] if pv >= 0 else 0.0)
        denom = 1.0 + delta * ctz
        if denom > REPAIR_DENOM_TOL:
            self._updates.append(
                _RankOneUpdate(pu=pu, pv=pv, delta=delta, z=z, denom=denom, u=u, v=v)
            )
            return True
        if delta < 0.0 and split_side is not None:
            return self._apply_split_removal(u, v, delta, split_side)
        return False

    def _apply_split_removal(self, u: int, v: int, delta: float, split_side) -> bool:
        """Bridge removal: re-ground the split-off side, then downdate.

        ``A - w chi chi^T`` is singular (the side losing the old ground has a
        fresh kernel vector: its indicator ``kappa``), so we first regularise
        with ``rho kappa kappa^T`` -- Sherman-Morrison keeps it rank-1 -- and
        then apply the removal against the now-invertible system.  Solutions
        on the re-grounded side come out with ``kappa^T x = 0`` (mean zero),
        which the per-component re-centring in :meth:`solve` already expects.
        Updates ``self._components`` / component labels to the post-split
        structure; consumes two update slots.
        """
        if self.max_updates - len(self._updates) < 2:
            return False
        side = np.unique(np.asarray(list(split_side), dtype=np.int64))
        if side.size == 0 or side.min() < 0 or side.max() >= self.n:
            return False
        labels = self.component_labels()
        label = int(labels[u])
        component = None
        comp_index = -1
        for i, comp in enumerate(self._components):
            if labels[comp[0]] == label:
                component, comp_index = comp, i
                break
        if component is None or side.size >= component.size:
            return False
        # split_side must be one side of the component and separate u from v
        if not np.isin(side, component).all():
            return False
        in_side = np.zeros(self.n, dtype=bool)
        in_side[side] = True
        if in_side[u] == in_side[v]:
            return False
        other = component[~in_side[component]]
        # the side that lost the original ground is the one with no -1 position
        side_positions = self._position[side]
        if (side_positions >= 0).all():
            ungrounded, ungrounded_pos = side, side_positions
        else:
            ungrounded, ungrounded_pos = other, self._position[other]
            if not (ungrounded_pos >= 0).all():
                return False  # both sides grounded: not a single-component split
        rho = abs(float(delta))
        kappa = np.zeros(self._keep_idx.size)
        kappa[ungrounded_pos] = 1.0
        y = self._reduced_solve(kappa)
        denom_ground = 1.0 + rho * float(y[ungrounded_pos].sum())
        ground = _IndicatorUpdate(
            idx=ungrounded_pos, delta=rho, z=y, denom=denom_ground
        )
        self._updates.append(ground)
        pu, pv = int(self._position[u]), int(self._position[v])
        c = np.zeros(self._keep_idx.size)
        if pu >= 0:
            c[pu] += 1.0
        if pv >= 0:
            c[pv] -= 1.0
        z = self._reduced_solve(c)
        ctz = (z[pu] if pu >= 0 else 0.0) - (z[pv] if pv >= 0 else 0.0)
        denom = 1.0 + delta * ctz
        if not denom > REPAIR_DENOM_TOL:
            self._updates.pop()  # not actually (only) a bridge: leave unchanged
            return False
        self._updates.append(
            _RankOneUpdate(
                pu=pu, pv=pv, delta=delta, z=z, denom=denom, u=u, v=v, split=True
            )
        )
        self._components[comp_index] = np.sort(other)
        self._components.append(np.sort(side))
        self._component_label = None  # labels changed: rebuild lazily
        return True

    def update_log(self):
        """Absorbed edge mutations, oldest first, for dependent repairs.

        Each entry is ``(u, v, delta, z_after, split)`` where ``z_after`` is
        the *post-record* solve ``A_r^{-1} (e_u - e_v)`` scattered to full
        vertex coordinates (no re-centring) -- exactly the vector a dependent
        rank-1 artifact repair (e.g. a sketched-oracle column update) needs
        for the same record, without re-solving.  Grounding regularisers from
        split removals are folded into their removal's ``split=True`` flag
        rather than listed.
        """
        log = []
        for update in self._updates:
            if isinstance(update, _IndicatorUpdate):
                continue
            z_full = np.zeros(self.n)
            z_full[self._keep_idx] = update.z / update.denom
            log.append((update.u, update.v, update.delta, z_full, update.split))
        return log

    def _reduced_solve(self, rhs: np.ndarray) -> np.ndarray:
        X = self._lu.solve(rhs)
        for update in self._updates:
            coeff = (update.delta / update.denom) * update.chi_dot(X)
            if X.ndim == 1:
                X -= coeff * update.z
            else:
                X -= np.outer(update.z, coeff)
        return X

    def nbytes(self) -> int:
        """Factorisation size plus the pending rank-1 correction vectors."""
        return super().nbytes() + sum(update.z.nbytes for update in self._updates)


#: Largest n for which the serving layer precomputes a dense resistance
#: oracle (n^2 doubles; 2048 -> 32 MiB).  Above it, pair queries fall back to
#: batched triangular solves through the grounded factorisation.
RESISTANCE_ORACLE_LIMIT = 2048


class ResistanceOracle:
    """Dense grounded-inverse oracle: exact O(1) pair resistances.

    For medium graphs the serving layer answers effective-resistance queries
    from a precomputed ``n x n`` matrix ``S`` with ``S[keep, keep]`` the
    inverse of the grounded Laplacian and zero rows/columns at the grounded
    vertices.  For ``u, v`` in one component,

        ``R(u, v) = S[u, u] + S[v, v] - 2 S[u, v]``

    (the indicator ``e_u - e_v`` is component-consistent, so the grounded
    solution differs from ``L^+ (e_u - e_v)`` by a per-component constant that
    cancels in the difference).  Build cost is one factorisation plus ``n``
    batched triangular solves -- seconds at ``n = 2000`` -- after which every
    query is a three-element lookup, which is what turns a coalesced batch of
    64 queries into one vectorised fancy-indexing call.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        grounded: Optional[GroundedLaplacianSolver] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        solver = grounded if grounded is not None else GroundedLaplacianSolver(graph)
        self.n = solver.n
        self.max_updates = default_update_budget(self.n)
        self._repairs = 0
        self._labels = solver.component_labels().copy()
        keep = solver._keep_idx
        S = np.zeros((self.n, self.n))
        if solver._lu is not None:
            k = keep.size
            inner = np.zeros((k, k))
            for start in range(0, k, batch_size):
                stop = min(k, start + batch_size)
                rhs = np.zeros((k, stop - start))
                rhs[np.arange(start, stop), np.arange(stop - start)] = 1.0
                inner[:, start:stop] = solver._reduced_solve(rhs)
            S[np.ix_(keep, keep)] = inner
        self._S = S

    def pair_resistances(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorised exact resistances; ``inf`` across components, 0 on ties."""
        u, v = validate_pair_indices(u, v, self.n)
        S = self._S
        resistances = S[u, u] + S[v, v] - 2.0 * S[u, v]
        return apply_pair_semantics(resistances, self._labels, u, v)

    @property
    def repairs_applied(self) -> int:
        """Number of rank-1 repairs absorbed since the oracle was built."""
        return self._repairs

    def apply_update(self, u: int, v: int, delta: float) -> bool:
        """Absorb an edge weight change as one rank-1 update of ``S``.

        Sherman-Morrison on the stored grounded inverse:
        ``S' = S - (delta / denom) y y^T`` with ``y = S (e_u - e_v)`` and
        ``denom = 1 + delta (y_u - y_v)`` -- ``O(n^2)`` instead of the ``n``
        batched triangular solves of a rebuild.  Returns ``False`` (oracle
        unchanged except for refusals being free) for cross-component pairs,
        a denominator below :data:`REPAIR_DENOM_TOL` (bridge removal /
        ill-conditioning) or an exhausted ``O(sqrt(n))`` update budget.
        Removals are routed here like any other weight change -- the
        denominator guard is what refuses the bridge removals that would
        split a component (the serving layer rebuilds the oracle for those).
        """
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge endpoints out of range [0, {self.n})")
        if u == v:
            raise ValueError(f"self-loops are not allowed: ({u}, {v})")
        delta = float(delta)
        if delta == 0.0:
            return True
        if not self._S.flags.writeable:
            # shared-memory backed oracle (see repro.serve.shm): the inverse
            # is a read-only view other processes serve from concurrently, so
            # in-place repair is refused and the caller rebuilds instead
            return False
        if self._labels[u] != self._labels[v]:
            return False
        if self._repairs >= self.max_updates:
            return False
        y = self._S[:, u] - self._S[:, v]
        denom = 1.0 + delta * (y[u] - y[v])
        if not denom > REPAIR_DENOM_TOL:
            return False
        self._S -= np.outer((delta / denom) * y, y)
        self._repairs += 1
        return True

    def share_arrays(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """Arrays + scalar metadata for shared-memory publication.

        The returned ``(arrays, meta)`` pair is what
        :meth:`repro.serve.shm.SharedArtifactStore.publish` packs into a
        segment; :meth:`from_shared` inverts it in the attaching process.
        """
        arrays = {"S": self._S, "labels": self._labels}
        meta = {
            "n": int(self.n),
            "max_updates": int(self.max_updates),
            "repairs": int(self._repairs),
        }
        return arrays, meta

    @classmethod
    def from_shared(
        cls, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
    ) -> "ResistanceOracle":
        """Rebuild an oracle over shared read-only views, skipping all solves.

        The views come straight out of an attached shared-memory segment
        (zero-copy); queries read them exactly like privately owned arrays,
        while :meth:`apply_update` sees the read-only flag and refuses
        in-place repair, so mutations fall back to a rebuild.
        """
        oracle = cls.__new__(cls)
        oracle.n = int(meta["n"])
        oracle.max_updates = int(meta["max_updates"])
        oracle._repairs = int(meta["repairs"])
        oracle._S = arrays["S"]
        oracle._labels = arrays["labels"]
        return oracle

    def nbytes(self) -> int:
        """Resident size for cache accounting (the dense ``n x n`` dominates)."""
        return int(self._S.nbytes + self._labels.nbytes)


# -- effective resistances -----------------------------------------------------


def effective_resistances_sparse(
    graph: WeightedGraph, batch_size: int = DEFAULT_BATCH_SIZE
) -> np.ndarray:
    """Effective resistance of every edge via one factorisation + batched solves.

    Instead of the dense reference's ``m`` separate ``chi^T L^+ chi`` products
    (each ``Theta(n^2)``), this grounds the Laplacian, factorises it once and
    solves ``L x_e = chi_e`` for ``batch_size`` edges at a time;
    ``R_e = chi_e^T x_e = x_e[u] - x_e[v]``.  Total cost is one ``splu`` plus
    ``m`` triangular solves.
    """
    m = graph.m
    if m == 0:
        return np.zeros(0)
    u, v, _ = graph.edge_array()
    solver = GroundedLaplacianSolver(graph)
    resistances = np.zeros(m)
    for start in range(0, m, batch_size):
        stop = min(m, start + batch_size)
        resistances[start:stop] = solver.edge_resistances(u[start:stop], v[start:stop])
    return resistances


# -- spectral certification ----------------------------------------------------

#: Reduced-system size below which the generalized eigenproblem is solved
#: densely (ARPACK needs ``k < n`` and tiny pencils are cheaper with LAPACK).
DENSE_EIG_FALLBACK = 64

#: Largest reduced system the ARPACK-failure path may densify: above this,
#: ``toarray()`` + LAPACK would cost the O(n^2) memory / O(n^3) time the
#: sparse certifier exists to avoid, so a relaxed-tolerance retry runs instead.
DENSE_EIG_FALLBACK_LIMIT = 2048

#: Relative accuracy requested from ARPACK for the pencil extremes; small
#: enough that dense/sparse certification agree to ~1e-8.
PENCIL_EIG_TOL = 1e-12

#: Tolerance of the large-system retry after an ARPACK convergence failure.
PENCIL_EIG_TOL_RELAXED = 1e-8


def _reduced_pencil(
    graph: WeightedGraph, sparsifier: WeightedGraph, components
) -> Tuple[sp.csc_matrix, sp.csc_matrix, int]:
    """Ground one vertex per component and return the reduced SPD pencil.

    Assumes (caller-checked) that ``graph`` and ``sparsifier`` have identical
    connected-component partitions (``components`` is that shared partition):
    the generalized Rayleigh quotient ``x^T L_G x / x^T L_H x`` is invariant
    under per-component shifts, so every nontrivial direction can be
    represented with the grounded coordinates zeroed and the reduced pencil
    has exactly the restricted generalized eigenvalues of ``(L_G, L_H)``.
    """
    keep_idx = grounding_keep_indices(graph.n, components)
    A = laplacian_csr(graph)[keep_idx][:, keep_idx].tocsc()
    B = laplacian_csr(sparsifier)[keep_idx][:, keep_idx].tocsc()
    return A, B, keep_idx.size


def _dense_pencil_extremes(A, B) -> Tuple[float, float]:
    import scipy.linalg as sla

    vals = sla.eigh(A.toarray(), B.toarray(), eigvals_only=True)
    return float(vals[0]), float(vals[-1])


def pencil_extreme_eigenvalues(
    graph: WeightedGraph,
    sparsifier: WeightedGraph,
    tol: float = PENCIL_EIG_TOL,
    components=None,
) -> Tuple[float, float]:
    """Extreme generalized eigenvalues ``(lo, hi)`` of ``(L_G, L_H)``.

    ``lo`` and ``hi`` are the smallest/largest ``lambda`` with
    ``L_G x = lambda L_H x`` over the space orthogonal to the (common) kernel,
    i.e. the tightest pair with ``lo L_H <= L_G <= hi L_H``.  Both graphs must
    have the same connected-component partition (the caller guarantees this,
    and passes it as ``components`` when already computed -- the certification
    front-end builds it anyway for the partition-equality check), which makes
    the grounded pencil SPD on both sides.

    The largest eigenvalue of an SPD pencil is where Lanczos shines, so
    ``hi`` comes from ``eigsh(A, M=B, which='LA')`` directly and ``lo`` from
    the reversed pencil as ``1 / max-eig(B, A)`` -- no shift-invert and never
    a dense ``n x n`` matrix.  Tiny reduced systems fall back to the LAPACK
    generalized solver, as does an ARPACK convergence failure up to
    ``DENSE_EIG_FALLBACK_LIMIT`` unknowns; beyond that size a failure retries
    with a relaxed tolerance and a larger Krylov basis rather than densify.
    """
    if components is None:
        components = graph.connected_components()
    A, B, n_reduced = _reduced_pencil(graph, sparsifier, components)
    if n_reduced == 0:
        # every component is a singleton: both Laplacians are identically zero
        return (1.0, 1.0)
    if n_reduced <= DENSE_EIG_FALLBACK:
        return _dense_pencil_extremes(A, B)
    # seeded starting vector: ARPACK otherwise randomises v0, which would make
    # repeated certifications of the same pair differ within the tolerance
    v0 = np.random.default_rng(0x5EED).standard_normal(n_reduced)

    def extremes(eig_tol: float, ncv: Optional[int] = None) -> Tuple[float, float]:
        hi = float(
            spla.eigsh(
                A, k=1, M=B, which="LA", tol=eig_tol, v0=v0, ncv=ncv,
                return_eigenvectors=False,
            )[0]
        )
        lo_inv = float(
            spla.eigsh(
                B, k=1, M=A, which="LA", tol=eig_tol, v0=v0, ncv=ncv,
                return_eigenvectors=False,
            )[0]
        )
        return (1.0 / lo_inv, hi)

    try:
        return extremes(tol)
    except (spla.ArpackError, spla.ArpackNoConvergence):
        if n_reduced <= DENSE_EIG_FALLBACK_LIMIT:
            return _dense_pencil_extremes(A, B)
        # Densifying here would cost the O(n^2) memory the sparse certifier
        # exists to avoid; retry with a looser tolerance and a larger Krylov
        # basis instead (still within the documented ~1e-8 agreement).
        return extremes(PENCIL_EIG_TOL_RELAXED, ncv=min(n_reduced - 1, 64))


# -- operator adapters ---------------------------------------------------------


def as_apply_fn(operator) -> Callable[[np.ndarray], np.ndarray]:
    """Adapt a dense matrix, sparse matrix or callable to ``v -> A @ v``."""
    if callable(operator) and not sp.issparse(operator) and not isinstance(operator, np.ndarray):
        return operator
    return lambda vector: operator @ np.asarray(vector, dtype=float)
