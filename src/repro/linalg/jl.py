"""Johnson-Lindenstrauss transforms (Section 4.1, Theorem 4.4).

Two constructions are provided:

* :func:`achlioptas_matrix` -- Achlioptas' database-friendly projection whose
  entries are independent signs scaled by ``1/sqrt(k)``.  It needs one fresh
  coin per entry, i.e. ``Theta(k m)`` independent random bits, which is why the
  paper cannot use it in a broadcast model (the vertex owning an edge cannot
  tell its neighbour the outcome).
* :func:`kane_nelson_matrix` -- a sparse JL transform in the spirit of Kane and
  Nelson driven by ``O(log(1/delta) log m)`` shared random bits (Theorem 4.4).
  A leader samples the seed, broadcasts it, and every vertex expands it into
  the same ``k x m`` matrix locally using a pseudorandom generator keyed by the
  seed -- exactly the usage in ``ComputeLeverageScores`` (Algorithm 6).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp


def jl_sketch_dimension(m: int, eta: float, delta: Optional[float] = None) -> int:
    """Number of sketch rows ``k = Theta(eta^{-2} log(1/delta))`` (delta ~ 1/poly(m))."""
    if eta <= 0:
        raise ValueError(f"distortion eta must be positive, got {eta}")
    m = max(2, int(m))
    delta = delta if delta is not None else 1.0 / (m ** 2)
    return max(1, math.ceil(4.0 * math.log(1.0 / delta) / (eta * eta)))


def resistance_sketch_dimension(m: int, eta: float, delta: Optional[float] = None) -> int:
    """Sketch rows needed so *squared* sketched norms carry relative error ``eta``.

    Effective resistances (and leverage scores) are squared Euclidean norms of
    sketched vectors, so the quantity that must concentrate is ``||Qx||^2``
    itself -- no detour through the norm guarantee of
    :func:`jl_sketch_dimension` and its conservative constant.  The chi-square
    Chernoff bound gives, per vector,

        ``P[ ||Qx||^2 > (1 + eta) ||x||^2 ] <= exp(-k (eta - log(1+eta)) / 2)``

    with the (binding) upper tail; solving for failure probability ``delta``
    (default ``1/m^2``, union-bounded over poly(m) queried pairs) yields

        ``k = ceil( 2 log(2/delta) / (eta - log(1+eta)) )``.

    For small ``eta`` this is ``~ 4 log(2/delta) / eta^2``, the familiar
    ``Theta(eta^{-2} log m)`` of Theorem 4.4 with a practical constant.
    """
    if not (0.0 < eta < 1.0):
        raise ValueError(f"distortion eta must lie in (0, 1), got {eta}")
    m = max(2, int(m))
    delta = delta if delta is not None else 1.0 / (m ** 2)
    if not (0.0 < delta < 1.0):
        raise ValueError(f"failure probability delta must lie in (0, 1), got {delta}")
    gap = eta - math.log1p(eta)
    return max(1, math.ceil(2.0 * math.log(2.0 / delta) / gap))


def resistance_sketch_eta(k: int, m: int, delta: Optional[float] = None) -> Optional[float]:
    """Tightest accuracy bound a ``k``-row sketch honours at ambient dimension ``m``.

    The inverse of :func:`resistance_sketch_dimension` in ``eta``: the
    smallest ``eta`` in ``(0, 1)`` with
    ``resistance_sketch_dimension(m, eta, delta) <= k``, or ``None`` when
    even ``eta -> 1`` needs more than ``k`` rows.  The serving layer uses
    this to *widen* the accuracy bound of a sketched oracle that has been
    repaired under edge insertion: the repaired embedding is a genuine
    Kane-Nelson sketch of the mutated graph with the same ``k`` rows but a
    larger ambient dimension ``m + appended``, so the bound it still honours
    is exactly this function at the new ambient dimension (the growth is
    logarithmic -- ``delta`` defaults to ``1/m^2`` -- hence tiny for short
    deltas).
    """
    if k < 1:
        raise ValueError(f"sketch dimension k must be positive, got {k}")
    hi = 1.0 - 1e-12
    if resistance_sketch_dimension(m, hi, delta) > k:
        return None
    lo = 1e-12
    if resistance_sketch_dimension(m, lo, delta) <= k:
        return lo
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if resistance_sketch_dimension(m, mid, delta) <= k:
            hi = mid
        else:
            lo = mid
    return hi


def achlioptas_matrix(
    k: int, m: int, rng: Optional[np.random.Generator] = None, seed: Optional[int] = None
) -> np.ndarray:
    """Achlioptas' random sign projection ``Q in R^{k x m}`` with ``Q_ij = +/- 1/sqrt(k)``."""
    if k < 1 or m < 1:
        raise ValueError(f"matrix dimensions must be positive, got k={k}, m={m}")
    rng = rng if rng is not None else np.random.default_rng(seed)
    signs = rng.integers(0, 2, size=(k, m)) * 2 - 1
    return signs / math.sqrt(k)


def kane_nelson_random_bits(m: int, delta: Optional[float] = None) -> int:
    """Seed length ``O(log(1/delta) log m)`` of Theorem 4.4."""
    m = max(2, int(m))
    delta = delta if delta is not None else 1.0 / (m ** 2)
    return max(1, math.ceil(math.log2(1.0 / delta) * math.log2(m)))


def kane_nelson_matrix(
    k: int,
    m: int,
    seed_bits: int,
    column_sparsity: Optional[int] = None,
) -> np.ndarray:
    """Sparse JL matrix ``Q in R^{k x m}`` expanded deterministically from ``seed_bits``.

    Every column receives ``s`` nonzero entries of value ``+/- 1/sqrt(s)`` in
    rows chosen pseudorandomly from the shared seed; this is the
    Kane-Nelson sparse embedding shape.  Because the expansion is a
    deterministic function of ``seed_bits``, every vertex of the Broadcast
    Congested Clique reconstructs the *same* matrix after the leader has
    broadcast the seed -- the property the paper needs.

    Parameters
    ----------
    k:
        Number of sketch rows.
    m:
        Ambient dimension (number of matrix rows being sketched, i.e. edges).
    seed_bits:
        The shared random seed (an integer whose bit-length is
        ``O(log(1/delta) log m)``; see :func:`kane_nelson_random_bits`).
    column_sparsity:
        Number of nonzeros per column ``s``; defaults to ``ceil(sqrt(k))``.
    """
    if k < 1 or m < 1:
        raise ValueError(f"matrix dimensions must be positive, got k={k}, m={m}")
    s = column_sparsity if column_sparsity is not None else max(1, math.ceil(math.sqrt(k)))
    s = min(s, k)
    # The seed keys a PRG; all vertices run the same expansion.
    prg = np.random.default_rng(int(seed_bits) & ((1 << 63) - 1))
    Q = np.zeros((k, m))
    scale = 1.0 / math.sqrt(s)
    for column in range(m):
        rows = prg.choice(k, size=s, replace=False)
        signs = prg.integers(0, 2, size=s) * 2 - 1
        Q[rows, column] = signs * scale
    return Q


def _floyd_distinct_rows(
    prg: np.random.Generator, m: int, k: int, s: int
) -> np.ndarray:
    """``s`` distinct rows in ``[0, k)`` for each of ``m`` columns (vectorised).

    Floyd's sampling algorithm run column-parallel: iteration ``t`` draws one
    row uniformly from ``[0, k - s + t]``; a column that already holds the draw
    takes ``k - s + t`` itself, which no earlier iteration can have produced.
    Each column ends with a uniform ``s``-subset after ``s`` bulk draws -- no
    per-column Python loop, no ``(m, k)`` scratch matrix.
    """
    base = k - s
    chosen = np.empty((m, s), dtype=np.int64)
    for t in range(s):
        draw = prg.integers(0, base + t + 1, size=m)
        if t:
            duplicate = (chosen[:, :t] == draw[:, None]).any(axis=1)
            draw = np.where(duplicate, base + t, draw)
        chosen[:, t] = draw
    return chosen


def kane_nelson_sketch(
    k: int,
    m: int,
    seed_bits: int,
    column_sparsity: Optional[int] = None,
) -> sp.csr_matrix:
    """Sparse-format Kane-Nelson transform for large ambient dimensions.

    Same matrix shape contract as :func:`kane_nelson_matrix` -- ``s`` distinct
    nonzero rows per column with values ``+/- 1/sqrt(s)``, expanded
    deterministically from the shared ``seed_bits`` -- but materialised as a
    ``scipy.sparse`` CSR matrix by batched draws instead of a dense ``k x m``
    array filled by an ``m``-iteration Python loop.  At ``m ~ 10^5`` edges the
    dense expansion costs hundreds of megabytes and seconds of loop time; this
    construction is ``O(m s)`` memory and a handful of vectorised draws, which
    is what the sketched resistance oracle builds its sketched incidence from.

    The two constructions draw from the same distribution but consume the PRG
    differently, so for a fixed seed they produce different (each internally
    deterministic) matrices.
    """
    if k < 1 or m < 1:
        raise ValueError(f"matrix dimensions must be positive, got k={k}, m={m}")
    s = column_sparsity if column_sparsity is not None else max(1, math.ceil(math.sqrt(k)))
    s = min(s, k)
    prg = np.random.default_rng(int(seed_bits) & ((1 << 63) - 1))
    rows = _floyd_distinct_rows(prg, m, k, s)
    signs = prg.integers(0, 2, size=(m, s)) * 2 - 1
    data = signs.ravel() / math.sqrt(s)
    cols = np.repeat(np.arange(m, dtype=np.int64), s)
    return sp.coo_matrix((data, (rows.ravel(), cols)), shape=(k, m)).tocsr()


def kane_nelson_built_columns(
    k: int,
    m: int,
    seed_bits: int,
    column_indices,
    column_sparsity: Optional[int] = None,
) -> np.ndarray:
    """Re-derive columns of the *built* :func:`kane_nelson_sketch` matrix.

    Returns a dense ``(k, len(column_indices))`` block equal (exactly) to the
    selected columns of ``kane_nelson_sketch(k, m, seed_bits)``, without
    materialising the whole sparse matrix as an object the caller must keep
    alive.  The batched construction consumes its PRG jointly across all
    ``m`` columns, so a single column cannot be drawn in isolation; this
    replays the same vectorised draws (``O(m s)`` work, no factorisation, no
    ``k x m`` dense scratch) and slices out the requested columns.  This is
    what lets a sketched resistance oracle that only stored ``(seed_bits,
    ambient index)`` per edge recover the exact column a *built* edge
    contributed, turning a reweight or removal into a rank-1 embedding
    repair; appended edges use :func:`kane_nelson_column` instead.
    """
    if k < 1 or m < 1:
        raise ValueError(f"matrix dimensions must be positive, got k={k}, m={m}")
    indices = np.asarray(list(column_indices), dtype=np.int64)
    if indices.size and (indices.min() < 0 or indices.max() >= m):
        raise ValueError(f"column indices out of range [0, {m})")
    s = column_sparsity if column_sparsity is not None else max(1, math.ceil(math.sqrt(k)))
    s = min(s, k)
    prg = np.random.default_rng(int(seed_bits) & ((1 << 63) - 1))
    rows = _floyd_distinct_rows(prg, m, k, s)
    signs = prg.integers(0, 2, size=(m, s)) * 2 - 1
    block = np.zeros((k, indices.size))
    scale = 1.0 / math.sqrt(s)
    for j, column in enumerate(indices):
        block[rows[column], j] = signs[column] * scale
    return block


def kane_nelson_column(
    k: int,
    seed_bits: int,
    column_index: int,
    column_sparsity: Optional[int] = None,
) -> np.ndarray:
    """One dense Kane-Nelson column for an *appended* ambient coordinate.

    Same per-column distribution as :func:`kane_nelson_sketch` /
    :func:`kane_nelson_matrix` -- ``s`` distinct rows (default
    ``ceil(sqrt(k))``) with values ``+/- 1/sqrt(s)`` -- expanded
    deterministically from ``(seed_bits, column_index)``.  This is the
    single owner of the column shape for repairs: the sketched resistance
    oracle appends incidence rows under edge insertion by drawing the new
    sketch column here, so the built and repaired-in columns can never
    drift apart if the distribution is ever tuned.  The PRG stream is keyed
    by the column index, so the draw is independent of the built matrix and
    of other appended columns.
    """
    if k < 1:
        raise ValueError(f"sketch dimension k must be positive, got {k}")
    s = column_sparsity if column_sparsity is not None else max(1, math.ceil(math.sqrt(k)))
    s = min(s, k)
    prg = np.random.default_rng([int(seed_bits) & ((1 << 63) - 1), int(column_index)])
    rows = prg.choice(k, size=s, replace=False)
    signs = prg.integers(0, 2, size=s) * 2 - 1
    column = np.zeros(k)
    column[rows] = signs / math.sqrt(s)
    return column


def sample_kane_nelson(
    m: int,
    eta: float,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    delta: Optional[float] = None,
) -> Tuple[np.ndarray, int, int]:
    """Sample a Kane-Nelson sketch: returns ``(Q, k, seed_bits)``.

    The leader's coin flips are modelled by drawing ``seed_bits`` uniformly;
    everything downstream of the seed is deterministic.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    k = jl_sketch_dimension(m, eta, delta)
    bits = kane_nelson_random_bits(m, delta)
    seed_value = int(rng.integers(0, 2 ** min(62, bits)))
    return kane_nelson_matrix(k, m, seed_value), k, seed_value


def sketch_preserves_norm(Q: np.ndarray, x: np.ndarray, eta: float) -> bool:
    """Whether ``(1-eta)||x|| <= ||Qx|| <= (1+eta)||x||`` for this particular ``x``."""
    x = np.asarray(x, dtype=float)
    norm = float(np.linalg.norm(x))
    sketched = float(np.linalg.norm(Q @ x))
    if norm == 0.0:
        return sketched == 0.0
    return (1.0 - eta) * norm <= sketched <= (1.0 + eta) * norm
