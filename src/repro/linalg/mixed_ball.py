"""Projection onto the mixed norm ball (Section 4.3, Lemma 4.10).

The subproblem solved inside every centering step of the LP solver is

    maximise  a^T x   subject to   ||x||_2 + ||l^{-1} x||_inf <= 1,

for vectors ``a, l in R^m`` with ``l > 0`` distributed over the network.  Every
feasible point splits the unit budget into the part ``t = ||l^{-1} x||_inf``
spent on the infinity-norm term and the part ``1 - t`` available to the 2-norm
term, so the problem becomes a concave one-dimensional maximisation over ``t``:

    g(t) = max { a^T x : ||x||_2 <= 1 - t,  |x_i| <= t l_i }.

For a fixed ``t`` the inner maximiser saturates the coordinates with the
largest ratios ``|a_i| / l_i`` at ``+/- t l_i`` and spends the remaining 2-norm
budget proportionally to ``a`` on the rest; locating the saturated prefix only
needs the prefix sums of ``|a_k| l_k``, ``l_k^2`` and ``a_k^2`` in the sorted
order, which is exactly the quantity the Broadcast Congested Clique algorithm
of Lemma 4.10 aggregates.  A ternary search over the concave ``g`` then finds
the optimum with ``O(log(U m / eps))`` evaluations, i.e. ``O(log^2(U m / eps))``
rounds once the prefix-sum broadcasts are charged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.congest.ledger import CommunicationPrimitives


@dataclass
class MixedBallResult:
    """Output of the mixed-norm-ball projection."""

    x: np.ndarray
    value: float
    t: float
    saturated: int
    rounds: float = 0.0
    evaluations: int = 0

    def constraint_value(self, l: np.ndarray) -> float:
        """``||x||_2 + ||l^{-1} x||_inf`` of the returned point."""
        l = np.asarray(l, dtype=float)
        if self.x.size == 0:
            return 0.0
        return float(np.linalg.norm(self.x) + np.max(np.abs(self.x) / l))


def _validate(a: np.ndarray, l: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=float)
    l = np.asarray(l, dtype=float)
    if a.shape != l.shape or a.ndim != 1:
        raise ValueError(
            f"a and l must be 1-D vectors of equal length, got {a.shape} and {l.shape}"
        )
    if np.any(l <= 0):
        raise ValueError("the scaling vector l must be strictly positive")
    return a, l


class _SortedInstance:
    """Coordinates sorted by decreasing ``|a_i| / l_i`` with prefix sums."""

    def __init__(self, a: np.ndarray, l: np.ndarray):
        self.a = a
        self.l = l
        self.m = a.shape[0]
        self.order = np.argsort(-np.abs(a) / l, kind="stable")
        a_sorted = np.abs(a[self.order])
        l_sorted = l[self.order]
        self.abs_a = a_sorted
        self.l_sorted = l_sorted
        self.prefix_al = np.concatenate([[0.0], np.cumsum(a_sorted * l_sorted)])
        self.prefix_l2 = np.concatenate([[0.0], np.cumsum(l_sorted ** 2)])
        self.prefix_a2 = np.concatenate([[0.0], np.cumsum(a_sorted ** 2)])
        self.total_a2 = float(self.prefix_a2[-1])

    def inner_maximum(self, t: float) -> Tuple[float, int, float]:
        """Maximise ``a^T x`` s.t. ``||x||_2 <= 1 - t`` and ``|x_i| <= t l_i``.

        Returns ``(value, saturated_prefix, mu)`` with ``x_i = mu a_i`` on the
        unsaturated coordinates.
        """
        budget = 1.0 - t
        if budget < 0 or self.total_a2 <= 0:
            return 0.0, 0, 0.0

        # Grow the saturated prefix while (a) the 2-norm budget still covers it
        # and (b) the next coordinate genuinely wants to exceed its box.
        i = 0
        while i < self.m:
            sat_l2_next = self.prefix_l2[i + 1]
            if t * t * sat_l2_next > budget * budget + 1e-15:
                break
            rest_a2 = max(0.0, self.total_a2 - self.prefix_a2[i])
            remaining_sq = max(0.0, budget * budget - t * t * self.prefix_l2[i])
            mu = math.sqrt(remaining_sq / rest_a2) if rest_a2 > 1e-300 else 0.0
            if mu * self.abs_a[i] <= t * self.l_sorted[i] + 1e-15:
                break
            i += 1

        rest_a2 = max(0.0, self.total_a2 - self.prefix_a2[i])
        remaining_sq = max(0.0, budget * budget - t * t * self.prefix_l2[i])
        mu = math.sqrt(remaining_sq / rest_a2) if rest_a2 > 1e-300 else 0.0
        value = t * self.prefix_al[i] + mu * rest_a2
        return float(value), i, float(mu)

    def build_solution(self, t: float, saturated: int, mu: float) -> np.ndarray:
        x = np.zeros(self.m)
        for rank, idx in enumerate(self.order):
            if rank < saturated:
                x[idx] = math.copysign(t * self.l[idx], self.a[idx]) if self.a[idx] != 0 else 0.0
            else:
                x[idx] = mu * self.a[idx]
        return x


def project_mixed_ball(
    a: np.ndarray,
    l: np.ndarray,
    tolerance: float = 1e-10,
    comm: Optional[CommunicationPrimitives] = None,
) -> MixedBallResult:
    """Solve ``argmax { a^T x : ||x||_2 + ||l^{-1} x||_inf <= 1 }`` (Lemma 4.10).

    A ternary search over the concave split parameter ``t``; each evaluation
    locates the saturated prefix from the three prefix sums.  When a ``comm``
    tracker is passed, every evaluation charges one scalar broadcast and three
    global sums, reproducing the lemma's round count.
    """
    a, l = _validate(a, l)
    m = a.shape[0]
    if m == 0 or not np.any(a):
        return MixedBallResult(x=np.zeros(m), value=0.0, t=0.0, saturated=0)

    instance = _SortedInstance(a, l)
    evaluations = 0

    def g(t: float) -> Tuple[float, int, float]:
        nonlocal evaluations
        evaluations += 1
        if comm is not None:
            comm.broadcast_scalar("binary-search pivot |a_i|/l_i")
            comm.global_sum("prefix sum |a_k| l_k")
            comm.global_sum("prefix sum l_k^2")
            comm.global_sum("prefix sum a_k^2")
        return instance.inner_maximum(t)

    lo, hi = 0.0, 1.0
    iterations = max(10, math.ceil(math.log(1.0 / max(tolerance, 1e-15)) / math.log(1.5)))
    for _ in range(iterations):
        t1 = lo + (hi - lo) / 3.0
        t2 = hi - (hi - lo) / 3.0
        v1, _, _ = g(t1)
        v2, _, _ = g(t2)
        if v1 < v2:
            lo = t1
        else:
            hi = t2
    t_star = 0.5 * (lo + hi)
    value, saturated, mu = g(t_star)
    x = instance.build_solution(t_star, saturated, mu)

    rounds = comm.ledger.total_rounds if comm is not None else 0.0
    return MixedBallResult(
        x=x,
        value=float(value),
        t=float(t_star),
        saturated=int(saturated),
        rounds=rounds,
        evaluations=evaluations,
    )


def _waterfill_inner(a: np.ndarray, l: np.ndarray, t: float) -> np.ndarray:
    """Independent inner maximiser (binary search on the scale ``mu``).

    Maximises ``a^T x`` subject to ``||x||_2 <= 1 - t`` and ``|x_i| <= t l_i``
    without any prefix-sum machinery; used only as a cross-check.
    """
    budget = 1.0 - t
    caps = t * l
    if budget <= 0:
        return np.zeros_like(a)
    x_full = np.sign(a) * caps
    if np.linalg.norm(x_full) <= budget:
        return x_full
    hi_mu = budget / max(1e-300, np.min(np.abs(a[np.abs(a) > 0]))) if np.any(a) else 0.0
    hi_mu = max(hi_mu, float(np.max(caps / np.maximum(np.abs(a), 1e-300))))
    lo_mu = 0.0
    for _ in range(200):
        mu = 0.5 * (lo_mu + hi_mu)
        x = np.sign(a) * np.minimum(mu * np.abs(a), caps)
        if np.linalg.norm(x) > budget:
            hi_mu = mu
        else:
            lo_mu = mu
    return np.sign(a) * np.minimum(lo_mu * np.abs(a), caps)


def project_mixed_ball_reference(
    a: np.ndarray, l: np.ndarray, grid: int = 2000
) -> MixedBallResult:
    """Dense reference maximiser: exhaustive scan over ``t`` with an independent
    water-filling inner solver.  Used by the tests and benchmarks to validate
    :func:`project_mixed_ball`."""
    a, l = _validate(a, l)
    m = a.shape[0]
    if m == 0 or not np.any(a):
        return MixedBallResult(x=np.zeros(m), value=0.0, t=0.0, saturated=0)

    best_value = -math.inf
    best_x = np.zeros(m)
    best_t = 0.0
    for t in np.linspace(0.0, 1.0, grid, endpoint=False):
        x = _waterfill_inner(a, l, float(t))
        value = float(a @ x)
        if value > best_value:
            best_value, best_x, best_t = value, x, float(t)
    saturated = (
        int(np.sum(np.isclose(np.abs(best_x), best_t * l, rtol=1e-6, atol=1e-12)))
        if best_t > 0
        else 0
    )
    return MixedBallResult(x=best_x, value=best_value, t=best_t, saturated=saturated)
