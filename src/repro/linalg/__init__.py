"""Numerical linear-algebra toolkit of the LP solver (Section 4.1 and 4.3).

* :mod:`repro.linalg.jl` -- Johnson-Lindenstrauss transforms: the classical
  Achlioptas sign-matrix construction (needs m independent coins, infeasible in
  a broadcast model) and the Kane-Nelson construction (Theorem 4.4) driven by a
  polylogarithmic shared random seed.
* :mod:`repro.linalg.leverage` -- leverage scores: exact computation and the
  JL-sketched approximation ``ComputeLeverageScores`` (Algorithm 6, Lemma 4.5).
* :mod:`repro.linalg.lewis` -- regularised ell_p Lewis weights: the exact
  fixed-point reference and ``ComputeApxWeights`` / ``ComputeInitialWeights``
  (Algorithms 7 and 8, Lemma 4.6).
* :mod:`repro.linalg.mixed_ball` -- projection onto the mixed norm ball
  ``||x||_2 + ||l^{-1} x||_inf <= 1`` (Section 4.3, Lemma 4.10): the BCC
  binary-search algorithm and a dense reference maximiser.
* :mod:`repro.linalg.sparse_backend` -- the scipy.sparse CSR Laplacian
  backend: vectorised matrix construction from cached edge arrays, grounded
  ``splu`` factorisations, batched effective-resistance solves and the
  ``backend={'auto','dense','sparse'}`` selection used across the graphs,
  solvers and sparsify layers.
* :mod:`repro.linalg.resistance` -- the JL-sketched effective-resistance
  oracle (Spielman-Srivastava over Theorem 4.4): ``O(n log m / eta^2)``
  memory, O(k) pair queries, built by blocked grounded solves against the
  sketched incidence; serves large-n resistance queries past the dense
  oracle's ``n^2`` gate.
"""

from repro.linalg.jl import (
    achlioptas_matrix,
    kane_nelson_matrix,
    kane_nelson_random_bits,
    kane_nelson_sketch,
    resistance_sketch_dimension,
    sketch_preserves_norm,
)
from repro.linalg.leverage import (
    approximate_edge_leverage_scores,
    approximate_leverage_scores,
    exact_leverage_scores,
    LeverageScoreReport,
)
from repro.linalg.resistance import SketchedResistanceOracle
from repro.linalg.lewis import (
    compute_apx_weights,
    compute_initial_weights,
    exact_lewis_weights,
    regularized_lewis_weights,
)
from repro.linalg.mixed_ball import (
    MixedBallResult,
    project_mixed_ball,
    project_mixed_ball_reference,
)
from repro.linalg.sparse_backend import (
    GroundedLaplacianSolver,
    effective_resistances_sparse,
    incidence_csr,
    laplacian_csr,
    laplacian_solver,
    resolve_backend,
)

__all__ = [
    "achlioptas_matrix",
    "kane_nelson_matrix",
    "kane_nelson_random_bits",
    "kane_nelson_sketch",
    "resistance_sketch_dimension",
    "sketch_preserves_norm",
    "exact_leverage_scores",
    "approximate_leverage_scores",
    "approximate_edge_leverage_scores",
    "LeverageScoreReport",
    "SketchedResistanceOracle",
    "exact_lewis_weights",
    "regularized_lewis_weights",
    "compute_apx_weights",
    "compute_initial_weights",
    "MixedBallResult",
    "project_mixed_ball",
    "project_mixed_ball_reference",
    "GroundedLaplacianSolver",
    "effective_resistances_sparse",
    "incidence_csr",
    "laplacian_csr",
    "laplacian_solver",
    "resolve_backend",
]
