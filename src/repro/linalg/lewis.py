"""Regularised ell_p Lewis weights (Definition 4.3, Algorithms 7 and 8, Lemma 4.6).

The ell_p Lewis weights of a full-rank ``M in R^{m x n}`` are the unique
``w > 0`` with ``w = sigma(W^{1/2 - 1/p} M)``; equivalently
``w_i = tau_i(w)^{p/2}`` with ``tau_i(w) = m_i^T (M^T W^{1-2/p} M)^{-1} m_i``.
The LP solver uses the *regularised* weights ``g(x) = w_p(M_x) + c0`` with
``p = 1 - 1/log(4m)`` and ``c0 = n/(2m)``.

``compute_apx_weights`` follows the structure of Algorithm 7 -- a damped
fixed-point iteration in which every leverage-score computation is performed by
the JL-sketched ``ComputeLeverageScores`` -- using the Cohen-Peng contraction
``w <- w^{1-p/2} sigma(W^{1/2-1/p} M)^{p/2}``, which converges geometrically for
``p < 4`` from any positive start.  (The exact update of Lee-Sidford is an
equivalent damped step; the contraction form is used here for numerical
robustness at float64, see DESIGN.md.)  ``compute_initial_weights`` mirrors
Algorithm 8's homotopy from ``p = 2`` down to the target ``p``; because the
contraction is global the homotopy is optional (``faithful=False`` skips it)
but its ``O(sqrt(n) log(mn))`` outer-iteration count is what enters the round
accounting of Lemma 4.6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.congest.ledger import CommunicationPrimitives
from repro.linalg.leverage import (
    approximate_edge_leverage_scores,
    approximate_leverage_scores,
    exact_leverage_scores,
)


def lewis_p_parameter(m: int) -> float:
    """The paper's choice ``p = 1 - 1/log(4m)`` (Definition 4.3)."""
    m = max(2, int(m))
    return 1.0 - 1.0 / math.log(4 * m)


def lewis_regularisation(m: int, n: int) -> float:
    """The regularisation constant ``c0 = n / (2m)`` (Definition 4.3)."""
    return float(n) / (2.0 * float(m))


def _reweighted(M, w: np.ndarray, p: float):
    """``W^{1/2 - 1/p} M`` for dense or scipy-sparse ``M``."""
    scale = w ** (0.5 - 1.0 / p)
    if sp.issparse(M):
        return (sp.diags(scale) @ M).tocsr()
    return scale[:, None] * M


def exact_lewis_weights(
    M: np.ndarray,
    p: float,
    tol: float = 1e-12,
    max_iterations: int = 500,
) -> np.ndarray:
    """Exact (to ``tol``) ell_p Lewis weights via the fixed-point iteration."""
    M = np.asarray(M, dtype=float)
    m, n = M.shape
    if not (0 < p < 4):
        raise ValueError(f"the fixed-point iteration requires 0 < p < 4, got {p}")
    w = np.full(m, n / m, dtype=float)
    for _ in range(max_iterations):
        sigma = exact_leverage_scores(_reweighted(M, w, p))
        sigma = np.maximum(sigma, 1e-300)
        w_next = (w ** (1.0 - p / 2.0)) * (sigma ** (p / 2.0))
        if np.max(np.abs(w_next - w) / np.maximum(w, 1e-300)) < tol:
            return w_next
        w = w_next
    return w


def regularized_lewis_weights(M: np.ndarray, tol: float = 1e-10) -> np.ndarray:
    """The regularised weights ``g = w_p(M) + c0`` of Definition 4.3 (exact reference)."""
    M = np.asarray(M, dtype=float)
    m, n = M.shape
    p = lewis_p_parameter(m)
    return exact_lewis_weights(M, p, tol=tol) + lewis_regularisation(m, n)


@dataclass
class LewisWeightReport:
    """Approximate Lewis weights with iteration/round bookkeeping."""

    weights: np.ndarray
    iterations: int
    rounds: float = 0.0
    leverage_calls: int = 0
    p: float = 1.0
    history: List[float] = field(default_factory=list)


def apx_weight_iteration_count(p: float, n: int, eta: float) -> int:
    """The ``T = ceil(80 (p/2 + 2/p) log(p n / (32 eta)))`` bound of Algorithm 7."""
    if not (0 < eta):
        raise ValueError(f"eta must be positive, got {eta}")
    n = max(2, int(n))
    inner = max(2.0, p * n / (32.0 * eta))
    return max(1, math.ceil(80.0 * (p / 2.0 + 2.0 / p) * math.log(inner)))


def compute_apx_weights(
    M=None,
    p: float = 1.0,
    w0: Optional[np.ndarray] = None,
    eta: float = 1e-2,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    comm: Optional[CommunicationPrimitives] = None,
    use_sketching: bool = True,
    max_iterations: Optional[int] = None,
    graph=None,
    resistance_oracle=None,
    rows=None,
) -> LewisWeightReport:
    """``ComputeApxWeights(M, p, w0, eta)`` (Algorithm 7).

    Returns ``w`` with ``||w_p(M)^{-1} (w_p(M) - w)||_inf <= eta`` with high
    probability (Lemma 4.6).

    Parameters
    ----------
    M:
        The ``m x n`` matrix (in the LP solver, ``M = D A`` for diagonal
        ``D``), dense or scipy sparse.  May be ``None`` when ``graph`` is
        given.
    p:
        Lewis weight exponent, ``p in [1 - 1/log(4m), 2]`` in the LP solver.
    w0:
        Warm start (defaults to the uniform vector ``n/m``).
    eta:
        Target multiplicative accuracy.
    use_sketching:
        If True, leverage scores are computed with the JL sketch of Algorithm 6;
        if False, exactly (faster at the tiny sizes of the test suite).
    graph:
        Graph mode: a :class:`~repro.graphs.graph.WeightedGraph` whose
        weighted incidence matrix ``M = W_G^{1/2} B`` is the implicit input.
        Each fixed-point iteration then reads leverage scores as weighted
        effective resistances (Spielman-Srivastava) instead of running the
        generic Algorithm 6 regression loop.
    resistance_oracle:
        Serving-tier hook for graph mode: a resident cached
        :class:`~repro.linalg.resistance.SketchedResistanceOracle` of
        ``graph``.  Iterates whose row scaling is uniform (the default start
        is) read their scores straight off the shared oracle -- leverage
        scores are invariant under uniform row scaling -- so the serving
        layer's ``k`` embedding solves are never re-paid.  The eta contract
        is enforced eagerly: a non-exact oracle whose (possibly
        repair-widened) ``eta_effective`` is looser than the per-iteration
        leverage accuracy ``min(1/2, eta/4)`` is rejected up front.
    rows:
        Graph mode for incidence-structured *matrices* whose rows collapse
        onto repeated vertex pairs (parallel edges): a pair ``(row_pair,
        row_norm2)`` declaring that matrix row ``r`` is a scalar multiple of
        graph edge ``row_pair[r]`` with squared Euclidean norm
        ``row_norm2[r]``.  The weights then live on *rows* (length
        ``len(row_pair)``, not ``graph.m``) and each iteration computes one
        resistance per distinct pair -- parallel rows share it -- so the cost
        stays one grounded factorisation regardless of multiplicity.
        ``graph``'s edge weights must equal the aggregated squared row norms
        ``bincount(row_pair, row_norm2)`` (validated up front), which is what
        makes the uniform-iterate oracle shortcut sound.
    """
    if not (0 < p < 4):
        raise ValueError(f"p must lie in (0, 4), got {p}")
    rng = rng if rng is not None else np.random.default_rng(seed)
    leverage_eta = min(0.5, eta / 4.0)

    graph_edges = None
    if graph is not None:
        if (
            resistance_oracle is not None
            and not resistance_oracle.exact
            and resistance_oracle.eta_effective > leverage_eta
        ):
            raise ValueError(
                f"shared oracle guarantees eta={resistance_oracle.eta_effective}, "
                f"looser than the per-iteration leverage accuracy {leverage_eta} "
                f"needed for eta={eta}"
            )
        graph_edges = graph.edge_array()
        if rows is not None:
            row_pair = np.asarray(rows[0], dtype=np.int64)
            row_norm2 = np.asarray(rows[1], dtype=float)
            aggregated = np.bincount(row_pair, weights=row_norm2, minlength=graph.m)
            if not np.allclose(aggregated, graph_edges[2], rtol=1e-9, atol=0.0):
                raise ValueError(
                    "rows mode requires graph edge weights equal to the "
                    "aggregated squared row norms bincount(row_pair, row_norm2)"
                )
            rows = (row_pair, row_norm2)
            m = row_pair.shape[0]
        else:
            m = graph.m
        # rank of the weighted incidence matrix
        n = graph.n - len(graph.connected_components())
    elif sp.issparse(M):
        M = M.tocsr().astype(float)
        m, n = M.shape
    else:
        M = np.asarray(M, dtype=float)
        m, n = M.shape

    w = np.full(m, n / m, dtype=float) if w0 is None else np.array(w0, dtype=float)
    if np.any(w <= 0):
        raise ValueError("the warm-start weights must be strictly positive")

    # The contraction factor of the fixed-point map is |1 - p/2|, so
    # O(log(1/eta)) damped iterations reach accuracy eta; Algorithm 7's stated
    # bound is an upper bound on this count.
    contraction = max(abs(1.0 - p / 2.0), 0.5)
    needed = max(3, math.ceil(math.log(max(m, 4) / eta) / max(1e-9, -math.log(contraction))))
    budget = apx_weight_iteration_count(p, n, eta)
    iterations = min(needed, budget)
    if max_iterations is not None:
        iterations = min(iterations, max_iterations)

    report = LewisWeightReport(weights=w, iterations=0, p=p)
    for j in range(iterations):
        if graph is not None:
            sigma = _graph_iteration_scores(
                graph,
                graph_edges,
                w,
                p,
                leverage_eta,
                use_sketching,
                resistance_oracle,
                rng,
                rows=rows,
            )
            report.leverage_calls += 1
            if comm is not None:
                comm.laplacian_solve(1.0, "edge leverage scores via resistance oracle")
        elif use_sketching:
            reweighted = _reweighted(M, w, p)
            lev = approximate_leverage_scores(
                reweighted, eta=leverage_eta, rng=rng, comm=comm
            )
            sigma = lev.scores
            report.leverage_calls += 1
        else:
            reweighted = _reweighted(M, w, p)
            sigma = exact_leverage_scores(reweighted)
            report.leverage_calls += 1
            if comm is not None:
                comm.laplacian_solve(1.0, "exact leverage scores (reference mode)")
        sigma = np.maximum(sigma, 1e-300)
        w_next = (w ** (1.0 - p / 2.0)) * (sigma ** (p / 2.0))
        report.history.append(float(np.max(np.abs(w_next - w) / np.maximum(w, 1e-300))))
        w = np.maximum(w_next, 1e-300)
        report.iterations = j + 1
    report.weights = w
    report.rounds = comm.ledger.total_rounds if comm is not None else 0.0
    return report


def _graph_iteration_scores(
    graph,
    graph_edges,
    w: np.ndarray,
    p: float,
    leverage_eta: float,
    use_sketching: bool,
    resistance_oracle,
    rng: np.random.Generator,
    rows=None,
) -> np.ndarray:
    """One fixed-point iteration's leverage scores in graph mode.

    The reweighted matrix is ``W^{1/2-1/p} W_G^{1/2} B``, i.e. the incidence
    matrix of ``graph`` with edge weights ``w_G * w^{1-2/p}``.  A *uniform*
    iterate scales every row alike, which leaves leverage scores unchanged --
    those iterations read straight off the shared base-graph oracle (or build
    one for the base graph).  Non-uniform iterates genuinely change the
    spectrum and compute fresh scores on the reweighted graph.

    With ``rows`` (see :func:`compute_apx_weights`) the weights live on the
    rows of an incidence-structured matrix: the reweighted graph carries pair
    weights ``bincount(row_pair, w^{1-2/p} row_norm2)`` and row ``r``'s score
    is ``w_r^{1-2/p} row_norm2_r R(pair_r)`` -- one resistance per distinct
    pair, shared by all its parallel rows.
    """
    from repro.graphs.graph import WeightedGraph

    u, v, w_graph = graph_edges
    s2 = w ** (1.0 - 2.0 / p)
    uniform = bool(np.all(s2 == s2[0]))
    if rows is None:
        if uniform:
            if resistance_oracle is not None or use_sketching:
                lev = approximate_edge_leverage_scores(
                    graph,
                    leverage_eta,
                    oracle=resistance_oracle,
                    seed=int(rng.integers(0, 2 ** 31)),
                )
                return lev.scores
            return _exact_edge_leverage_scores(graph)
        reweighted_w = w_graph * s2
        if use_sketching:
            reweighted = WeightedGraph(graph.n)
            reweighted.add_edges(u, v, reweighted_w)
            lev = approximate_edge_leverage_scores(
                reweighted, leverage_eta, seed=int(rng.integers(0, 2 ** 31))
            )
            return lev.scores
        return reweighted_w * _pair_resistances_from_edges(graph.n, u, v, reweighted_w)

    row_pair, row_norm2 = rows
    if uniform:
        # pair weights are s2[0] * w_graph: resistances of the base graph,
        # rescaled -- and the rescaling cancels against s2 in the score
        if resistance_oracle is not None or use_sketching:
            lev = approximate_edge_leverage_scores(
                graph,
                leverage_eta,
                oracle=resistance_oracle,
                seed=int(rng.integers(0, 2 ** 31)),
            )
            base_resist = lev.scores / w_graph
        else:
            base_resist = _exact_edge_resistances(graph)
        return row_norm2 * base_resist[row_pair]
    pair_w = np.bincount(row_pair, weights=s2 * row_norm2, minlength=w_graph.shape[0])
    if use_sketching:
        reweighted = WeightedGraph(graph.n)
        reweighted.add_edges(u, v, pair_w)
        lev = approximate_edge_leverage_scores(
            reweighted, leverage_eta, seed=int(rng.integers(0, 2 ** 31))
        )
        resist = lev.scores / pair_w
    else:
        resist = _pair_resistances_from_edges(graph.n, u, v, pair_w)
    return s2 * row_norm2 * resist[row_pair]


#: below this vertex count, exact resistances go through a dense eigh-based
#: pseudoinverse of the Laplacian -- far cheaper than a sparse factorisation
#: at the sizes the LP solver's auxiliary graphs actually have
_DENSE_RESISTANCE_LIMIT = 128


def _pair_resistances_from_edges(
    n: int, u: np.ndarray, v: np.ndarray, weights: np.ndarray, graph=None
) -> np.ndarray:
    """Effective resistance of every edge of the weighted edge list.

    Small vertex sets assemble the dense Laplacian and read resistances off
    its pseudoinverse (exact for any component structure, and an order of
    magnitude cheaper than setting up a sparse factorisation at these
    sizes); larger ones go through the sparse grounded factorisation,
    reusing ``graph`` when the caller already has one.
    """
    if n <= _DENSE_RESISTANCE_LIMIT:
        L = np.zeros((n, n))
        np.add.at(L, (u, u), weights)
        np.add.at(L, (v, v), weights)
        np.add.at(L, (u, v), -weights)
        np.add.at(L, (v, u), -weights)
        pinv = np.linalg.pinv(L, hermitian=True)
        diag = np.diag(pinv)
        return diag[u] + diag[v] - 2.0 * pinv[u, v]
    from repro.graphs.graph import WeightedGraph
    from repro.linalg.sparse_backend import GroundedLaplacianSolver

    if graph is None:
        graph = WeightedGraph(n)
        graph.add_edges(u, v, weights)
    return GroundedLaplacianSolver(graph).pair_resistances(u, v)


def _exact_edge_resistances(graph) -> np.ndarray:
    """Exact effective resistance of every edge of ``graph``."""
    u, v, weights = graph.edge_array()
    return _pair_resistances_from_edges(graph.n, u, v, weights, graph=graph)


def _exact_edge_leverage_scores(graph) -> np.ndarray:
    """Exact edge leverage scores ``w_e R(u, v)`` via one grounded factorisation.

    Spielman-Srivastava: the leverage score of edge ``e = (u, v)`` in
    ``W^{1/2} B`` is ``w_e`` times the effective resistance of the pair, so
    one sparse grounded factorisation plus ``m`` triangular solves replaces
    the dense pseudoinverse of the reweighted incidence matrix.
    """
    _, _, weights = graph.edge_array()
    return weights * _exact_edge_resistances(graph)


def initial_weight_iteration_count(n: int, m: int, p_target: float) -> int:
    """The ``O(sqrt(n) (p + 1/p) log(mn))`` homotopy length of Algorithm 8 / Lemma 4.6."""
    n = max(2, int(n))
    m = max(2, int(m))
    return max(1, math.ceil(math.sqrt(n) * (p_target + 1.0 / p_target) * math.log(m * n)))


def compute_initial_weights(
    M: np.ndarray,
    p_target: Optional[float] = None,
    eta: float = 1e-2,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    comm: Optional[CommunicationPrimitives] = None,
    use_sketching: bool = False,
    faithful: bool = False,
) -> LewisWeightReport:
    """``ComputeInitialWeights(p_target, eta)`` (Algorithm 8).

    Computes the regularisation-free Lewis weights of ``M`` at ``p_target``
    starting from the ell_2 weights (= leverage scores).  With
    ``faithful=True`` the homotopy over ``p`` is executed step by step exactly
    as in Algorithm 8 (``O(sqrt(n) log(mn))`` outer steps); the default takes
    the direct route allowed by the global contraction and charges the same
    round budget to the ledger so that complexity experiments stay faithful.
    """
    M = np.asarray(M, dtype=float)
    m, n = M.shape
    p_target = p_target if p_target is not None else lewis_p_parameter(m)
    rng = rng if rng is not None else np.random.default_rng(seed)

    homotopy_steps = initial_weight_iteration_count(n, m, p_target)
    total_leverage_calls = 0
    total_iterations = 0

    if faithful:
        p = 2.0
        c_k = 2.0 * math.log(4 * m)
        w = np.full(m, 1.0 / (2.0 * c_k), dtype=float)
        step = (2.0 - p_target) / homotopy_steps
        for _ in range(homotopy_steps):
            p_new = max(p_target, p - step)
            inner = compute_apx_weights(
                M,
                p_new,
                w0=w,
                eta=max(0.25, eta),
                rng=rng,
                comm=comm,
                use_sketching=use_sketching,
                max_iterations=2,
            )
            w = inner.weights
            total_leverage_calls += inner.leverage_calls
            total_iterations += inner.iterations
            p = p_new
            if p <= p_target:
                break
        final = compute_apx_weights(
            M, p_target, w0=w, eta=eta, rng=rng, comm=comm, use_sketching=use_sketching
        )
    else:
        if comm is not None:
            comm.ledger.charge(
                "initial_weights_homotopy",
                0.0,
                f"direct route; faithful homotopy would take {homotopy_steps} outer steps",
            )
        final = compute_apx_weights(
            M, p_target, w0=None, eta=eta, rng=rng, comm=comm, use_sketching=use_sketching
        )
    final.leverage_calls += total_leverage_calls
    final.iterations += total_iterations
    return final
