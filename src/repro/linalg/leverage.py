"""Leverage scores: exact and JL-approximated (Algorithm 6, Lemma 4.5).

The leverage scores of a full-column-rank matrix ``M in R^{m x n}`` are
``sigma(M) = diag(M (M^T M)^{-1} M^T)``.  Computing the projection matrix
explicitly costs ``m^2`` work and is far too expensive; Algorithm 6 instead
uses ``sigma(M)_i = || M (M^T M)^{-1} M^T e_i ||_2^2`` and a Johnson-
Lindenstrauss sketch ``Q`` with ``k = Theta(eta^{-2} log m)`` rows, so that only
``k`` regression problems (solves with ``M^T M``) are needed.  In the LP solver
``M = D A`` for a diagonal ``D`` and a graph-structured ``A``, so each solve is
one Laplacian/SDD solve and costs ``T(n, m)`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np
import scipy.sparse as sp

from repro.congest.ledger import CommunicationPrimitives
from repro.linalg.jl import jl_sketch_dimension, kane_nelson_matrix, kane_nelson_random_bits

if TYPE_CHECKING:  # annotation-only imports (no runtime graph dependency)
    from repro.graphs.graph import WeightedGraph
    from repro.linalg.resistance import SketchedResistanceOracle

SolveFn = Callable[[np.ndarray], np.ndarray]


def _as_matrix(M):
    """Pass scipy sparse matrices through untouched, densify everything else."""
    if sp.issparse(M):
        return M.tocsr()
    M = np.asarray(M, dtype=float)
    if M.ndim != 2:
        raise ValueError(f"M must be a matrix, got array of ndim {M.ndim}")
    return M


@dataclass
class LeverageScoreReport:
    """Approximate leverage scores plus the cost bookkeeping of Lemma 4.5."""

    scores: np.ndarray
    sketch_rows: int
    random_bits: int
    rounds: float = 0.0
    solves: int = 0


def exact_leverage_scores(M, ridge: float = 0.0) -> np.ndarray:
    """Exact leverage scores ``diag(M (M^T M)^{-1} M^T)``.

    ``M`` may be dense or scipy sparse (e.g. a CSR incidence matrix); the Gram
    matrix is always small (``n x n``) and inverted densely, while the row
    products stay in the input's format.  ``ridge`` optionally regularises
    nearly rank-deficient Gram matrices.
    """
    M = _as_matrix(M)
    gram = (M.T @ M)
    if sp.issparse(gram):
        gram = gram.toarray()
    if ridge > 0:
        gram = gram + ridge * np.eye(gram.shape[0])
    gram_inv = np.linalg.pinv(gram)
    if sp.issparse(M):
        # sigma_i = row_i(M) gram_inv row_i(M)^T without any m x m matrix;
        # M.multiply keeps the product restricted to M's sparsity pattern.
        return np.asarray(M.multiply(M @ gram_inv).sum(axis=1)).ravel()
    return np.einsum("ij,jk,ik->i", M, gram_inv, M)


def approximate_leverage_scores(
    M: np.ndarray,
    eta: float,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    gram_solver: Optional[SolveFn] = None,
    comm: Optional[CommunicationPrimitives] = None,
) -> LeverageScoreReport:
    """``ComputeLeverageScores(M, eta)`` (Algorithm 6).

    Returns ``sigma_apx`` with ``(1-eta) sigma_i <= sigma_apx_i <= (1+eta) sigma_i``
    for all ``i`` with high probability (Lemma 4.5).

    Parameters
    ----------
    M:
        The ``m x n`` matrix (``m >= n``, full column rank), dense or scipy
        sparse; sparse inputs keep every product a sparse matvec.
    eta:
        Target multiplicative accuracy.
    gram_solver:
        Optional function solving ``(M^T M) z = y``; defaults to a dense
        pseudoinverse.  In the LP solver this is the Laplacian/SDD solver.
    comm:
        Optional communication-primitive tracker; when given, the leader
        election, seed broadcast, matrix-vector products and Gram solves are
        charged to its ledger as in Lemma 4.5.
    """
    M = _as_matrix(M)
    m, n = M.shape
    if not (0 < eta):
        raise ValueError(f"eta must be positive, got {eta}")
    rng = rng if rng is not None else np.random.default_rng(seed)

    # Theorem 4.4 usage: the JL accuracy parameter is eta/4 so that the squared
    # norms are within (1 +/- eta) after squaring (see the proof of Lemma 4.5).
    eta_tilde = eta / 4.0
    k = jl_sketch_dimension(m, eta_tilde)
    bits = kane_nelson_random_bits(m)

    if comm is not None:
        comm.leader_election("highest-ID leader for the JL seed")
        comm.broadcast_random_bits(bits, "Kane-Nelson seed")
    seed_value = int(rng.integers(0, 2 ** min(62, bits)))
    if k >= m:
        # Sketching past the ambient dimension gains nothing: the identity map
        # preserves norms exactly and the round count is the same Theta(k).
        k = m
        Q = np.eye(m)
    else:
        Q = kane_nelson_matrix(k, m, seed_value)

    if gram_solver is None:
        gram = M.T @ M
        if sp.issparse(gram):
            gram = gram.toarray()
        gram_pinv = np.linalg.pinv(gram)
        gram_solver = lambda y: gram_pinv @ y  # noqa: E731 - local closure

    scores = np.zeros(m)
    solves = 0
    for j in range(k):
        q_row = Q[j, :]
        # p^(j) = M (M^T M)^{-1} M^T Q^(j)
        y = M.T @ q_row
        z = gram_solver(y)
        p = M @ z
        scores += p * p
        solves += 1
        if comm is not None:
            comm.matvec("M^T q")
            comm.matvec("M z")
            comm.laplacian_solve(1.0, "solve in M^T M")

    rounds = comm.ledger.total_rounds if comm is not None else 0.0
    return LeverageScoreReport(
        scores=scores,
        sketch_rows=k,
        random_bits=bits,
        rounds=rounds,
        solves=solves,
    )


def approximate_edge_leverage_scores(
    graph: "WeightedGraph",
    eta: float,
    oracle: Optional["SketchedResistanceOracle"] = None,
    seed: Optional[int] = 0,
) -> LeverageScoreReport:
    """Edge leverage scores of ``M = W^{1/2} B`` via a sketched resistance oracle.

    For the incidence matrix the general machinery of
    :func:`approximate_leverage_scores` specialises: ``M^T M = L`` and the
    leverage score of edge ``e = (u, v)`` is its weighted effective resistance
    ``sigma_e = w_e R(u, v)`` (Spielman-Srivastava).  The sketched quantities
    Algorithm 6 computes -- ``k`` Laplacian solves against JL-sketched
    right-hand sides -- are therefore exactly the
    :class:`~repro.linalg.resistance.SketchedResistanceOracle` embedding, and
    passing the serving layer's cached ``oracle`` makes sparsifier
    construction and resistance serving share one artifact instead of paying
    the ``k`` solves twice.

    Scores satisfy ``(1 - eta) sigma_e <= sigma_apx_e <= (1 + eta) sigma_e``
    for every edge with high probability (Lemma 4.5 semantics).  An ``oracle``
    built with a smaller ``eta`` only tightens the bound.
    """
    from repro.linalg.resistance import SketchedResistanceOracle

    if oracle is None:
        oracle = SketchedResistanceOracle(graph, eta=eta, seed=seed)
    elif not oracle.exact and oracle.eta_effective > eta:
        # an identity-sketch (exact) oracle satisfies any eta regardless of
        # the nominal bound it was requested with; a repaired oracle must be
        # judged by its widened bound, not the one it was built with
        raise ValueError(
            f"shared oracle guarantees eta={oracle.eta_effective}, "
            f"looser than requested {eta}"
        )
    return LeverageScoreReport(
        scores=oracle.edge_leverage_scores(graph),
        sketch_rows=oracle.k,
        random_bits=oracle.random_bits,
        solves=oracle.k,
    )
