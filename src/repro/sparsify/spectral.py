"""Spectral sparsification via repeated spanners (Algorithms 1, 4 and 5).

Both variants follow the same outline (Algorithm 1): for ``ceil(log m)``
iterations compute a ``t``-bundle spanner of the current graph, keep each
non-bundle edge with probability 1/4 while quadrupling its weight, and return
the final bundle together with the surviving sampled edges.

* :func:`spectral_sparsify_apriori` (Algorithm 4) performs the 1/4-sampling
  up-front in every iteration.  This requires the sampling vertex to tell its
  neighbour the outcome, which is only possible in the unicast CONGEST model.
* :func:`spectral_sparsify` (Algorithm 5) defers the sampling: it maintains the
  existence probability ``p(e)`` of every edge and lets the probabilistic
  spanner of Section 3.1 evaluate the coin flips lazily, communicating the
  outcomes implicitly.  This is the Broadcast-CONGEST algorithm of Theorem 1.2.

Lemma 3.3 states that the two algorithms produce identically distributed
outputs; ``tests/sparsify`` checks this empirically on small graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph, canonical_edge
from repro.spanners.bundle import bundle_spanner

EdgeKey = Tuple[int, int]


def bundle_size(n: int, eps: float, scale: float = 1.0) -> int:
    """The paper's bundle size ``t = 400 log^2(n) / eps^2`` (line 1 of Algorithm 5).

    ``scale`` scales the leading constant only; it exists because at
    laptop-scale ``n`` the literal constant makes the bundle swallow the whole
    graph (see DESIGN.md, substitutions).  ``scale=1.0`` is the paper's value.
    """
    if eps <= 0:
        raise ValueError(f"error parameter eps must be positive, got {eps}")
    n = max(2, int(n))
    t = scale * 400.0 * (math.log2(n) ** 2) / (eps * eps)
    return max(1, math.ceil(t))


def stretch_parameter(n: int) -> int:
    """The paper's stretch parameter ``k = ceil(log n)``."""
    return max(1, math.ceil(math.log2(max(2, n))))


@dataclass
class IterationRecord:
    """Bookkeeping of one outer iteration of the sparsification loop."""

    iteration: int
    bundle_edges: int
    rejected_edges: int
    remaining_edges: int
    rounds: int


@dataclass
class SparsifierResult:
    """Output of the sparsification algorithms.

    ``sparsifier`` is the reweighted subgraph ``H``; ``rounds`` is the
    Broadcast-CONGEST round count (only meaningful for the ad-hoc variant);
    ``orientation`` maps each sparsifier edge to a ``(tail, head)`` pair such
    that out-degrees are small (Theorem 1.2).
    """

    sparsifier: WeightedGraph
    rounds: int = 0
    iterations: List[IterationRecord] = field(default_factory=list)
    orientation: Dict[EdgeKey, Tuple[int, int]] = field(default_factory=dict)
    final_probabilities: Dict[EdgeKey, float] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of edges of the sparsifier."""
        return self.sparsifier.m

    def certify(self, graph: WeightedGraph, eps: float, slack: float = 1e-7) -> bool:
        """Empirically verify Definition 2.1 against ``graph``.

        Degenerate sparsifiers (empty or disconnected relative to a connected
        input) are reported as failures, never certified vacuously.
        """
        from repro.graphs.laplacian import is_spectral_sparsifier

        return is_spectral_sparsifier(graph, self.sparsifier, eps, slack=slack)

    def max_out_degree(self) -> int:
        degrees: Dict[int, int] = {v: 0 for v in range(self.sparsifier.n)}
        for tail, _head in self.orientation.values():
            degrees[tail] += 1
        return max(degrees.values()) if degrees else 0


def _iteration_count(m: int) -> int:
    return max(1, math.ceil(math.log2(max(2, m))))


def spectral_sparsify(
    graph: WeightedGraph,
    eps: float,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    t_override: Optional[int] = None,
    bundle_scale: float = 1.0,
    k_override: Optional[int] = None,
) -> SparsifierResult:
    """Algorithm 5: Broadcast-CONGEST spectral sparsification with ad-hoc sampling.

    Returns a ``(1 +/- eps)``-spectral sparsifier of ``graph`` with high
    probability (Theorem 1.2) together with the round count and an orientation
    of its edges with small out-degree.

    Parameters
    ----------
    graph:
        Weighted input graph (positive weights).
    eps:
        Target quality of the sparsifier.
    t_override / bundle_scale / k_override:
        Experiment knobs; the defaults follow the paper exactly.
    """
    if graph.m == 0:
        return SparsifierResult(sparsifier=graph.copy())
    rng = rng if rng is not None else np.random.default_rng(seed)
    n = graph.n
    k = k_override if k_override is not None else stretch_parameter(n)
    t = t_override if t_override is not None else bundle_size(n, eps, bundle_scale)

    current = graph.copy()
    probability: Dict[EdgeKey, float] = {edge.key: 1.0 for edge in graph.edges()}
    result = SparsifierResult(sparsifier=WeightedGraph(n))
    last_bundle: Set[EdgeKey] = set()
    last_orientation: Dict[EdgeKey, Tuple[int, int]] = {}

    for iteration in range(1, _iteration_count(graph.m) + 1):
        restricted_p = {(u, v): probability[(u, v)] for (u, v, _) in current.edge_list()}
        bundle = bundle_spanner(current, probabilities=restricted_p, k=k, t=t, rng=rng)
        last_bundle = set(bundle.bundle)
        last_orientation = bundle.orientation()
        result.rounds += bundle.rounds

        # E_i <- E_{i-1} \ C_i ; p <- 1 on the bundle, p/4 and w*4 elsewhere.
        next_graph = WeightedGraph(n)
        for u, v, weight in current.edge_list():
            key = (u, v)
            if key in bundle.rejected:
                probability.pop(key, None)
                continue
            if key in bundle.bundle:
                probability[key] = 1.0
                next_graph.add_edge(u, v, weight)
            else:
                probability[key] = probability[key] / 4.0
                next_graph.add_edge(u, v, 4.0 * weight)
        result.iterations.append(
            IterationRecord(
                iteration=iteration,
                bundle_edges=len(bundle.bundle),
                rejected_edges=len(bundle.rejected),
                remaining_edges=next_graph.m,
                rounds=bundle.rounds,
            )
        )
        current = next_graph

    # Final step: keep the last bundle, sample the remaining edges with their
    # maintained probability (lines 11-15 of Algorithm 5).
    sparsifier = WeightedGraph(n)
    orientation: Dict[EdgeKey, Tuple[int, int]] = {}
    broadcasts_per_vertex: Dict[int, int] = {}
    for u, v, weight in current.edge_list():
        key = (u, v)
        if key in last_bundle:
            sparsifier.add_edge(u, v, weight)
            if key in last_orientation:
                orientation[key] = last_orientation[key]
            else:
                orientation[key] = (u, v)
            continue
        # the endpoint with the smaller identifier performs the sampling
        sampler = u
        if rng.random() < probability[key]:
            sparsifier.add_edge(u, v, weight)
            orientation[key] = (sampler, v)
            broadcasts_per_vertex[sampler] = broadcasts_per_vertex.get(sampler, 0) + 1
    if broadcasts_per_vertex:
        result.rounds += max(broadcasts_per_vertex.values())
    else:
        result.rounds += 1

    result.sparsifier = sparsifier
    result.orientation = orientation
    result.final_probabilities = dict(probability)
    return result


def spectral_sparsify_apriori(
    graph: WeightedGraph,
    eps: float,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    t_override: Optional[int] = None,
    bundle_scale: float = 1.0,
    k_override: Optional[int] = None,
) -> SparsifierResult:
    """Algorithm 4: the a-priori sampling variant (CONGEST-only reference).

    Identical output distribution to :func:`spectral_sparsify` (Lemma 3.3) but
    samples the non-bundle edges eagerly in every iteration, which requires
    unicast communication of the sampling outcome.
    """
    if graph.m == 0:
        return SparsifierResult(sparsifier=graph.copy())
    rng = rng if rng is not None else np.random.default_rng(seed)
    n = graph.n
    k = k_override if k_override is not None else stretch_parameter(n)
    t = t_override if t_override is not None else bundle_size(n, eps, bundle_scale)

    current = graph.copy()
    result = SparsifierResult(sparsifier=WeightedGraph(n))
    orientation: Dict[EdgeKey, Tuple[int, int]] = {}

    for iteration in range(1, _iteration_count(graph.m) + 1):
        bundle = bundle_spanner(current, probabilities=None, k=k, t=t, rng=rng)
        result.rounds += bundle.rounds
        bundle_orientation = bundle.orientation()

        next_graph = WeightedGraph(n)
        for key in sorted(bundle.bundle):
            u, v = key
            next_graph.add_edge(u, v, current.weight(u, v))
            orientation[key] = bundle_orientation.get(key, (u, v))
        sampled = 0
        for u, v, weight in current.edge_list():
            if (u, v) in bundle.bundle:
                continue
            if rng.random() < 0.25:
                next_graph.add_edge(u, v, 4.0 * weight)
                orientation[(u, v)] = (u, v)
                sampled += 1
        result.iterations.append(
            IterationRecord(
                iteration=iteration,
                bundle_edges=len(bundle.bundle),
                rejected_edges=0,
                remaining_edges=next_graph.m,
                rounds=bundle.rounds,
            )
        )
        current = next_graph

    result.sparsifier = current
    result.orientation = {
        key: orientation.get(key, (min(key), max(key)))
        for key in (edge.key for edge in current.edges())
    }
    return result
