"""Spectral sparsification via repeated spanners (Algorithms 1, 4 and 5).

Both variants follow the same outline (Algorithm 1): for ``ceil(log m)``
iterations compute a ``t``-bundle spanner of the current graph, keep each
non-bundle edge with probability 1/4 while quadrupling its weight, and return
the final bundle together with the surviving sampled edges.

* :func:`spectral_sparsify_apriori` (Algorithm 4) performs the 1/4-sampling
  up-front in every iteration.  This requires the sampling vertex to tell its
  neighbour the outcome, which is only possible in the unicast CONGEST model.
* :func:`spectral_sparsify` (Algorithm 5) defers the sampling: it maintains the
  existence probability ``p(e)`` of every edge and lets the probabilistic
  spanner of Section 3.1 evaluate the coin flips lazily, communicating the
  outcomes implicitly.  This is the Broadcast-CONGEST algorithm of Theorem 1.2.

Lemma 3.3 states that the two algorithms produce identically distributed
outputs; ``tests/sparsify`` checks this empirically on small graphs.

Implementation note: the outer loops are array-native.  The residual edge set,
the maintained probabilities and the growing weights all live in numpy arrays
aligned with the input graph's canonical edge columns
(:class:`repro.graphs.graph.EdgeView`); one iteration's ``p/4`` / ``w*4``
reweighting is a pair of masked array operations, and the final 1/4-sampling
draws its coins in one batched ``rng.random(count)`` call -- which consumes
the *same* underlying random stream as the historical per-edge scalar calls,
so seeded outputs are bit-identical to the per-edge implementation
(``tests/sparsify/test_vectorized_equivalence.py``).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.graph import EdgeView, WeightedGraph
from repro.spanners.bundle import bundle_spanner

EdgeKey = Tuple[int, int]


def bundle_size(n: int, eps: float, scale: float = 1.0) -> int:
    """The paper's bundle size ``t = 400 log^2(n) / eps^2`` (line 1 of Algorithm 5).

    ``scale`` scales the leading constant only; it exists because at
    laptop-scale ``n`` the literal constant makes the bundle swallow the whole
    graph (see DESIGN.md, substitutions).  ``scale=1.0`` is the paper's value.
    """
    if eps <= 0:
        raise ValueError(f"error parameter eps must be positive, got {eps}")
    n = max(2, int(n))
    t = scale * 400.0 * (math.log2(n) ** 2) / (eps * eps)
    return max(1, math.ceil(t))


def stretch_parameter(n: int) -> int:
    """The paper's stretch parameter ``k = ceil(log n)``."""
    return max(1, math.ceil(math.log2(max(2, n))))


@dataclass
class IterationRecord:
    """Bookkeeping of one outer iteration of the sparsification loop."""

    iteration: int
    bundle_edges: int
    rejected_edges: int
    remaining_edges: int
    rounds: int


@dataclass
class SparsifierResult:
    """Output of the sparsification algorithms.

    ``sparsifier`` is the reweighted subgraph ``H``; ``rounds`` is the
    Broadcast-CONGEST round count (only meaningful for the ad-hoc variant);
    ``orientation`` maps each sparsifier edge to a ``(tail, head)`` pair such
    that out-degrees are small (Theorem 1.2).  ``backend`` records the
    linear-algebra backend the producer was asked to use and is the default
    certification path of :meth:`certify`.
    """

    sparsifier: WeightedGraph
    rounds: int = 0
    iterations: List[IterationRecord] = field(default_factory=list)
    orientation: Dict[EdgeKey, Tuple[int, int]] = field(default_factory=dict)
    final_probabilities: Dict[EdgeKey, float] = field(default_factory=dict)
    backend: str = "auto"

    @property
    def size(self) -> int:
        """Number of edges of the sparsifier."""
        return self.sparsifier.m

    def certify(
        self,
        graph: WeightedGraph,
        eps: float,
        slack: float = 1e-7,
        backend: Optional[str] = None,
    ) -> bool:
        """Empirically verify Definition 2.1 against ``graph``.

        Degenerate sparsifiers (empty or disconnected relative to a connected
        input) are reported as failures, never certified vacuously.

        ``backend`` selects the certification path (see
        :func:`repro.graphs.laplacian.spectral_approximation_factor`):
        ``'dense'`` is the ``np.linalg.eigh`` reference, ``'sparse'`` solves
        the reduced generalised eigenproblem with ``scipy.sparse.linalg`` and
        is the scalable route for ``n >= 10^3``, and ``'auto'`` switches on
        graph size.  ``None`` (default) uses the backend this result was
        produced with, so a large-``n`` sparsifier built on the sparse path
        never falls back to dense certification.
        """
        from repro.graphs.laplacian import is_spectral_sparsifier

        return is_spectral_sparsifier(
            graph,
            self.sparsifier,
            eps,
            slack=slack,
            backend=self.backend if backend is None else backend,
        )

    def max_out_degree(self) -> int:
        if not self.orientation:
            return 0
        tails = Counter(tail for tail, _head in self.orientation.values())
        return max(tails.values())


def _iteration_count(m: int) -> int:
    return max(1, math.ceil(math.log2(max(2, m))))


def spectral_sparsify(
    graph: WeightedGraph,
    eps: float,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    t_override: Optional[int] = None,
    bundle_scale: float = 1.0,
    k_override: Optional[int] = None,
    backend: str = "auto",
) -> SparsifierResult:
    """Algorithm 5: Broadcast-CONGEST spectral sparsification with ad-hoc sampling.

    Returns a ``(1 +/- eps)``-spectral sparsifier of ``graph`` with high
    probability (Theorem 1.2) together with the round count and an orientation
    of its edges with small out-degree.

    Parameters
    ----------
    graph:
        Weighted input graph (positive weights).
    eps:
        Target quality of the sparsifier.
    t_override / bundle_scale / k_override:
        Experiment knobs; the defaults follow the paper exactly.
    backend:
        Linear-algebra backend recorded on the result and used as the default
        certification path of :meth:`SparsifierResult.certify`.  The
        sparsification itself is combinatorial and backend-independent.
    """
    if graph.m == 0:
        return SparsifierResult(sparsifier=graph.copy(), backend=backend)
    rng = rng if rng is not None else np.random.default_rng(seed)
    n = graph.n
    k = k_override if k_override is not None else stretch_parameter(n)
    t = t_override if t_override is not None else bundle_size(n, eps, bundle_scale)

    view = EdgeView.from_graph(graph)  # private mutable weight column
    base_m = view.base_m
    edge_u, edge_v, weights = view.u, view.v, view.w
    alive = np.ones(base_m, dtype=bool)
    probability = np.ones(base_m)
    result = SparsifierResult(sparsifier=WeightedGraph(n), backend=backend)
    last_bundle_idx = np.zeros(0, dtype=np.int64)
    last_orientation: Dict[EdgeKey, Tuple[int, int]] = {}

    for iteration in range(1, _iteration_count(graph.m) + 1):
        # the bundle keeps the mask it was handed (EdgeView contract), so give
        # it a copy: this loop mutates `alive` in place right below
        bundle = bundle_spanner(
            view.subview(alive.copy()),
            probabilities=probability,
            k=k,
            t=t,
            rng=rng,
            record_broadcasts=False,
        )
        bundle_idx = np.fromiter(
            bundle.bundle_idx, dtype=np.int64, count=len(bundle.bundle_idx)
        )
        rejected_idx = np.fromiter(
            bundle.rejected_idx, dtype=np.int64, count=len(bundle.rejected_idx)
        )
        last_bundle_idx = bundle_idx
        last_orientation = bundle.orientation()
        result.rounds += bundle.rounds

        # E_i <- E_{i-1} \ C_i ; p <- 1 on the bundle, p/4 and w*4 elsewhere.
        bundle_mask = np.zeros(base_m, dtype=bool)
        bundle_mask[bundle_idx] = True
        alive[rejected_idx] = False
        survivors = alive & ~bundle_mask
        probability[survivors] /= 4.0
        weights[survivors] *= 4.0
        probability[bundle_idx] = 1.0
        result.iterations.append(
            IterationRecord(
                iteration=iteration,
                bundle_edges=len(bundle.bundle),
                rejected_edges=len(bundle.rejected),
                remaining_edges=int(np.count_nonzero(alive)),
                rounds=bundle.rounds,
            )
        )

    # Final step: keep the last bundle, sample the remaining edges with their
    # maintained probability (lines 11-15 of Algorithm 5).  The coins are
    # drawn in one batch over the non-bundle edges in canonical order, which
    # consumes the rng stream exactly like per-edge draws would.
    alive_idx = np.flatnonzero(alive)
    bundle_mask = np.zeros(base_m, dtype=bool)
    bundle_mask[last_bundle_idx] = True
    in_bundle = bundle_mask[alive_idx]
    kept_bundle = alive_idx[in_bundle]
    candidates = alive_idx[~in_bundle]
    coins = rng.random(candidates.size)
    kept_sampled = candidates[coins < probability[candidates]]

    keep_idx = np.sort(np.concatenate([kept_bundle, kept_sampled]))
    sparsifier = WeightedGraph(n)
    sparsifier.add_edges(edge_u[keep_idx], edge_v[keep_idx], weights[keep_idx])

    orientation: Dict[EdgeKey, Tuple[int, int]] = {}
    for a, b in zip(edge_u[kept_bundle].tolist(), edge_v[kept_bundle].tolist()):
        orientation[(a, b)] = last_orientation.get((a, b), (a, b))
    # the endpoint with the smaller identifier performs the sampling
    for a, b in zip(edge_u[kept_sampled].tolist(), edge_v[kept_sampled].tolist()):
        orientation[(a, b)] = (a, b)
    if kept_sampled.size:
        result.rounds += int(np.bincount(edge_u[kept_sampled]).max())
    else:
        result.rounds += 1

    result.sparsifier = sparsifier
    result.orientation = orientation
    result.final_probabilities = dict(
        zip(
            zip(edge_u[alive_idx].tolist(), edge_v[alive_idx].tolist()),
            probability[alive_idx].tolist(),
        )
    )
    return result


def spectral_sparsify_apriori(
    graph: WeightedGraph,
    eps: float,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    t_override: Optional[int] = None,
    bundle_scale: float = 1.0,
    k_override: Optional[int] = None,
    backend: str = "auto",
) -> SparsifierResult:
    """Algorithm 4: the a-priori sampling variant (CONGEST-only reference).

    Identical output distribution to :func:`spectral_sparsify` (Lemma 3.3) but
    samples the non-bundle edges eagerly in every iteration, which requires
    unicast communication of the sampling outcome.
    """
    if graph.m == 0:
        return SparsifierResult(sparsifier=graph.copy(), backend=backend)
    rng = rng if rng is not None else np.random.default_rng(seed)
    n = graph.n
    k = k_override if k_override is not None else stretch_parameter(n)
    t = t_override if t_override is not None else bundle_size(n, eps, bundle_scale)

    view = EdgeView.from_graph(graph)
    base_m = view.base_m
    edge_u, edge_v, weights = view.u, view.v, view.w
    alive = np.ones(base_m, dtype=bool)
    result = SparsifierResult(sparsifier=WeightedGraph(n), backend=backend)
    orientation: Dict[EdgeKey, Tuple[int, int]] = {}

    for iteration in range(1, _iteration_count(graph.m) + 1):
        bundle = bundle_spanner(
            view.subview(alive),
            probabilities=None,
            k=k,
            t=t,
            rng=rng,
            record_broadcasts=False,
        )
        result.rounds += bundle.rounds
        bundle_orientation = bundle.orientation()
        for key in sorted(bundle.bundle):
            orientation[key] = bundle_orientation.get(key, key)

        bundle_idx = np.fromiter(
            bundle.bundle_idx, dtype=np.int64, count=len(bundle.bundle_idx)
        )
        bundle_mask = np.zeros(base_m, dtype=bool)
        bundle_mask[bundle_idx] = True
        alive_idx = np.flatnonzero(alive)
        candidates = alive_idx[~bundle_mask[alive_idx]]
        coins = rng.random(candidates.size)
        kept_sampled = candidates[coins < 0.25]
        weights[kept_sampled] *= 4.0
        for a, b in zip(edge_u[kept_sampled].tolist(), edge_v[kept_sampled].tolist()):
            orientation[(a, b)] = (a, b)

        alive = np.zeros(base_m, dtype=bool)
        alive[bundle_idx] = True
        alive[kept_sampled] = True
        result.iterations.append(
            IterationRecord(
                iteration=iteration,
                bundle_edges=len(bundle.bundle),
                rejected_edges=0,
                remaining_edges=int(np.count_nonzero(alive)),
                rounds=bundle.rounds,
            )
        )

    result.sparsifier = view.subview(alive).to_graph()
    alive_idx = np.flatnonzero(alive)
    result.orientation = {
        (a, b): orientation.get((a, b), (a, b))
        for a, b in zip(edge_u[alive_idx].tolist(), edge_v[alive_idx].tolist())
    }
    return result
