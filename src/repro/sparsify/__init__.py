"""Spectral sparsification in broadcast models (Section 3.2).

The sparsifier follows the Koutis-Xu framework with the fixed bundle size of
Kyng et al.: repeatedly compute a ``t``-bundle spanner, keep every non-bundle
edge with probability 1/4 (quadrupling its weight), and after ``ceil(log m)``
iterations return the last bundle plus the surviving sampled edges.

* :func:`~repro.sparsify.spectral.spectral_sparsify_apriori` -- Algorithm 4,
  the variant with up-front sampling (only realisable in the unicast CONGEST
  model; serves as the reference for the coupling of Lemma 3.3).
* :func:`~repro.sparsify.spectral.spectral_sparsify` -- Algorithm 5, the
  broadcast-feasible variant with ad-hoc sampling through the probabilistic
  spanner of Section 3.1.  This is the algorithm of Theorem 1.2.
"""

from repro.sparsify.spectral import (
    SparsifierResult,
    bundle_size,
    spectral_sparsify,
    spectral_sparsify_apriori,
)

__all__ = [
    "SparsifierResult",
    "bundle_size",
    "spectral_sparsify",
    "spectral_sparsify_apriori",
]
