"""t-bundle spanners (Algorithm 3, ``BundleSpanner``).

A ``t``-bundle spanner of stretch ``alpha`` is a union ``T = T_1 | ... | T_t``
where each ``T_i`` is an ``alpha``-spanner of ``G`` minus the previous spanners
(Definition 2.2).  ``BundleSpanner`` computes one by calling the probabilistic
spanner ``t`` times, each time removing the edges that were *decided* (``F+``
or ``F-``) by the previous call, exactly as in Algorithm 3:

    E_i  <-  E_{i-1} \\ (F+_i | F-_i)
    B    <-  union of the F+_i        (the bundle)
    C    <-  union of the F-_i        (the edges sampled out)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.spanners.probabilistic import ProbabilisticSpanner, SpannerResult

EdgeKey = Tuple[int, int]


@dataclass
class BundleResult:
    """Output of ``BundleSpanner``: the bundle ``B`` and the rejected set ``C``."""

    bundle: Set[EdgeKey] = field(default_factory=set)
    rejected: Set[EdgeKey] = field(default_factory=set)
    per_spanner: List[SpannerResult] = field(default_factory=list)
    rounds: int = 0

    def bundle_graph(self, graph: WeightedGraph) -> WeightedGraph:
        """The bundle as a reweighted subgraph of ``graph``."""
        return graph.subgraph_with_edges(self.bundle)

    def orientation(self) -> Dict[EdgeKey, Tuple[int, int]]:
        """Union of the per-spanner orientations (first writer wins)."""
        combined: Dict[EdgeKey, Tuple[int, int]] = {}
        for result in self.per_spanner:
            for key, arc in result.orientation.items():
                combined.setdefault(key, arc)
        return combined


def bundle_spanner(
    graph: WeightedGraph,
    probabilities: Optional[Dict[EdgeKey, float]] = None,
    k: int = 2,
    t: int = 1,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> BundleResult:
    """Compute a ``t``-bundle of ``(2k-1)``-spanners (Algorithm 3).

    Parameters
    ----------
    graph:
        Weighted input graph.
    probabilities:
        Maintained existence probability per edge (defaults to 1 everywhere).
    k:
        Stretch parameter of the individual spanners.
    t:
        Number of spanners in the bundle.
    """
    if t < 1:
        raise ValueError(f"bundle size t must be >= 1, got {t}")
    rng = rng if rng is not None else np.random.default_rng(seed)
    probabilities = dict(probabilities) if probabilities is not None else None

    result = BundleResult()
    remaining = graph.copy()
    for _ in range(t):
        if remaining.m == 0:
            break
        restricted_p = None
        if probabilities is not None:
            restricted_p = {
                edge.key: probabilities.get(edge.key, 1.0) for edge in remaining.edges()
            }
        spanner = ProbabilisticSpanner(
            remaining, probabilities=restricted_p, k=k, rng=rng
        ).run()
        result.per_spanner.append(spanner)
        result.bundle |= spanner.f_plus
        result.rejected |= spanner.f_minus
        result.rounds += spanner.rounds
        decided = spanner.f_plus | spanner.f_minus
        next_graph = WeightedGraph(remaining.n)
        for edge in remaining.edges():
            if edge.key not in decided:
                next_graph.add_edge(edge.u, edge.v, edge.weight)
        remaining = next_graph
    return result
