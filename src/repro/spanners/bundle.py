"""t-bundle spanners (Algorithm 3, ``BundleSpanner``).

A ``t``-bundle spanner of stretch ``alpha`` is a union ``T = T_1 | ... | T_t``
where each ``T_i`` is an ``alpha``-spanner of ``G`` minus the previous spanners
(Definition 2.2).  ``BundleSpanner`` computes one by calling the probabilistic
spanner ``t`` times, each time removing the edges that were *decided* (``F+``
or ``F-``) by the previous call, exactly as in Algorithm 3:

    E_i  <-  E_{i-1} \\ (F+_i | F-_i)
    B    <-  union of the F+_i        (the bundle)
    C    <-  union of the F-_i        (the edges sampled out)

The residual edge sets ``E_i`` are represented as boolean masks over the base
edge columns of an :class:`repro.graphs.graph.EdgeView` -- each layer is a
fresh subview, and removing the decided edges is one bulk index assignment
instead of a per-edge graph rebuild.  The rng call sequence matches the
historical rebuild-a-graph implementation exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.graphs.graph import EdgeView, WeightedGraph
from repro.spanners.probabilistic import (
    ProbabilisticSpanner,
    SpannerResult,
    resolve_edge_probabilities,
)

EdgeKey = Tuple[int, int]


@dataclass
class BundleResult:
    """Output of ``BundleSpanner``: the bundle ``B`` and the rejected set ``C``.

    ``bundle`` / ``rejected`` hold canonical edge keys; ``bundle_idx`` /
    ``rejected_idx`` hold the same edges as base indices of the view the
    bundle ran on (for bulk mask updates in the sparsification loop).
    """

    bundle: Set[EdgeKey] = field(default_factory=set)
    rejected: Set[EdgeKey] = field(default_factory=set)
    bundle_idx: Set[int] = field(default_factory=set)
    rejected_idx: Set[int] = field(default_factory=set)
    per_spanner: List[SpannerResult] = field(default_factory=list)
    rounds: int = 0

    def bundle_graph(self, graph: WeightedGraph) -> WeightedGraph:
        """The bundle as a reweighted subgraph of ``graph``."""
        return graph.subgraph_with_edges(self.bundle)

    def orientation(self) -> Dict[EdgeKey, Tuple[int, int]]:
        """Union of the per-spanner orientations (first writer wins)."""
        combined: Dict[EdgeKey, Tuple[int, int]] = {}
        for result in self.per_spanner:
            for key, arc in result.orientation.items():
                combined.setdefault(key, arc)
        return combined


def bundle_spanner(
    graph: Union[WeightedGraph, EdgeView],
    probabilities: Optional[Union[Dict[EdgeKey, float], np.ndarray]] = None,
    k: int = 2,
    t: int = 1,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    record_broadcasts: bool = True,
) -> BundleResult:
    """Compute a ``t``-bundle of ``(2k-1)``-spanners (Algorithm 3).

    Parameters
    ----------
    graph:
        Weighted input graph, or an :class:`EdgeView` of one (the
        sparsification loop passes views to avoid materialising residual
        graphs).
    probabilities:
        Maintained existence probability per edge: a dict keyed by canonical
        edge, or an array aligned with the view's base edge columns (defaults
        to 1 everywhere).
    k:
        Stretch parameter of the individual spanners.
    t:
        Number of spanners in the bundle.
    record_broadcasts:
        Whether the per-spanner broadcast transcripts are kept (rounds are
        accounted either way; the sparsification loops switch this off).
    """
    if t < 1:
        raise ValueError(f"bundle size t must be >= 1, got {t}")
    rng = rng if rng is not None else np.random.default_rng(seed)
    view = graph if isinstance(graph, EdgeView) else EdgeView.from_graph(graph)
    # Resolve dict/None probabilities once; every layer shares the array.
    prob = resolve_edge_probabilities(view, probabilities)

    result = BundleResult()
    alive = view.alive
    for _ in range(t):
        if not alive.any():
            break
        spanner = ProbabilisticSpanner(
            view.subview(alive),
            probabilities=prob,
            k=k,
            rng=rng,
            record_broadcasts=record_broadcasts,
        ).run()
        result.per_spanner.append(spanner)
        result.bundle |= spanner.f_plus
        result.rejected |= spanner.f_minus
        result.bundle_idx |= spanner.f_plus_idx
        result.rejected_idx |= spanner.f_minus_idx
        result.rounds += spanner.rounds
        decided = spanner.f_plus_idx | spanner.f_minus_idx
        alive = alive.copy()
        if decided:
            alive[np.fromiter(decided, dtype=np.int64, count=len(decided))] = False
    return result
