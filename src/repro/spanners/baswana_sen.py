"""The classical Baswana-Sen ``(2k-1)``-spanner (Appendix A of the paper).

This is the centralised reference the probabilistic spanner of Section 3.1 is
proved against (Lemma 3.1: setting ``p === 1`` in the probabilistic algorithm
reduces to this algorithm).  We follow the rephrased formulation of Becker et
al. reproduced in Appendix A:

1. ``R_1`` is the set of singleton clusters.
2. For phases ``i = 1 .. k-1``: every cluster of ``R_i`` is marked
   independently with probability ``n^{-1/k}``; marked clusters form
   ``R_{i+1}``.  A vertex ``v`` of an unmarked cluster looks at the lightest
   edge towards every adjacent cluster of ``R_i`` (the set ``Q_v``):

   * if no adjacent cluster is marked, all of ``Q_v`` joins the spanner and
     ``v`` leaves the clustering;
   * otherwise ``v`` joins the nearest marked cluster through edge ``(v, u)``,
     adds that edge and every edge of ``Q_v`` lighter than ``w(v, u)`` (ties by
     identifier) to the spanner.

3. Finally every vertex adds the lightest edge towards every adjacent cluster
   of ``R_k``.

Data model: like the probabilistic spanner/sparsify stack, the implementation
runs on the :class:`~repro.graphs.graph.EdgeView` adjacency -- per-vertex
``(neighbour, weight, edge_index)`` lists built once, with the set of edges
still alive tracked as a boolean mask over edge indices.  Removing the edges
between a vertex and a cluster is then an O(degree) mask update instead of
per-phase ``Set[Tuple[int, int]]`` rebuilds, and the random stream (one
uniform per sorted cluster centre per phase, drawn as one bulk
``rng.random``) is bit-for-bit the stream of the historical per-centre
implementation -- pinned by ``tests/spanners/test_baswana_sen_equivalence.py``
the same way the sparsify port is pinned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.graphs.graph import EdgeView, WeightedGraph, canonical_edge


@dataclass
class BaswanaSenResult:
    """Output of the Baswana-Sen algorithm."""

    spanner_edges: Set[Tuple[int, int]] = field(default_factory=set)
    clusters_per_phase: List[Dict[int, int]] = field(default_factory=list)

    def spanner_graph(self, graph: WeightedGraph) -> WeightedGraph:
        """The spanner as a subgraph of ``graph`` (same weights)."""
        return graph.subgraph_with_edges(self.spanner_edges)


def _lightest_edge_per_cluster(
    adjacency: List[List[Tuple[int, float, int]]],
    v: int,
    cluster_of: Dict[int, int],
    alive: np.ndarray,
) -> Dict[int, Tuple[float, int]]:
    """Map cluster id -> (weight, neighbour) of the lightest alive edge from ``v``.

    The minimum over ``(weight, neighbour)`` tuples is order-independent, so
    iterating the adjacency list matches the historical set-iteration result.
    """
    best: Dict[int, Tuple[float, int]] = {}
    for u, w, edge_index in adjacency[v]:
        if not alive[edge_index]:
            continue
        if u not in cluster_of:
            continue
        cluster = cluster_of[u]
        candidate = (w, u)
        if cluster not in best or candidate < best[cluster]:
            best[cluster] = candidate
    return best


def baswana_sen_spanner(
    graph: WeightedGraph,
    k: int,
    seed: Optional[int] = None,
    marking_bits: Optional[List[Dict[int, bool]]] = None,
) -> BaswanaSenResult:
    """Compute a ``(2k-1)``-spanner of ``graph`` with O(k n^{1+1/k}) expected edges.

    Parameters
    ----------
    graph:
        Weighted undirected input graph.
    k:
        Stretch parameter; the result is a ``(2k-1)``-spanner.
    seed:
        RNG seed for the cluster marking.
    marking_bits:
        Optional explicit marking decisions, ``marking_bits[i][center] = True``
        meaning the cluster with that centre is marked in phase ``i`` (0-based).
        Used by the coupling tests of Lemma 3.1/3.3.
    """
    if k < 1:
        raise ValueError(f"stretch parameter k must be >= 1, got {k}")
    rng = np.random.default_rng(seed)
    n = graph.n
    mark_probability = n ** (-1.0 / k)

    result = BaswanaSenResult()
    # cluster_of maps a *clustered* vertex to the id (= centre) of its cluster.
    cluster_of: Dict[int, int] = {v: v for v in range(n)}
    view = EdgeView.from_graph(graph)
    adjacency = view.adjacency_lists()
    # Edges still alive (not yet implicitly removed by the algorithm), as a
    # mask over the base edge indices of the view.
    alive = np.ones(view.base_m, dtype=bool)

    for phase in range(k - 1):
        result.clusters_per_phase.append(dict(cluster_of))
        centres = sorted(set(cluster_of.values()))
        if marking_bits is not None and phase < len(marking_bits):
            marked = {c for c in centres if marking_bits[phase].get(c, False)}
        else:
            # one bulk draw = the same stream as one scalar draw per centre
            draws = rng.random(len(centres))
            marked = {c for c, d in zip(centres, draws) if d < mark_probability}

        new_cluster_of: Dict[int, int] = {
            v: c for v, c in cluster_of.items() if c in marked
        }

        for v in sorted(cluster_of):
            if cluster_of[v] in marked:
                continue  # vertices of marked clusters do nothing this phase
            best = _lightest_edge_per_cluster(adjacency, v, cluster_of, alive)
            marked_options = {c: wu for c, wu in best.items() if c in marked}
            if not marked_options:
                # v leaves the clustering; connect to every adjacent cluster.
                for cluster, (w, u) in sorted(best.items()):
                    result.spanner_edges.add(canonical_edge(u, v))
                    _remove_cluster_edges(adjacency, v, cluster, cluster_of, alive)
            else:
                # join the nearest marked cluster
                w_join, u_join = min(
                    ((w, u) for (w, u) in marked_options.values()), key=lambda t: t
                )
                join_cluster = cluster_of[u_join]
                result.spanner_edges.add(canonical_edge(u_join, v))
                new_cluster_of[v] = join_cluster
                _remove_cluster_edges(adjacency, v, join_cluster, cluster_of, alive)
                for cluster, (w, u) in sorted(best.items()):
                    if cluster == join_cluster:
                        continue
                    if (w, u) < (w_join, u_join):
                        result.spanner_edges.add(canonical_edge(u, v))
                        _remove_cluster_edges(adjacency, v, cluster, cluster_of, alive)
        cluster_of = new_cluster_of

    # Final step: every vertex connects to each adjacent cluster of R_k.
    result.clusters_per_phase.append(dict(cluster_of))
    for v in range(n):
        best = _lightest_edge_per_cluster(adjacency, v, cluster_of, alive)
        for cluster, (w, u) in sorted(best.items()):
            if cluster_of.get(v) == cluster:
                continue  # intra-cluster edges are already covered by the tree
            result.spanner_edges.add(canonical_edge(u, v))
    return result


def _remove_cluster_edges(
    adjacency: List[List[Tuple[int, float, int]]],
    v: int,
    cluster: int,
    cluster_of: Dict[int, int],
    alive: np.ndarray,
) -> None:
    """Kill every alive edge between ``v`` and the given cluster (mask update)."""
    for u, _w, edge_index in adjacency[v]:
        if cluster_of.get(u) == cluster:
            alive[edge_index] = False
