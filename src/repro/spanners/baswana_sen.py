"""The classical Baswana-Sen ``(2k-1)``-spanner (Appendix A of the paper).

This is the centralised reference the probabilistic spanner of Section 3.1 is
proved against (Lemma 3.1: setting ``p === 1`` in the probabilistic algorithm
reduces to this algorithm).  We follow the rephrased formulation of Becker et
al. reproduced in Appendix A:

1. ``R_1`` is the set of singleton clusters.
2. For phases ``i = 1 .. k-1``: every cluster of ``R_i`` is marked
   independently with probability ``n^{-1/k}``; marked clusters form
   ``R_{i+1}``.  A vertex ``v`` of an unmarked cluster looks at the lightest
   edge towards every adjacent cluster of ``R_i`` (the set ``Q_v``):

   * if no adjacent cluster is marked, all of ``Q_v`` joins the spanner and
     ``v`` leaves the clustering;
   * otherwise ``v`` joins the nearest marked cluster through edge ``(v, u)``,
     adds that edge and every edge of ``Q_v`` lighter than ``w(v, u)`` (ties by
     identifier) to the spanner.

3. Finally every vertex adds the lightest edge towards every adjacent cluster
   of ``R_k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph, canonical_edge


@dataclass
class BaswanaSenResult:
    """Output of the Baswana-Sen algorithm."""

    spanner_edges: Set[Tuple[int, int]] = field(default_factory=set)
    clusters_per_phase: List[Dict[int, int]] = field(default_factory=list)

    def spanner_graph(self, graph: WeightedGraph) -> WeightedGraph:
        """The spanner as a subgraph of ``graph`` (same weights)."""
        return graph.subgraph_with_edges(self.spanner_edges)


def _lightest_edge_per_cluster(
    graph: WeightedGraph,
    v: int,
    cluster_of: Dict[int, int],
    alive: Set[Tuple[int, int]],
) -> Dict[int, Tuple[float, int]]:
    """Map cluster id -> (weight, neighbour) of the lightest alive edge from ``v``."""
    best: Dict[int, Tuple[float, int]] = {}
    for u in graph.neighbours(v):
        if canonical_edge(u, v) not in alive:
            continue
        if u not in cluster_of:
            continue
        cluster = cluster_of[u]
        w = graph.weight(u, v)
        candidate = (w, u)
        if cluster not in best or candidate < best[cluster]:
            best[cluster] = candidate
    return best


def baswana_sen_spanner(
    graph: WeightedGraph,
    k: int,
    seed: Optional[int] = None,
    marking_bits: Optional[List[Dict[int, bool]]] = None,
) -> BaswanaSenResult:
    """Compute a ``(2k-1)``-spanner of ``graph`` with O(k n^{1+1/k}) expected edges.

    Parameters
    ----------
    graph:
        Weighted undirected input graph.
    k:
        Stretch parameter; the result is a ``(2k-1)``-spanner.
    seed:
        RNG seed for the cluster marking.
    marking_bits:
        Optional explicit marking decisions, ``marking_bits[i][center] = True``
        meaning the cluster with that centre is marked in phase ``i`` (0-based).
        Used by the coupling tests of Lemma 3.1/3.3.
    """
    if k < 1:
        raise ValueError(f"stretch parameter k must be >= 1, got {k}")
    rng = np.random.default_rng(seed)
    n = graph.n
    mark_probability = n ** (-1.0 / k)

    result = BaswanaSenResult()
    # cluster_of maps a *clustered* vertex to the id (= centre) of its cluster.
    cluster_of: Dict[int, int] = {v: v for v in range(n)}
    # Edges still alive (not yet implicitly removed by the algorithm).
    alive: Set[Tuple[int, int]] = {edge.key for edge in graph.edges()}

    for phase in range(k - 1):
        result.clusters_per_phase.append(dict(cluster_of))
        centres = sorted(set(cluster_of.values()))
        if marking_bits is not None and phase < len(marking_bits):
            marked = {c for c in centres if marking_bits[phase].get(c, False)}
        else:
            marked = {c for c in centres if rng.random() < mark_probability}

        new_cluster_of: Dict[int, int] = {
            v: c for v, c in cluster_of.items() if c in marked
        }

        for v in sorted(cluster_of):
            if cluster_of[v] in marked:
                continue  # vertices of marked clusters do nothing this phase
            best = _lightest_edge_per_cluster(graph, v, cluster_of, alive)
            marked_options = {c: wu for c, wu in best.items() if c in marked}
            if not marked_options:
                # v leaves the clustering; connect to every adjacent cluster.
                for cluster, (w, u) in sorted(best.items()):
                    result.spanner_edges.add(canonical_edge(u, v))
                    _remove_cluster_edges(graph, v, cluster, cluster_of, alive)
            else:
                # join the nearest marked cluster
                w_join, u_join = min(
                    ((w, u) for (w, u) in marked_options.values()), key=lambda t: t
                )
                join_cluster = cluster_of[u_join]
                result.spanner_edges.add(canonical_edge(u_join, v))
                new_cluster_of[v] = join_cluster
                _remove_cluster_edges(graph, v, join_cluster, cluster_of, alive)
                for cluster, (w, u) in sorted(best.items()):
                    if cluster == join_cluster:
                        continue
                    if (w, u) < (w_join, u_join):
                        result.spanner_edges.add(canonical_edge(u, v))
                        _remove_cluster_edges(graph, v, cluster, cluster_of, alive)
        cluster_of = new_cluster_of

    # Final step: every vertex connects to each adjacent cluster of R_k.
    result.clusters_per_phase.append(dict(cluster_of))
    for v in range(n):
        best = _lightest_edge_per_cluster(graph, v, cluster_of, alive)
        for cluster, (w, u) in sorted(best.items()):
            if cluster_of.get(v) == cluster:
                continue  # intra-cluster edges are already covered by the tree
            result.spanner_edges.add(canonical_edge(u, v))
    return result


def _remove_cluster_edges(
    graph: WeightedGraph,
    v: int,
    cluster: int,
    cluster_of: Dict[int, int],
    alive: Set[Tuple[int, int]],
) -> None:
    """Remove from ``alive`` every edge between ``v`` and the given cluster."""
    for u in graph.neighbours(v):
        if cluster_of.get(u) == cluster:
            alive.discard(canonical_edge(u, v))
