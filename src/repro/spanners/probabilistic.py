"""Spanners on graphs with probabilistic edges (Section 3.1).

``probabilistic_spanner(G, p, k)`` computes a subset ``F = F+ | F-`` of the
edges such that every edge of ``F`` ends up in ``F+`` independently with its
maintained probability ``p_e``, and ``S = (V, F+)`` is a ``(2k-1)``-spanner of
``(V, F+ | E'')`` for every ``E'' subseteq E \\ F`` (Lemma 3.1).  Setting
``p === 1`` recovers the Baswana-Sen algorithm of Appendix A.

The algorithm is executed phase by phase with per-vertex local state exactly as
in the paper (cluster marking, ``Connect`` to marked clusters, connections
between unmarked clusters split by cluster-identifier order, and the final
connections to the surviving clusters ``R_k``).  Every decision a vertex takes
is also emitted as the broadcast message the paper prescribes, and the
Broadcast-CONGEST round cost is accounted following Lemma 3.2: one round per
word per broadcast, broadcasts of different vertices in the same step run in
parallel, and the per-phase cluster-marking dissemination costs ``k - 1``
rounds.  The bookkeeping of the *receiving* endpoint (the "implicit
communication" of the sampling outcome) is applied symmetrically; the test
suite checks that the receiver could have reconstructed it from the broadcast
alone (the three rules of Section 3.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph, canonical_edge
from repro.spanners.connect import connect

EdgeKey = Tuple[int, int]

#: Sentinel broadcast when Connect fails (the paper's bottom symbol).
BOTTOM = None


@dataclass(frozen=True)
class BroadcastRecord:
    """One broadcast message emitted during the spanner computation."""

    phase: int
    step: str
    sender: int
    target_cluster: Optional[int]
    accepted: Optional[int]
    weight: Optional[float]


@dataclass
class SpannerResult:
    """Output of the probabilistic spanner algorithm.

    ``f_plus`` / ``f_minus`` are the global edge sets; ``f_plus_of`` /
    ``f_minus_of`` are the per-vertex views (``u in f_plus_of[v]`` iff the edge
    ``(u, v)`` is in ``F+``), which is the local form in which a distributed
    execution would hold the output.
    """

    n: int
    k: int
    f_plus: Set[EdgeKey] = field(default_factory=set)
    f_minus: Set[EdgeKey] = field(default_factory=set)
    f_plus_of: Dict[int, Set[int]] = field(default_factory=dict)
    f_minus_of: Dict[int, Set[int]] = field(default_factory=dict)
    orientation: Dict[EdgeKey, Tuple[int, int]] = field(default_factory=dict)
    broadcasts: List[BroadcastRecord] = field(default_factory=list)
    rounds: int = 0
    clusters_per_phase: List[Dict[int, int]] = field(default_factory=list)

    @property
    def f(self) -> Set[EdgeKey]:
        """The full decided set ``F = F+ | F-``."""
        return self.f_plus | self.f_minus

    def spanner_graph(self, graph: WeightedGraph) -> WeightedGraph:
        """The spanner ``(V, F+)`` as a subgraph of ``graph``."""
        return graph.subgraph_with_edges(self.f_plus)

    def out_degrees(self) -> Dict[int, int]:
        """Out-degree of every vertex under the computed orientation."""
        degrees = {v: 0 for v in range(self.n)}
        for tail, _head in self.orientation.values():
            degrees[tail] += 1
        return degrees

    def max_out_degree(self) -> int:
        degrees = self.out_degrees()
        return max(degrees.values()) if degrees else 0


class ProbabilisticSpanner:
    """Stateful executor of the Section 3.1 spanner algorithm."""

    def __init__(
        self,
        graph: WeightedGraph,
        probabilities: Optional[Dict[EdgeKey, float]] = None,
        k: int = 2,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        marking_bits: Optional[List[Dict[int, bool]]] = None,
    ):
        if k < 1:
            raise ValueError(f"stretch parameter k must be >= 1, got {k}")
        self.graph = graph
        self.k = int(k)
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.marking_bits = marking_bits
        self.probability: Dict[EdgeKey, float] = {}
        for edge in graph.edges():
            p = 1.0 if probabilities is None else float(probabilities.get(edge.key, 1.0))
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"edge probability for {edge.key} must lie in [0, 1], got {p}")
            self.probability[edge.key] = p

        n = graph.n
        self.result = SpannerResult(
            n=n,
            k=self.k,
            f_plus_of={v: set() for v in range(n)},
            f_minus_of={v: set() for v in range(n)},
        )
        # cluster_of[v] = identifier (centre) of the R_i cluster containing v.
        self.cluster_of: Dict[int, int] = {v: v for v in range(n)}
        self.word_bits = max(1, math.ceil(math.log2(max(2, n))))
        max_weight = max(2.0, graph.max_weight())
        self.words_per_message = 1 + math.ceil(math.log2(max_weight) / self.word_bits)

    # -- public API -----------------------------------------------------------

    def run(self) -> SpannerResult:
        """Execute all ``k - 1`` phases plus the final step and return the result."""
        mark_probability = self.graph.n ** (-1.0 / self.k)
        for phase in range(self.k - 1):
            self.result.clusters_per_phase.append(dict(self.cluster_of))
            marked = self._mark_clusters(phase, mark_probability)
            new_cluster_of = {
                v: c for v, c in self.cluster_of.items() if c in marked
            }
            self._step_connect_to_marked(phase, marked, new_cluster_of)
            self._step_unmarked_to_unmarked(phase, marked, smaller_ids=True)
            self._step_unmarked_to_unmarked(phase, marked, smaller_ids=False)
            self.cluster_of = new_cluster_of
            # Step 1 dissemination of the marking through the cluster trees.
            self.result.rounds += max(1, self.k - 1)
        self.result.clusters_per_phase.append(dict(self.cluster_of))
        self._final_step()
        return self.result

    # -- phase steps ------------------------------------------------------------

    def _mark_clusters(self, phase: int, mark_probability: float) -> Set[int]:
        """Step 1: every cluster centre marks itself with probability ``n^{-1/k}``."""
        centres = sorted(set(self.cluster_of.values()))
        if self.marking_bits is not None and phase < len(self.marking_bits):
            return {c for c in centres if self.marking_bits[phase].get(c, False)}
        return {c for c in centres if self.rng.random() < mark_probability}

    def _step_connect_to_marked(
        self, phase: int, marked: Set[int], new_cluster_of: Dict[int, int]
    ) -> None:
        """Step 2: vertices of unmarked clusters try to join a marked cluster.

        ``self.w_threshold[v]`` records the (weight, identifier) pair of the
        accepted connection ``(W_v, u)``, or ``(inf, inf)`` when ``Connect``
        returned bottom; step 3 only considers strictly lighter edges (ties
        broken by identifier, as in the Baswana-Sen algorithm of Appendix A).
        """
        self.w_threshold: Dict[int, Tuple[float, float]] = {}
        messages_per_vertex: Dict[int, int] = {}
        for v in sorted(self.cluster_of):
            if self.cluster_of[v] in marked:
                continue
            candidates = [
                u
                for u in self._alive_neighbours(v)
                if self.cluster_of.get(u) in marked
            ]
            outcome = self._run_connect(v, candidates)
            messages_per_vertex[v] = 1
            if outcome.accepted is None:
                self.w_threshold[v] = (math.inf, math.inf)
                self._record_broadcast(phase, "step2", v, None, None, None)
            else:
                u = outcome.accepted
                self.w_threshold[v] = (self.graph.weight(u, v), u)
                new_cluster_of[v] = self.cluster_of[u]
                self._add_spanner_edge(v, u)
                self._record_broadcast(
                    phase, "step2", v, self.cluster_of[u], u, self.graph.weight(u, v)
                )
            self._reject_edges(v, outcome.rejected)
        self._charge_step(messages_per_vertex)

    def _step_unmarked_to_unmarked(
        self, phase: int, marked: Set[int], smaller_ids: bool
    ) -> None:
        """Steps 3.1 / 3.2: connections between unmarked clusters, split by ID."""
        step_name = "step3.1" if smaller_ids else "step3.2"
        messages_per_vertex: Dict[int, int] = {}
        for v in sorted(self.cluster_of):
            own_cluster = self.cluster_of[v]
            if own_cluster in marked:
                continue
            threshold = self.w_threshold.get(v, (math.inf, math.inf))
            neighbour_clusters = self._adjacent_clusters(
                v, exclude=marked | {own_cluster}
            )
            for cluster in sorted(neighbour_clusters):
                if smaller_ids and cluster > own_cluster:
                    continue
                if (not smaller_ids) and cluster <= own_cluster:
                    continue
                candidates = [
                    u
                    for u in self._alive_neighbours(v)
                    if self.cluster_of.get(u) == cluster
                    and (self.graph.weight(u, v), u) < threshold
                ]
                if not candidates:
                    continue
                outcome = self._run_connect(v, candidates)
                messages_per_vertex[v] = messages_per_vertex.get(v, 0) + 1
                if outcome.accepted is None:
                    self._record_broadcast(phase, step_name, v, cluster, None, None)
                else:
                    u = outcome.accepted
                    self._add_spanner_edge(v, u)
                    self._record_broadcast(
                        phase, step_name, v, cluster, u, self.graph.weight(u, v)
                    )
                self._reject_edges(v, outcome.rejected)
        self._charge_step(messages_per_vertex)

    def _final_step(self) -> None:
        """Step 4: connect every vertex to all adjacent surviving clusters ``R_k``."""
        surviving = set(self.cluster_of.values())
        phase = self.k - 1

        # 4.1 -- vertices outside any surviving cluster.
        messages_per_vertex: Dict[int, int] = {}
        for v in range(self.graph.n):
            if v in self.cluster_of:
                continue
            self._connect_to_each_cluster(v, surviving, phase, "step4.1", messages_per_vertex)
        self._charge_step(messages_per_vertex)

        # 4.2 / 4.3 -- vertices inside surviving clusters, split by cluster ID.
        for smaller_ids, step_name in ((True, "step4.2"), (False, "step4.3")):
            messages_per_vertex = {}
            for v in sorted(self.cluster_of):
                own_cluster = self.cluster_of[v]
                targets = {
                    c
                    for c in self._adjacent_clusters(v, exclude={own_cluster})
                    if c in surviving
                    and ((c <= own_cluster) if smaller_ids else (c > own_cluster))
                }
                self._connect_to_each_cluster(v, targets, phase, step_name, messages_per_vertex)
            self._charge_step(messages_per_vertex)

    def _connect_to_each_cluster(
        self,
        v: int,
        clusters: Set[int],
        phase: int,
        step_name: str,
        messages_per_vertex: Dict[int, int],
    ) -> None:
        for cluster in sorted(clusters):
            candidates = [
                u
                for u in self._alive_neighbours(v)
                if self.cluster_of.get(u) == cluster
            ]
            if not candidates:
                continue
            outcome = self._run_connect(v, candidates)
            messages_per_vertex[v] = messages_per_vertex.get(v, 0) + 1
            if outcome.accepted is None:
                self._record_broadcast(phase, step_name, v, cluster, None, None)
            else:
                u = outcome.accepted
                self._add_spanner_edge(v, u)
                self._record_broadcast(
                    phase, step_name, v, cluster, u, self.graph.weight(u, v)
                )
            self._reject_edges(v, outcome.rejected)

    # -- local state helpers -------------------------------------------------------

    def _alive_neighbours(self, v: int) -> List[int]:
        """``N_v``: graph neighbours whose edge has not been declared non-existent."""
        deleted = self.result.f_minus_of[v]
        return [u for u in sorted(self.graph.neighbours(v)) if u not in deleted]

    def _adjacent_clusters(self, v: int, exclude: Set[int]) -> Set[int]:
        """Identifiers of clusters adjacent to ``v`` through alive edges."""
        clusters = set()
        for u in self._alive_neighbours(v):
            cluster = self.cluster_of.get(u)
            if cluster is not None and cluster not in exclude:
                clusters.add(cluster)
        return clusters

    def _run_connect(self, v: int, candidates: Sequence[int]):
        weights = {u: self.graph.weight(u, v) for u in candidates}
        probabilities = {u: self._edge_probability(u, v) for u in candidates}
        return connect(candidates, weights, probabilities, self.rng)

    def _edge_probability(self, u: int, v: int) -> float:
        """Existence probability of an edge, accounting for edges already accepted."""
        key = canonical_edge(u, v)
        if key in self.result.f_plus:
            return 1.0
        return self.probability[key]

    def _add_spanner_edge(self, adder: int, other: int) -> None:
        key = canonical_edge(adder, other)
        if key not in self.result.f_plus:
            self.result.orientation[key] = (adder, other)
        self.result.f_plus.add(key)
        self.result.f_plus_of[adder].add(other)
        self.result.f_plus_of[other].add(adder)

    def _reject_edges(self, v: int, rejected: Sequence[int]) -> None:
        for u in rejected:
            key = canonical_edge(u, v)
            if key in self.result.f_plus:
                raise RuntimeError(
                    f"edge {key} was sampled out after having been accepted; "
                    "this indicates a bookkeeping bug"
                )
            self.result.f_minus.add(key)
            self.result.f_minus_of[v].add(u)
            self.result.f_minus_of[u].add(v)

    def _record_broadcast(
        self,
        phase: int,
        step: str,
        sender: int,
        target_cluster: Optional[int],
        accepted: Optional[int],
        weight: Optional[float],
    ) -> None:
        self.result.broadcasts.append(
            BroadcastRecord(
                phase=phase,
                step=step,
                sender=sender,
                target_cluster=target_cluster,
                accepted=accepted,
                weight=weight,
            )
        )

    def _charge_step(self, messages_per_vertex: Dict[int, int]) -> None:
        """Charge rounds for one step: broadcasts of different vertices run in
        parallel, so the cost is the maximum number of messages any vertex sends,
        times the number of words per message (Lemma 3.2)."""
        if not messages_per_vertex:
            self.result.rounds += 1
            return
        self.result.rounds += max(messages_per_vertex.values()) * self.words_per_message


def probabilistic_spanner(
    graph: WeightedGraph,
    probabilities: Optional[Dict[EdgeKey, float]] = None,
    k: int = 2,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    marking_bits: Optional[List[Dict[int, bool]]] = None,
) -> SpannerResult:
    """Convenience wrapper around :class:`ProbabilisticSpanner`.

    With ``probabilities=None`` (i.e. ``p === 1``) this computes a plain
    ``(2k-1)``-spanner of ``graph`` and ``F-`` is empty.
    """
    algorithm = ProbabilisticSpanner(
        graph,
        probabilities=probabilities,
        k=k,
        rng=rng,
        seed=seed,
        marking_bits=marking_bits,
    )
    return algorithm.run()
