"""Spanners on graphs with probabilistic edges (Section 3.1).

``probabilistic_spanner(G, p, k)`` computes a subset ``F = F+ | F-`` of the
edges such that every edge of ``F`` ends up in ``F+`` independently with its
maintained probability ``p_e``, and ``S = (V, F+)`` is a ``(2k-1)``-spanner of
``(V, F+ | E'')`` for every ``E'' subseteq E \\ F`` (Lemma 3.1).  Setting
``p === 1`` recovers the Baswana-Sen algorithm of Appendix A.

The algorithm is executed phase by phase with per-vertex local state exactly as
in the paper (cluster marking, ``Connect`` to marked clusters, connections
between unmarked clusters split by cluster-identifier order, and the final
connections to the surviving clusters ``R_k``).  Every decision a vertex takes
is also emitted as the broadcast message the paper prescribes, and the
Broadcast-CONGEST round cost is accounted following Lemma 3.2: one round per
word per broadcast, broadcasts of different vertices in the same step run in
parallel, and the per-phase cluster-marking dissemination costs ``k - 1``
rounds.  The bookkeeping of the *receiving* endpoint (the "implicit
communication" of the sampling outcome) is applied symmetrically; the test
suite checks that the receiver could have reconstructed it from the broadcast
alone (the three rules of Section 3.1).

Data model
----------
The executor runs on an :class:`repro.graphs.graph.EdgeView` -- three aligned
``(u, v, w)`` edge columns plus an alive mask -- rather than on a dict-based
:class:`WeightedGraph`.  The bundle/sparsify layers call the spanner
``t * ceil(log m)`` times per run on ever-shrinking residual edge sets;
with views each call shares the base arrays and only carries a fresh mask,
instead of rebuilding a graph edge by edge.  A plain ``WeightedGraph`` input
is wrapped into a full view transparently, and the decided edges are reported
both as canonical keys (``f_plus`` / ``f_minus``) and as base edge indices
(``f_plus_idx`` / ``f_minus_idx``) so callers can update masks in bulk.

The rng call sequence is identical to the historical dict-of-edges
implementation (per-centre marking in sorted order, per-candidate coin flips
inside ``Connect``), which ``tests/sparsify/test_vectorized_equivalence.py``
pins on seeded graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from operator import itemgetter

from repro.graphs.graph import EdgeView, WeightedGraph, canonical_edge

EdgeKey = Tuple[int, int]

#: Sentinel broadcast when Connect fails (the paper's bottom symbol).
BOTTOM = None

#: (neighbour, edge weight, base edge index) as stored in the adjacency lists.
AdjEntry = Tuple[int, float, int]

#: Connect's scan order, line 1 of Algorithm 2: ascending (weight, identifier).
_by_weight_then_id = itemgetter(1, 0)


def resolve_edge_probabilities(
    view: EdgeView,
    probabilities: Optional[Union[Dict[EdgeKey, float], np.ndarray]],
) -> np.ndarray:
    """Normalise ``probabilities`` to an array aligned with ``view``'s base edges.

    ``None`` means ``p === 1``.  A dict maps canonical edge keys to
    probabilities (missing keys default to 1.0, matching the historical API);
    an ndarray is taken as already aligned with the base edge columns.  Values
    are validated to lie in ``[0, 1]`` for the alive edges only -- dead edges
    are never sampled, so their entries are irrelevant.
    """
    base_m = view.base_m
    if probabilities is None:
        return np.ones(base_m)
    if isinstance(probabilities, np.ndarray):
        prob = np.asarray(probabilities, dtype=float)
        if prob.shape != (base_m,):
            raise ValueError(
                f"probability array must have shape ({base_m},), got {prob.shape}"
            )
        alive_p = prob[view.alive]
        if alive_p.size and (float(alive_p.min()) < 0.0 or float(alive_p.max()) > 1.0):
            bad = np.flatnonzero(view.alive)[
                int(np.argmax((alive_p < 0.0) | (alive_p > 1.0)))
            ]
            raise ValueError(
                f"edge probability for {view.edge_key(int(bad))} must lie in "
                f"[0, 1], got {float(prob[bad])}"
            )
        return prob
    prob = np.ones(base_m)
    idx = view.alive_indices()
    for ei, a, b in zip(idx.tolist(), view.u[idx].tolist(), view.v[idx].tolist()):
        p = float(probabilities.get((a, b), 1.0))
        if not (0.0 <= p <= 1.0):
            raise ValueError(
                f"edge probability for {(a, b)} must lie in [0, 1], got {p}"
            )
        prob[ei] = p
    return prob


@dataclass(frozen=True)
class BroadcastRecord:
    """One broadcast message emitted during the spanner computation."""

    phase: int
    step: str
    sender: int
    target_cluster: Optional[int]
    accepted: Optional[int]
    weight: Optional[float]


@dataclass
class SpannerResult:
    """Output of the probabilistic spanner algorithm.

    ``f_plus`` / ``f_minus`` are the global edge sets; ``f_plus_of`` /
    ``f_minus_of`` are the per-vertex views (``u in f_plus_of[v]`` iff the edge
    ``(u, v)`` is in ``F+``), which is the local form in which a distributed
    execution would hold the output.  ``f_plus_idx`` / ``f_minus_idx`` hold the
    same decisions as base edge indices of the view the spanner ran on, which
    is what the bundle/sparsify layers consume for bulk mask updates.
    """

    n: int
    k: int
    f_plus: Set[EdgeKey] = field(default_factory=set)
    f_minus: Set[EdgeKey] = field(default_factory=set)
    f_plus_idx: Set[int] = field(default_factory=set)
    f_minus_idx: Set[int] = field(default_factory=set)
    f_plus_of: Dict[int, Set[int]] = field(default_factory=dict)
    f_minus_of: Dict[int, Set[int]] = field(default_factory=dict)
    orientation: Dict[EdgeKey, Tuple[int, int]] = field(default_factory=dict)
    broadcasts: List[BroadcastRecord] = field(default_factory=list)
    rounds: int = 0
    clusters_per_phase: List[Dict[int, int]] = field(default_factory=list)

    @property
    def f(self) -> Set[EdgeKey]:
        """The full decided set ``F = F+ | F-``."""
        return self.f_plus | self.f_minus

    def spanner_graph(self, graph: WeightedGraph) -> WeightedGraph:
        """The spanner ``(V, F+)`` as a subgraph of ``graph``."""
        return graph.subgraph_with_edges(self.f_plus)

    def out_degrees(self) -> Dict[int, int]:
        """Out-degree of every vertex under the computed orientation."""
        degrees = {v: 0 for v in range(self.n)}
        for tail, _head in self.orientation.values():
            degrees[tail] += 1
        return degrees

    def max_out_degree(self) -> int:
        degrees = self.out_degrees()
        return max(degrees.values()) if degrees else 0


class ProbabilisticSpanner:
    """Stateful executor of the Section 3.1 spanner algorithm."""

    def __init__(
        self,
        graph: Union[WeightedGraph, EdgeView],
        probabilities: Optional[Union[Dict[EdgeKey, float], np.ndarray]] = None,
        k: int = 2,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        marking_bits: Optional[List[Dict[int, bool]]] = None,
        record_broadcasts: bool = True,
    ):
        if k < 1:
            raise ValueError(f"stretch parameter k must be >= 1, got {k}")
        self.view = graph if isinstance(graph, EdgeView) else EdgeView.from_graph(graph)
        self.k = int(k)
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.marking_bits = marking_bits
        # The broadcast transcript documents the distributed execution but is
        # dead weight for the sparsification loops, which only consume edge
        # sets and round counts; they opt out (rng draws are unaffected).
        self.record_broadcasts = bool(record_broadcasts)
        self._prob = resolve_edge_probabilities(self.view, probabilities)
        # hot per-candidate reads go through plain Python floats, not numpy scalars
        self._prob_list = self._prob.tolist()
        self._adj = self.view.adjacency_lists()

        n = self.view.n
        self.result = SpannerResult(
            n=n,
            k=self.k,
            f_plus_of={v: set() for v in range(n)},
            f_minus_of={v: set() for v in range(n)},
        )
        # cluster_of[v] = identifier (centre) of the R_i cluster containing v.
        self.cluster_of: Dict[int, int] = {v: v for v in range(n)}
        # list mirror of cluster_of for O(1) hot-loop lookups (-1 = unclustered)
        # and the sorted vertex scan order, both rebuilt whenever cluster_of is
        # replaced (it is constant within a phase).
        self._cluster_list: List[int] = list(range(n))
        self._sorted_clustered: List[int] = list(range(n))
        self.word_bits = max(1, math.ceil(math.log2(max(2, n))))
        max_weight = max(2.0, self.view.max_weight())
        self.words_per_message = 1 + math.ceil(math.log2(max_weight) / self.word_bits)

    # -- public API -----------------------------------------------------------

    def run(self) -> SpannerResult:
        """Execute all ``k - 1`` phases plus the final step and return the result."""
        mark_probability = self.view.n ** (-1.0 / self.k)
        for phase in range(self.k - 1):
            self.result.clusters_per_phase.append(dict(self.cluster_of))
            marked = self._mark_clusters(phase, mark_probability)
            new_cluster_of = {
                v: c for v, c in self.cluster_of.items() if c in marked
            }
            self._step_connect_to_marked(phase, marked, new_cluster_of)
            self._step_unmarked_to_unmarked(phase, marked, smaller_ids=True)
            self._step_unmarked_to_unmarked(phase, marked, smaller_ids=False)
            self.cluster_of = new_cluster_of
            self._rebuild_cluster_list()
            # Step 1 dissemination of the marking through the cluster trees.
            self.result.rounds += max(1, self.k - 1)
        self.result.clusters_per_phase.append(dict(self.cluster_of))
        self._final_step()
        return self.result

    def _rebuild_cluster_list(self) -> None:
        lst = [-1] * self.view.n
        for v, c in self.cluster_of.items():
            lst[v] = c
        self._cluster_list = lst
        self._sorted_clustered = sorted(self.cluster_of)

    # -- phase steps ------------------------------------------------------------

    def _mark_clusters(self, phase: int, mark_probability: float) -> Set[int]:
        """Step 1: every cluster centre marks itself with probability ``n^{-1/k}``."""
        centres = sorted(set(self.cluster_of.values()))
        if self.marking_bits is not None and phase < len(self.marking_bits):
            return {c for c in centres if self.marking_bits[phase].get(c, False)}
        return {c for c in centres if self.rng.random() < mark_probability}

    def _step_connect_to_marked(
        self, phase: int, marked: Set[int], new_cluster_of: Dict[int, int]
    ) -> None:
        """Step 2: vertices of unmarked clusters try to join a marked cluster.

        ``self.w_threshold[v]`` records the (weight, identifier) pair of the
        accepted connection ``(W_v, u)``, or ``(inf, inf)`` when ``Connect``
        returned bottom; step 3 only considers strictly lighter edges (ties
        broken by identifier, as in the Baswana-Sen algorithm of Appendix A).
        """
        self.w_threshold: Dict[int, Tuple[float, float]] = {}
        messages_per_vertex: Dict[int, int] = {}
        cluster_of = self.cluster_of
        cluster_list = self._cluster_list
        for v in self._sorted_clustered:
            if cluster_of[v] in marked:
                continue
            candidates = [
                entry
                for entry in self._alive_neighbours(v)
                if cluster_list[entry[0]] in marked
            ]
            accepted, rejected = (
                self._run_connect(candidates) if candidates else (None, ())
            )
            messages_per_vertex[v] = 1
            if accepted is None:
                self.w_threshold[v] = (math.inf, math.inf)
                self._record_broadcast(phase, "step2", v, None, None, None)
            else:
                u, w_uv, ei = accepted
                self.w_threshold[v] = (w_uv, u)
                new_cluster_of[v] = cluster_list[u]
                self._add_spanner_edge(v, u, ei)
                self._record_broadcast(phase, "step2", v, cluster_list[u], u, w_uv)
            if rejected:
                self._reject_edges(v, rejected)
        self._charge_step(messages_per_vertex)

    def _clustered_neighbours(
        self, v: int, threshold: Optional[Tuple[float, float]] = None
    ) -> Dict[int, List[AdjEntry]]:
        """Alive neighbours of ``v`` grouped by their cluster, one pass.

        Entry order within each group follows the adjacency lists (ascending
        identifier), matching what a per-cluster scan would produce.  With a
        ``threshold``, only entries with ``(w, u) < threshold`` are kept (the
        step-3 restriction).  Grouping once per vertex replaces the historical
        scan-all-neighbours-per-adjacent-cluster loop, which was quadratic in
        the degree; it is safe because the edges a vertex rejects while
        processing one cluster all lead *into* that cluster and therefore
        never alter the candidate lists of the clusters still to come.
        """
        cluster_list = self._cluster_list
        groups: Dict[int, List[AdjEntry]] = {}
        if threshold is None:
            for entry in self._alive_neighbours(v):
                cluster = cluster_list[entry[0]]
                if cluster < 0:
                    continue
                group = groups.get(cluster)
                if group is None:
                    groups[cluster] = [entry]
                else:
                    group.append(entry)
        else:
            for entry in self._alive_neighbours(v):
                cluster = cluster_list[entry[0]]
                if cluster < 0 or (entry[1], entry[0]) >= threshold:
                    continue
                group = groups.get(cluster)
                if group is None:
                    groups[cluster] = [entry]
                else:
                    group.append(entry)
        return groups

    def _step_unmarked_to_unmarked(
        self, phase: int, marked: Set[int], smaller_ids: bool
    ) -> None:
        """Steps 3.1 / 3.2: connections between unmarked clusters, split by ID."""
        step_name = "step3.1" if smaller_ids else "step3.2"
        messages_per_vertex: Dict[int, int] = {}
        cluster_of = self.cluster_of
        for v in self._sorted_clustered:
            own_cluster = cluster_of[v]
            if own_cluster in marked:
                continue
            threshold = self.w_threshold.get(v, (math.inf, math.inf))
            groups = self._clustered_neighbours(v, threshold=threshold)
            for cluster in sorted(groups):
                if cluster in marked or cluster == own_cluster:
                    continue
                if smaller_ids and cluster > own_cluster:
                    continue
                if (not smaller_ids) and cluster <= own_cluster:
                    continue
                accepted, rejected = self._run_connect(groups[cluster])
                messages_per_vertex[v] = messages_per_vertex.get(v, 0) + 1
                if accepted is None:
                    self._record_broadcast(phase, step_name, v, cluster, None, None)
                else:
                    u, w_uv, ei = accepted
                    self._add_spanner_edge(v, u, ei)
                    self._record_broadcast(phase, step_name, v, cluster, u, w_uv)
                self._reject_edges(v, rejected)
        self._charge_step(messages_per_vertex)

    def _final_step(self) -> None:
        """Step 4: connect every vertex to all adjacent surviving clusters ``R_k``."""
        surviving = set(self.cluster_of.values())
        phase = self.k - 1

        # 4.1 -- vertices outside any surviving cluster.
        messages_per_vertex: Dict[int, int] = {}
        for v in range(self.view.n):
            if v in self.cluster_of:
                continue
            groups = self._clustered_neighbours(v)
            self._connect_to_each_cluster(
                v, groups, surviving, phase, "step4.1", messages_per_vertex
            )
        self._charge_step(messages_per_vertex)

        # 4.2 / 4.3 -- vertices inside surviving clusters, split by cluster ID.
        for smaller_ids, step_name in ((True, "step4.2"), (False, "step4.3")):
            messages_per_vertex = {}
            for v in self._sorted_clustered:
                own_cluster = self.cluster_of[v]
                groups = self._clustered_neighbours(v)
                targets = {
                    c
                    for c in groups
                    if c != own_cluster
                    and c in surviving
                    and ((c <= own_cluster) if smaller_ids else (c > own_cluster))
                }
                self._connect_to_each_cluster(
                    v, groups, targets, phase, step_name, messages_per_vertex
                )
            self._charge_step(messages_per_vertex)

    def _connect_to_each_cluster(
        self,
        v: int,
        groups: Dict[int, List[AdjEntry]],
        clusters: Set[int],
        phase: int,
        step_name: str,
        messages_per_vertex: Dict[int, int],
    ) -> None:
        for cluster in sorted(clusters):
            candidates = groups.get(cluster)
            if not candidates:
                continue
            accepted, rejected = self._run_connect(candidates)
            messages_per_vertex[v] = messages_per_vertex.get(v, 0) + 1
            if accepted is None:
                self._record_broadcast(phase, step_name, v, cluster, None, None)
            else:
                u, w_uv, ei = accepted
                self._add_spanner_edge(v, u, ei)
                self._record_broadcast(phase, step_name, v, cluster, u, w_uv)
            self._reject_edges(v, rejected)

    # -- local state helpers -------------------------------------------------------

    def _alive_neighbours(self, v: int) -> List[AdjEntry]:
        """``N_v`` as ``(u, w, edge_index)`` entries, sorted by identifier.

        The adjacency lists already exclude edges dead in the view; only the
        edges declared non-existent *during this run* are filtered here.
        """
        deleted = self.result.f_minus_of[v]
        entries = self._adj[v]
        if not deleted:
            return entries
        return [entry for entry in entries if entry[0] not in deleted]

    def _run_connect(
        self, candidates: Sequence[AdjEntry]
    ) -> Tuple[Optional[AdjEntry], List[Tuple[int, int]]]:
        """Inline ``Connect`` (Algorithm 2) over ``(u, w, edge_index)`` entries.

        Scans the candidates in ascending ``(weight, identifier)`` order,
        flipping one coin per inspected candidate with its maintained
        probability (edges already in ``F+`` count as probability 1), and
        returns the accepted entry -- or ``None``, the paper's bottom symbol
        -- plus the rejected prefix ``N^-`` as ``(u, edge_index)`` pairs.

        This draws exactly the rng sequence of the standalone reference
        :func:`repro.spanners.connect.connect` (one uniform per inspected
        candidate, drawn *before* the ``p >= 1`` short-circuit is evaluated);
        inlining merely avoids building three dicts and a result object per
        call on the hot path.
        """
        ordered = sorted(candidates, key=_by_weight_then_id)
        rejected: List[Tuple[int, int]] = []
        rng_random = self.rng.random
        f_plus_idx = self.result.f_plus_idx
        prob = self._prob_list
        for entry in ordered:
            ei = entry[2]
            p = 1.0 if ei in f_plus_idx else prob[ei]
            if rng_random() < p or p >= 1.0:
                return entry, rejected
            rejected.append((entry[0], ei))
        return None, rejected

    def _add_spanner_edge(self, adder: int, other: int, edge_index: int) -> None:
        if edge_index not in self.result.f_plus_idx:
            key = canonical_edge(adder, other)
            self.result.orientation[key] = (adder, other)
            self.result.f_plus_idx.add(edge_index)
            self.result.f_plus.add(key)
        self.result.f_plus_of[adder].add(other)
        self.result.f_plus_of[other].add(adder)

    def _reject_edges(self, v: int, rejected: Sequence[Tuple[int, int]]) -> None:
        result = self.result
        for u, ei in rejected:
            if ei in result.f_plus_idx:
                raise RuntimeError(
                    f"edge {canonical_edge(u, v)} was sampled out after having "
                    "been accepted; this indicates a bookkeeping bug"
                )
            result.f_minus_idx.add(ei)
            result.f_minus.add(canonical_edge(u, v))
            result.f_minus_of[v].add(u)
            result.f_minus_of[u].add(v)

    def _record_broadcast(
        self,
        phase: int,
        step: str,
        sender: int,
        target_cluster: Optional[int],
        accepted: Optional[int],
        weight: Optional[float],
    ) -> None:
        if not self.record_broadcasts:
            return
        self.result.broadcasts.append(
            BroadcastRecord(
                phase=phase,
                step=step,
                sender=sender,
                target_cluster=target_cluster,
                accepted=accepted,
                weight=weight,
            )
        )

    def _charge_step(self, messages_per_vertex: Dict[int, int]) -> None:
        """Charge rounds for one step: broadcasts of different vertices run in
        parallel, so the cost is the maximum number of messages any vertex sends,
        times the number of words per message (Lemma 3.2)."""
        if not messages_per_vertex:
            self.result.rounds += 1
            return
        self.result.rounds += max(messages_per_vertex.values()) * self.words_per_message


def probabilistic_spanner(
    graph: Union[WeightedGraph, EdgeView],
    probabilities: Optional[Union[Dict[EdgeKey, float], np.ndarray]] = None,
    k: int = 2,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    marking_bits: Optional[List[Dict[int, bool]]] = None,
) -> SpannerResult:
    """Convenience wrapper around :class:`ProbabilisticSpanner`.

    With ``probabilities=None`` (i.e. ``p === 1``) this computes a plain
    ``(2k-1)``-spanner of ``graph`` and ``F-`` is empty.
    """
    algorithm = ProbabilisticSpanner(
        graph,
        probabilities=probabilities,
        k=k,
        rng=rng,
        seed=seed,
        marking_bits=marking_bits,
    )
    return algorithm.run()
