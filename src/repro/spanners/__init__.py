"""Spanner algorithms (Section 3.1 and Appendix A).

* :mod:`repro.spanners.connect` -- the ``Connect`` procedure (Algorithm 2).
* :mod:`repro.spanners.baswana_sen` -- the classical Baswana-Sen
  ``(2k-1)``-spanner (Appendix A), used as the correctness reference.
* :mod:`repro.spanners.probabilistic` -- the paper's spanner on graphs with
  probabilistic edges (Section 3.1), with implicit communication of the
  sampling outcomes and Broadcast-CONGEST round accounting.
* :mod:`repro.spanners.bundle` -- ``BundleSpanner`` (Algorithm 3), t-bundles of
  ``(2k-1)``-spanners.
"""

from repro.spanners.connect import ConnectResult, connect
from repro.spanners.baswana_sen import baswana_sen_spanner
from repro.spanners.probabilistic import ProbabilisticSpanner, SpannerResult, probabilistic_spanner
from repro.spanners.bundle import BundleResult, bundle_spanner

__all__ = [
    "connect",
    "ConnectResult",
    "baswana_sen_spanner",
    "probabilistic_spanner",
    "ProbabilisticSpanner",
    "SpannerResult",
    "bundle_spanner",
    "BundleResult",
]
