"""The ``Connect`` procedure (Algorithm 2 of the paper).

Given the candidate neighbour set ``N`` of a vertex ``v`` (all lying in the
cluster ``v`` is trying to connect to) together with the edge-existence
probabilities ``p``, the procedure scans the candidates in ascending order of
edge weight (ties broken towards the smaller identifier) and flips a coin with
the maintained probability for each.  The first success becomes the connection
target ``u``; every candidate rejected *before* that success is reported in
``N^-`` (its edge is declared non-existent, i.e. moved to ``F^-``).

Candidates after the first success are never inspected -- their existence stays
undecided, which is exactly what lets the ad-hoc sampling of Section 3.2 match
the a-priori sampling distribution (Lemma 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class ConnectResult:
    """Outcome of one ``Connect`` call.

    Attributes
    ----------
    accepted:
        The neighbour ``u`` that the vertex connects to, or ``None`` (the
        paper's bottom symbol) if every candidate was rejected or ``N`` was
        empty.
    rejected:
        The candidates whose coin flips failed before the acceptance, in the
        order they were tried (the set ``N^-`` of the paper).
    accepted_weight:
        Weight of the accepted edge, or ``None``.
    tried:
        All candidates whose coins were flipped, in order.
    """

    accepted: Optional[int]
    rejected: List[int] = field(default_factory=list)
    accepted_weight: Optional[float] = None
    tried: List[int] = field(default_factory=list)

    @property
    def is_bottom(self) -> bool:
        """Whether the procedure failed to connect (returned the bottom symbol)."""
        return self.accepted is None


def sort_candidates(
    candidates: Sequence[int], weights: Dict[int, float]
) -> List[int]:
    """Sort candidate neighbours ascending by (edge weight, identifier).

    This is line 1 of Algorithm 2; the deterministic tie-break by identifier is
    what makes the implicit communication of the sampling outcome possible.
    """
    return sorted(candidates, key=lambda u: (weights[u], u))


def connect(
    candidates: Sequence[int],
    weights: Dict[int, float],
    probabilities: Dict[int, float],
    rng: np.random.Generator,
) -> ConnectResult:
    """Run ``Connect(N, p)`` (Algorithm 2).

    Parameters
    ----------
    candidates:
        The neighbour set ``N`` (vertex identifiers).
    weights:
        ``weights[u]`` is the weight of the edge ``(u, v)`` for the calling
        vertex ``v``.
    probabilities:
        ``probabilities[u]`` is the maintained existence probability ``p_{(u,v)}``.
    rng:
        Source of the uniform samples ``r in [0, 1]``.

    Returns
    -------
    ConnectResult
        The accepted neighbour (or ``None``) plus the rejected prefix ``N^-``.
    """
    ordered = sort_candidates(candidates, weights)
    result = ConnectResult(accepted=None)
    for u in ordered:
        p = probabilities[u]
        if not (0.0 <= p <= 1.0):
            raise ValueError(f"edge probability for neighbour {u} must be in [0, 1], got {p}")
        result.tried.append(u)
        r = float(rng.random())
        if r < p or p >= 1.0:
            result.accepted = u
            result.accepted_weight = weights[u]
            break
        result.rejected.append(u)
    return result
