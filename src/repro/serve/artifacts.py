"""LRU artifact cache: sparsifiers, factorisations, solver preprocessing.

Everything the serving layer computes that outlives one query lives here:
per-``(graph, params)`` :class:`repro.solvers.laplacian.SolverPreprocessing`
handles (each embedding its spectral sparsifier), grounded ``splu``
factorisations (:class:`GroundedLaplacianSolver`), dense resistance oracles
(:class:`ResistanceOracle`), JL-sketched resistance oracles
(:class:`repro.linalg.resistance.SketchedResistanceOracle`, keyed by their
accuracy bound ``eta`` and accounted via the ``nbytes()`` protocol like the
others) and memoised certification reports.

Keys embed the graph's **version** at build time, so a mutated graph can never
hit an artifact built against its earlier content -- the lookup simply misses
and the stale entry is either swept by :meth:`ArtifactCache.invalidate_graph`
or, when the mutation delta is short enough for low-rank repair, migrated to
the new ``(fingerprint, version)`` identity by
:meth:`ArtifactCache.repair_graph`.
Eviction is LRU over *estimated bytes* (``max_bytes``) and entry count
(``max_entries``): factorisations of ``n = 10^4`` grids weigh megabytes while
tiny sparsifiers weigh kilobytes, so counting entries alone would let the
cache blow past any memory budget.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

#: Default cache budget: enough for a handful of n ~ 10^4 factorisations.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Deferred-repair ledger bounds: at most this many pending (fingerprint,
#: version) targets, each remembering at most this many stale source
#: generations.  Deltas are short (the planner's repair limit) so the ledger
#: is metadata-sized; the caps only bound pathological mutate-only traffic
#: that never looks anything up.
PENDING_TARGET_LIMIT = 64
PENDING_SOURCE_LIMIT = 4


def estimate_nbytes(obj: Any, _depth: int = 0) -> int:
    """Best-effort resident-size estimate used for eviction accounting.

    Exact for numpy arrays and scipy sparse matrices, delegated to the
    object's own ``nbytes()`` when it offers one (solvers and preprocessing
    handles do), recursive one level deep for containers, and
    ``sys.getsizeof`` otherwise.  Estimates only steer eviction order and
    budget accounting; they need to be the right order of magnitude, not
    byte-exact.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if sp.issparse(obj):
        total = 0
        for attr in ("data", "indices", "indptr", "row", "col", "offsets"):
            part = getattr(obj, attr, None)
            if isinstance(part, np.ndarray):
                total += int(part.nbytes)
        return total or int(sys.getsizeof(obj))
    nbytes = getattr(obj, "nbytes", None)
    if callable(nbytes):
        return int(nbytes())
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    if _depth < 2 and isinstance(obj, dict):
        return int(sys.getsizeof(obj)) + sum(
            estimate_nbytes(value, _depth + 1) for value in obj.values()
        )
    if _depth < 2 and isinstance(obj, (list, tuple, set, frozenset)):
        return int(sys.getsizeof(obj)) + sum(
            estimate_nbytes(item, _depth + 1) for item in obj
        )
    # WeightedGraph / SparsifierResult and friends: prefer their edge count
    edge_count = getattr(obj, "m", None)
    if isinstance(edge_count, (int, np.integer)):
        # ~100 bytes/edge for the weight dict + adjacency sets (measured)
        return 100 * int(edge_count) + int(sys.getsizeof(obj))
    sparsifier = getattr(obj, "sparsifier", None)
    if sparsifier is not None and _depth < 2:
        return estimate_nbytes(sparsifier, _depth + 1) + int(sys.getsizeof(obj))
    return int(sys.getsizeof(obj))


@dataclass
class CacheEntry:
    """One cached artifact with its accounting metadata."""

    key: Tuple[Hashable, ...]
    value: Any
    nbytes: int
    graph_key: str
    version: int
    kind: str
    build_seconds: float
    hits: int = 0


@dataclass
class CacheStats:
    """Aggregate counters; ``hit_rate`` is the serving-layer health metric."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    repairs: int = 0
    build_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when nothing looked up)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Counters as a plain dict (what ``metrics_snapshot`` embeds)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "repairs": self.repairs,
            "hit_rate": self.hit_rate,
            "build_seconds": self.build_seconds,
        }


class ArtifactCache:
    """Thread-safe LRU cache with byte-size accounting.

    ``get_or_build`` is the single entry point: it either returns the cached
    value (a *hit*, promoting the entry to most-recently-used) or runs the
    builder and inserts the result.  Builders run outside the lock -- a
    multi-second sparsifier build must not block unrelated lookups -- so two
    racing threads may build the same artifact; the second insert finds the
    key present and adopts the first value, which is safe because artifacts
    are deterministic functions of ``(graph content, params)``.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_entries: Optional[int] = None,
    ):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_bytes = int(max_bytes)
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[Hashable, ...], CacheEntry]" = OrderedDict()
        self._total_bytes = 0
        self._lock = threading.RLock()
        # serialises repair_graph calls (repairs mutate artifacts in place);
        # separate from _lock so multi-ms repairs never block plain lookups
        self._repair_lock = threading.Lock()
        # pending-delta ledger for lazy repair: maps a *target* identity
        # (new fingerprint, new version) to the stale source generations a
        # first lookup can migrate artifacts from, each with the mutation
        # delta that bridges it to the target.  See defer_repair.
        self._pending: "OrderedDict[Tuple[str, int], Dict[Tuple[str, int], tuple]]" = (
            OrderedDict()
        )
        self.stats = CacheStats()

    @staticmethod
    def make_key(
        graph_key: str, version: int, kind: str, params: Tuple[Hashable, ...] = ()
    ) -> Tuple[Hashable, ...]:
        """Canonical cache key; the embedded version is the staleness guard."""
        return (graph_key, int(version), kind, tuple(params))

    def get_or_build(
        self,
        graph_key: str,
        version: int,
        kind: str,
        params: Tuple[Hashable, ...],
        builder: Callable[[], Any],
    ) -> Tuple[Any, bool]:
        """Return ``(artifact, cache_hit)`` for the given identity."""
        key = self.make_key(graph_key, version, kind, params)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry.hits += 1
                self.stats.hits += 1
                return entry.value, True
        start = time.perf_counter()
        value = builder()
        build_seconds = time.perf_counter() - start
        nbytes = estimate_nbytes(value)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                # lost a build race: adopt the first value (deterministic)
                self._entries.move_to_end(key)
                entry.hits += 1
                self.stats.hits += 1
                return entry.value, True
            self._entries[key] = CacheEntry(
                key=key,
                value=value,
                nbytes=nbytes,
                graph_key=graph_key,
                version=int(version),
                kind=kind,
                build_seconds=build_seconds,
            )
            self._total_bytes += nbytes
            self.stats.misses += 1
            self.stats.build_seconds += build_seconds
            self._evict_locked()
        return value, False

    def invalidate_graph(self, graph_key: str, keep_version: Optional[int] = None) -> int:
        """Drop artifacts of ``graph_key`` (all versions, or all but one).

        Called when the registry detects that a registered graph was mutated:
        everything built against earlier versions is unservable and would
        otherwise linger until LRU eviction gets to it.
        """
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if entry.graph_key == graph_key
                and (keep_version is None or entry.version != keep_version)
            ]
            for key in doomed:
                self._remove_locked(key)
            self.stats.invalidations += len(doomed)
            # the graph's generations are no longer repair sources or targets
            for target in list(self._pending):
                sources = self._pending[target]
                if target[0] == graph_key and (
                    keep_version is None or target[1] != keep_version
                ):
                    del self._pending[target]
                    continue
                for source in [s for s in sources if s[0] == graph_key]:
                    del sources[source]
                if not sources:
                    del self._pending[target]
            return len(doomed)

    def repair_graph(
        self,
        graph_key: str,
        from_version: int,
        new_graph_key: str,
        new_version: int,
        repair_fn: Callable[[List[CacheEntry]], Dict[Tuple[Hashable, ...], Any]],
    ) -> Tuple[int, int]:
        """Migrate a mutated graph's artifacts to its new identity via repair.

        The alternative to :meth:`invalidate_graph` when the registry hands
        the planner a short :class:`~repro.graphs.graph.MutationRecord` delta.
        Every entry of ``graph_key`` is first removed from the cache
        *atomically*; the entries at ``from_version`` are then handed to
        ``repair_fn`` in one call, which returns a mapping from old cache key
        to repaired value (typically the same object, mutated in place by
        low-rank updates) -- omitted entries count as "not repairable,
        drop".  Survivors are re-inserted under
        ``(new_graph_key, new_version, kind, params)`` -- the mutated
        content's fingerprint and version -- with freshly estimated byte
        sizes; everything else (including entries at versions other than
        ``from_version``, which the delta does not describe) stays dropped
        and is counted as an invalidation.

        Returns ``(repaired, dropped)``.  Concurrency: repairs are
        serialised on a dedicated per-cache mutex, and the old entries are
        popped *before* ``repair_fn`` runs, so two services sharing one
        cache can never hand the same artifact to two repair walks (the
        loser finds no candidates and rebuilds instead of double-applying
        updates).  ``repair_fn`` runs outside the main lock, like builders,
        so repairs never block unrelated lookups; a reader that fetched an
        artifact reference *before* the repair started may still observe the
        in-place mutation, which is why mutating a registered graph must be
        fenced from concurrent queries of that graph (see
        :class:`~repro.serve.service.LaplacianService`).  If a racing thread
        built an entry under a repaired value's new key first, the racing
        entry wins, mirroring ``get_or_build``'s adopt-first semantics.
        """
        with self._repair_lock:
            with self._lock:
                doomed = [
                    entry
                    for entry in self._entries.values()
                    if entry.graph_key == graph_key
                ]
                for entry in doomed:
                    self._remove_locked(entry.key)
            candidates = [entry for entry in doomed if entry.version == from_version]
            start = time.perf_counter()
            try:
                survivors = repair_fn(candidates) if candidates else {}
            except BaseException:
                # a repair walk that raises mid-delta is fail-safe by
                # construction -- the stale entries are already popped, so
                # nothing half-updated can be served -- but the books must
                # still balance: every doomed entry is an invalidation, and
                # the partial walk's cost is accounted before re-raising
                with self._lock:
                    self.stats.invalidations += len(doomed)
                    self.stats.build_seconds += time.perf_counter() - start
                raise
            repair_seconds = time.perf_counter() - start
            with self._lock:
                migrated = 0
                for entry in candidates:
                    value = survivors.get(entry.key)
                    if value is None:
                        continue
                    params = entry.key[3]
                    new_key = self.make_key(
                        new_graph_key, new_version, entry.kind, params
                    )
                    if new_key in self._entries:
                        continue  # lost a repair/build race: adopt the racing value
                    self._entries[new_key] = CacheEntry(
                        key=new_key,
                        value=value,
                        nbytes=estimate_nbytes(value),
                        graph_key=new_graph_key,
                        version=int(new_version),
                        kind=entry.kind,
                        build_seconds=entry.build_seconds,
                    )
                    self._total_bytes += self._entries[new_key].nbytes
                    migrated += 1
                dropped = len(doomed) - migrated
                self.stats.repairs += migrated
                self.stats.invalidations += dropped
                self.stats.build_seconds += repair_seconds
                self._evict_locked()
        return migrated, dropped

    # -- pending-delta ledger (lazy repair) -------------------------------------

    def defer_repair(
        self,
        from_graph_key: str,
        from_version: int,
        new_graph_key: str,
        new_version: int,
        delta,
        limit: int,
    ) -> bool:
        """Record that the stale generation can be *lazily* repaired later.

        Instead of walking every cached artifact of ``(from_graph_key,
        from_version)`` eagerly at mutation-detection time, the planner
        stashes the mutation ``delta`` here; each stale artifact is then
        migrated individually on its *first lookup* under the new identity
        (or never, if it is never looked up again).  Chained mutations
        coalesce: if the stale identity is itself a pending target, its
        source generations are re-targeted at the new identity with the
        concatenated delta -- sources whose combined delta exceeds ``limit``
        are dropped (their artifacts invalidated), because the planner would
        refuse to walk them anyway.  Returns whether any pending source was
        recorded.
        """
        with self._lock:
            sources: Dict[Tuple[str, int], tuple] = {}
            chained = self._pending.pop((from_graph_key, from_version), None)
            if chained:
                for source, old_delta in chained.items():
                    sources[source] = tuple(old_delta) + tuple(delta)
            sources[(from_graph_key, from_version)] = tuple(delta)
            kept: Dict[Tuple[str, int], tuple] = {}
            # cap by closeness: the most recent generations (shortest combined
            # delta) are the ones whose artifacts keep migrating forward, so
            # they must win the source slots over long-stale ancestors
            for source, combined in sorted(
                sources.items(), key=lambda item: len(item[1])
            ):
                if len(combined) <= limit and len(kept) < PENDING_SOURCE_LIMIT:
                    kept[source] = combined
                else:
                    self._invalidate_generation_locked(source)
            if not kept:
                return False
            self._pending[(new_graph_key, new_version)] = kept
            while len(self._pending) > PENDING_TARGET_LIMIT:
                _, evicted = self._pending.popitem(last=False)
                for source in evicted:
                    self._invalidate_generation_locked(source)
            return True

    def pending_repair(self, graph_key: str, version: int):
        """Stale generations repairable into ``(graph_key, version)``, or ``None``.

        Returns ``{(source_graph_key, source_version): delta, ...}`` sorted
        shortest-delta-first (the closest generation).  Sources that no
        longer have any cached artifact are swept from the ledger here --
        the "artifact evicted while its delta was pending" case resolves to
        an ordinary rebuild with no dangling bookkeeping -- and a target
        whose last source is swept reports ``None``.
        """
        with self._lock:
            sources = self._pending.get((graph_key, version))
            if not sources:
                return None
            alive_keys = {entry.graph_key for entry in self._entries.values()}
            live = {
                source: delta
                for source, delta in sources.items()
                if source[0] in alive_keys
            }
            if not live:
                del self._pending[(graph_key, version)]
                return None
            if len(live) != len(sources):
                self._pending[(graph_key, version)] = live
            return dict(sorted(live.items(), key=lambda item: len(item[1])))

    @property
    def pending_repairs(self) -> int:
        """Number of graph generations with a stashed (unpaid) repair delta."""
        with self._lock:
            return len(self._pending)

    def take_stale_entry(
        self,
        graph_key: str,
        version: int,
        kind: str,
        params: Tuple[Hashable, ...] = (),
    ) -> Optional[CacheEntry]:
        """Atomically pop one stale entry for a lazy repair attempt.

        The entry leaves the cache before the caller's repair runs, so two
        services sharing the cache can never hand the same artifact to two
        repair walks (the loser finds nothing and rebuilds).  The caller
        must finish the story: :meth:`adopt_repaired` on success,
        :meth:`note_dropped` on failure.
        """
        with self._lock:
            key = self.make_key(graph_key, version, kind, params)
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._remove_locked(key)
            return entry

    def adopt_repaired(
        self,
        graph_key: str,
        version: int,
        kind: str,
        params: Tuple[Hashable, ...],
        value: Any,
        repair_seconds: float = 0.0,
    ) -> Any:
        """Insert a lazily repaired artifact under its new identity.

        Counts one repair and the repair's wall time.  If a racing thread
        built or repaired the same identity first, the racing value is
        adopted instead (mirroring ``get_or_build``) and no repair is
        counted.  Returns the value now cached under the identity.
        """
        with self._lock:
            key = self.make_key(graph_key, version, kind, params)
            existing = self._entries.get(key)
            if existing is not None:
                self.stats.build_seconds += repair_seconds
                return existing.value
            self._entries[key] = CacheEntry(
                key=key,
                value=value,
                nbytes=estimate_nbytes(value),
                graph_key=graph_key,
                version=int(version),
                kind=kind,
                build_seconds=repair_seconds,
            )
            self._total_bytes += self._entries[key].nbytes
            self.stats.repairs += 1
            self.stats.build_seconds += repair_seconds
            self._evict_locked()
            return value

    def note_dropped(self, count: int = 1) -> None:
        """Account for stale entries dropped outside the cache's own sweeps.

        Balances the books after :meth:`take_stale_entry` when the repair
        attempt failed and the popped artifact was discarded.
        """
        with self._lock:
            self.stats.invalidations += int(count)

    def _invalidate_generation_locked(self, source: Tuple[str, int]) -> None:
        graph_key, version = source
        doomed = [
            key
            for key, entry in self._entries.items()
            if entry.graph_key == graph_key and entry.version == version
        ]
        for key in doomed:
            self._remove_locked(key)
        self.stats.invalidations += len(doomed)

    def discard(
        self, graph_key: str, version: int, kind: str, params: Tuple[Hashable, ...] = ()
    ) -> bool:
        """Drop one exact entry if present; returns whether it existed.

        Used by the planner to retire a single artifact whose *contract*
        drifted -- e.g. a repaired sketched oracle whose widened
        ``eta_effective`` no longer covers the client's requested bound --
        without sweeping the graph's other artifacts.
        """
        with self._lock:
            key = self.make_key(graph_key, version, kind, params)
            if key not in self._entries:
                return False
            self._remove_locked(key)
            self.stats.invalidations += 1
            return True

    def swap_value(
        self,
        graph_key: str,
        version: int,
        kind: str,
        params: Tuple[Hashable, ...],
        value: Any,
    ) -> bool:
        """Replace one entry's value in place, keeping its stats and LRU slot.

        Used by the cluster worker after publishing an artifact to shared
        memory: the freshly built private object is swapped for its
        shm-backed equivalent (same answers, physical pages shared with
        every other worker and survivable across respawns) without
        perturbing hit counters or eviction order.  Byte accounting is
        re-estimated from the new value.  Returns whether the entry
        existed.
        """
        key = self.make_key(graph_key, version, kind, params)
        nbytes = estimate_nbytes(value)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            self._total_bytes += nbytes - entry.nbytes
            entry.value = value
            entry.nbytes = nbytes
            return True

    def contains(
        self, graph_key: str, version: int, kind: str, params: Tuple[Hashable, ...] = ()
    ) -> bool:
        """Whether an artifact is cached under this exact identity (no stats)."""
        with self._lock:
            return self.make_key(graph_key, version, kind, params) in self._entries

    @property
    def total_bytes(self) -> int:
        """Estimated resident bytes of every cached artifact combined."""
        with self._lock:
            return self._total_bytes

    def entries(self) -> List[CacheEntry]:
        """Snapshot of entries in LRU -> MRU order (metadata, live values)."""
        with self._lock:
            return list(self._entries.values())

    def clear(self) -> None:
        """Drop every entry (stats counters are kept; they are cumulative)."""
        with self._lock:
            self._entries.clear()
            self._pending.clear()
            self._total_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- internals -------------------------------------------------------------

    def _remove_locked(self, key: Tuple[Hashable, ...]) -> None:
        entry = self._entries.pop(key)
        self._total_bytes -= entry.nbytes

    def _evict_locked(self) -> None:
        # never evict the most-recently-inserted entry: a single artifact
        # larger than the whole budget is kept (and evicted by the next insert)
        while len(self._entries) > 1 and (
            self._total_bytes > self.max_bytes
            or (self.max_entries is not None and len(self._entries) > self.max_entries)
        ):
            oldest = next(iter(self._entries))
            self._remove_locked(oldest)
            self.stats.evictions += 1
