"""Shared-memory artifact store for the multi-process serving tier.

The cluster's big serving artifacts -- the dense
:class:`~repro.linalg.sparse_backend.ResistanceOracle` inverse (``n x n``
float64), the :class:`~repro.linalg.resistance.SketchedResistanceOracle`
embedding (``n x k`` float32) and CSR factor arrays -- are read-only after
they are built.  Keeping one private copy per worker process would multiply
their resident cost by the worker count and force a multi-megabyte pickle
over the control pipe on every respawn.  This module instead publishes each
artifact's numpy arrays into one POSIX shared-memory segment
(:mod:`multiprocessing.shared_memory`): the publishing worker packs the
arrays once, any process that holds the picklable :class:`ShmArtifactSpec`
attaches zero-copy ``np.ndarray`` views, and a respawned worker re-serves
the artifact without rebuilding it.

Ownership and lifecycle
-----------------------

Segments are refcounted inside each :class:`SharedArtifactStore`: every
:meth:`~SharedArtifactStore.attach` bumps the segment's count and every
:meth:`AttachedArtifact.close` drops it, so a store can tell live
attachments from garbage.  *Unlinking* (removing the segment name from the
kernel) is the cluster parent's job alone: workers publish segments and
immediately report the spec to the parent, which :meth:`adopts
<SharedArtifactStore.adopt>` them; ``ClusterService.close()`` then unlinks
every adopted segment exactly once.  A worker that crashes between creating
a segment and the parent's adopt leaks at most the artifacts of one flush
round -- the parent closes that window by adopting specs as soon as the
``published`` notification arrives, before the query replies that follow it.

CPython interaction: the ``multiprocessing.resource_tracker`` process is
shared between the parent and every spawned worker (the tracker fd is
inherited), and its ledger is a *set* of segment names -- creates and
attaches register idempotently, and the parent's final
``SharedMemory.unlink()`` unregisters exactly once, so the books balance
without manual tracker surgery.  The tracker doubles as crash insurance:
if the whole process tree dies before ``close()``, it unlinks every
registered segment when the last client exits (the infamous bpo-38119
attach-side unlink only bites processes with *separate* trackers, which
spawned workers are not).
"""

from __future__ import annotations

import os
import secrets
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Dict, Hashable, NamedTuple, Optional, Tuple

import numpy as np
import scipy.sparse as sp


class ShmArraySpec(NamedTuple):
    """Location of one packed array inside a shared segment."""

    #: field name the reconstructing artifact looks the array up under
    field: str
    #: array shape, as built
    shape: Tuple[int, ...]
    #: numpy dtype string (``np.dtype(...).str``, endianness included)
    dtype: str
    #: byte offset of the array's first element inside the segment
    offset: int


@dataclass(frozen=True)
class ShmArtifactSpec:
    """Picklable description of one published artifact.

    Everything a worker needs to re-serve the artifact without rebuilding
    it: the segment name, the packed array layout, the cache identity
    (``graph_key``/``version``/``kind``/``params`` exactly as
    :meth:`~repro.serve.artifacts.ArtifactCache.make_key` wants them) and
    the scalar metadata the reconstruction hook
    (``ResistanceOracle.from_shared`` / ``SketchedResistanceOracle
    .from_shared``) restores onto the rebuilt object.
    """

    #: shared-memory segment name (``shm_open`` name, no leading slash)
    segment: str
    #: artifact cache kind (``"resistance_oracle"``, ``"sketched_resistance"``, ...)
    kind: str
    #: content fingerprint of the graph the artifact was built for
    graph_key: str
    #: graph version at build time (the staleness guard)
    version: int
    #: cache params tuple, verbatim
    params: Tuple[Hashable, ...]
    #: packed array layout inside the segment
    arrays: Tuple[ShmArraySpec, ...] = field(default_factory=tuple)
    #: scalar metadata ``(name, value)`` pairs for the reconstruction hook
    meta: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    #: total payload bytes (cache accounting on the attaching side)
    nbytes: int = 0

    def meta_dict(self) -> Dict[str, Any]:
        """The scalar metadata as a plain dict."""
        return dict(self.meta)


class AttachedArtifact:
    """Zero-copy read-only views over one published artifact's arrays."""

    def __init__(self, spec: ShmArtifactSpec, shm: shared_memory.SharedMemory):
        self.spec = spec
        self._shm = shm
        self._closed = False
        views: Dict[str, np.ndarray] = {}
        for array_spec in spec.arrays:
            view = np.ndarray(
                array_spec.shape,
                dtype=np.dtype(array_spec.dtype),
                buffer=shm.buf,
                offset=array_spec.offset,
            )
            view.flags.writeable = False
            views[array_spec.field] = view
        self.arrays = views

    def close(self) -> None:
        """Drop the views and unmap the segment (never unlinks)."""
        if self._closed:
            return
        self._closed = True
        # the views hold buffer references into shm.buf; drop them first so
        # SharedMemory.close() can release the mapping without BufferError
        self.arrays = {}
        self._shm.close()


class SharedArtifactStore:
    """Publish/attach/unlink shared-memory artifacts with refcounting.

    One store per process.  Workers ``publish`` and ``attach``; the cluster
    parent additionally ``adopt``s worker-published segments, becoming the
    single process responsible for ``unlink_all`` at shutdown.  All methods
    are thread-safe (the parent's receiver threads adopt concurrently).
    """

    def __init__(self):
        self._lock = threading.Lock()
        #: segments this store created or adopted -- the ones unlink_all removes
        self._owned: Dict[str, ShmArtifactSpec] = {}
        #: live attachment count per segment name
        self._refcounts: Dict[str, int] = {}
        #: attachments opened through this store, for close()
        self._attachments: list = []

    def publish(
        self,
        kind: str,
        graph_key: str,
        version: int,
        params: Tuple[Hashable, ...],
        arrays: Dict[str, np.ndarray],
        meta: Optional[Dict[str, Any]] = None,
    ) -> ShmArtifactSpec:
        """Pack ``arrays`` into a fresh segment and return its spec.

        The segment is created by this process (which therefore owns the
        name until someone else adopts it) and the arrays are copied in
        once, 64-byte aligned so the attached views keep numpy's preferred
        alignment.
        """
        layout = []
        offset = 0
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset = -(-offset // 64) * 64  # align each array at 64 bytes
            layout.append((name, array, offset))
            offset += array.nbytes
        total = max(1, offset)
        segment_name = f"repro-{os.getpid()}-{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(create=True, name=segment_name, size=total)
        array_specs = []
        for name, array, start in layout:
            dest = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf, offset=start)
            dest[...] = array
            array_specs.append(
                ShmArraySpec(
                    field=name,
                    shape=tuple(array.shape),
                    dtype=np.dtype(array.dtype).str,
                    offset=start,
                )
            )
        del dest
        spec = ShmArtifactSpec(
            segment=segment_name,
            kind=kind,
            graph_key=graph_key,
            version=int(version),
            params=tuple(params),
            arrays=tuple(array_specs),
            meta=tuple(sorted((meta or {}).items())),
            nbytes=total,
        )
        shm.close()
        with self._lock:
            self._owned[segment_name] = spec
        return spec

    def attach(self, spec: ShmArtifactSpec) -> AttachedArtifact:
        """Map an existing segment and return read-only views over it.

        The attachment is refcounted per store; attaching never transfers
        unlink responsibility (the tracker's set-ledger makes the extra
        registration a no-op).
        """
        shm = shared_memory.SharedMemory(name=spec.segment)
        attached = AttachedArtifact(spec, shm)
        with self._lock:
            self._refcounts[spec.segment] = self._refcounts.get(spec.segment, 0) + 1
            self._attachments.append(attached)
        return attached

    def adopt(self, spec: ShmArtifactSpec) -> None:
        """Take unlink ownership of a segment another process created.

        The cluster parent adopts every spec a worker reports so that
        exactly one process -- the parent -- unlinks at shutdown, even if
        the publishing worker has long since crashed.
        """
        with self._lock:
            self._owned[spec.segment] = spec

    def release(self, attached: AttachedArtifact) -> None:
        """Close one attachment and drop its refcount."""
        with self._lock:
            count = self._refcounts.get(attached.spec.segment, 0)
            if count > 1:
                self._refcounts[attached.spec.segment] = count - 1
            else:
                self._refcounts.pop(attached.spec.segment, None)
            try:
                self._attachments.remove(attached)
            except ValueError:
                pass
        attached.close()

    def refcount(self, segment: str) -> int:
        """Live attachments of ``segment`` opened through this store."""
        with self._lock:
            return self._refcounts.get(segment, 0)

    def owned_specs(self) -> Tuple[ShmArtifactSpec, ...]:
        """Specs of every segment this store would unlink."""
        with self._lock:
            return tuple(self._owned.values())

    def specs_for(
        self, graph_key: str, version: Optional[int] = None
    ) -> Tuple[ShmArtifactSpec, ...]:
        """Owned specs for one graph fingerprint (optionally one version).

        The cluster parent's replica/respawn path: when a graph is
        (re-)registered on a worker, the specs of every artifact already
        published for its *current* content ride along so the worker
        re-attaches instead of rebuilding.  With replication the same
        artifact may be published once per replica (each worker packs its
        own segment); all of them are owned -- and unlinked -- by the
        parent, and any one of them serves a re-attach.
        """
        with self._lock:
            return tuple(
                spec
                for spec in self._owned.values()
                if spec.graph_key == graph_key
                and (version is None or spec.version == version)
            )

    def unlink(self, segment: str) -> bool:
        """Unlink one owned segment; returns whether it still existed."""
        with self._lock:
            self._owned.pop(segment, None)
        try:
            shm = shared_memory.SharedMemory(name=segment)
        except FileNotFoundError:
            return False
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - unlink race
            return False
        return True

    def unlink_all(self) -> int:
        """Unlink every owned segment; returns how many were removed."""
        with self._lock:
            names = list(self._owned)
        removed = 0
        for name in names:
            if self.unlink(name):
                removed += 1
        return removed

    def close(self, unlink: bool = True) -> None:
        """Close every attachment; owners additionally unlink their segments."""
        with self._lock:
            attachments = list(self._attachments)
            self._attachments = []
            self._refcounts = {}
        for attached in attachments:
            attached.close()
        if unlink:
            self.unlink_all()


# -- CSR helpers ---------------------------------------------------------------


def csr_to_arrays(matrix: sp.csr_matrix, prefix: str) -> Dict[str, np.ndarray]:
    """Flatten a CSR matrix into the three arrays ``publish`` wants.

    The shape rides along in the array names' companion metadata (callers
    store ``f"{prefix}_shape"`` in the spec meta); the arrays are the
    standard ``data``/``indices``/``indptr`` triple.
    """
    matrix = sp.csr_matrix(matrix)
    return {
        f"{prefix}_data": matrix.data,
        f"{prefix}_indices": matrix.indices,
        f"{prefix}_indptr": matrix.indptr,
    }


def csr_from_arrays(
    arrays: Dict[str, np.ndarray], prefix: str, shape: Tuple[int, int]
) -> sp.csr_matrix:
    """Rebuild a CSR matrix over shared views without copying the payload."""
    return sp.csr_matrix(
        (
            arrays[f"{prefix}_data"],
            arrays[f"{prefix}_indices"],
            arrays[f"{prefix}_indptr"],
        ),
        shape=shape,
        copy=False,
    )
