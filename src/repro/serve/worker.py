"""Worker process of the cluster: one `LaplacianService` behind a pipe.

Each :class:`~repro.serve.cluster.ClusterService` shard is a separate OS
process running :func:`worker_main`, which hosts an ordinary in-process
:class:`~repro.serve.service.LaplacianService` and speaks a small seq-tagged
message protocol over a :class:`multiprocessing.Pipe`:

* ``("query", seq, query)`` -- enqueue one planner
  :class:`~repro.serve.planner.Query`.  Consecutive query messages drain
  into the service *before* a flush, so queries the parent forwarded
  back-to-back still coalesce into blocked kernel calls exactly as they
  would in-process.
* ``("register", seq, key, graph, specs)`` -- register a (pickled) graph
  under the parent's handle and re-attach any previously published
  shared-memory artifacts (``specs``) -- the respawn path rebuilds nothing.
* ``("mutate", seq, key, op, u, v, weight)`` -- apply one edge mutation to
  the shard's copy of the graph (the planner's repair machinery then
  migrates or rebuilds artifacts as usual).
* ``("unregister", seq, key)`` -- drop a graph this shard no longer owns
  (runtime membership moved it to another worker); its cached artifacts
  age out of the LRU.
* ``("adopt", seq, specs)`` -- re-attach shared-memory artifacts another
  replica published, so a failover read serves warm instead of rebuilding.
* ``("ping", seq)`` -- heartbeat: replies immediately *after* any pending
  flush, so a worker stuck in a long kernel call misses its deadline and
  the parent's health monitor sees it.
* ``("wedge", seq, seconds)`` -- fault injection: block the message loop
  for ``seconds`` (a hang without a crash), which is how the health
  monitor's suspect -> dead ladder is exercised deterministically.
* ``("metrics", seq)`` / ``("shutdown", seq)`` -- snapshot / clean exit.

Replies are ``("reply", seq, ok, payload)`` with ``payload`` a
:class:`RemoteResult` or a pickled exception; the worker additionally emits
unsolicited ``("published", spec)`` notifications whenever it has packed a
freshly built oracle into shared memory (see :mod:`repro.serve.shm`), so
the parent can adopt the segment and hand it to the replacement worker on
respawn.

The worker also arms the planner's **background builder**: sketch builds
run on a daemon thread off the flush path while the grounded ``splu``
fallback keeps serving exact answers (non-degraded -- exact trivially
satisfies any ``eta``), which keeps the worker's tail latency flat through
a sketch build instead of stalling a whole batch behind ``k`` blocked
solves.
"""

from __future__ import annotations

import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.linalg.resistance import SketchedResistanceOracle
from repro.linalg.sparse_backend import ResistanceOracle
from repro.serve.artifacts import DEFAULT_MAX_BYTES, ArtifactCache
from repro.serve.resilience import ResiliencePolicy
from repro.serve.service import FlushPolicy, LaplacianService
from repro.serve.shm import SharedArtifactStore, ShmArtifactSpec

#: artifact kinds the worker publishes to shared memory: read-only after
#: build, array-backed, and worth sharing (the dense inverse and the JL
#: embedding dominate a shard's resident bytes)
SHARED_ARTIFACT_KINDS = ("resistance_oracle", "sketched_resistance")

#: reconstruction hooks per shared kind -- ``from_shared(arrays, meta)``
SHM_REBUILDERS: Dict[str, Callable[..., Any]] = {
    "resistance_oracle": ResistanceOracle.from_shared,
    "sketched_resistance": SketchedResistanceOracle.from_shared,
}


@dataclass(frozen=True)
class WorkerConfig:
    """Picklable construction knobs for one worker's in-process service.

    Mirrors the :class:`~repro.serve.service.LaplacianService` constructor
    (spawned workers cannot share closures with the parent, so everything
    rides in this dataclass).  ``background_builds`` arms the off-flush-path
    sketch builder; ``publish_shared`` turns on shared-memory publication of
    oracle artifacts after each flush.
    """

    name: str = "worker"
    solver_seed: Optional[int] = 0
    t_override: Optional[int] = None
    bundle_scale: float = 1.0
    backend: str = "auto"
    repair: bool = True
    max_batch: int = 64
    max_pending: Optional[int] = None
    cache_max_bytes: int = DEFAULT_MAX_BYTES
    resilience: Optional[ResiliencePolicy] = None
    background_builds: bool = True
    publish_shared: bool = True


@dataclass
class RemoteResult:
    """Pipe-sized projection of a :class:`~repro.serve.planner.QueryResult`.

    The parent already holds the :class:`~repro.serve.planner.Query`, so
    only the outcome crosses the pipe: the value, the serving metadata the
    cluster metrics aggregate, and nothing else.
    """

    value: Any
    cache_hit: bool
    degraded: bool
    batch_size: int
    seconds: float


class BackgroundBuilder:
    """Single-threaded deduplicating executor for off-flush-path builds.

    The planner submits ``(key, fn)`` pairs; a daemon thread runs them one
    at a time.  A key already queued or in flight is dropped (the build is
    already on its way), so repeated fallback-served batches cannot pile up
    duplicate sketch builds.  Builds that raise are swallowed -- the planner
    records the failure in its breaker/health machinery inside ``fn``
    itself, and the foreground path keeps serving the grounded fallback.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._queue: "deque[Tuple[Hashable, Callable[[], Any]]]" = deque()
        self._inflight: set = set()
        self._wake = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name="background-builder", daemon=True
        )
        self._thread.start()

    def submit(self, key: Hashable, fn: Callable[[], Any]) -> bool:
        """Schedule ``fn`` under ``key``; returns False if already pending."""
        with self._lock:
            if self._closed or key in self._inflight:
                return False
            self._inflight.add(key)
            self._queue.append((key, fn))
            self._idle.clear()
        self._wake.set()
        return True

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every scheduled build finished; returns success.

        The worker drains before applying a mutation so no build can read a
        graph mid-edit.
        """
        return self._idle.wait(timeout=timeout)

    def close(self) -> None:
        """Stop accepting work and wake the thread so it can exit."""
        with self._lock:
            self._closed = True
        self._wake.set()

    def _loop(self) -> None:
        while True:
            self._wake.wait()
            while True:
                with self._lock:
                    if self._closed:
                        return
                    if not self._queue:
                        self._wake.clear()
                        self._idle.set()
                        break
                    key, fn = self._queue.popleft()
                try:
                    fn()
                except Exception:
                    pass  # recorded by the planner's breaker/health inside fn
                finally:
                    with self._lock:
                        self._inflight.discard(key)


def picklable_error(error: BaseException) -> BaseException:
    """``error`` itself if it survives pickling, else a faithful stand-in.

    Worker exceptions cross a pipe; an unpicklable one (e.g. holding a lock
    or a solver object) is replaced by a ``RuntimeError`` carrying the
    original type name and message so the parent still fails the ticket
    with something diagnosable.
    """
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


def publish_ready_artifacts(
    service: LaplacianService,
    store: SharedArtifactStore,
    conn,
    published: set,
) -> int:
    """Publish freshly built oracle artifacts to shared memory.

    Walks the service's cache for :data:`SHARED_ARTIFACT_KINDS` entries not
    yet published, packs each one's arrays into a segment, notifies the
    parent (``("published", spec)``) so it adopts unlink ownership, and
    swaps the cache entry's value for the shm-backed reconstruction --- the
    worker then serves from the shared pages like everyone else.  Returns
    the number of artifacts published.
    """
    count = 0
    for entry in service.cache.entries():
        if entry.kind not in SHM_REBUILDERS:
            continue
        if entry.key in published:
            continue
        share = getattr(entry.value, "share_arrays", None)
        if share is None:
            continue
        arrays, meta = share()
        if any(not array.flags.writeable for array in arrays.values()):
            # already a shared view (adopted on respawn); nothing to do
            published.add(entry.key)
            continue
        params = entry.key[3]
        spec = store.publish(
            entry.kind, entry.graph_key, entry.version, params, arrays, meta
        )
        conn.send(("published", spec))
        attached = store.attach(spec)
        rebuilt = SHM_REBUILDERS[entry.kind](attached.arrays, spec.meta_dict())
        service.cache.swap_value(
            entry.graph_key, entry.version, entry.kind, params, rebuilt
        )
        published.add(entry.key)
        count += 1
    return count


def adopt_shared_artifacts(
    service: LaplacianService,
    store: SharedArtifactStore,
    specs: List[ShmArtifactSpec],
    published: set,
) -> int:
    """Re-attach previously published artifacts into a fresh worker's cache.

    The respawn path: the parent stored every ``("published", spec)`` it
    adopted, and hands the relevant ones to the replacement worker, which
    maps the segments and inserts shm-backed reconstructions under their
    original cache identities -- no rebuild, no copy.  Specs whose segment
    is already gone are skipped.  Returns the number adopted.
    """
    count = 0
    for spec in specs:
        rebuild = SHM_REBUILDERS.get(spec.kind)
        if rebuild is None:
            continue
        try:
            attached = store.attach(spec)
        except FileNotFoundError:
            continue
        value = rebuild(attached.arrays, spec.meta_dict())
        service.cache.get_or_build(
            spec.graph_key, spec.version, spec.kind, spec.params, lambda: value
        )
        published.add(
            ArtifactCache.make_key(spec.graph_key, spec.version, spec.kind, spec.params)
        )
        count += 1
    return count


def worker_main(conn, config: WorkerConfig) -> None:
    """Entry point of one cluster worker process.

    Runs the message loop described in the module docstring until a
    ``shutdown`` message or pipe EOF (parent died), then tears the service
    down.  The worker never unlinks shared-memory segments -- the parent
    owns every published segment (it adopts the spec before the reply that
    follows it), so worker death of any kind leaks nothing the parent does
    not already track.
    """
    service = LaplacianService(
        cache=ArtifactCache(max_bytes=config.cache_max_bytes),
        flush_policy=FlushPolicy(
            max_batch=config.max_batch,
            max_wait_seconds=0.0,
            max_pending=config.max_pending,
        ),
        solver_seed=config.solver_seed,
        t_override=config.t_override,
        bundle_scale=config.bundle_scale,
        backend=config.backend,
        auto_flush=False,
        repair=config.repair,
        resilience=config.resilience,
    )
    builder: Optional[BackgroundBuilder] = None
    if config.background_builds:
        builder = BackgroundBuilder()
        service.planner.background_builder = builder
    store = SharedArtifactStore()
    published: set = set()
    pending: List[Tuple[int, Any]] = []

    def reply(seq: int, ok: bool, payload: Any) -> None:
        conn.send(("reply", seq, ok, payload))

    def flush_pending() -> None:
        if not pending:
            return
        service.flush()
        for seq, ticket in pending:
            try:
                result = ticket.result(timeout=None)
            except Exception as error:
                reply(seq, False, picklable_error(error))
            else:
                reply(
                    seq,
                    True,
                    RemoteResult(
                        value=result.value,
                        cache_hit=result.cache_hit,
                        degraded=result.degraded,
                        batch_size=result.batch_size,
                        seconds=result.seconds,
                    ),
                )
        pending.clear()
        if config.publish_shared:
            publish_ready_artifacts(service, store, conn, published)

    def handle_control(message: Tuple) -> bool:
        """Dispatch one non-query message; returns False on shutdown."""
        tag, seq = message[0], message[1]
        try:
            if tag == "register":
                _, _, key, graph, specs = message
                service.register(graph, name=key)
                adopted = 0
                if specs:
                    adopted = adopt_shared_artifacts(
                        service, store, list(specs), published
                    )
                reply(seq, True, adopted)
            elif tag == "unregister":
                _, _, key = message
                if builder is not None:
                    builder.drain()
                service.registry.unregister(key)
                reply(seq, True, None)
            elif tag == "adopt":
                _, _, specs = message
                adopted = adopt_shared_artifacts(service, store, list(specs), published)
                reply(seq, True, adopted)
            elif tag == "ping":
                reply(seq, True, None)
            elif tag == "wedge":
                _, _, seconds = message
                time.sleep(float(seconds))
                reply(seq, True, None)
            elif tag == "mutate":
                _, _, key, op, u, v, weight = message
                if builder is not None:
                    builder.drain()
                graph = service.registry.get(key).graph
                if op == "add":
                    graph.add_edge(u, v, weight)
                elif op == "remove":
                    graph.remove_edge(u, v)
                else:
                    raise ValueError(f"unknown mutation op {op!r}")
                reply(seq, True, graph.version)
            elif tag == "metrics":
                reply(seq, True, service.metrics_snapshot())
            elif tag == "shutdown":
                reply(seq, True, None)
                return False
            else:
                raise ValueError(f"unknown message tag {tag!r}")
        except Exception as error:
            reply(seq, False, picklable_error(error))
        return True

    running = True
    try:
        while running:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            while True:
                if message[0] == "query":
                    seq, query = message[1], message[2]
                    try:
                        ticket = service.submit(query)
                    except Exception as error:
                        reply(seq, False, picklable_error(error))
                    else:
                        pending.append((seq, ticket))
                else:
                    flush_pending()
                    if not handle_control(message):
                        running = False
                        break
                if conn.poll(0):
                    message = conn.recv()
                else:
                    break
            flush_pending()
    finally:
        if builder is not None:
            builder.close()
        try:
            service.close()
        except Exception:
            pass
        # never unlink: the parent owns every published segment
        store.close(unlink=False)
        conn.close()
