"""Serving layer: register graphs once, answer many queries cheaply.

The paper's economics -- one expensive preprocessing pass (sparsifier +
factorisation) amortised over many cheap solves -- only pays off if something
*holds on to* the preprocessing between queries.  This package is that
something:

* :mod:`repro.serve.registry` -- content-fingerprinted graph handles with
  mutation (version) tracking, so stale artifacts are detected, not served.
* :mod:`repro.serve.artifacts` -- byte-accounted LRU cache of sparsifiers,
  grounded factorisations and solver preprocessing, with
  :meth:`ArtifactCache.repair_graph` migrating a mutated graph's artifacts
  to its new identity via low-rank repair instead of a rebuild.
* :mod:`repro.serve.planner` -- coalesces heterogeneous queries into the
  blocked ``solve_many`` / batched effective-resistance kernels, with
  eps-aware routing of resistance queries (exact dense oracle below the
  size gate, JL-sketched oracle for ``eta``-bounded queries above it, splu
  fallback until a sketch build has amortised) and incremental artifact
  repair for short mutation deltas (Sherman-Morrison on factorisations and
  the dense oracle, embedding row-appends on the sketched oracle,
  kappa-preserving sparsifier edge-adds on solver preprocessing).
* :mod:`repro.serve.service` -- the :class:`LaplacianService` front door:
  thread-safe submission queue, flush policy with admission control
  (``max_pending`` -> :class:`ServiceOverloadedError`), serving metrics,
  ``repair=`` knob.
* :mod:`repro.serve.resilience` -- failure containment:
  :class:`ResiliencePolicy` (deadlines, transient-failure retries with
  backoff, circuit-breaker knobs), the per-artifact :class:`CircuitBreaker`,
  health counters, and the typed errors clients observe
  (:class:`DeadlineExceededError`, :class:`ArtifactBreakerOpenError`,
  :class:`NumericalHealthError`).  Batches that raise are *bisected* by the
  service so only the poisoned queries fail.
* :mod:`repro.serve.faults` -- deterministic fault injection
  (:class:`FaultPlan` / :class:`FaultInjector`, armed via
  :meth:`LaplacianService.arm_faults`) so every containment behaviour is
  provable on demand.
* :mod:`repro.serve.cluster` -- multi-process scale-out: the
  :class:`ClusterService` front door places registered graphs on
  ``replication_factor`` distinct workers by consistent hashing on the
  content fingerprint (:class:`HashRing`), applies mutations to every
  replica in lockstep, fails reads over to live replicas (in-flight queries
  on a dying worker are resubmitted, not lost), health-checks workers on a
  cadence (:class:`HealthPolicy`: suspect -> dead ladder, wedged workers
  killed and respawned), supports runtime ``add_worker``/``remove_worker``
  membership changes, sheds with a ``retry_after_seconds`` hint, and merges
  per-worker metrics.
* :mod:`repro.serve.worker` -- one shard process: an in-process service
  behind a pipe, a :class:`BackgroundBuilder` that moves sketch builds off
  the flush path (the grounded exact fallback serves, non-degraded, until
  the sketch is resident) and shared-memory publication of oracle
  artifacts.
* :mod:`repro.serve.shm` -- the :class:`SharedArtifactStore`: big
  read-only artifacts (dense oracle inverses, JL embeddings) live once in
  POSIX shared memory; workers attach zero-copy views and respawned
  workers re-attach instead of rebuilding.
* :mod:`repro.serve.traffic` -- seeded replayable traffic traces
  (heavy-tailed graph popularity, mixed kinds, interleaved mutations, many
  clients) with p50/p99/throughput/shed-rate reporting, shared by the
  cluster tests and ``benchmarks/bench_cluster.py``.

Quickstart::

    from repro.graphs import generators
    from repro.serve import LaplacianService

    service = LaplacianService(t_override=2)
    key = service.register(generators.grid_graph(30, 30), name="grid30")
    report = service.solve(key, b)                  # cold: builds artifacts
    report = service.solve(key, b2)                 # warm: cache hit
    resistances = service.effective_resistances(key, [(0, 1), (5, 9)])
    print(service.metrics_snapshot()["cache"]["hit_rate"])
"""

from repro.serve.artifacts import ArtifactCache, CacheStats, estimate_nbytes
from repro.serve.cluster import (
    ClusterService,
    ClusterTicket,
    HashRing,
    HealthPolicy,
    WorkerCrashedError,
)
from repro.serve.faults import (
    FAULT_OPS,
    FaultInjectionError,
    FaultInjector,
    FaultPlan,
    FaultRule,
    TransientFaultError,
    disarmed_injector,
)
from repro.serve.planner import (
    REPAIR_DELTA_LIMIT,
    CertificationReport,
    Query,
    QueryBatch,
    QueryPlanner,
    QueryResult,
    certify_query,
    flow_query,
    gram_query,
    resistance_batch_query,
    resistance_query,
    solve_query,
)
from repro.serve.registry import (
    FingerprintCollisionError,
    GraphRegistry,
    RegisteredGraph,
    UnknownGraphError,
    graph_fingerprint,
)
from repro.serve.resilience import (
    ArtifactBreakerOpenError,
    CircuitBreaker,
    DeadlineExceededError,
    DrainRateTracker,
    HealthStats,
    NumericalHealthError,
    ResiliencePolicy,
    call_with_retries,
    estimate_retry_after,
)
from repro.serve.service import (
    FlushPolicy,
    LaplacianService,
    QueryTicket,
    ServiceMetrics,
    ServiceOverloadedError,
)
from repro.serve.shm import (
    AttachedArtifact,
    SharedArtifactStore,
    ShmArraySpec,
    ShmArtifactSpec,
    csr_from_arrays,
    csr_to_arrays,
)
from repro.serve.traffic import (
    ClientRetryPolicy,
    TraceEvent,
    TrafficConfig,
    TrafficReport,
    TrafficTrace,
    compare_answers,
    generate_trace,
    run_trace,
    solve_rhs,
)
from repro.serve.worker import (
    BackgroundBuilder,
    RemoteResult,
    WorkerConfig,
    worker_main,
)

__all__ = [
    "ClusterService",
    "ClusterTicket",
    "HashRing",
    "HealthPolicy",
    "WorkerCrashedError",
    "AttachedArtifact",
    "SharedArtifactStore",
    "ShmArraySpec",
    "ShmArtifactSpec",
    "csr_from_arrays",
    "csr_to_arrays",
    "ClientRetryPolicy",
    "TraceEvent",
    "TrafficConfig",
    "TrafficReport",
    "TrafficTrace",
    "compare_answers",
    "generate_trace",
    "run_trace",
    "solve_rhs",
    "BackgroundBuilder",
    "RemoteResult",
    "WorkerConfig",
    "worker_main",
    "ArtifactCache",
    "CacheStats",
    "estimate_nbytes",
    "REPAIR_DELTA_LIMIT",
    "CertificationReport",
    "Query",
    "QueryBatch",
    "QueryPlanner",
    "QueryResult",
    "solve_query",
    "resistance_query",
    "resistance_batch_query",
    "certify_query",
    "flow_query",
    "gram_query",
    "FingerprintCollisionError",
    "GraphRegistry",
    "RegisteredGraph",
    "UnknownGraphError",
    "graph_fingerprint",
    "FlushPolicy",
    "LaplacianService",
    "QueryTicket",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "FAULT_OPS",
    "FaultInjectionError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "TransientFaultError",
    "disarmed_injector",
    "ArtifactBreakerOpenError",
    "CircuitBreaker",
    "DeadlineExceededError",
    "DrainRateTracker",
    "HealthStats",
    "NumericalHealthError",
    "ResiliencePolicy",
    "call_with_retries",
    "estimate_retry_after",
]
