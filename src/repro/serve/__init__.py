"""Serving layer: register graphs once, answer many queries cheaply.

The paper's economics -- one expensive preprocessing pass (sparsifier +
factorisation) amortised over many cheap solves -- only pays off if something
*holds on to* the preprocessing between queries.  This package is that
something:

* :mod:`repro.serve.registry` -- content-fingerprinted graph handles with
  mutation (version) tracking, so stale artifacts are detected, not served.
* :mod:`repro.serve.artifacts` -- byte-accounted LRU cache of sparsifiers,
  grounded factorisations and solver preprocessing, with
  :meth:`ArtifactCache.repair_graph` migrating a mutated graph's artifacts
  to its new identity via low-rank repair instead of a rebuild.
* :mod:`repro.serve.planner` -- coalesces heterogeneous queries into the
  blocked ``solve_many`` / batched effective-resistance kernels, with
  eps-aware routing of resistance queries (exact dense oracle below the
  size gate, JL-sketched oracle for ``eta``-bounded queries above it, splu
  fallback until a sketch build has amortised) and incremental artifact
  repair for short mutation deltas (Sherman-Morrison on factorisations and
  the dense oracle, embedding row-appends on the sketched oracle,
  kappa-preserving sparsifier edge-adds on solver preprocessing).
* :mod:`repro.serve.service` -- the :class:`LaplacianService` front door:
  thread-safe submission queue, flush policy with admission control
  (``max_pending`` -> :class:`ServiceOverloadedError`), serving metrics,
  ``repair=`` knob.
* :mod:`repro.serve.resilience` -- failure containment:
  :class:`ResiliencePolicy` (deadlines, transient-failure retries with
  backoff, circuit-breaker knobs), the per-artifact :class:`CircuitBreaker`,
  health counters, and the typed errors clients observe
  (:class:`DeadlineExceededError`, :class:`ArtifactBreakerOpenError`,
  :class:`NumericalHealthError`).  Batches that raise are *bisected* by the
  service so only the poisoned queries fail.
* :mod:`repro.serve.faults` -- deterministic fault injection
  (:class:`FaultPlan` / :class:`FaultInjector`, armed via
  :meth:`LaplacianService.arm_faults`) so every containment behaviour is
  provable on demand.

Quickstart::

    from repro.graphs import generators
    from repro.serve import LaplacianService

    service = LaplacianService(t_override=2)
    key = service.register(generators.grid_graph(30, 30), name="grid30")
    report = service.solve(key, b)                  # cold: builds artifacts
    report = service.solve(key, b2)                 # warm: cache hit
    resistances = service.effective_resistances(key, [(0, 1), (5, 9)])
    print(service.metrics_snapshot()["cache"]["hit_rate"])
"""

from repro.serve.artifacts import ArtifactCache, CacheStats, estimate_nbytes
from repro.serve.faults import (
    FAULT_OPS,
    FaultInjectionError,
    FaultInjector,
    FaultPlan,
    FaultRule,
    TransientFaultError,
    disarmed_injector,
)
from repro.serve.planner import (
    REPAIR_DELTA_LIMIT,
    CertificationReport,
    Query,
    QueryBatch,
    QueryPlanner,
    QueryResult,
    certify_query,
    flow_query,
    gram_query,
    resistance_batch_query,
    resistance_query,
    solve_query,
)
from repro.serve.registry import (
    FingerprintCollisionError,
    GraphRegistry,
    RegisteredGraph,
    UnknownGraphError,
    graph_fingerprint,
)
from repro.serve.resilience import (
    ArtifactBreakerOpenError,
    CircuitBreaker,
    DeadlineExceededError,
    HealthStats,
    NumericalHealthError,
    ResiliencePolicy,
    call_with_retries,
)
from repro.serve.service import (
    FlushPolicy,
    LaplacianService,
    QueryTicket,
    ServiceMetrics,
    ServiceOverloadedError,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "estimate_nbytes",
    "REPAIR_DELTA_LIMIT",
    "CertificationReport",
    "Query",
    "QueryBatch",
    "QueryPlanner",
    "QueryResult",
    "solve_query",
    "resistance_query",
    "resistance_batch_query",
    "certify_query",
    "flow_query",
    "gram_query",
    "FingerprintCollisionError",
    "GraphRegistry",
    "RegisteredGraph",
    "UnknownGraphError",
    "graph_fingerprint",
    "FlushPolicy",
    "LaplacianService",
    "QueryTicket",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "FAULT_OPS",
    "FaultInjectionError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "TransientFaultError",
    "disarmed_injector",
    "ArtifactBreakerOpenError",
    "CircuitBreaker",
    "DeadlineExceededError",
    "HealthStats",
    "NumericalHealthError",
    "ResiliencePolicy",
    "call_with_retries",
]
