"""Multi-process sharded serving: the `ClusterService` front door.

Scales the single-process :class:`~repro.serve.service.LaplacianService`
across worker processes.  Graphs are placed by **consistent hashing on
their content fingerprint** (:class:`HashRing`): each registered graph is
hosted by ``replication_factor`` distinct workers (the ring owner plus its
successors), each running an ordinary in-process service for it
(:mod:`repro.serve.worker`).  Big read-only oracles live in *shared memory*
(:mod:`repro.serve.shm`), where replicas and respawned workers re-attach
them instead of rebuilding.

Replication semantics
---------------------

Replicas are deterministic: every replica receives the same graph copy and
the same ``WorkerConfig`` (seeds included), so any replica's answer is
byte-identical to the primary's.  Reads route to the primary and *fail
over* to a live replica when the primary is down or suspect; queries that
were in flight on a dying worker are transparently resubmitted to a
replica (keeping their original submission time, so latency accounting
stays honest) instead of surfacing :class:`WorkerCrashedError`.  Mutations
are applied to **all** replicas in lockstep under a per-graph lock, and the
parent's own copy is updated only after at least one replica acknowledged
-- a crash mid-mutation therefore leaves every survivor (and the parent's
recovery copy) consistently at the same version.

Health-checked membership
-------------------------

A parent-side monitor thread (:class:`HealthPolicy`) pings every worker on
a fixed cadence over the ordinary control pipe.  A worker that misses
``suspect_misses`` consecutive probes is marked *suspect* -- reads route to
its replicas, and ``metrics_snapshot`` stops querying it -- and one that
misses ``dead_misses`` is declared wedged and proactively killed, which
funnels into the ordinary crash-respawn path (so a worker stuck in a loop,
not just a dead one, self-heals without operator action).  Membership is
dynamic: :meth:`ClusterService.add_worker` / :meth:`remove_worker` move
only the ring-mandated keys, re-registering them cheaply from the parent's
lockstep copies plus the already-published shared-memory artifacts.

Backpressure
------------

Parent-side admission control per shard (``max_inflight``) sheds with
:class:`~repro.serve.service.ServiceOverloadedError` carrying a
``retry_after_seconds`` hint computed from the shard's queue depth and its
observed drain rate -- the same contract as the single-process front door.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import multiprocessing as mp
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serve.faults import FaultInjector, FaultPlan, disarmed_injector
from repro.serve.planner import (
    Query,
    certify_query,
    flow_query,
    gram_query,
    resistance_batch_query,
    resistance_query,
    solve_query,
)
from repro.serve.registry import graph_fingerprint
from repro.serve.resilience import DrainRateTracker, estimate_retry_after
from repro.serve.service import ServiceOverloadedError
from repro.serve.shm import SharedArtifactStore, ShmArtifactSpec
from repro.serve.worker import RemoteResult, WorkerConfig, worker_main

#: how long a control round-trip (register/mutate/metrics/shutdown) may take
#: before the worker is declared unresponsive (and killed -- see
#: :meth:`ClusterService._request`)
CONTROL_TIMEOUT_SECONDS = 120.0

#: parent-side end-to-end latency window (matches ServiceMetrics)
LATENCY_WINDOW = 8192


class WorkerCrashedError(RuntimeError):
    """A shard process died with this query (or control request) in flight.

    Typed so clients can tell infrastructure loss from computational
    failure: the query itself was fine, the process serving it is gone.
    With replication the cluster resubmits orphaned queries to a live
    replica before ever surfacing this error; it escapes only when no
    replica could take the work (or for control requests, which are not
    idempotent and never fail over silently).
    """


@dataclass(frozen=True)
class HealthPolicy:
    """Cadence and thresholds for the parent-side worker health monitor.

    Defaults are deliberately generous: a worker legitimately blocks its
    message loop for the whole duration of an IPM batch, so the
    suspect/dead ladders are measured in *missed probes*, not wall-clock
    responsiveness alone.  ``suspect_misses`` consecutive unanswered pings
    mark the worker suspect (reads route to replicas); ``dead_misses``
    declare it wedged, after which the monitor kills the process and the
    ordinary crash-respawn path revives the shard.
    """

    #: seconds between probe rounds
    probe_interval_seconds: float = 0.5
    #: consecutive missed probes before the worker is marked *suspect*
    suspect_misses: int = 4
    #: consecutive missed probes before the worker is killed and respawned
    dead_misses: int = 60
    #: seconds after spawn during which missed probes are forgiven -- a
    #: freshly spawned worker spends this long importing before it can
    #: answer anything, and must not be declared wedged for it
    startup_grace_seconds: float = 15.0
    #: whether the monitor thread runs at all
    enabled: bool = True

    def __post_init__(self):
        if self.probe_interval_seconds <= 0:
            raise ValueError(
                f"probe_interval_seconds must be > 0, got {self.probe_interval_seconds}"
            )
        if self.startup_grace_seconds < 0:
            raise ValueError(
                f"startup_grace_seconds must be >= 0, got {self.startup_grace_seconds}"
            )
        if self.suspect_misses < 1:
            raise ValueError(f"suspect_misses must be >= 1, got {self.suspect_misses}")
        if self.dead_misses < self.suspect_misses:
            raise ValueError(
                f"dead_misses ({self.dead_misses}) must be >= suspect_misses "
                f"({self.suspect_misses})"
            )


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node is hashed at ``replicas`` points on a 64-bit ring; a key is
    owned by the first node point at or after its own hash (wrapping).
    Adding or removing one node therefore only moves the keys adjacent to
    that node's points -- the property that makes shard counts changeable
    without re-homing every graph.  :meth:`owners` generalises ownership to
    the first ``count`` *distinct* nodes along the ring, which is how the
    cluster picks replica sets.
    """

    def __init__(self, nodes: Sequence[str] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, str]] = []
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(hashlib.sha256(value.encode()).digest()[:8], "big")

    def add(self, node: str) -> None:
        """Insert ``node`` at its ``replicas`` ring points."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            bisect.insort(self._points, (self._hash(f"{node}#{i}"), node))

    def remove(self, node: str) -> None:
        """Remove ``node``'s ring points (keys re-home to their successors)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [(p, n) for p, n in self._points if n != node]

    @property
    def nodes(self) -> Tuple[str, ...]:
        """The current node set, sorted."""
        return tuple(sorted(self._nodes))

    def owner(self, key: str) -> str:
        """The node owning ``key`` (first ring point at/after its hash)."""
        if not self._points:
            raise ValueError("hash ring has no nodes")
        index = bisect.bisect_left(self._points, (self._hash(key), ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def owners(self, key: str, count: int) -> Tuple[str, ...]:
        """The first ``count`` distinct nodes at/after ``key``'s hash.

        ``owners(key, count)[0] == owner(key)`` always holds; the walk
        continues clockwise collecting distinct nodes, so the result is the
        replica set for ``key``.  When the ring has fewer than ``count``
        nodes, every node is returned (a cluster smaller than the
        replication factor degrades gracefully).
        """
        if not self._points:
            raise ValueError("hash ring has no nodes")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        count = min(count, len(self._nodes))
        index = bisect.bisect_left(self._points, (self._hash(key), ""))
        found: List[str] = []
        for step in range(len(self._points)):
            node = self._points[(index + step) % len(self._points)][1]
            if node not in found:
                found.append(node)
                if len(found) == count:
                    break
        return tuple(found)


class ClusterTicket:
    """Parent-side future for one forwarded query (or control request)."""

    def __init__(self, query: Optional[Query] = None):
        self.query = query
        self.submitted_at = time.perf_counter()
        self._event = threading.Event()
        self._result: Optional[RemoteResult] = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        """Whether a reply (or failure) has arrived."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> RemoteResult:
        """Block for the outcome; re-raises the worker's typed error."""
        if not self._event.wait(timeout=timeout):
            raise TimeoutError("cluster query still in flight")
        if self._error is not None:
            raise self._error
        return self._result

    def _resolve(self, result: RemoteResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class _GraphRecord:
    """Parent-side state for one registered graph."""

    key: str
    graph: Any  # the parent's lockstep copy (mutations applied on ack)
    fingerprint: str  # registration-time content fingerprint: the shard key
    workers: List[str]  # replica set, primary first (ring order)
    current_fingerprint: str  # fingerprint of the *current* content (post-mutations)
    # serialises mutate / re-register / rebalance per graph; never acquire
    # the cluster lock while *waiting* on this one (always record -> cluster)
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class _WorkerHandle:
    """One shard: process, pipe, in-flight tickets, receiver thread."""

    def __init__(self, name: str, process, conn):
        self.name = name
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.inflight: Dict[int, ClusterTicket] = {}
        self.inflight_lock = threading.Lock()
        self.alive = True
        self.receiver: Optional[threading.Thread] = None
        # graph keys whose register round-trip THIS process acknowledged; a
        # respawned replacement starts empty and must not serve a shard's
        # queries until re-registration confirms (else: UnknownGraphError)
        self.registered: set = set()
        # health-monitor state (touched only by the monitor thread)
        self.suspect = False
        self.missed_probes = 0
        self.ping_ticket: Optional[Tuple[int, ClusterTicket]] = None
        self.spawned_at = time.monotonic()
        self.ever_answered = False  # has any ping come back from this process
        # backpressure state
        self.drain = DrainRateTracker()
        self.query_inflight = 0  # query tickets only, guarded by inflight_lock

    def send(self, message: Tuple) -> None:
        """Thread-safe pipe send; raises WorkerCrashedError if the shard died."""
        if not self.alive:
            raise WorkerCrashedError(f"worker {self.name!r} is down (respawn pending)")
        try:
            with self.send_lock:
                self.conn.send(message)
        except (BrokenPipeError, OSError) as error:
            raise WorkerCrashedError(
                f"worker {self.name!r} pipe closed mid-send"
            ) from error


class ClusterService:
    """Replicated, sharded multi-process front door.

    Spawns ``num_workers`` processes (``spawn`` start method: fork-safety
    with the parent's receiver threads, and identical behaviour across
    platforms and Python versions), each hosting one
    :class:`~repro.serve.service.LaplacianService` configured by
    ``worker_config``.  Each registered graph lives on
    ``replication_factor`` distinct workers; reads fail over between them
    and mutations apply to all of them in lockstep.  ``max_inflight`` is
    parent-side admission control per shard: submissions beyond it shed
    with :class:`~repro.serve.service.ServiceOverloadedError` carrying a
    ``retry_after_seconds`` hint.  ``health`` configures the background
    probe thread (pass ``HealthPolicy(enabled=False)`` to disable it);
    ``worker_faults`` arms deterministic cluster-level chaos (see
    :meth:`arm_worker_faults`).

    Registered graphs are *copied* into the cluster: the caller's object is
    not referenced afterwards, and all mutations must go through
    :meth:`mutate`.  Use the service as a context manager or call
    :meth:`close`, which also unlinks every shared-memory segment the
    cluster published.
    """

    def __init__(
        self,
        num_workers: int = 4,
        worker_config: Optional[WorkerConfig] = None,
        replicas: int = 64,
        max_inflight: Optional[int] = None,
        respawn: bool = True,
        replication_factor: int = 2,
        health: Optional[HealthPolicy] = None,
        control_timeout_seconds: float = CONTROL_TIMEOUT_SECONDS,
        worker_faults: Optional[Union[FaultPlan, FaultInjector]] = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        if control_timeout_seconds <= 0:
            raise ValueError(
                f"control_timeout_seconds must be > 0, got {control_timeout_seconds}"
            )
        self._config = worker_config if worker_config is not None else WorkerConfig()
        self._ctx = mp.get_context("spawn")
        self._seq = itertools.count()
        self._lock = threading.RLock()
        self._closed = False
        self.respawn_enabled = respawn
        self.max_inflight = max_inflight
        self.replication_factor = int(replication_factor)
        self.control_timeout_seconds = float(control_timeout_seconds)
        self.health_policy = health if health is not None else HealthPolicy()
        self._store = SharedArtifactStore()
        self._graphs: Dict[str, _GraphRecord] = {}
        self._workers: Dict[str, _WorkerHandle] = {}
        self.ring = HashRing(replicas=replicas)
        self._worker_counter = num_workers
        self._worker_injector = (
            worker_faults
            if isinstance(worker_faults, FaultInjector)
            else FaultInjector(worker_faults)
            if worker_faults is not None
            else disarmed_injector()
        )
        # parent-side counters (worker counters are merged on top)
        self._latencies: "deque[float]" = deque(maxlen=LATENCY_WINDOW)
        self._queries_total = 0
        self._rejected_total = 0
        self._failures_total = 0
        self._crashes_total = 0
        self._respawns_total = 0
        self._failovers_total = 0
        self._suspected_total = 0
        self._health_kills_total = 0
        self._recovery_inflight = 0
        for i in range(num_workers):
            name = f"worker-{i}"
            self.ring.add(name)
            self._workers[name] = self._spawn(name)
        self._health_stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        if self.health_policy.enabled:
            self._monitor = threading.Thread(
                target=self._health_loop, name="cluster-health", daemon=True
            )
            self._monitor.start()

    # -- process management ----------------------------------------------------

    def _spawn(self, name: str) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._config),
            name=f"repro-{name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(name, process, parent_conn)
        handle.receiver = threading.Thread(
            target=self._receive_loop, args=(handle,), name=f"recv-{name}", daemon=True
        )
        handle.receiver.start()
        return handle

    def _receive_loop(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                self._on_worker_down(handle)
                return
            tag = message[0]
            if tag == "published":
                spec: ShmArtifactSpec = message[1]
                self._store.adopt(spec)
                self._share_spec(spec, publisher=handle.name)
            elif tag == "reply":
                _, seq, ok, payload = message
                with handle.inflight_lock:
                    ticket = handle.inflight.pop(seq, None)
                    if ticket is not None and ticket.query is not None:
                        handle.query_inflight = max(0, handle.query_inflight - 1)
                if ticket is None:
                    continue  # fire-and-forget control (adopt/wedge) or stale seq
                if ok:
                    ticket._resolve(payload)
                    if ticket.query is not None:
                        handle.drain.observe()
                        self._latencies.append(
                            time.perf_counter() - ticket.submitted_at
                        )
                else:
                    if ticket.query is not None:
                        self._failures_total += 1
                    ticket._fail(payload)

    def _on_worker_down(self, handle: _WorkerHandle) -> None:
        handle.alive = False
        with handle.inflight_lock:
            orphans = list(handle.inflight.values())
            handle.inflight.clear()
            handle.query_inflight = 0
            handle.ping_ticket = None
        for ticket in orphans:
            if ticket.done:
                continue
            if ticket.query is not None and self._resubmit(
                ticket, exclude=handle.name
            ):
                # transparently failed over to a live replica; the ticket
                # keeps its original submission time for honest latency
                self._failovers_total += 1
                continue
            if ticket.query is not None:
                self._failures_total += 1
            ticket._fail(
                WorkerCrashedError(
                    f"worker {handle.name!r} died with this request in flight"
                )
            )
        with self._lock:
            if self._closed or not self.respawn_enabled:
                return
            if self._workers.get(handle.name) is not handle:
                return  # already respawned (or removed) by another path
            self._crashes_total += 1
            try:
                handle.process.join(timeout=5.0)
            except Exception:
                pass
            replacement = self._spawn(handle.name)
            self._workers[handle.name] = replacement
            self._respawns_total += 1
            records = [
                record
                for record in self._graphs.values()
                if handle.name in record.workers
            ]
            self._recovery_inflight += 1
        # re-register outside the cluster lock: the replacement's receiver
        # thread resolves these control requests
        try:
            for record in records:
                with record.lock:
                    try:
                        self._register_on_worker(replacement, record)
                    except Exception:
                        # the replacement died immediately; its own receiver
                        # loop will run this recovery again
                        return
        finally:
            with self._lock:
                self._recovery_inflight -= 1

    def _resubmit(self, ticket: ClusterTicket, exclude: str) -> bool:
        """Re-send an orphaned query ticket to a live replica.

        Only queries fail over (they are idempotent reads against
        deterministic replicas); the original ticket object is reused so
        the caller's ``result()`` wait and the submission timestamp both
        survive the hop.  Excludes the dead worker's *name* -- its
        respawned replacement shares it and may not have re-registered yet.
        """
        query = ticket.query
        with self._lock:
            record = self._graphs.get(query.graph_key)
        if record is None:
            return False
        for handle in self._route(record):
            if handle.name == exclude:
                continue
            seq = next(self._seq)
            with handle.inflight_lock:
                handle.inflight[seq] = ticket
                handle.query_inflight += 1
            try:
                handle.send(("query", seq, query))
                return True
            except WorkerCrashedError:
                with handle.inflight_lock:
                    if handle.inflight.pop(seq, None) is not None:
                        handle.query_inflight = max(0, handle.query_inflight - 1)
        return False

    def _register_on_worker(self, handle: _WorkerHandle, record: _GraphRecord) -> None:
        specs = list(
            self._store.specs_for(record.current_fingerprint, record.graph.version)
        )
        self._request(handle, "register", record.key, record.graph, specs)
        handle.registered.add(record.key)

    def _share_spec(self, spec: ShmArtifactSpec, publisher: str) -> None:
        """Offer a freshly published artifact to the other replicas.

        Replicas compute identical artifacts, so the first one to publish
        wins: the others adopt the shared segment (fire-and-forget; the
        worker-side cache swap is idempotent) instead of packing their own.
        Matching is by *current* content fingerprint and live version, so
        artifacts of stale versions are never pushed.
        """
        if self.replication_factor < 2:
            return
        targets: List[_WorkerHandle] = []
        with self._lock:
            seen = set()
            for record in self._graphs.values():
                if record.current_fingerprint != spec.graph_key:
                    continue
                if record.graph.version != spec.version:
                    continue
                for name in record.workers:
                    if name == publisher or name in seen:
                        continue
                    seen.add(name)
                    handle = self._workers.get(name)
                    if handle is not None and handle.alive:
                        targets.append(handle)
        for handle in targets:
            try:
                handle.send(("adopt", next(self._seq), [spec]))
            except WorkerCrashedError:
                continue

    # -- plumbing --------------------------------------------------------------

    def _request(self, handle: _WorkerHandle, tag: str, *args) -> Any:
        """Synchronous control round-trip with a liveness timeout.

        A worker that does not answer within ``control_timeout_seconds`` is
        not merely reported crashed -- it is **killed**: a wedged process
        would otherwise keep owning its shard forever while every control
        request times out against it.  Killing it closes the pipe, which
        drives the ordinary crash-respawn recovery.
        """
        seq = next(self._seq)
        ticket = ClusterTicket(query=None)
        with handle.inflight_lock:
            handle.inflight[seq] = ticket
        try:
            handle.send((tag, seq) + args)
        except WorkerCrashedError:
            with handle.inflight_lock:
                handle.inflight.pop(seq, None)
            raise
        try:
            result = ticket.result(timeout=self.control_timeout_seconds)
        except TimeoutError:
            with handle.inflight_lock:
                handle.inflight.pop(seq, None)
            # reclaim the shard: pipe EOF funnels into _on_worker_down
            handle.process.kill()
            handle.process.join(timeout=10.0)
            raise WorkerCrashedError(
                f"worker {handle.name!r} did not answer a {tag!r} request within "
                f"{self.control_timeout_seconds:.0f}s; killed for respawn"
            ) from None
        return result

    def _record_for(self, graph_key: str) -> _GraphRecord:
        with self._lock:
            record = self._graphs.get(graph_key)
        if record is None:
            raise KeyError(f"unknown graph key {graph_key!r}")
        return record

    def _route(self, record: _GraphRecord) -> List[_WorkerHandle]:
        """Replica handles in preference order: healthy first, suspects last.

        Only replicas whose *current process* has acknowledged the graph's
        registration are eligible: a freshly respawned replacement shares
        its predecessor's name but holds no shards until recovery
        re-registers them, and routing a query there would bounce with
        ``UnknownGraphError`` instead of failing over.
        """
        with self._lock:
            handles = [self._workers.get(name) for name in record.workers]
        live = [
            h
            for h in handles
            if h is not None and h.alive and record.key in h.registered
        ]
        return [h for h in live if not h.suspect] + [h for h in live if h.suspect]

    # -- registration / mutation -----------------------------------------------

    def register(self, graph, name: Optional[str] = None) -> str:
        """Register a graph cluster-wide; returns its stable query handle.

        The graph is copied (the cluster never aliases caller-owned mutable
        state) and shipped to the ``replication_factor`` distinct workers
        that own its content fingerprint on the ring.  Registration
        succeeds if at least one replica accepted the graph (dead replicas
        catch up through the ordinary respawn path).  Re-registering the
        same content under the same name is idempotent; reusing a name for
        different content raises.
        """
        fingerprint = graph_fingerprint(graph)
        key = name if name is not None else fingerprint
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            existing = self._graphs.get(key)
            if existing is not None:
                if existing.fingerprint == fingerprint:
                    return key
                raise ValueError(
                    f"graph key {key!r} is already registered with different content"
                )
            owners = self.ring.owners(fingerprint, self.replication_factor)
            record = _GraphRecord(
                key=key,
                graph=graph.copy(),
                fingerprint=fingerprint,
                workers=list(owners),
                current_fingerprint=fingerprint,
            )
            handles = [self._workers[name_] for name_ in owners]
            self._graphs[key] = record
        registered = 0
        try:
            with record.lock:
                for handle in handles:
                    try:
                        self._request(handle, "register", key, record.graph, [])
                    except WorkerCrashedError:
                        continue
                    handle.registered.add(key)
                    registered += 1
        except BaseException:
            with self._lock:
                self._graphs.pop(key, None)
            raise
        if registered == 0:
            with self._lock:
                self._graphs.pop(key, None)
            raise WorkerCrashedError(
                f"no replica accepted graph {key!r} (all owners down)"
            )
        return key

    def mutate(
        self, graph_key: str, op: str, u: int, v: int, weight: Optional[float] = None
    ) -> int:
        """Apply one edge mutation (``op`` in ``"add"``/``"remove"``) to a graph.

        Forwarded to **every** replica in ring order under the graph's
        lock, so replicas see mutations in an identical sequence; the
        parent's lockstep copy is updated once at least one replica
        acknowledged (a crash mid-mutation leaves parent and respawned
        shard consistently together).  Dead replicas are skipped -- they
        catch up wholesale from the parent copy on respawn.  Returns the
        graph's new version.
        """
        record = self._record_for(graph_key)
        with record.lock:
            with self._lock:
                handles = [self._workers.get(name) for name in record.workers]
            version: Optional[int] = None
            crash: Optional[WorkerCrashedError] = None
            applied = 0
            for handle in handles:
                if handle is None or graph_key not in handle.registered:
                    # a respawned replacement that has not re-registered yet
                    # catches up wholesale: recovery ships the parent copy
                    # (which this mutation updates below) under record.lock
                    continue
                try:
                    version = self._request(
                        handle, "mutate", graph_key, op, u, v, weight
                    )
                    applied += 1
                except WorkerCrashedError as error:
                    crash = error
            if applied == 0:
                raise crash if crash is not None else WorkerCrashedError(
                    f"no live replica for graph {graph_key!r}"
                )
            if op == "add":
                record.graph.add_edge(u, v, weight)
            else:
                record.graph.remove_edge(u, v)
            record.current_fingerprint = graph_fingerprint(record.graph)
            return version

    def keys(self) -> List[str]:
        """Handles of every registered graph."""
        with self._lock:
            return list(self._graphs)

    def shard_of(self, graph_key: str) -> str:
        """Name of the *primary* worker for ``graph_key``."""
        return self._record_for(graph_key).workers[0]

    def replicas_of(self, graph_key: str) -> Tuple[str, ...]:
        """Replica set of ``graph_key``, primary first (ring order)."""
        return tuple(self._record_for(graph_key).workers)

    # -- membership ------------------------------------------------------------

    def add_worker(self, name: Optional[str] = None) -> List[str]:
        """Spawn a new worker and rebalance; returns the moved graph keys.

        The new worker joins the ring, and only the graphs whose replica
        set the ring now assigns differently are touched: gained replicas
        are registered from the parent's lockstep copy plus the
        already-published shared-memory artifacts (re-attach, not rebuild),
        lost replicas are unregistered.  Names auto-increment unless given.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            if name is None:
                name = f"worker-{self._worker_counter}"
                self._worker_counter += 1
            if name in self._workers:
                raise ValueError(f"worker {name!r} already exists")
            self._workers[name] = self._spawn(name)
            self.ring.add(name)
            records = list(self._graphs.values())
        moved = []
        for record in records:
            if self._rebalance_record(record):
                moved.append(record.key)
        return moved

    def remove_worker(self, name: str, drain: bool = True) -> List[str]:
        """Retire one worker and rebalance; returns the moved graph keys.

        With ``drain=True`` (the default) the worker keeps serving while
        its keys are re-homed, then shuts down gracefully; with
        ``drain=False`` it is killed first and its keys re-home afterwards
        (replicas cover reads in the gap).  Removing the last worker
        raises.
        """
        with self._lock:
            if name not in self._workers:
                raise KeyError(f"unknown worker {name!r}")
            if len(self._workers) == 1:
                raise ValueError("cannot remove the last worker")
            self.ring.remove(name)
            records = [r for r in self._graphs.values() if name in r.workers]
            if not drain:
                handle = self._workers.pop(name)
        moved = []
        if drain:
            for record in records:
                if self._rebalance_record(record):
                    moved.append(record.key)
            with self._lock:
                handle = self._workers.pop(name)
            try:
                self._request(handle, "shutdown")
            except Exception:
                pass
        else:
            handle.process.kill()
            handle.process.join(timeout=10.0)
            for record in records:
                if self._rebalance_record(record):
                    moved.append(record.key)
        handle.process.join(timeout=5.0)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=5.0)
        try:
            handle.conn.close()
        except Exception:
            pass
        return moved

    def _rebalance_record(self, record: _GraphRecord) -> bool:
        """Bring one graph's replica placement in line with the ring."""
        with record.lock:
            with self._lock:
                new_owners = list(
                    self.ring.owners(record.fingerprint, self.replication_factor)
                )
                old_owners = list(record.workers)
                gained = [n for n in new_owners if n not in old_owners]
                lost = [n for n in old_owners if n not in new_owners]
                gained_handles = [
                    self._workers[n] for n in gained if n in self._workers
                ]
                lost_handles = [self._workers[n] for n in lost if n in self._workers]
            for handle in gained_handles:
                try:
                    self._register_on_worker(handle, record)
                except WorkerCrashedError:
                    pass  # the respawn path re-registers
            record.workers = new_owners
            for handle in lost_handles:
                handle.registered.discard(record.key)
                try:
                    self._request(handle, "unregister", record.key)
                except Exception:
                    pass
            return bool(gained or lost)

    # -- health monitoring -----------------------------------------------------

    def _health_loop(self) -> None:
        interval = self.health_policy.probe_interval_seconds
        while not self._health_stop.wait(interval):
            with self._lock:
                if self._closed:
                    return
                handles = sorted(self._workers.values(), key=lambda h: h.name)
            for handle in handles:
                try:
                    self._probe(handle)
                except Exception:
                    continue

    def _probe(self, handle: _WorkerHandle) -> None:
        """One monitor tick for one worker: chaos, ping accounting, ladder."""
        if not handle.alive or not handle.process.is_alive():
            return
        injector = self._worker_injector
        if injector.worker_kill(handle.name):
            handle.process.kill()
            return
        wedge_seconds = injector.worker_wedge(handle.name)
        if wedge_seconds is not None:
            try:
                handle.send(("wedge", next(self._seq), float(wedge_seconds)))
            except WorkerCrashedError:
                return
        policy = self.health_policy
        in_grace = (
            not handle.ever_answered
            and time.monotonic() - handle.spawned_at < policy.startup_grace_seconds
        )
        outstanding = handle.ping_ticket
        if outstanding is not None:
            _, ticket = outstanding
            if ticket.done:
                handle.ping_ticket = None
                ok = ticket._error is None
                if ok:
                    handle.ever_answered = True
                if ok and injector.drop_ping(handle.name):
                    ok = False  # chaos: pretend the heartbeat was lost
                if ok:
                    handle.missed_probes = 0
                    handle.suspect = False
                elif not in_grace:
                    handle.missed_probes += 1
            elif not in_grace:
                handle.missed_probes += 1
        if handle.missed_probes >= policy.dead_misses:
            # wedged, not crashed: kill it so the pipe EOF drives respawn
            self._health_kills_total += 1
            handle.process.kill()
            return
        if handle.missed_probes >= policy.suspect_misses and not handle.suspect:
            handle.suspect = True
            self._suspected_total += 1
        if handle.ping_ticket is None:
            seq = next(self._seq)
            ticket = ClusterTicket(query=None)
            with handle.inflight_lock:
                handle.inflight[seq] = ticket
            try:
                handle.send(("ping", seq))
            except WorkerCrashedError:
                with handle.inflight_lock:
                    handle.inflight.pop(seq, None)
                return
            handle.ping_ticket = (seq, ticket)

    def arm_worker_faults(
        self, plan: Optional[Union[FaultPlan, FaultInjector]] = None
    ) -> FaultInjector:
        """Install (or clear) the worker-scoped chaos injector.

        Accepts a :class:`~repro.serve.faults.FaultPlan` (wrapped in a
        fresh injector), an armed :class:`~repro.serve.faults.FaultInjector`
        (used as-is, so tests can inspect ``fired_total``), or ``None`` to
        disarm.  The monitor thread consults it once per worker per probe
        tick, in sorted worker order, so a seeded plan produces a
        deterministic fault schedule.
        """
        if plan is None:
            injector = disarmed_injector()
        elif isinstance(plan, FaultInjector):
            injector = plan
        else:
            injector = FaultInjector(plan)
        self._worker_injector = injector
        return injector

    def wedge_worker(self, name: str, seconds: float) -> None:
        """Make one worker sleep in its message loop (health-monitor drills).

        The worker stops answering pings (and everything else) for
        ``seconds``; a duration past the monitor's dead threshold gets it
        killed and respawned, exactly like a real wedge.
        """
        with self._lock:
            handle = self._workers[name]
        handle.send(("wedge", next(self._seq), float(seconds)))

    # -- submission ------------------------------------------------------------

    def submit(self, query: Query) -> ClusterTicket:
        """Forward ``query`` to a replica of its graph; returns a ticket.

        Routes to the primary, failing over to live replicas when the
        primary is down or suspect.  Sheds with
        :class:`~repro.serve.service.ServiceOverloadedError` -- carrying a
        ``retry_after_seconds`` estimate from the shard's queue depth and
        drain rate -- when the chosen shard already has ``max_inflight``
        parent-side queries pending; raises :class:`WorkerCrashedError` if
        no replica is up.  Every accepted submission is counted exactly
        once, regardless of how many replicas were tried.
        """
        record = self._record_for(query.graph_key)
        ticket = ClusterTicket(query=query)
        accepted = False
        last_error: Optional[WorkerCrashedError] = None
        for handle in self._route(record):
            with handle.inflight_lock:
                if (
                    self.max_inflight is not None
                    and handle.query_inflight >= self.max_inflight
                ):
                    self._rejected_total += 1
                    retry_after = estimate_retry_after(
                        handle.query_inflight, handle.drain.rate()
                    )
                    raise ServiceOverloadedError(
                        f"shard {handle.name!r} has {handle.query_inflight} queries "
                        f"in flight >= max_inflight={self.max_inflight}; retry in "
                        f"~{retry_after:.3f}s",
                        retry_after_seconds=retry_after,
                    )
                seq = next(self._seq)
                handle.inflight[seq] = ticket
                handle.query_inflight += 1
            if not accepted:
                accepted = True
                self._queries_total += 1
            try:
                handle.send(("query", seq, query))
                return ticket
            except WorkerCrashedError as error:
                last_error = error
                with handle.inflight_lock:
                    if handle.inflight.pop(seq, None) is not None:
                        handle.query_inflight = max(0, handle.query_inflight - 1)
        if accepted:
            self._failures_total += 1
            raise last_error
        raise WorkerCrashedError(
            f"no live replica for graph {query.graph_key!r} (respawn pending)"
        )

    def _submit_and_wait(self, query: Query) -> RemoteResult:
        return self.submit(query).result(timeout=None)

    # -- front doors (mirror LaplacianService) ---------------------------------

    def solve(self, graph_key: str, b: np.ndarray, eps: float = 1e-6):
        """Solve ``L_G x = b`` on the owning shard (coalesced there)."""
        return self._submit_and_wait(solve_query(graph_key, b, eps=eps)).value

    def solve_many(self, graph_key: str, rhs: Sequence[np.ndarray], eps: float = 1e-6):
        """Solve many right-hand sides; they coalesce into one shard batch."""
        tickets = [self.submit(solve_query(graph_key, b, eps=eps)) for b in rhs]
        return [t.result().value for t in tickets]

    def effective_resistance(
        self, graph_key: str, u: int, v: int, eta: Optional[float] = None
    ) -> float:
        """Effective resistance between two vertices (``eta`` as in-process)."""
        return self._submit_and_wait(resistance_query(graph_key, u, v, eta=eta)).value

    def effective_resistances(
        self,
        graph_key: str,
        pairs: Iterable[Tuple[int, int]],
        eta: Optional[float] = None,
    ) -> np.ndarray:
        """Batched effective resistances as one shard kernel call."""
        pair_list = list(pairs)
        if not pair_list:
            return np.zeros(0)
        return np.asarray(
            self._submit_and_wait(
                resistance_batch_query(graph_key, pair_list, eta=eta)
            ).value
        )

    def certify(self, graph_key: str, eps: float = 0.5):
        """Certify the shard's cached sparsifier (Definition 2.1)."""
        return self._submit_and_wait(certify_query(graph_key, eps=eps)).value

    def min_cost_flow(
        self,
        graph_key: str,
        engine: str = "barrier",
        seed: Optional[int] = None,
        eps_scale: float = 1e-6,
        perturb: bool = True,
        memoise_result: bool = False,
    ):
        """Exact min-cost max-flow on the owning shard (params as in-process)."""
        return self._submit_and_wait(
            flow_query(
                graph_key,
                engine=engine,
                seed=seed,
                eps_scale=eps_scale,
                perturb=perturb,
                memoise_result=memoise_result,
            )
        ).value

    def solve_gram(
        self,
        graph_key: str,
        d: np.ndarray,
        rhs: np.ndarray,
        formulation: str = "fixed-value",
    ) -> np.ndarray:
        """One gram solve of the registered network's flow LP on its shard."""
        return self._submit_and_wait(
            gram_query(graph_key, d, rhs, formulation=formulation)
        ).value

    # -- metrics / lifecycle ---------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Cluster-wide metrics: merged worker counters + parent-side view.

        Numeric counters are summed across workers, ``by_kind`` dicts merged
        by summation; ``latency_seconds`` is the *parent-side end-to-end*
        percentile view (pipe + queue + compute), which is what a client
        experiences.  Per-worker snapshots ride along under ``per_worker``
        for drill-down.  Dead and *suspect* workers are skipped (a suspect
        worker is by definition slow to answer control requests; its state
        shows up in ``workers_suspect`` instead).
        """
        per_worker: List[Dict[str, Any]] = []
        with self._lock:
            handles = list(self._workers.values())
        for handle in handles:
            if not handle.alive or handle.suspect:
                continue
            try:
                snapshot = self._request(handle, "metrics")
            except WorkerCrashedError:
                continue
            snapshot["worker"] = handle.name
            per_worker.append(snapshot)
        merged: Dict[str, Any] = {
            "workers": len(handles),
            "replication_factor": self.replication_factor,
            "queries_total": self._queries_total,
            "rejected_total": self._rejected_total,
            "failures_total": self._failures_total,
            "failover_resubmits": self._failovers_total,
            "worker_crashes": self._crashes_total,
            "worker_respawns": self._respawns_total,
            "workers_suspected_total": self._suspected_total,
            "workers_suspect": sum(1 for h in handles if h.alive and h.suspect),
            "health_kills": self._health_kills_total,
            "registered_graphs": len(self._graphs),
            "shm_segments": len(self._store.owned_specs()),
        }
        for counter in ("batches_total", "cache_entries", "cache_bytes"):
            merged[counter] = sum(int(s.get(counter, 0)) for s in per_worker)
        by_kind: Dict[str, int] = {}
        for snapshot in per_worker:
            for kind, count in snapshot.get("queries_by_kind", {}).items():
                by_kind[kind] = by_kind.get(kind, 0) + count
        merged["queries_by_kind"] = by_kind
        latencies = np.asarray(self._latencies, dtype=float)
        if latencies.size:
            merged["latency_seconds"] = {
                "p50": float(np.percentile(latencies, 50)),
                "p90": float(np.percentile(latencies, 90)),
                "p99": float(np.percentile(latencies, 99)),
            }
        else:
            merged["latency_seconds"] = {"p50": 0.0, "p90": 0.0, "p99": 0.0}
        merged["per_worker"] = per_worker
        return merged

    def kill_worker(self, name: str) -> None:
        """Hard-kill one shard process (crash-recovery tests and drills).

        The receiver thread observes the dead pipe, resubmits that shard's
        in-flight queries to live replicas (failing over transparently) and
        -- when respawning is enabled -- brings up a replacement that
        re-registers the shard's graphs and re-attaches its shared
        artifacts.
        """
        with self._lock:
            handle = self._workers[name]
        handle.process.kill()
        handle.process.join(timeout=10.0)

    def wait_recovered(self, timeout: float = 30.0) -> bool:
        """Block until every shard is alive *and* fully re-registered.

        Returns ``False`` on timeout.  "Recovered" means every worker
        process is running and no crash-recovery re-registration is still
        in flight, so the full graph set serves again.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                handles = list(self._workers.values())
                recovering = self._recovery_inflight
            if recovering == 0 and all(
                h.alive and h.process.is_alive() for h in handles
            ):
                return True
            time.sleep(0.05)
        return False

    def close(self) -> None:
        """Shut every worker down and unlink all shared-memory segments."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._workers.values())
        self._health_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        for handle in handles:
            if handle.alive:
                try:
                    self._request(handle, "shutdown")
                except Exception:
                    pass
        for handle in handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)
            try:
                handle.conn.close()
            except Exception:
                pass
        self._store.close(unlink=True)

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
