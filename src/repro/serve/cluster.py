"""Multi-process sharded serving: the `ClusterService` front door.

Scales the single-process :class:`~repro.serve.service.LaplacianService`
across worker processes.  Graphs are sharded by **consistent hashing on
their content fingerprint** (:class:`HashRing`): each registered graph is
owned by exactly one worker, which hosts an ordinary in-process service for
it (:mod:`repro.serve.worker`), so every per-graph artifact -- grounded
factorisation, dense or sketched resistance oracle, gram factorisations --
lives exactly once in the cluster, and big read-only oracles live in
*shared memory* (:mod:`repro.serve.shm`) where respawned workers re-attach
them instead of rebuilding.

The front door mirrors the single-process API surface (``solve`` /
``solve_many`` / ``effective_resistance`` / ``effective_resistances`` /
``certify`` / ``min_cost_flow`` / ``solve_gram`` / ``metrics_snapshot``),
so callers swap one constructor and keep their code.  Mutations go through
:meth:`ClusterService.mutate`, which forwards to the owning shard and keeps
the parent's copy in lockstep -- the parent copy is what a respawn
re-registers after a crash.

Crash semantics: a worker that dies mid-query fails that worker's in-flight
tickets with the typed :class:`WorkerCrashedError` (no ticket is ever lost
or left hanging); the parent then respawns the shard, re-registers its
graphs from the parent-side copies and re-attaches every shared-memory
artifact it had adopted from the dead worker, after which the full graph
set serves again.  Submissions racing the respawn window fail with the same
typed error, never silently.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import multiprocessing as mp
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.planner import (
    Query,
    certify_query,
    flow_query,
    gram_query,
    resistance_batch_query,
    resistance_query,
    solve_query,
)
from repro.serve.registry import graph_fingerprint
from repro.serve.service import ServiceOverloadedError
from repro.serve.shm import SharedArtifactStore, ShmArtifactSpec
from repro.serve.worker import RemoteResult, WorkerConfig, worker_main

#: how long a control round-trip (register/mutate/metrics/shutdown) may take
#: before the worker is declared unresponsive
CONTROL_TIMEOUT_SECONDS = 120.0

#: parent-side end-to-end latency window (matches ServiceMetrics)
LATENCY_WINDOW = 8192


class WorkerCrashedError(RuntimeError):
    """A shard process died with this query (or control request) in flight.

    Typed so clients can tell infrastructure loss from computational
    failure: the query itself was fine, the process serving it is gone.
    Retrying after the respawn (which the cluster performs automatically)
    is expected to succeed.
    """


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node is hashed at ``replicas`` points on a 64-bit ring; a key is
    owned by the first node point at or after its own hash (wrapping).
    Adding or removing one node therefore only moves the keys adjacent to
    that node's points -- the property that makes shard counts changeable
    without re-homing every graph.
    """

    def __init__(self, nodes: Sequence[str] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, str]] = []
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(hashlib.sha256(value.encode()).digest()[:8], "big")

    def add(self, node: str) -> None:
        """Insert ``node`` at its ``replicas`` ring points."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            bisect.insort(self._points, (self._hash(f"{node}#{i}"), node))

    def remove(self, node: str) -> None:
        """Remove ``node``'s ring points (keys re-home to their successors)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [(p, n) for p, n in self._points if n != node]

    @property
    def nodes(self) -> Tuple[str, ...]:
        """The current node set, sorted."""
        return tuple(sorted(self._nodes))

    def owner(self, key: str) -> str:
        """The node owning ``key`` (first ring point at/after its hash)."""
        if not self._points:
            raise ValueError("hash ring has no nodes")
        index = bisect.bisect_left(self._points, (self._hash(key), ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]


class ClusterTicket:
    """Parent-side future for one forwarded query (or control request)."""

    def __init__(self, query: Optional[Query] = None):
        self.query = query
        self.submitted_at = time.perf_counter()
        self._event = threading.Event()
        self._result: Optional[RemoteResult] = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        """Whether a reply (or failure) has arrived."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> RemoteResult:
        """Block for the outcome; re-raises the worker's typed error."""
        if not self._event.wait(timeout=timeout):
            raise TimeoutError("cluster query still in flight")
        if self._error is not None:
            raise self._error
        return self._result

    def _resolve(self, result: RemoteResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class _GraphRecord:
    """Parent-side state for one registered graph."""

    key: str
    graph: Any  # the parent's lockstep copy (mutations applied on ack)
    fingerprint: str  # registration-time content fingerprint: the shard key
    worker: str


class _WorkerHandle:
    """One shard: process, pipe, in-flight tickets, receiver thread."""

    def __init__(self, name: str, process, conn):
        self.name = name
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.inflight: Dict[int, ClusterTicket] = {}
        self.inflight_lock = threading.Lock()
        self.alive = True
        self.receiver: Optional[threading.Thread] = None

    def send(self, message: Tuple) -> None:
        """Thread-safe pipe send; raises WorkerCrashedError if the shard died."""
        if not self.alive:
            raise WorkerCrashedError(f"worker {self.name!r} is down (respawn pending)")
        try:
            with self.send_lock:
                self.conn.send(message)
        except (BrokenPipeError, OSError) as error:
            raise WorkerCrashedError(
                f"worker {self.name!r} pipe closed mid-send"
            ) from error


class ClusterService:
    """Sharded multi-process front door with the single-process API surface.

    Spawns ``num_workers`` processes (``spawn`` start method: fork-safety
    with the parent's receiver threads, and identical behaviour across
    platforms and Python versions), each hosting one
    :class:`~repro.serve.service.LaplacianService` configured by
    ``worker_config``.  ``max_inflight`` is parent-side admission control
    per shard: submissions beyond it shed with
    :class:`~repro.serve.service.ServiceOverloadedError`, mirroring
    ``FlushPolicy.max_pending`` in-process.

    Registered graphs are *copied* into the cluster: the caller's object is
    not referenced afterwards, and all mutations must go through
    :meth:`mutate` (which forwards to the owning shard and keeps the
    parent's copy in lockstep for crash recovery).  Use the service as a
    context manager or call :meth:`close`, which also unlinks every
    shared-memory segment the cluster published.
    """

    def __init__(
        self,
        num_workers: int = 4,
        worker_config: Optional[WorkerConfig] = None,
        replicas: int = 64,
        max_inflight: Optional[int] = None,
        respawn: bool = True,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self._config = worker_config if worker_config is not None else WorkerConfig()
        self._ctx = mp.get_context("spawn")
        self._seq = itertools.count()
        self._lock = threading.RLock()
        self._closed = False
        self.respawn_enabled = respawn
        self.max_inflight = max_inflight
        self._store = SharedArtifactStore()
        self._graphs: Dict[str, _GraphRecord] = {}
        self._workers: Dict[str, _WorkerHandle] = {}
        self.ring = HashRing(replicas=replicas)
        # parent-side counters (worker counters are merged on top)
        self._latencies: "deque[float]" = deque(maxlen=LATENCY_WINDOW)
        self._queries_total = 0
        self._rejected_total = 0
        self._failures_total = 0
        self._crashes_total = 0
        self._respawns_total = 0
        for i in range(num_workers):
            name = f"worker-{i}"
            self.ring.add(name)
            self._workers[name] = self._spawn(name)

    # -- process management ----------------------------------------------------

    def _spawn(self, name: str) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._config),
            name=f"repro-{name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(name, process, parent_conn)
        handle.receiver = threading.Thread(
            target=self._receive_loop, args=(handle,), name=f"recv-{name}", daemon=True
        )
        handle.receiver.start()
        return handle

    def _receive_loop(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                self._on_worker_down(handle)
                return
            tag = message[0]
            if tag == "published":
                spec: ShmArtifactSpec = message[1]
                self._store.adopt(spec)
            elif tag == "reply":
                _, seq, ok, payload = message
                with handle.inflight_lock:
                    ticket = handle.inflight.pop(seq, None)
                if ticket is None:
                    continue
                if ok:
                    ticket._resolve(payload)
                    if ticket.query is not None:
                        self._latencies.append(
                            time.perf_counter() - ticket.submitted_at
                        )
                else:
                    self._failures_total += 1
                    ticket._fail(payload)

    def _on_worker_down(self, handle: _WorkerHandle) -> None:
        handle.alive = False
        with handle.inflight_lock:
            orphans = list(handle.inflight.values())
            handle.inflight.clear()
        for ticket in orphans:
            self._failures_total += 1
            ticket._fail(
                WorkerCrashedError(
                    f"worker {handle.name!r} died with this request in flight"
                )
            )
        with self._lock:
            if self._closed or not self.respawn_enabled:
                return
            if self._workers.get(handle.name) is not handle:
                return  # already respawned by another path
            self._crashes_total += 1
            try:
                handle.process.join(timeout=5.0)
            except Exception:
                pass
            replacement = self._spawn(handle.name)
            self._workers[handle.name] = replacement
            self._respawns_total += 1
            records = [
                record
                for record in self._graphs.values()
                if record.worker == handle.name
            ]
        # re-register outside the cluster lock: the replacement's receiver
        # thread resolves these control requests
        for record in records:
            try:
                self._register_on_worker(replacement, record)
            except Exception:
                # the replacement died immediately; its own receiver loop
                # will run this recovery again
                return

    def _register_on_worker(self, handle: _WorkerHandle, record: _GraphRecord) -> None:
        specs = [
            spec
            for spec in self._store.owned_specs()
            if spec.graph_key == graph_fingerprint(record.graph)
            and spec.version == record.graph.version
        ]
        self._request(handle, "register", record.key, record.graph, specs)

    # -- plumbing --------------------------------------------------------------

    def _request(self, handle: _WorkerHandle, tag: str, *args) -> Any:
        """Synchronous control round-trip with a liveness timeout."""
        seq = next(self._seq)
        ticket = ClusterTicket(query=None)
        with handle.inflight_lock:
            handle.inflight[seq] = ticket
        try:
            handle.send((tag, seq) + args)
        except WorkerCrashedError:
            with handle.inflight_lock:
                handle.inflight.pop(seq, None)
            raise
        try:
            result = ticket.result(timeout=CONTROL_TIMEOUT_SECONDS)
        except TimeoutError:
            with handle.inflight_lock:
                handle.inflight.pop(seq, None)
            raise WorkerCrashedError(
                f"worker {handle.name!r} did not answer a {tag!r} request within "
                f"{CONTROL_TIMEOUT_SECONDS:.0f}s"
            ) from None
        return result

    def _handle_for(self, graph_key: str) -> Tuple[_WorkerHandle, _GraphRecord]:
        with self._lock:
            record = self._graphs.get(graph_key)
            if record is None:
                raise KeyError(f"unknown graph key {graph_key!r}")
            return self._workers[record.worker], record

    # -- registration / mutation -----------------------------------------------

    def register(self, graph, name: Optional[str] = None) -> str:
        """Register a graph cluster-wide; returns its stable query handle.

        The graph is copied (the cluster never aliases caller-owned mutable
        state) and shipped to the shard that owns its content fingerprint on
        the ring.  Re-registering the same content under the same name is
        idempotent; reusing a name for different content raises.
        """
        fingerprint = graph_fingerprint(graph)
        key = name if name is not None else fingerprint
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            existing = self._graphs.get(key)
            if existing is not None:
                if existing.fingerprint == fingerprint:
                    return key
                raise ValueError(
                    f"graph key {key!r} is already registered with different content"
                )
            worker_name = self.ring.owner(fingerprint)
            handle = self._workers[worker_name]
            record = _GraphRecord(
                key=key, graph=graph.copy(), fingerprint=fingerprint, worker=worker_name
            )
        self._request(handle, "register", key, record.graph, [])
        with self._lock:
            self._graphs[key] = record
        return key

    def mutate(
        self, graph_key: str, op: str, u: int, v: int, weight: Optional[float] = None
    ) -> int:
        """Apply one edge mutation (``op`` in ``"add"``/``"remove"``) to a graph.

        Forwarded to the owning shard first; the parent's lockstep copy is
        only updated on the shard's acknowledgement, so a crash mid-mutation
        leaves parent and (respawned) shard consistently *pre*-mutation.
        Returns the graph's new version.
        """
        handle, record = self._handle_for(graph_key)
        version = self._request(handle, "mutate", graph_key, op, u, v, weight)
        if op == "add":
            record.graph.add_edge(u, v, weight)
        else:
            record.graph.remove_edge(u, v)
        return version

    def keys(self) -> List[str]:
        """Handles of every registered graph."""
        with self._lock:
            return list(self._graphs)

    def shard_of(self, graph_key: str) -> str:
        """Name of the worker owning ``graph_key``."""
        with self._lock:
            return self._graphs[graph_key].worker

    # -- submission ------------------------------------------------------------

    def submit(self, query: Query) -> ClusterTicket:
        """Forward ``query`` to its owning shard; returns a ticket.

        Sheds with :class:`~repro.serve.service.ServiceOverloadedError` when
        the shard already has ``max_inflight`` parent-side requests pending;
        raises :class:`WorkerCrashedError` if the shard is down and not yet
        respawned.
        """
        handle, _ = self._handle_for(query.graph_key)
        seq = next(self._seq)
        ticket = ClusterTicket(query=query)
        with handle.inflight_lock:
            if (
                self.max_inflight is not None
                and len(handle.inflight) >= self.max_inflight
            ):
                self._rejected_total += 1
                raise ServiceOverloadedError(
                    f"shard {handle.name!r} has {len(handle.inflight)} requests in "
                    f"flight >= max_inflight={self.max_inflight}; retry later"
                )
            handle.inflight[seq] = ticket
        try:
            handle.send(("query", seq, query))
        except WorkerCrashedError:
            with handle.inflight_lock:
                handle.inflight.pop(seq, None)
            self._failures_total += 1
            raise
        self._queries_total += 1
        return ticket

    def _submit_and_wait(self, query: Query) -> RemoteResult:
        return self.submit(query).result(timeout=None)

    # -- front doors (mirror LaplacianService) ---------------------------------

    def solve(self, graph_key: str, b: np.ndarray, eps: float = 1e-6):
        """Solve ``L_G x = b`` on the owning shard (coalesced there)."""
        return self._submit_and_wait(solve_query(graph_key, b, eps=eps)).value

    def solve_many(self, graph_key: str, rhs: Sequence[np.ndarray], eps: float = 1e-6):
        """Solve many right-hand sides; they coalesce into one shard batch."""
        tickets = [self.submit(solve_query(graph_key, b, eps=eps)) for b in rhs]
        return [t.result().value for t in tickets]

    def effective_resistance(
        self, graph_key: str, u: int, v: int, eta: Optional[float] = None
    ) -> float:
        """Effective resistance between two vertices (``eta`` as in-process)."""
        return self._submit_and_wait(resistance_query(graph_key, u, v, eta=eta)).value

    def effective_resistances(
        self,
        graph_key: str,
        pairs: Iterable[Tuple[int, int]],
        eta: Optional[float] = None,
    ) -> np.ndarray:
        """Batched effective resistances as one shard kernel call."""
        pair_list = list(pairs)
        if not pair_list:
            return np.zeros(0)
        return np.asarray(
            self._submit_and_wait(
                resistance_batch_query(graph_key, pair_list, eta=eta)
            ).value
        )

    def certify(self, graph_key: str, eps: float = 0.5):
        """Certify the shard's cached sparsifier (Definition 2.1)."""
        return self._submit_and_wait(certify_query(graph_key, eps=eps)).value

    def min_cost_flow(
        self,
        graph_key: str,
        engine: str = "barrier",
        seed: Optional[int] = None,
        eps_scale: float = 1e-6,
        perturb: bool = True,
        memoise_result: bool = False,
    ):
        """Exact min-cost max-flow on the owning shard (params as in-process)."""
        return self._submit_and_wait(
            flow_query(
                graph_key,
                engine=engine,
                seed=seed,
                eps_scale=eps_scale,
                perturb=perturb,
                memoise_result=memoise_result,
            )
        ).value

    def solve_gram(
        self,
        graph_key: str,
        d: np.ndarray,
        rhs: np.ndarray,
        formulation: str = "fixed-value",
    ) -> np.ndarray:
        """One gram solve of the registered network's flow LP on its shard."""
        return self._submit_and_wait(
            gram_query(graph_key, d, rhs, formulation=formulation)
        ).value

    # -- metrics / lifecycle ---------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Cluster-wide metrics: merged worker counters + parent-side view.

        Numeric counters are summed across workers, ``by_kind`` dicts merged
        by summation; ``latency_seconds`` is the *parent-side end-to-end*
        percentile view (pipe + queue + compute), which is what a client
        experiences.  Per-worker snapshots ride along under ``per_worker``
        for drill-down.  Unresponsive workers are skipped (their crash
        accounting shows up in ``worker_crashes``/``worker_respawns``).
        """
        per_worker: List[Dict[str, Any]] = []
        with self._lock:
            handles = list(self._workers.values())
        for handle in handles:
            if not handle.alive:
                continue
            try:
                snapshot = self._request(handle, "metrics")
            except WorkerCrashedError:
                continue
            snapshot["worker"] = handle.name
            per_worker.append(snapshot)
        merged: Dict[str, Any] = {
            "workers": len(handles),
            "queries_total": self._queries_total,
            "rejected_total": self._rejected_total,
            "failures_total": self._failures_total,
            "worker_crashes": self._crashes_total,
            "worker_respawns": self._respawns_total,
            "registered_graphs": len(self._graphs),
            "shm_segments": len(self._store.owned_specs()),
        }
        for counter in ("batches_total", "cache_entries", "cache_bytes"):
            merged[counter] = sum(int(s.get(counter, 0)) for s in per_worker)
        by_kind: Dict[str, int] = {}
        for snapshot in per_worker:
            for kind, count in snapshot.get("queries_by_kind", {}).items():
                by_kind[kind] = by_kind.get(kind, 0) + count
        merged["queries_by_kind"] = by_kind
        latencies = np.asarray(self._latencies, dtype=float)
        if latencies.size:
            merged["latency_seconds"] = {
                "p50": float(np.percentile(latencies, 50)),
                "p90": float(np.percentile(latencies, 90)),
                "p99": float(np.percentile(latencies, 99)),
            }
        else:
            merged["latency_seconds"] = {"p50": 0.0, "p90": 0.0, "p99": 0.0}
        merged["per_worker"] = per_worker
        return merged

    def kill_worker(self, name: str) -> None:
        """Hard-kill one shard process (crash-recovery tests and drills).

        The receiver thread observes the dead pipe, fails that shard's
        in-flight tickets with :class:`WorkerCrashedError` and -- when
        respawning is enabled -- brings up a replacement that re-registers
        the shard's graphs and re-attaches its shared artifacts.
        """
        with self._lock:
            handle = self._workers[name]
        handle.process.kill()
        handle.process.join(timeout=10.0)

    def wait_recovered(self, timeout: float = 30.0) -> bool:
        """Block until every shard process is alive again; returns success."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                handles = list(self._workers.values())
            if all(h.alive and h.process.is_alive() for h in handles):
                return True
            time.sleep(0.05)
        return False

    def close(self) -> None:
        """Shut every worker down and unlink all shared-memory segments."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._workers.values())
        for handle in handles:
            if handle.alive:
                try:
                    self._request(handle, "shutdown")
                except Exception:
                    pass
        for handle in handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)
            try:
                handle.conn.close()
            except Exception:
                pass
        self._store.close(unlink=True)

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
