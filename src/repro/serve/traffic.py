"""Seeded, replayable traffic traces for the serving tier.

Replaces the synthetic fixed-size query bursts of ``bench_serve.py`` with
something shaped like production load: a **trace** of events drawn from a
seeded generator -- heavy-tailed graph popularity (a few hot graphs take
most of the traffic), a mixed query kind distribution, optional interleaved
mutations -- partitioned across many concurrent clients.  The same
``(graph set, TrafficConfig)`` pair always generates the identical trace,
so a trace can be replayed against a single-process
:class:`~repro.serve.service.LaplacianService` and a
:class:`~repro.serve.cluster.ClusterService` and the answers compared
event-for-event, which is exactly what ``benchmarks/bench_cluster.py`` and
the cluster test-suite do.

Events carry only plain seeds and indices (never arrays), so traces are
tiny, picklable and stable across processes; right-hand sides are
regenerated deterministically at replay time.

:func:`run_trace` executes a trace against anything with the service front
door surface and reports what a load balancer would want to know:
throughput, p50/p99 end-to-end latency, shed rate
(:class:`~repro.serve.service.ServiceOverloadedError`) and typed failures
-- every event is accounted for as ok, shed, or failed; none are dropped.
An optional :class:`ClientRetryPolicy` makes clients honour the server's
``retry_after_seconds`` backpressure hint: shed events are retried (with
seeded jittered backoff) before being counted, and retried-then-ok events
are tallied separately so ``shed_rate`` stays an honest measure of work the
cluster ultimately refused.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.service import ServiceOverloadedError

#: default query-kind mix: mostly reads, a trickle of mutations
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("solve", 0.30),
    ("resistance", 0.30),
    ("resistance_batch", 0.30),
    ("mutate", 0.10),
)


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of the seeded trace generator.

    ``zipf_alpha`` shapes graph popularity (probability of graph rank ``r``
    is proportional to ``(r + 1) ** -zipf_alpha``; higher = hotter head);
    ``mix`` assigns relative weight to each event kind (``"solve"``,
    ``"resistance"``, ``"resistance_batch"``, ``"mutate"``); mutations are
    always edge *additions/reweights* so graphs stay connected and every
    artifact repair path stays exercisable.  ``eta`` applies to resistance
    events (``None`` = exact); ``eps`` to solve events.
    """

    seed: int = 0
    queries: int = 256
    clients: int = 4
    zipf_alpha: float = 1.2
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX
    batch_pairs: int = 8
    eta: Optional[float] = None
    eps: float = 1e-6


@dataclass(frozen=True)
class ClientRetryPolicy:
    """How trace clients react to :class:`ServiceOverloadedError` sheds.

    With ``honor_retry_after=True`` (the default) a shed whose error
    carries the server's ``retry_after_seconds`` hint sleeps that long
    (plus jitter) before retrying; otherwise -- and for hintless sheds --
    clients fall back to seeded exponential backoff.  An event is counted
    shed only after ``max_retries`` retries all shed too; an event that
    eventually resolves counts ok (and ``retried_ok``), never shed.
    Jitter is drawn from a per-client rng seeded by ``(seed, client)``, so
    replays are deterministic.
    """

    #: how many times one event may be retried before counting as shed
    max_retries: int = 3
    #: first fallback backoff step (seconds), when no hint is honoured
    backoff_seconds: float = 0.02
    #: multiplier applied to the fallback backoff per retry
    backoff_multiplier: float = 2.0
    #: hard cap on any single sleep (hinted or fallback)
    max_backoff_seconds: float = 1.0
    #: sleep is scaled by ``1 + jitter * U[0, 1)`` to de-synchronise clients
    jitter: float = 0.25
    #: whether to prefer the server's ``retry_after_seconds`` hint
    honor_retry_after: bool = True
    #: base seed of the per-client jitter streams
    seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_seconds <= 0 or self.max_backoff_seconds <= 0:
            raise ValueError("backoff bounds must be > 0")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def delay(
        self, attempt: int, retry_after: Optional[float], rng: np.random.Generator
    ) -> float:
        """Sleep before retry number ``attempt + 1`` (seconds, jittered)."""
        if self.honor_retry_after and retry_after is not None and retry_after > 0:
            base = float(retry_after)
        else:
            base = self.backoff_seconds * self.backoff_multiplier**attempt
        base = min(base, self.max_backoff_seconds)
        if self.jitter > 0:
            base *= 1.0 + self.jitter * float(rng.random())
        return base

    def rng_for(self, client: int) -> np.random.Generator:
        """The deterministic jitter stream of one trace client."""
        return np.random.default_rng((self.seed, client))


@dataclass(frozen=True)
class TraceEvent:
    """One replayable event: plain data only (no arrays, no graph refs)."""

    #: position in the trace (global submission order)
    index: int
    #: client thread this event belongs to
    client: int
    #: event kind (a key of the config's ``mix``)
    kind: str
    #: index into the graph-key list the trace is run against
    graph: int
    #: kind-specific payload: seeds and vertex indices
    payload: Tuple[Tuple[str, Any], ...] = ()

    def payload_dict(self) -> Dict[str, Any]:
        """The payload as a plain dict."""
        return dict(self.payload)


@dataclass(frozen=True)
class TrafficTrace:
    """A generated trace: the config that produced it plus its events."""

    config: TrafficConfig
    n_graphs: int
    events: Tuple[TraceEvent, ...]


@dataclass
class TrafficReport:
    """Outcome of one :func:`run_trace` execution.

    ``ok + shed + failed == events_total`` always: an acked (submitted)
    event either resolves, is shed with
    :class:`~repro.serve.service.ServiceOverloadedError`, or fails with a
    typed error recorded in ``failures_by_type`` -- no event is silently
    lost, which is the invariant the worker-kill test asserts.  Retries
    (under a :class:`ClientRetryPolicy`) never double-count: an event that
    sheds then resolves counts ok once, with its retries recorded in
    ``retried_total`` / ``retries_by_event`` and the event itself in
    ``retried_ok``, so ``shed_rate`` reflects only work the service
    ultimately refused.
    """

    events_total: int = 0
    ok: int = 0
    shed: int = 0
    failed: int = 0
    failures_by_type: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    #: event index -> answer (only when ``record_answers=True``)
    answers: Dict[int, Any] = field(default_factory=dict)
    #: total retry attempts across all events
    retried_total: int = 0
    #: events that shed at least once and then resolved ok
    retried_ok: int = 0
    #: event index -> retry attempts it took (only events retried >= once)
    retries_by_event: Dict[int, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Completed (non-shed) events per second of wall clock."""
        return (self.ok / self.seconds) if self.seconds > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of events shed by admission control."""
        return (self.shed / self.events_total) if self.events_total else 0.0

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` (in percent) over completed events."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    def summary(self) -> Dict[str, Any]:
        """The JSON-friendly digest ``bench_cluster.py`` records."""
        return {
            "events_total": self.events_total,
            "ok": self.ok,
            "shed": self.shed,
            "failed": self.failed,
            "failures_by_type": dict(self.failures_by_type),
            "seconds": self.seconds,
            "throughput_qps": self.throughput,
            "shed_rate": self.shed_rate,
            "retried_total": self.retried_total,
            "retried_ok": self.retried_ok,
            "latency_p50": self.percentile(50),
            "latency_p99": self.percentile(99),
        }


def generate_trace(
    graph_sizes: Sequence[int], config: TrafficConfig
) -> TrafficTrace:
    """Generate the deterministic trace for ``config`` over these graphs.

    ``graph_sizes[i]`` is the vertex count of the ``i``-th graph the trace
    will be run against (vertex indices in payloads must be in range).  The
    generator is a single seeded rng stream, so the same inputs always
    produce the identical trace; clients are assigned round-robin so each
    client's subsequence is deterministic too.
    """
    if not graph_sizes:
        raise ValueError("need at least one graph")
    rng = np.random.default_rng(config.seed)
    kinds = [kind for kind, _ in config.mix]
    weights = np.asarray([weight for _, weight in config.mix], dtype=float)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError(f"mix weights must be non-negative and sum > 0: {config.mix}")
    weights = weights / weights.sum()
    # heavy-tailed popularity over a seeded shuffle of the graphs, so the
    # hot head is not always graph 0
    order = rng.permutation(len(graph_sizes))
    ranks = np.empty(len(graph_sizes), dtype=int)
    ranks[order] = np.arange(len(graph_sizes))
    popularity = (ranks + 1.0) ** -float(config.zipf_alpha)
    popularity = popularity / popularity.sum()

    events: List[TraceEvent] = []
    for index in range(config.queries):
        graph = int(rng.choice(len(graph_sizes), p=popularity))
        n = int(graph_sizes[graph])
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        if kind == "solve":
            payload = (("rhs_seed", int(rng.integers(0, 2**31))),)
        elif kind == "resistance":
            u, v = _distinct_pair(rng, n)
            payload = (("u", u), ("v", v))
        elif kind == "resistance_batch":
            pairs = tuple(
                _distinct_pair(rng, n) for _ in range(config.batch_pairs)
            )
            payload = (("pairs", pairs),)
        elif kind == "mutate":
            u, v = _distinct_pair(rng, n)
            payload = (
                ("u", u),
                ("v", v),
                ("weight", float(rng.uniform(0.5, 2.0))),
            )
        else:
            raise ValueError(f"unknown trace event kind {kind!r}")
        events.append(
            TraceEvent(
                index=index,
                client=index % max(1, config.clients),
                kind=kind,
                graph=graph,
                payload=payload,
            )
        )
    return TrafficTrace(
        config=config, n_graphs=len(graph_sizes), events=tuple(events)
    )


def _distinct_pair(rng, n: int) -> Tuple[int, int]:
    """A uniformly random ordered pair of distinct vertices below ``n``."""
    u = int(rng.integers(0, n))
    v = int(rng.integers(0, n - 1))
    if v >= u:
        v += 1
    return u, v


def solve_rhs(n: int, rhs_seed: int) -> np.ndarray:
    """The deterministic zero-sum right-hand side of a ``solve`` event."""
    b = np.random.default_rng(rhs_seed).standard_normal(n)
    return b - b.mean()


def make_service_mutator(service) -> Callable[[str, int, int, float], Any]:
    """Mutation applier for an in-process :class:`LaplacianService`.

    Mutates the registered graph object directly (the registry's version
    tracking picks it up on the next query).  The cluster's equivalent is
    :meth:`~repro.serve.cluster.ClusterService.mutate`, which
    :func:`run_trace` uses automatically when the service exposes it.
    """

    def apply(graph_key: str, u: int, v: int, weight: float):
        service.registry.get(graph_key).graph.add_edge(u, v, weight)

    return apply


def apply_event(
    service,
    keys: Sequence[str],
    sizes: Sequence[int],
    event: TraceEvent,
    config: TrafficConfig,
    mutate_fn: Optional[Callable[[str, int, int, float], Any]] = None,
) -> Any:
    """Execute one trace event against ``service``; returns its answer.

    ``service`` needs the shared front-door surface (``solve``,
    ``effective_resistance``, ``effective_resistances``); mutations go
    through ``mutate_fn`` when given, else through the service's own
    ``mutate`` method (the cluster), else through direct graph mutation via
    :func:`make_service_mutator` semantics.
    """
    key = keys[event.graph]
    payload = event.payload_dict()
    if event.kind == "solve":
        b = solve_rhs(int(sizes[event.graph]), payload["rhs_seed"])
        return service.solve(key, b, eps=config.eps).solution
    if event.kind == "resistance":
        return service.effective_resistance(
            key, payload["u"], payload["v"], eta=config.eta
        )
    if event.kind == "resistance_batch":
        return service.effective_resistances(
            key, list(payload["pairs"]), eta=config.eta
        )
    if event.kind == "mutate":
        if mutate_fn is not None:
            return mutate_fn(key, payload["u"], payload["v"], payload["weight"])
        if hasattr(service, "mutate"):
            return service.mutate(
                key, "add", payload["u"], payload["v"], payload["weight"]
            )
        return make_service_mutator(service)(
            key, payload["u"], payload["v"], payload["weight"]
        )
    raise ValueError(f"unknown trace event kind {event.kind!r}")


def run_trace(
    service,
    keys: Sequence[str],
    sizes: Sequence[int],
    trace: TrafficTrace,
    mutate_fn: Optional[Callable[[str, int, int, float], Any]] = None,
    concurrent: bool = True,
    record_answers: bool = False,
    retry_policy: Optional[ClientRetryPolicy] = None,
) -> TrafficReport:
    """Replay ``trace`` against ``service`` and measure it.

    ``concurrent=True`` runs each trace client on its own thread (events
    stay ordered *within* a client, interleave freely across clients --
    the realistic load shape); ``concurrent=False`` replays the whole trace
    sequentially in submission order, which is fully deterministic and is
    the mode answer-comparison runs use.  With a ``retry_policy``, shed
    events are retried per that policy (honouring the server's
    ``retry_after_seconds`` hint) before being counted.  Every event
    resolves to ok / shed / typed failure in the report; see
    :class:`TrafficReport`.
    """
    if len(keys) != trace.n_graphs:
        raise ValueError(
            f"trace was generated for {trace.n_graphs} graphs, got {len(keys)} keys"
        )
    report = TrafficReport(events_total=len(trace.events))
    lock = threading.Lock()

    def run_events(events: Sequence[TraceEvent]) -> None:
        rngs: Dict[int, np.random.Generator] = {}
        for event in events:
            attempts = 0
            while True:
                start = time.perf_counter()
                try:
                    answer = apply_event(
                        service, keys, sizes, event, trace.config, mutate_fn
                    )
                except ServiceOverloadedError as error:
                    if (
                        retry_policy is not None
                        and attempts < retry_policy.max_retries
                    ):
                        rng = rngs.get(event.client)
                        if rng is None:
                            rng = rngs[event.client] = retry_policy.rng_for(
                                event.client
                            )
                        hint = getattr(error, "retry_after_seconds", None)
                        sleep_for = retry_policy.delay(attempts, hint, rng)
                        attempts += 1
                        with lock:
                            report.retried_total += 1
                            report.retries_by_event[event.index] = attempts
                        time.sleep(sleep_for)
                        continue
                    with lock:
                        report.shed += 1
                except Exception as error:
                    name = type(error).__name__
                    with lock:
                        report.failed += 1
                        report.failures_by_type[name] = (
                            report.failures_by_type.get(name, 0) + 1
                        )
                else:
                    elapsed = time.perf_counter() - start
                    with lock:
                        report.ok += 1
                        if attempts:
                            report.retried_ok += 1
                        report.latencies.append(elapsed)
                        # mutate acks are implementation-specific (version int
                        # vs None), not comparable answers
                        if record_answers and event.kind != "mutate":
                            report.answers[event.index] = answer
                break

    started = time.perf_counter()
    if not concurrent:
        run_events(trace.events)
    else:
        by_client: Dict[int, List[TraceEvent]] = {}
        for event in trace.events:
            by_client.setdefault(event.client, []).append(event)
        threads = [
            threading.Thread(target=run_events, args=(events,), daemon=True)
            for events in by_client.values()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    report.seconds = time.perf_counter() - started
    return report


def compare_answers(
    left: TrafficReport, right: TrafficReport, atol: float = 1e-8
) -> Tuple[int, float]:
    """Compare two answer-recorded replays of one trace.

    Returns ``(compared, max_abs_difference)`` over the event indices both
    reports answered; raises if an answer pair disagrees in shape.  Events
    that shed-then-resolved under a retry policy recorded their answer like
    any other ok event, so retried-then-ok events compare normally.  The
    cluster acceptance gate asserts the difference stays below ``1e-8``.
    """
    compared = 0
    worst = 0.0
    for index, a in left.answers.items():
        b = right.answers.get(index)
        if b is None:
            continue
        if a is None and b is None:
            compared += 1
            continue
        a_arr = np.asarray(a, dtype=float)
        b_arr = np.asarray(b, dtype=float)
        if a_arr.shape != b_arr.shape:
            raise AssertionError(
                f"answer shape mismatch at event {index}: {a_arr.shape} vs {b_arr.shape}"
            )
        if a_arr.size:
            worst = max(worst, float(np.max(np.abs(a_arr - b_arr))))
        compared += 1
    if worst > atol:
        raise AssertionError(
            f"answers diverge: max |diff| = {worst:.3e} > atol={atol:.1e}"
        )
    return compared, worst
