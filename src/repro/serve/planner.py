"""Query planner: coalesce heterogeneous requests into blocked kernel calls.

The solver stack earns its throughput from batching -- one blocked Chebyshev
iteration over an ``(n, k)`` right-hand-side block
(:meth:`BCCLaplacianSolver.solve_many`), one grounded factorisation answering
many resistance pairs (:meth:`GroundedLaplacianSolver.pair_resistances`) --
but clients submit queries one at a time.  The planner closes that gap: it
groups a drained submission queue by ``(graph, kind, coalescing params)``
while preserving per-group submission order, then executes each group with a
single blocked call against artifacts from the
:class:`~repro.serve.artifacts.ArtifactCache`.

Three query kinds exist (the service constructs them via
:func:`solve_query` / :func:`resistance_query` / :func:`certify_query`):

``solve``
    ``L_G x = b`` to relative error ``eps``; same-graph same-``eps`` queries
    share one block solve through :func:`repro.core.api.solve_many`.
``resistance``
    effective resistance between an arbitrary vertex pair, exact
    (``eta=None``) or to relative error ``eta``; same-graph same-``eta``
    queries share one batched ``pair_resistances`` kernel call.  Routing is
    eps-aware (see :meth:`QueryPlanner._execute_resistance`): medium graphs
    answer from the exact dense oracle, large graphs answer approximate
    queries from the JL-sketched oracle once its build has amortised and
    everything else from per-batch grounded ``splu`` solves.  Exact and
    approximate queries never coalesce into one batch (``eta`` is a
    coalescing parameter), so an exact client can never be handed a sketched
    answer.
``certify``
    is the cached ``(1 +/- eps)``-sparsifier of this graph valid?  Same-graph
    same-``eps`` queries collapse to a single certification.
``gram``
    one ``(A^T D A) y = rhs`` solve for a registered flow network's LP
    (Lemma 5.1): answered by a :class:`~repro.lp.gram.GramSolverBridge` whose
    structure and factorisations live in the artifact cache, so repeated
    diagonals hit warm ``splu`` factors.
``flow``
    a full :func:`~repro.flow.mincostflow.min_cost_max_flow` run on a
    registered network, with the phase-1 max flow served from a cached
    artifact and every Newton system routed through the gram bridge.  The
    final flow itself is deliberately *not* memoised -- a repeat solve re-runs
    the IPM against warm gram artifacts, which is exactly the cold-vs-warm
    spread ``BENCH_flow.json`` measures.

Staleness: before executing a batch the planner checks the registry entry's
version.  A drifted graph triggers ``registry.revalidate``, after which the
outdated artifacts are either *repairable* or dropped -- the stale artifact
is refused, never served.  Repair is lazy: when the graph's mutation journal
yields a short delta (at most ``repair_delta_limit`` records, see
:meth:`repro.graphs.graph.WeightedGraph.delta_since`), the planner stashes
it in the cache's pending ledger (:meth:`ArtifactCache.defer_repair`) and
returns without touching any artifact.  The first *lookup* of each stale
artifact under the new identity (:meth:`QueryPlanner._try_lazy_repair`,
invoked from the one build seam) walks the delta for that artifact alone --
Sherman-Morrison on the grounded ``splu`` solver and the dense resistance
oracle (with component-split re-grounding for bridge removals on the
grounded solver), per-column rank-1 embedding repair on the JL-sketched
oracle (insertions append, reweights/removals re-derive the edge's own
Kane-Nelson column), a sparsifier edge-add on the solver preprocessing --
and rekeys it via :meth:`ArtifactCache.adopt_repaired`.  An artifact never
queried after the mutation never pays its repair.  Anything the delta cannot
express as a low-rank update (cross-component insertions, bridge removals
for oracles, exhausted ``O(sqrt(n))`` update budgets) drops that artifact
and rebuilds it from scratch, so repair never trades correctness for speed.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import api
from repro.flow.baselines import edmonds_karp_max_flow
from repro.flow.mincostflow import min_cost_max_flow
from repro.graphs.graph import MutationRecord
from repro.linalg.jl import resistance_sketch_dimension
from repro.linalg.resistance import SketchedResistanceOracle
from repro.linalg.sparse_backend import (
    RESISTANCE_ORACLE_LIMIT,
    GroundedLaplacianSolver,
    RepairableGroundedSolver,
    ResistanceOracle,
    default_update_budget,
    resolve_backend,
)
from repro.lp.gram import GRAM_FORMULATIONS, GramSolverBridge, flow_gram_structure
from repro.serve.artifacts import ArtifactCache, CacheEntry
from repro.serve.faults import FaultInjector, FaultPlan, disarmed_injector
from repro.serve.registry import GraphRegistry, RegisteredGraph
from repro.serve.resilience import (
    ArtifactBreakerOpenError,
    CircuitBreaker,
    HealthStats,
    NumericalHealthError,
    ResiliencePolicy,
    call_with_retries,
)
from repro.solvers.laplacian import BCCLaplacianSolver, SolverPreprocessing

QUERY_KINDS = ("solve", "resistance", "certify", "gram", "flow")

#: Longest mutation delta the planner routes through artifact repair; longer
#: deltas (or an overflowed journal) rebuild from scratch.  The routed
#: length is additionally clamped to the graph's fresh ``O(sqrt(n))``
#: update budget (:func:`default_update_budget`), so at small ``n`` a delta
#: that would exhaust a fresh solver mid-walk rebuilds up front instead of
#: paying the partial repair first.
REPAIR_DELTA_LIMIT = 32

#: An approximate-resistance batch at least this large triggers the sketch
#: build immediately: a bulk query signals a bulk workload, and the build
#: amortises over the rest of the stream.
SKETCH_EAGER_BATCH = 16

#: Scalar/approximate trickle threshold: the sketch is built once cumulative
#: approximate pairs served by the splu fallback reach ``k / this`` (the build
#: costs ``k`` blocked solves, a fallback batch costs one solve per pair).
SKETCH_DEMAND_FACTOR = 4

#: Bound on the demand-counter dict: unregistered graphs and permanently
#: over-budget sketches would otherwise leak counters over a long-lived
#: service.  Evicting a counter only delays one graph's sketch build.
SKETCH_DEMAND_MAX_ENTRIES = 1024

_query_ids = itertools.count()


def _validated_eta(eta) -> Optional[float]:
    """Normalise the accuracy knob: ``None`` = exact, else a float in (0, 1)."""
    if eta is None:
        return None
    eta = float(eta)
    if not (0.0 < eta < 1.0):
        raise ValueError(f"accuracy bound eta must lie in (0, 1), got {eta}")
    return eta


@dataclass
class Query:
    """One client request against a registered graph."""

    kind: str
    graph_key: str
    payload: Dict[str, Any]
    query_id: int = field(default_factory=_query_ids.__next__)

    def __post_init__(self):
        if self.kind not in QUERY_KINDS:
            raise ValueError(f"unknown query kind {self.kind!r}; use one of {QUERY_KINDS}")


def solve_query(graph_key: str, b: np.ndarray, eps: float = 1e-6) -> Query:
    """``L_G x = b`` to relative error ``eps`` in the ``L_G``-norm."""
    return Query("solve", graph_key, {"b": np.asarray(b, dtype=float), "eps": float(eps)})


def resistance_query(
    graph_key: str, u: int, v: int, eta: Optional[float] = None
) -> Query:
    """Effective resistance between vertices ``u`` and ``v``.

    ``eta=None`` demands the exact value; a float in ``(0, 1)`` accepts a
    ``(1 +/- eta)``-approximate answer, which lets graphs above the dense
    oracle gate serve from the JL-sketched oracle instead of per-batch
    triangular solves.  (The eta is validated here, at submit time.)
    """
    return Query(
        "resistance",
        graph_key,
        {"u": int(u), "v": int(v), "eta": _validated_eta(eta)},
    )


def resistance_batch_query(
    graph_key: str, pairs: Sequence[Tuple[int, int]], eta: Optional[float] = None
) -> Query:
    """Effective resistances of many pairs as ONE queue entry.

    A bulk request pays the per-query protocol cost (queue entry, ticket,
    result routing) once for the whole batch instead of once per pair, which
    is where most of the batch=64 throughput win comes from once the kernel
    itself is an O(1)-per-pair oracle lookup.  Its result value is an array
    aligned with ``pairs``.  In the planner it coalesces freely with scalar
    resistance queries on the same graph carrying the same ``eta`` (and never
    with queries carrying a different one).
    """
    pair_array = np.asarray(list(pairs), dtype=np.int64)
    if pair_array.ndim != 2 or pair_array.shape[1] != 2:
        raise ValueError(f"pairs must be (u, v) tuples, got shape {pair_array.shape}")
    return Query(
        "resistance",
        graph_key,
        {"u": pair_array[:, 0], "v": pair_array[:, 1], "eta": _validated_eta(eta)},
    )


def certify_query(graph_key: str, eps: float = 0.5) -> Query:
    """Certify the cached ``(1 +/- eps)``-sparsifier against the graph."""
    return Query("certify", graph_key, {"eps": float(eps)})


def gram_query(
    graph_key: str,
    d: np.ndarray,
    rhs: np.ndarray,
    formulation: str = "fixed-value",
) -> Query:
    """One ``(A^T D A) y = rhs`` solve for the registered network's flow LP.

    ``formulation`` selects the constraint matrix ``A``: ``"fixed-value"``
    (the Section 2.4 incidence matrix, ``d`` of length ``m``) or
    ``"section5"`` (the slack-augmented Section 5 matrix, ``d`` of length
    ``m + 2(n-1) + 1``).  Same-graph same-formulation queries share one
    :class:`~repro.lp.gram.GramSolverBridge` per batch.
    """
    if formulation not in GRAM_FORMULATIONS:
        raise ValueError(
            f"unknown gram formulation {formulation!r}; use one of {GRAM_FORMULATIONS}"
        )
    return Query(
        "gram",
        graph_key,
        {
            "d": np.asarray(d, dtype=float),
            "rhs": np.asarray(rhs, dtype=float),
            "formulation": formulation,
        },
    )


def flow_query(
    graph_key: str,
    engine: str = "barrier",
    seed: Optional[int] = None,
    eps_scale: float = 1e-6,
    perturb: bool = True,
    memoise_result: bool = False,
) -> Query:
    """An exact min-cost max-flow of the registered network (Theorem 1.1).

    Identical-parameter queries on the same network coalesce to one pipeline
    run.  The run consumes cached serving artifacts (phase-1 max flow, gram
    factorisations) but its result is recomputed per batch -- see the module
    docstring -- unless ``memoise_result=True``, which additionally caches
    the final :class:`~repro.flow.mincostflow.MinCostFlowResult` under the
    network's content identity so read-heavy traffic on an unchanging
    network is a dictionary lookup.  The default stays off so warm flow
    benchmarks keep measuring gram amortisation, not memoisation.
    Memoising and non-memoising queries never share a batch (a client that
    asked for a fresh run must get one).

    ``seed=None`` is served as seed ``0``: the served path is deterministic
    by default, so a repeat query replays the same cost-perturbation and
    Newton-weight trajectory and finds every gram factorisation warm (an
    entropy-seeded perturbation would silently defeat the cache).  Pass an
    explicit seed to vary the perturbation.
    """
    return Query(
        "flow",
        graph_key,
        {
            "engine": str(engine),
            "seed": 0 if seed is None else int(seed),
            "eps_scale": float(eps_scale),
            "perturb": bool(perturb),
            "memoise_result": bool(memoise_result),
        },
    )


@dataclass
class QueryBatch:
    """Queries that execute as one blocked kernel call."""

    graph_key: str
    kind: str
    coalesce_params: Tuple[Hashable, ...]
    queries: List[Query]

    @property
    def size(self) -> int:
        """Number of queries sharing this kernel call."""
        return len(self.queries)


@dataclass
class QueryResult:
    """Per-query outcome, annotated with serving metadata.

    ``degraded=True`` marks an answer served through a fallback rung of the
    degradation ladder (grounded exact path after an oracle build failure or
    open breaker, rebuild after a failed repair walk): still *correct*, but
    potentially slower than the artifact the planner wanted to use.
    """

    query: Query
    value: Any
    cache_hit: bool
    batch_size: int
    seconds: float  # per-query share of the batch wall-clock
    degraded: bool = False


@dataclass
class CertificationReport:
    """Outcome of a certify query."""

    ok: bool
    lo: float
    hi: float
    eps: float
    sparsifier_edges: int
    graph_edges: int


class QueryPlanner:
    """Plans and executes drained query batches against registry + cache."""

    def __init__(
        self,
        registry: GraphRegistry,
        cache: ArtifactCache,
        solver_seed: Optional[int] = 0,
        t_override: Optional[int] = None,
        bundle_scale: float = 1.0,
        backend: str = "auto",
        oracle_limit: int = RESISTANCE_ORACLE_LIMIT,
        repair_enabled: bool = True,
        repair_delta_limit: int = REPAIR_DELTA_LIMIT,
        resilience: Optional[ResiliencePolicy] = None,
        health: Optional[HealthStats] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.registry = registry
        self.cache = cache
        self.solver_seed = solver_seed
        self.t_override = t_override
        self.bundle_scale = bundle_scale
        self.backend = backend
        #: route short mutation deltas through low-rank artifact repair
        #: instead of invalidate-and-rebuild; ``False`` restores the
        #: pre-repair behaviour (every mutation rebuilds), which the mutation
        #: benchmark uses as its baseline.
        self.repair_enabled = repair_enabled
        self.repair_delta_limit = int(repair_delta_limit)
        #: graphs up to this many vertices answer resistance queries from a
        #: precomputed dense oracle (O(1) per query) instead of per-batch
        #: triangular solves; n^2 doubles of cache weight, LRU-evictable.
        #: Above the gate, approximate queries (eta set) are served by the
        #: JL-sketched oracle once its build has amortised.
        self.oracle_limit = oracle_limit
        #: cumulative approximate pairs served by the splu fallback, keyed by
        #: (fingerprint, version, eta): once demand reaches k /
        #: SKETCH_DEMAND_FACTOR the sketch build has amortised and is
        #: triggered.  Touched only under the service's execute lock.
        self._sketch_demand: Dict[Tuple[str, int, float], int] = {}
        #: failure-containment policy shared with the owning service (the
        #: service passes its own so the two can never disagree)
        self.resilience = resilience if resilience is not None else ResiliencePolicy()
        #: resilience counters, surfaced through ``metrics_snapshot``
        self.health = health if health is not None else HealthStats()
        #: TTL'd negative cache over artifact builds, keyed per artifact
        #: identity ``(fingerprint, kind, params)`` -- see :meth:`_build`
        self.breaker = CircuitBreaker(
            threshold=self.resilience.breaker_threshold,
            ttl_seconds=self.resilience.breaker_ttl_seconds,
        )
        #: fault-injection seams (a disarmed no-op injector by default)
        self.faults = faults if faults is not None else disarmed_injector()
        self._retry_rng = np.random.default_rng(self.resilience.seed)
        #: optional off-flush-path sketch builder (duck-typed: ``submit(key,
        #: fn) -> bool``, deduplicating in-flight keys).  The cluster worker
        #: arms one (:class:`repro.serve.worker.BackgroundBuilder`) so a
        #: sketch build runs on a background thread while the grounded exact
        #: fallback keeps serving -- non-degraded, exact answers trivially
        #: satisfy ``eta`` -- until the sketch is resident in the cache.
        self.background_builder = None
        # retry jitter for background builds: a dedicated stream, because
        # ``_retry_rng`` is touched under the service's execute lock and a
        # background thread must not race it
        self._background_rng = np.random.default_rng(
            self.resilience.seed + 0x5EED
        )

    def arm_faults(self, faults) -> FaultInjector:
        """Arm a :class:`FaultPlan`/:class:`FaultInjector`; ``None`` disarms.

        Returns the active injector so callers can read its fire counters
        (e.g. to assert that no sketch build was attempted behind an open
        breaker).  Swapped atomically enough for tests -- arming while a
        flush is executing is not a supported pattern.
        """
        if faults is None:
            injector = disarmed_injector()
        elif isinstance(faults, FaultInjector):
            injector = faults
        elif isinstance(faults, FaultPlan):
            injector = FaultInjector(faults)
        else:
            raise TypeError(
                f"arm_faults wants a FaultPlan, FaultInjector or None, "
                f"got {type(faults).__name__}"
            )
        self.faults = injector
        return injector

    # -- planning --------------------------------------------------------------

    def plan(self, queries: Sequence[Query]) -> List[QueryBatch]:
        """Group queries into coalesced batches, preserving arrival order.

        Batches are emitted in order of each group's first query, and queries
        keep their submission order inside a batch, so a client that submits
        twice to the same graph gets its answers in submission order.
        """
        batches: "Dict[Tuple[Hashable, ...], QueryBatch]" = {}
        for query in queries:
            params = self._coalesce_params(query)
            group = (query.graph_key, query.kind, params)
            batch = batches.get(group)
            if batch is None:
                batches[group] = QueryBatch(
                    graph_key=query.graph_key,
                    kind=query.kind,
                    coalesce_params=params,
                    queries=[query],
                )
            else:
                batch.queries.append(query)
        return list(batches.values())

    @staticmethod
    def _coalesce_params(query: Query) -> Tuple[Hashable, ...]:
        if query.kind == "solve":
            return (query.payload["eps"],)
        if query.kind == "certify":
            return (query.payload["eps"],)
        if query.kind == "gram":
            return (query.payload["formulation"],)
        if query.kind == "flow":
            payload = query.payload
            return (
                payload["engine"],
                payload["seed"],
                payload["eps_scale"],
                payload["perturb"],
                payload.get("memoise_result", False),
            )
        # resistance: exact (None) and approximate queries, or two different
        # accuracy bounds, must never share a kernel call
        return (query.payload.get("eta"),)

    # -- execution -------------------------------------------------------------

    def execute(self, batches: Sequence[QueryBatch]) -> List[QueryResult]:
        """Execute every batch; results in query-submission order per batch."""
        results: List[QueryResult] = []
        for batch in batches:
            results.extend(self.execute_batch(batch))
        return results

    def execute_batch(self, batch: QueryBatch) -> List[QueryResult]:
        """Execute one coalesced batch with a single blocked kernel call.

        Resolves registry staleness first (repair or rebuild, see
        :meth:`_current_entry`), then dispatches on the batch kind; the
        returned results carry per-query shares of the batch wall-clock.
        """
        entry = self._current_entry(batch.graph_key)
        self.faults.on_execute(batch)
        start = time.perf_counter()
        if batch.kind == "solve":
            values, cache_hit, degraded = self._execute_solve(entry, batch)
        elif batch.kind == "resistance":
            values, cache_hit, degraded = self._execute_resistance(entry, batch)
        elif batch.kind == "gram":
            values, cache_hit, degraded = self._execute_gram(entry, batch)
        elif batch.kind == "flow":
            values, cache_hit, degraded = self._execute_flow(entry, batch)
        else:
            values, cache_hit, degraded = self._execute_certify(entry, batch)
        per_query_seconds = (time.perf_counter() - start) / max(1, batch.size)
        return [
            QueryResult(
                query=query,
                value=value,
                cache_hit=cache_hit,
                batch_size=batch.size,
                seconds=per_query_seconds,
                degraded=degraded,
            )
            for query, value in zip(batch.queries, values)
        ]

    def _build(
        self,
        entry: RegisteredGraph,
        kind: str,
        params: Tuple[Hashable, ...],
        builder,
        rng=None,
    ):
        """Breaker-guarded, retried ``cache.get_or_build`` -- the one build seam.

        Every artifact build the planner takes goes through here so failure
        containment can never fork per call site: the circuit breaker is
        consulted first (an open breaker raises
        :class:`ArtifactBreakerOpenError` *without* attempting the build --
        that is the short-circuit that saves the ``k`` blocked solves),
        transient build failures are retried with the policy's backoff, and
        the outcome is recorded back into the breaker.  The breaker key is
        the artifact identity ``(fingerprint, kind, params)`` -- the version
        is deliberately excluded so a content-independent failure (e.g.
        resource exhaustion on a sketch of this size) stays remembered
        across cheap mutations; the TTL bounds how long.

        Fault-injection seam: an armed injector's ``build`` rules fire
        inside the builder, i.e. only on a cache miss -- a cached artifact
        is never failed retroactively.

        ``rng`` overrides the retry-jitter stream; background builds pass
        their own so two threads never race ``_retry_rng``.
        """
        if rng is None:
            # the one lazy-repair seam: just before the lookup, migrate a
            # pending stale generation of exactly this artifact (and nothing
            # else) to the entry's identity.  Flush-path only -- background
            # builders rebuild instead, so repairs stay serialised behind the
            # service's execute lock.
            self._try_lazy_repair(entry, kind, params)
        breaker_key = (entry.fingerprint, kind, params)
        if not self.breaker.allow(breaker_key):
            self.health.increment("breaker_open_total")
            raise ArtifactBreakerOpenError(
                f"circuit breaker open for {kind!r} builds of graph "
                f"{entry.fingerprint[:12]} (params={params!r}): recent builds "
                f"failed repeatedly; retrying after the TTL"
            )

        def guarded_builder():
            self.faults.on_build(kind)
            return builder()

        try:
            value, cache_hit = call_with_retries(
                lambda: self.cache.get_or_build(
                    entry.fingerprint, entry.version, kind, params, guarded_builder
                ),
                self.resilience,
                self._retry_rng if rng is None else rng,
                health=self.health,
            )
        except Exception:
            self.breaker.record_failure(breaker_key)
            raise
        self.breaker.record_success(breaker_key)
        return value, cache_hit

    def _current_entry(self, graph_key: str) -> RegisteredGraph:
        """Registry entry with staleness resolved (refuse + repair/rebuild).

        Artifacts are keyed by the entry's *content fingerprint* (plus
        version), never by the registry handle: handles can be unregistered
        and re-used for different graphs, and two services may share one
        cache while naming different graphs alike -- the fingerprint is the
        identity that cannot alias.

        A drifted entry is revalidated, then its cached artifacts follow one
        of two paths: a short mutation delta (the graph's journal reaches
        back to the registered version and holds at most
        ``repair_delta_limit`` records) is *deferred* into the cache's
        pending-delta ledger (:meth:`ArtifactCache.defer_repair`) -- no
        repair work happens here; each stale artifact is migrated
        individually on its first lookup under the new identity by
        :meth:`_try_lazy_repair`, and an artifact never looked up again
        never pays its repair at all.  Otherwise everything built against
        the stale content is invalidated and later queries rebuild.  Either
        way no stale artifact can be served: lookups key on the new
        ``(fingerprint, version)``, which no stale entry carries.
        """
        entry = self.registry.get(graph_key)
        if not entry.is_current():
            stale_fingerprint = entry.fingerprint
            stale_version = entry.version
            # flow networks carry a version but no mutation journal: their
            # drift is never expressible as a delta, so they always rebuild
            delta = (
                entry.graph.delta_since(stale_version)
                if self.repair_enabled and hasattr(entry.graph, "delta_since")
                else None
            )
            self.registry.revalidate(graph_key)
            entry = self.registry.get(graph_key)
            limit = min(
                self.repair_delta_limit, default_update_budget(entry.graph.n)
            )
            deferred = False
            if delta and len(delta) <= limit:
                deferred = self.cache.defer_repair(
                    stale_fingerprint,
                    stale_version,
                    entry.fingerprint,
                    entry.version,
                    tuple(delta),
                    limit,
                )
            if not deferred:
                self.cache.invalidate_graph(
                    stale_fingerprint, keep_version=entry.version
                )
            # drop sketch-demand counters for content that no longer exists
            self._sketch_demand = {
                key: count
                for key, count in self._sketch_demand.items()
                if key[0] != stale_fingerprint
            }
        return entry

    #: artifact kinds the lazy-repair path knows how to migrate; everything
    #: else (certification, gram structures, flow results) memoises exact
    #: old-content computations and is never repaired
    _REPAIRABLE_KINDS = (
        "grounded",
        "resistance_oracle",
        "sketched_resistance",
        "preprocessing",
    )

    def _try_lazy_repair(
        self, entry: RegisteredGraph, kind: str, params: Tuple[Hashable, ...]
    ) -> None:
        """Migrate one stale artifact to the entry's identity, on first lookup.

        The lazy half of the repair path: :meth:`_current_entry` stashed the
        mutation delta in the cache's pending ledger; here -- called from
        :meth:`_build` just before every cache lookup -- the artifact that is
        about to be looked up is repaired across that delta if a stale
        generation of it is still cached.  Sources are tried closest
        (shortest delta) first.  The stale entry is popped *before* the walk
        (:meth:`ArtifactCache.take_stale_entry`), so a concurrent repairer
        can never double-apply updates to the same object; a walk that
        refuses or dies drops the popped artifact (the books balance via
        ``note_dropped``) and the lookup falls through to an ordinary
        rebuild, counting the degradation only when the walk *raised*.
        """
        if kind not in self._REPAIRABLE_KINDS:
            return
        sources = self.cache.pending_repair(entry.fingerprint, entry.version)
        if not sources:
            return
        if self.cache.contains(entry.fingerprint, entry.version, kind, params):
            return
        for (src_key, src_version), delta in sources.items():
            stale = self.cache.take_stale_entry(src_key, src_version, kind, params)
            if stale is None:
                continue
            start = time.perf_counter()
            try:
                value = self._repair_artifact(entry, stale, delta, kind, params)
            except Exception:
                self.health.increment("degraded_total")
                self.cache.note_dropped()
                return
            if value is None:
                self.cache.note_dropped()
                return
            self.cache.adopt_repaired(
                entry.fingerprint,
                entry.version,
                kind,
                params,
                value,
                repair_seconds=time.perf_counter() - start,
            )
            return

    def _repair_artifact(
        self,
        entry: RegisteredGraph,
        stale: CacheEntry,
        delta: Sequence[MutationRecord],
        kind: str,
        params: Tuple[Hashable, ...],
    ):
        """Walk ``delta`` over one popped stale artifact; repaired value or None.

        Per-kind policy (the lazy counterpart of :meth:`_repair_survivors`):

        * ``grounded`` -- any op via :meth:`RepairableGroundedSolver.apply_update`;
          a refused *removal* is retried with the component ``split_side``
          (see :meth:`_split_side`), so bridge removals re-ground the new
          component instead of rebuilding;
        * ``resistance_oracle`` -- any op; the Sherman-Morrison denominator
          guard inside :meth:`ResistanceOracle.apply_update` refuses bridge
          removals itself, so removals no longer force a conservative rebuild;
        * ``sketched_resistance`` -- insertions append a fresh column,
          reweights/removals re-derive the edge's own column
          (:meth:`SketchedResistanceOracle.repair_edge`); both reuse the
          post-record solves the freshly repaired grounded solver recorded
          (:meth:`RepairableGroundedSolver.update_log`), and the walk refuses
          when the log does not cover the delta (the grounded was rebuilt) or
          a record split a component;
        * ``preprocessing`` -- weight increases only, via
          :meth:`SolverPreprocessing.apply_insertion`.
        """
        if kind == "grounded":
            return self._repair_grounded(entry, stale.value, delta)
        if kind == "resistance_oracle":
            return self._repair_dense(stale.value, delta)
        if kind == "sketched_resistance":
            return self._repair_sketch(entry, stale.value, delta, params)
        return self._repair_preprocessing(stale.value, delta)

    def _repair_grounded(
        self,
        entry: RegisteredGraph,
        solver,
        delta: Sequence[MutationRecord],
    ):
        if not isinstance(solver, RepairableGroundedSolver):
            return None
        # a split removal consumes two update slots (regulariser + removal):
        # budget for the worst case up front instead of dying mid-walk
        removals = sum(1 for record in delta if record.op == "remove")
        if solver.update_budget_remaining < len(delta) + removals:
            return None
        for step, record in enumerate(delta):
            self.faults.on_repair(step)
            if solver.apply_update(record.u, record.v, record.weight_delta):
                continue
            if record.op != "remove":
                return None
            side = self._split_side(entry, delta, step)
            if side is None or not solver.apply_update(
                record.u, record.v, record.weight_delta, split_side=side
            ):
                return None
        return solver

    @staticmethod
    def _split_side(
        entry: RegisteredGraph, delta: Sequence[MutationRecord], step: int
    ) -> Optional[set]:
        """Vertex set cut off by the bridge removal at ``delta[step]``.

        The registered graph already reflects the *whole* delta, so the
        topology right after record ``step`` is reconstructed by undoing the
        later records (existence only -- reweights don't move edges), then
        the split side is the BFS component of the removed edge's ``v``
        endpoint.  Returns ``None`` when ``u`` is still reachable: the
        removal was no bridge and the solver's refusal was numerical, which
        re-grounding cannot fix.
        """
        u_arr, v_arr, _ = entry.graph.edge_array()
        adjacency: Dict[int, set] = {}
        for a, b in zip(u_arr.tolist(), v_arr.tolist()):
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        for record in reversed(delta[step + 1 :]):
            if record.op == "add":
                adjacency.setdefault(record.u, set()).discard(record.v)
                adjacency.setdefault(record.v, set()).discard(record.u)
            elif record.op == "remove":
                adjacency.setdefault(record.u, set()).add(record.v)
                adjacency.setdefault(record.v, set()).add(record.u)
        target = delta[step]
        seen = {target.v}
        frontier = [target.v]
        while frontier:
            x = frontier.pop()
            for y in adjacency.get(x, ()):
                if y not in seen:
                    seen.add(y)
                    frontier.append(y)
        if target.u in seen:
            return None
        return seen

    def _repair_dense(self, oracle, delta: Sequence[MutationRecord]):
        if not isinstance(oracle, ResistanceOracle):
            return None
        if oracle.max_updates - oracle.repairs_applied < len(delta):
            return None
        for step, record in enumerate(delta):
            self.faults.on_repair(step)
            if not oracle.apply_update(record.u, record.v, record.weight_delta):
                return None
        return oracle

    def _repair_sketch(
        self,
        entry: RegisteredGraph,
        oracle,
        delta: Sequence[MutationRecord],
        params: Tuple[Hashable, ...],
    ):
        if not isinstance(oracle, SketchedResistanceOracle):
            return None
        # the sketch's rank-1 repairs need the post-record solve z for every
        # record; the grounded solver -- itself lazily repaired through this
        # same delta a moment ago (or right now, via this _grounded call) --
        # recorded exactly those, so no re-solving happens here
        solver, _ = self._grounded(entry)
        log = (
            solver.update_log()
            if isinstance(solver, RepairableGroundedSolver)
            else []
        )
        if len(log) < len(delta):
            return None  # grounded was rebuilt, not repaired: no z-chain
        tail = log[len(log) - len(delta) :]
        for step, (record, logged) in enumerate(zip(delta, tail)):
            log_u, log_v, log_delta, z, split = logged
            if split:
                # the removal split a component: e_u - e_v is inconsistent
                # across the re-grounding, so the sketch cannot follow
                return None
            if {log_u, log_v} != {record.u, record.v} or not np.isclose(
                log_delta, record.weight_delta
            ):
                return None
            self.faults.on_repair(step)
            if record.op == "add":
                ok = oracle.append_edge(record.u, record.v, record.weight, z=z)
            else:
                ok = oracle.repair_edge(
                    record.u,
                    record.v,
                    record.prev_weight,
                    0.0 if record.weight is None else record.weight,
                    z=z,
                )
            if not ok:
                return None
        # key params are (eta, seed): the repaired oracle survives only
        # while its (possibly widened) bound still honours the promised eta
        if oracle.eta_effective > params[0]:
            return None
        return oracle

    def _repair_preprocessing(self, prep, delta: Sequence[MutationRecord]):
        if not isinstance(prep, SolverPreprocessing):
            return None
        grounded = prep.grounded
        if (
            isinstance(grounded, RepairableGroundedSolver)
            and grounded.update_budget_remaining < len(delta)
        ):
            return None
        for step, record in enumerate(delta):
            self.faults.on_repair(step)
            if not prep.apply_insertion(record.u, record.v, record.weight_delta):
                return None
        return prep

    def _repair_survivors(
        self,
        candidates: Sequence[CacheEntry],
        delta: Sequence[MutationRecord],
    ) -> Dict[Tuple[Hashable, ...], Any]:
        """Apply ``delta`` to every repairable cached artifact, in lockstep.

        The one-shot callback of :meth:`ArtifactCache.repair_graph`:
        ``candidates`` are the stale entries the cache has already atomically
        removed (so a concurrent repairer of the same graph can never walk
        the same objects).  Walks the journal record by record and keeps the
        whole artifact stack consistent at each step: the grounded solver
        absorbs the record first (one Sherman-Morrison update), because the
        sketched oracles need a solver that already reflects that record to
        append their embedding row; the dense oracle and the solver
        preprocessing update independently.  An artifact that refuses a
        record -- unsupported op, cross-component edge, bridge removal,
        exhausted budget -- drops out (it is half-updated and must not be
        served) without stopping the others.

        Per-kind policy:

        * ``grounded`` -- any op, via :meth:`RepairableGroundedSolver.apply_update`;
        * ``resistance_oracle`` -- insertions/reweights only; a delta that
          contains *any* removal conservatively rebuilds the dense oracle
          rather than risking a silently stale ``R(u, v)``;
        * ``sketched_resistance`` -- pure insertions only (an existing edge's
          sketch column is not recoverable), and the repaired oracle is kept
          only while its widened ``eta_effective`` still honours the accuracy
          bound its cache key promises;
        * ``preprocessing`` -- weight increases only, via
          :meth:`SolverPreprocessing.apply_insertion` (kappa-preserving);
        * ``certification`` -- never repaired (it memoises an eigensolver run
          against the exact old content).

        Returns the mapping from surviving (old) cache keys to repaired
        values; the cache rekeys them to the new identity.
        """
        if not candidates:
            return {}
        grounded_entry: Optional[CacheEntry] = None
        sketches: List[CacheEntry] = []
        denses: List[CacheEntry] = []
        preps: List[CacheEntry] = []
        for cached in candidates:
            if cached.kind == "grounded" and isinstance(
                cached.value, RepairableGroundedSolver
            ):
                grounded_entry = cached
            elif cached.kind == "sketched_resistance" and isinstance(
                cached.value, SketchedResistanceOracle
            ):
                sketches.append(cached)
            elif cached.kind == "resistance_oracle" and isinstance(
                cached.value, ResistanceOracle
            ):
                denses.append(cached)
            elif cached.kind == "preprocessing" and isinstance(
                cached.value, SolverPreprocessing
            ):
                preps.append(cached)

        grounded = grounded_entry.value if grounded_entry is not None else None
        # artifacts repaired before may not have enough update budget left
        # for this whole delta: refuse up front rather than paying a partial
        # O(n)/O(n^2) walk whose half-updated result is dropped anyway
        grounded_ok = (
            grounded is not None and grounded.update_budget_remaining >= len(delta)
        )
        has_removal = any(record.op == "remove" for record in delta)
        sketch_ok = {c.key: grounded_ok for c in sketches}
        # the satellite bugfix: a delta containing removals must never leave
        # a repaired dense oracle behind -- conservative rebuild instead of
        # silently serving resistances of the pre-removal graph
        dense_ok = {
            c.key: not has_removal
            and c.value.max_updates - c.value.repairs_applied >= len(delta)
            for c in denses
        }
        prep_ok = {
            c.key: not isinstance(c.value.grounded, RepairableGroundedSolver)
            or c.value.grounded.update_budget_remaining >= len(delta)
            for c in preps
        }

        for step, record in enumerate(delta):
            # fault-injection seam: a ``repair`` rule models a walk crashing
            # at this record; the exception falls back to rebuild upstream
            self.faults.on_repair(step)
            delta_w = record.weight_delta
            if grounded_ok and not grounded.apply_update(record.u, record.v, delta_w):
                grounded_ok = False
                # sketches repaired so far used the pre-refusal solver states
                # (still consistent), but this record and the rest of the
                # delta cannot reach them: they die with the solver
                sketch_ok = {key: False for key in sketch_ok}
            for cached in sketches:
                if not sketch_ok[cached.key]:
                    continue
                if record.op != "add" or not cached.value.append_edge(
                    record.u, record.v, record.weight, grounded
                ):
                    sketch_ok[cached.key] = False
            for cached in denses:
                if dense_ok[cached.key] and not cached.value.apply_update(
                    record.u, record.v, delta_w
                ):
                    dense_ok[cached.key] = False
            for cached in preps:
                if prep_ok[cached.key] and not cached.value.apply_insertion(
                    record.u, record.v, delta_w
                ):
                    prep_ok[cached.key] = False

        survivors: Dict[Tuple[Hashable, ...], Any] = {}
        if grounded_ok:
            survivors[grounded_entry.key] = grounded
        for cached in sketches:
            # key params are (eta, seed): the repaired oracle survives only
            # while its widened bound still honours the eta it is keyed by
            promised_eta = cached.key[3][0]
            if sketch_ok[cached.key] and cached.value.eta_effective <= promised_eta:
                survivors[cached.key] = cached.value
        for cached in denses:
            if dense_ok[cached.key]:
                survivors[cached.key] = cached.value
        for cached in preps:
            if prep_ok[cached.key]:
                survivors[cached.key] = cached.value
        return survivors

    def _solver_params(self) -> Tuple[Hashable, ...]:
        return (self.solver_seed, self.t_override, self.bundle_scale, self.backend)

    def _execute_solve(
        self, entry: RegisteredGraph, batch: QueryBatch
    ) -> Tuple[List[Any], bool, bool]:
        graph = entry.graph
        preprocessing, cache_hit = self._build(
            entry,
            "preprocessing",
            self._solver_params(),
            lambda: BCCLaplacianSolver.prepare(
                graph,
                seed=self.solver_seed,
                t_override=self.t_override,
                bundle_scale=self.bundle_scale,
                backend=self.backend,
            ),
        )
        # the solver front object is rebuilt per batch (cheap: one CSR
        # assembly); caching it would both double-account the preprocessing
        # bytes it references and share one communication ledger across
        # unrelated clients
        solver = BCCLaplacianSolver(graph, preprocessing=preprocessing)
        eps = batch.coalesce_params[0]
        reports = api.solve_many(
            graph, [q.payload["b"] for q in batch.queries], eps=eps, solver=solver
        )
        for query, report in zip(batch.queries, reports):
            if self.faults.nan_output(query):
                report.solution[:] = np.nan
        poisoned = [
            q.query_id
            for q, r in zip(batch.queries, reports)
            if not np.all(np.isfinite(r.solution))
        ]
        if poisoned:
            # the numerical-health guard: refuse, never return, NaN/inf.
            # Bisection in the service's flush narrows the failure to
            # exactly the poisoned queries.
            raise NumericalHealthError(
                f"solve produced non-finite solutions for queries {poisoned}"
            )
        return list(reports), cache_hit, False

    def _execute_resistance(
        self, entry: RegisteredGraph, batch: QueryBatch
    ) -> Tuple[List[Any], bool, bool]:
        graph = entry.graph
        eta = batch.coalesce_params[0] if batch.coalesce_params else None

        # flatten scalar and bulk queries into aligned index arrays, answer
        # with a single kernel call, then split the outputs back per query
        us: List[np.ndarray] = []
        vs: List[np.ndarray] = []
        for query in batch.queries:
            us.append(np.atleast_1d(np.asarray(query.payload["u"], dtype=np.int64)))
            vs.append(np.atleast_1d(np.asarray(query.payload["v"], dtype=np.int64)))
        counts = [a.size for a in us]

        degraded = False
        if graph.n <= self.oracle_limit:
            # Medium graphs: precompute the dense grounded-inverse oracle
            # once (n batched triangular solves, n^2 doubles) and answer
            # every later pair query with a three-element lookup; exact
            # answers satisfy any requested eta for free.  The grounded
            # factorisation is only materialised on an oracle miss -- a
            # cached oracle must not trigger a useless splu rebuild.
            try:
                solver, cache_hit = self._build(
                    entry,
                    "resistance_oracle",
                    (),
                    lambda: ResistanceOracle(graph, grounded=self._grounded(entry)[0]),
                )
            except Exception:
                # degradation ladder: a failed (or breaker-open) oracle
                # build answers exactly from the grounded factorisation --
                # slower per pair, identical numbers
                self.health.increment("degraded_total")
                degraded = True
                solver, cache_hit = self._grounded(entry)
        elif eta is not None:
            solver, cache_hit, degraded = self._sketched_or_fallback(
                entry, eta, sum(counts)
            )
        else:
            solver, cache_hit = self._grounded(entry)
        resistances = solver.pair_resistances(np.concatenate(us), np.concatenate(vs))
        slices: List[slice] = []
        offset = 0
        for query, count in zip(batch.queries, counts):
            piece = slice(offset, offset + count)
            offset += count
            if self.faults.nan_output(query):
                resistances[piece] = np.nan
            slices.append(piece)
        # numerical-health guard: NaN only -- inf is the legitimate answer
        # for a cross-component pair
        poisoned = [
            q.query_id
            for q, piece in zip(batch.queries, slices)
            if np.isnan(resistances[piece]).any()
        ]
        if poisoned:
            raise NumericalHealthError(
                f"resistance kernel produced NaN for queries {poisoned}"
            )
        values: List[Any] = []
        for query, piece in zip(batch.queries, slices):
            chunk = resistances[piece]
            values.append(chunk.copy() if np.ndim(query.payload["u"]) else float(chunk[0]))
        return values, cache_hit, degraded

    def _grounded(
        self, entry: RegisteredGraph, rng=None
    ) -> Tuple[GroundedLaplacianSolver, bool]:
        """Cached grounded ``splu`` factorisation: ``(solver, cache_hit)``.

        The single owner of the ``"grounded"`` cache identity -- every
        consumer (exact serving, oracle builds, sketch fallback) goes through
        here so the key and builder can never silently fork.  Built as a
        :class:`RepairableGroundedSolver` (identical while no mutation has
        been absorbed) so the repair path can turn a later ``add_edge`` into
        a rank-1 update instead of a refactorisation.  ``rng`` as in
        :meth:`_build` (the background builder passes its own stream).
        """
        return self._build(
            entry,
            "grounded",
            (),
            lambda: RepairableGroundedSolver(entry.graph),
            rng=rng,
        )

    def _sketched_or_fallback(
        self, entry: RegisteredGraph, eta: float, n_pairs: int
    ) -> Tuple[Any, bool, bool]:
        """Serving artifact for a large-graph approximate-resistance batch.

        Policy: a cached sketch always serves.  Otherwise the sketch (``k``
        blocked grounded solves, ``n x k`` floats) is built once the workload
        has earned it -- the batch alone is ``SKETCH_EAGER_BATCH`` pairs or
        bigger, or cumulative fallback demand for this ``(graph, eta)`` has
        reached ``k / SKETCH_DEMAND_FACTOR`` pairs.  Until then the exact
        grounded factorisation answers (exact trivially satisfies ``eta``):
        a trickle of scalar queries never pays a sketch build it would not
        amortise, while any bulk client flips the graph into the sketched
        regime for everyone.  A sketch whose embedding cannot stay resident
        under the cache byte budget is never built at all -- the LRU would
        evict it on the next insert and every approximate batch would pay
        the ``k``-solve rebuild, far worse than the fallback it replaces.

        Failure containment (the third returned flag): a sketch build that
        fails -- or is short-circuited by its open circuit breaker, in which
        case no build is attempted at all -- *degrades* to the grounded
        exact path instead of failing the batch.  The amortisation fallback
        above is not a degradation (nothing failed); only failure-driven
        fallbacks are flagged and counted in ``degraded_total``.
        """
        params = (eta, self.solver_seed)
        # repair a pending stale sketch before the residency check below:
        # a lazily migrated sketch must count as "cached" for the demand
        # accounting, not trigger a redundant build decision
        self._try_lazy_repair(entry, "sketched_resistance", params)
        if not self.cache.contains(
            entry.fingerprint, entry.version, "sketched_resistance", params
        ):
            k = resistance_sketch_dimension(entry.graph.m, eta)
            demand_key = (entry.fingerprint, entry.version, eta)
            demand = self._sketch_demand.get(demand_key, 0) + n_pairs
            # embedding (n x k float32; float64 n x m when the identity
            # sketch takes over) + component labels (n int64)
            m = entry.graph.m
            item = 8 if k >= m else 4
            predicted_nbytes = entry.graph.n * (item * min(k, m) + 8)
            if predicted_nbytes > self.cache.max_bytes or (
                n_pairs < SKETCH_EAGER_BATCH and demand * SKETCH_DEMAND_FACTOR < k
            ):
                self._sketch_demand[demand_key] = demand
                while len(self._sketch_demand) > SKETCH_DEMAND_MAX_ENTRIES:
                    # oldest counter first (insertion order); losing one only
                    # delays that graph's next build decision
                    self._sketch_demand.pop(next(iter(self._sketch_demand)))
                solver, cache_hit = self._grounded(entry)
                return solver, cache_hit, False
            self._sketch_demand.pop(demand_key, None)
            if self.background_builder is not None:
                # off-flush-path build: schedule the k blocked solves on the
                # background thread (deduplicated while in flight) and keep
                # serving the grounded exact path meanwhile.  Exact answers
                # trivially satisfy eta, so this is not a degradation.
                self.background_builder.submit(
                    (entry.fingerprint, entry.version, "sketched_resistance", params),
                    lambda: self._build(
                        entry,
                        "sketched_resistance",
                        params,
                        lambda: SketchedResistanceOracle(
                            entry.graph,
                            eta=eta,
                            seed=self.solver_seed,
                            grounded=self._grounded(entry, rng=self._background_rng)[0],
                        ),
                        rng=self._background_rng,
                    ),
                )
                solver, cache_hit = self._grounded(entry)
                return solver, cache_hit, False
        builder = lambda: SketchedResistanceOracle(  # noqa: E731 -- reused below
            entry.graph,
            eta=eta,
            seed=self.solver_seed,
            grounded=self._grounded(entry)[0],
        )
        try:
            oracle, cache_hit = self._build(
                entry, "sketched_resistance", params, builder
            )
            if oracle.eta_effective > eta:
                # a repaired oracle's widened bound can drift past the
                # requested eta (the repair path already drops most such
                # cases); the contract wins over the artifact -- rebuild at
                # full accuracy
                self.cache.discard(
                    entry.fingerprint, entry.version, "sketched_resistance", params
                )
                oracle, cache_hit = self._build(
                    entry, "sketched_resistance", params, builder
                )
        except Exception:
            self.health.increment("degraded_total")
            solver, cache_hit = self._grounded(entry)
            return solver, cache_hit, True
        return oracle, cache_hit, False

    # -- flow / gram workloads -------------------------------------------------

    def gram_bridge(
        self, entry: RegisteredGraph, formulation: str = "fixed-value"
    ) -> GramSolverBridge:
        """A cache-wired gram bridge for the entry's flow LP (Lemma 5.1).

        The compiled :class:`~repro.lp.gram.IncidenceStructure` is itself a
        cached artifact (kind ``"gram_structure"``); the bridge is per-call
        state (its Sherman-Morrison overlays are private to one IPM run) but
        every factorisation it takes goes through
        :meth:`ArtifactCache.get_or_build` under the entry's content
        identity, which is where repeat solves find warm ``splu`` factors.
        """
        structure, _ = self._build(
            entry,
            "gram_structure",
            (formulation,),
            lambda: flow_gram_structure(entry.graph, formulation),
        )
        return GramSolverBridge(
            structure,
            cache=self.cache,
            graph_key=entry.fingerprint,
            version=entry.version,
        )

    def _execute_gram(
        self, entry: RegisteredGraph, batch: QueryBatch
    ) -> Tuple[List[Any], bool, bool]:
        formulation = batch.coalesce_params[0]
        bridge = self.gram_bridge(entry, formulation)
        values: List[Any] = []
        for query in batch.queries:
            y = bridge(query.payload["d"], query.payload["rhs"])
            if self.faults.nan_output(query):
                y = np.full_like(np.asarray(y, dtype=float), np.nan)
            values.append(y)
        # the bridge refuses genuinely sick solves itself (see
        # GramSolverBridge.__call__); this guard catches injected poison at
        # the same contract boundary
        poisoned = [
            q.query_id
            for q, y in zip(batch.queries, values)
            if not np.all(np.isfinite(y))
        ]
        if poisoned:
            raise NumericalHealthError(
                f"gram solve produced non-finite output for queries {poisoned}"
            )
        cache_hit = bridge.stats.cache_hits > 0
        return values, cache_hit, False

    def _execute_flow(
        self, entry: RegisteredGraph, batch: QueryBatch
    ) -> Tuple[List[Any], bool, bool]:
        """One pipeline run answers every identical-parameter flow query.

        Warm serving artifacts: the phase-1 max flow (kind ``"maxflow"``,
        content-addressed like everything else) and the gram factorisations
        the bridge takes during the IPM.  The pipeline itself is deterministic
        given the parameters, so one run is the answer for the whole batch.

        With ``memoise_result=True`` on the queries, the final
        :class:`~repro.flow.mincostflow.MinCostFlowResult` is itself a cached
        artifact (kind ``"flow_result"``), keyed by the full parameter tuple
        under the network's content identity -- so a repeat memoising query
        on an unmutated network skips the IPM entirely.
        """
        engine, seed, eps_scale, perturb, memoise = batch.coalesce_params
        warm: List[bool] = []

        def run_pipeline():
            phase_one, phase_hit = self._build(
                entry,
                "maxflow",
                (),
                lambda: edmonds_karp_max_flow(entry.graph),
            )
            bridges: List[GramSolverBridge] = []

            def factory(flow_lp):
                bridge = self.gram_bridge(entry, "fixed-value")
                bridges.append(bridge)
                return bridge

            result = min_cost_max_flow(
                entry.graph,
                engine=engine,
                seed=seed,
                eps_scale=eps_scale,
                perturb=perturb,
                gram_solver_factory=factory,
                phase_one=phase_one,
            )
            warm.append(phase_hit or any(b.stats.cache_hits > 0 for b in bridges))
            return result

        if memoise:
            result, result_hit = self._build(
                entry,
                "flow_result",
                (engine, seed, eps_scale, perturb),
                run_pipeline,
            )
            cache_hit = result_hit or bool(warm and warm[0])
        else:
            result = run_pipeline()
            cache_hit = warm[0]
        return [result] * batch.size, cache_hit, False

    def _execute_certify(
        self, entry: RegisteredGraph, batch: QueryBatch
    ) -> Tuple[List[Any], bool, bool]:
        from repro.graphs.laplacian import spectral_approximation_factor

        graph = entry.graph
        eps = batch.coalesce_params[0]
        backend = resolve_backend(graph, self.backend)
        params = (eps, self.solver_seed, self.t_override, self.bundle_scale, backend)

        def build_sparsifier_result():
            # the solve path's preprocessing artifact embeds a sparsifier
            # built with SPARSIFIER_EPS and the same knobs: when the certify
            # eps matches, reuse it instead of re-paying the multi-second
            # sparsification and storing the same content twice
            if eps == BCCLaplacianSolver.SPARSIFIER_EPS:
                solver_params = self._solver_params()
                if self.cache.contains(
                    entry.fingerprint, entry.version, "preprocessing", solver_params
                ):
                    preprocessing, _ = self.cache.get_or_build(
                        entry.fingerprint,
                        entry.version,
                        "preprocessing",
                        solver_params,
                        lambda: None,  # never runs: the entry is present
                    )
                    if preprocessing.sparsifier_result is not None:
                        return preprocessing.sparsifier_result
            return api.spectral_sparsifier(
                graph,
                eps=eps,
                seed=self.solver_seed,
                t_override=self.t_override,
                bundle_scale=self.bundle_scale,
                backend=backend,
            )

        def build_report() -> CertificationReport:
            # no separate 'sparsifier' cache entry: the report below is
            # memoised, so the sparsifier is only ever needed right here,
            # and an extra cache reference would double-count its bytes
            sparsifier_result = build_sparsifier_result()
            lo, hi = spectral_approximation_factor(
                graph, sparsifier_result.sparsifier, backend=backend
            )
            slack = 1e-7
            return CertificationReport(
                ok=bool(lo >= 1.0 - eps - slack and hi <= 1.0 + eps + slack),
                lo=float(lo),
                hi=float(hi),
                eps=eps,
                sparsifier_edges=sparsifier_result.size,
                graph_edges=graph.m,
            )

        # the eigensolver certification is deterministic per (content
        # version, params): memoise the whole report, so a warm certify is
        # a cache lookup instead of a repeated eigsh run
        report, cache_hit = self._build(entry, "certification", params, build_report)
        # one certification answers every query in the batch
        return [report] * batch.size, cache_hit, False
