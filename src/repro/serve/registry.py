"""Graph registry: stable handles over content-fingerprinted graphs.

The serving layer amortises one expensive preprocessing artifact (a spectral
sparsifier and its factorisation) across many cheap queries, which only works
if the service can tell *which* graph a query refers to and whether that graph
still has the content the artifacts were built against.  The registry answers
both questions:

* **Identity** -- :func:`graph_fingerprint` hashes the canonical edge columns
  ``(n, u, v, w)``, so registering the same content twice deduplicates to one
  handle regardless of which ``WeightedGraph`` object carries it.
* **Staleness** -- every :class:`repro.graphs.graph.WeightedGraph` mutator
  bumps a monotonic ``_version`` counter; a :class:`RegisteredGraph` remembers
  the version it last saw, so ``entry.is_current()`` detects in O(1) that a
  registered graph was mutated and cached artifacts must not be served.
  What happens *next* is the planner's choice: the graph's mutation journal
  (:meth:`WeightedGraph.delta_since` against the remembered version) can
  describe the drift as a short list of edge mutations, in which case cached
  artifacts are repaired with low-rank updates and rekeyed to the new
  fingerprint instead of being rebuilt from scratch.

Fingerprints are sha256 over the exact float bytes: collisions are
cryptographically improbable, but the registry still *verifies* on every
fingerprint match that the stored graph compares equal, and raises
:class:`FingerprintCollisionError` otherwise -- a corrupted or deliberately
weakened fingerprint function (tests inject one) degrades to a loud error,
never to silently serving another graph's artifacts.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.graphs.graph import WeightedGraph


class UnknownGraphError(KeyError):
    """No graph is registered under the requested handle.

    A :class:`KeyError` subclass so historical ``except KeyError`` callers
    keep working, but typed so serving clients can tell "you never
    registered this" apart from every other lookup failure.
    """


def graph_fingerprint(graph) -> str:
    """Content fingerprint: sha256 over the canonical edge columns.

    Two graphs receive the same fingerprint iff they have the same vertex
    count and exactly the same edge data (up to float bit patterns),
    independent of insertion order -- ``edge_array`` already sorts
    canonically.  Works for any graph type exposing ``n`` and ``edge_array()``
    (``WeightedGraph`` returns ``(u, v, w)``,
    :class:`~repro.graphs.digraph.FlowNetwork` adds capacity/cost columns and
    source/sink terminals, which are hashed too).
    """
    digest = hashlib.sha256()
    digest.update(str(graph.n).encode("ascii"))
    for column in graph.edge_array():
        digest.update(column.tobytes())
    for terminal in ("source", "sink"):
        value = getattr(graph, terminal, None)
        if value is not None:
            digest.update(f"{terminal}={value}".encode("ascii"))
    return digest.hexdigest()


class FingerprintCollisionError(RuntimeError):
    """Two graphs with different content produced the same fingerprint."""


@dataclass
class RegisteredGraph:
    """One registry entry: a graph, its fingerprint, and the version seen."""

    key: str
    graph: WeightedGraph
    fingerprint: str
    version: int
    name: Optional[str] = None

    def is_current(self) -> bool:
        """Whether the graph object still has the content we registered."""
        return self.graph.version == self.version


class GraphRegistry:
    """Thread-safe registry of graphs keyed by content fingerprint.

    ``register`` returns a stable string handle (the content fingerprint at
    registration time, or a caller-chosen ``name``).  The handle survives
    mutations of the underlying graph: :meth:`revalidate` refreshes the
    entry's fingerprint/version in place, which is what the service calls
    before rebuilding artifacts for a drifted graph.
    """

    def __init__(self, fingerprint_fn: Callable[..., str] = graph_fingerprint):
        self._fingerprint = fingerprint_fn
        self._entries: Dict[str, RegisteredGraph] = {}
        self._by_fingerprint: Dict[str, str] = {}  # fingerprint -> handle
        self._lock = threading.RLock()

    def register(self, graph, name: Optional[str] = None) -> str:
        """Register ``graph``; return its handle.

        Registering content that is already present deduplicates: the
        existing handle is returned (after verifying actual equality, see
        :class:`FingerprintCollisionError`).  A ``name`` makes the handle
        human-readable; attaching a name to content that is already
        registered under a different handle is an error (the name would
        otherwise be silently unusable), as is re-using a name for
        different content.
        """
        fingerprint = self._fingerprint(graph)
        with self._lock:
            handle = self._by_fingerprint.get(fingerprint)
            if handle is not None and not self._entries[handle].is_current():
                # the index entry is stale (its graph was mutated since we
                # fingerprinted it); refresh it before treating a match as
                # either a duplicate or a collision
                self.revalidate(handle)
                handle = self._by_fingerprint.get(fingerprint)
            if handle is not None:
                entry = self._entries[handle]
                if entry.graph is not graph and entry.graph != graph:
                    raise FingerprintCollisionError(
                        f"fingerprint {fingerprint!r} is shared by two different "
                        f"graphs ({entry.graph!r} vs {graph!r}); refusing to alias"
                    )
                if name is not None and entry.name != name:
                    raise ValueError(
                        f"graph content is already registered under handle "
                        f"{entry.key!r}; cannot re-register as {name!r}"
                    )
                return handle
            if name is not None:
                handle = name
                if handle in self._entries:
                    raise ValueError(f"handle {handle!r} is already registered")
            else:
                # default handle: the fingerprint at registration time.  A
                # previously registered graph may have drifted away from this
                # very fingerprint while keeping it as its (stable) handle,
                # so disambiguate with a suffix instead of refusing.
                handle = fingerprint
                suffix = 1
                while handle in self._entries:
                    handle = f"{fingerprint}-{suffix}"
                    suffix += 1
            self._entries[handle] = RegisteredGraph(
                key=handle,
                graph=graph,
                fingerprint=fingerprint,
                version=graph.version,
                name=name,
            )
            self._by_fingerprint[fingerprint] = handle
            return handle

    def get(self, key: str) -> RegisteredGraph:
        """Entry for ``key`` (a handle returned by :meth:`register`)."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            raise UnknownGraphError(f"no graph registered under {key!r}")
        return entry

    def revalidate(self, key: str) -> bool:
        """Refresh fingerprint/version after a mutation; return drift status.

        Returns ``True`` when the graph had been mutated since the entry was
        last current (the caller must then repair or invalidate
        version-stale artifacts -- a caller that wants to *diff* the two
        states must read ``entry.graph.delta_since(entry.version)`` *before*
        calling this, because revalidation forgets the old version), and
        ``False`` when nothing changed.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                raise UnknownGraphError(f"no graph registered under {key!r}")
            if entry.is_current():
                return False
            new_fingerprint = self._fingerprint(entry.graph)
            other = self._by_fingerprint.get(new_fingerprint)
            if other is not None and other != key:
                colliding = self._entries[other]
                if colliding.graph is not entry.graph and colliding.graph != entry.graph:
                    raise FingerprintCollisionError(
                        f"fingerprint {new_fingerprint!r} is shared by two "
                        f"different graphs after mutation of {key!r}"
                    )
            # drop the old index mapping only if it still points at us: after
            # earlier drifts it may have been claimed by (or left with)
            # another entry whose mapping must survive
            if self._by_fingerprint.get(entry.fingerprint) == key:
                del self._by_fingerprint[entry.fingerprint]
            entry.fingerprint = new_fingerprint
            entry.version = entry.graph.version
            self._by_fingerprint.setdefault(new_fingerprint, key)
            return True

    def unregister(self, key: str) -> None:
        """Drop the entry for ``key`` (artifacts are the cache's concern)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                raise UnknownGraphError(f"no graph registered under {key!r}")
            if self._by_fingerprint.get(entry.fingerprint) == key:
                del self._by_fingerprint[entry.fingerprint]

    def keys(self) -> List[str]:
        """Snapshot of the registered handles."""
        with self._lock:
            return list(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
