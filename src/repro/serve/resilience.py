"""Failure containment for the serving tier: policy, breaker, retries, health.

The serving tier's failure semantics (see ``docs/resilience.md``) are built
from four small pieces that live here:

* :class:`ResiliencePolicy` -- the per-service knobs: an optional per-query
  deadline, bounded retries with exponential backoff + jitter for
  *transient* failures, and the circuit-breaker threshold/TTL.
* :class:`CircuitBreaker` -- a TTL'd negative cache over artifact builds,
  keyed by ``(fingerprint, kind, params)``: a build that failed
  ``threshold`` times short-circuits (:class:`ArtifactBreakerOpenError`)
  instead of burning another ``k`` blocked solves per query, until the TTL
  expires and a single half-open probe is allowed through.
* :func:`call_with_retries` -- the one retry loop both the planner (artifact
  builds) and the service (batch execution) use, so backoff behaviour can
  never fork between the two.
* :class:`HealthStats` -- thread-safe counters surfaced through
  ``metrics_snapshot`` (``retries_total``, ``breaker_open_total``,
  ``degraded_total``, ``deadline_misses``).
* :class:`DrainRateTracker` / :func:`estimate_retry_after` -- the shared
  backpressure-hint machinery: both front doors (the in-process service and
  the cluster) track how fast their queue actually drains and attach
  ``retry_after_seconds = depth / drain_rate`` to every
  :class:`~repro.serve.service.ServiceOverloadedError` they shed, so a
  well-behaved client backs off for exactly as long as the overload is
  expected to last instead of guessing.

The typed errors clients can observe are also defined (or re-exported)
here: :class:`DeadlineExceededError`, :class:`ArtifactBreakerOpenError`, and
:class:`NumericalHealthError` (defined in
:mod:`repro.linalg.sparse_backend`, at the bottom of the import graph, so
the linear-algebra kernels can raise it without importing the serve layer).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.linalg.sparse_backend import NumericalHealthError  # noqa: F401 -- re-export
from repro.serve.faults import TransientFaultError


class DeadlineExceededError(TimeoutError):
    """The query's per-service deadline expired before execution started.

    Raised onto the query's ticket by the flush loop when
    :attr:`ResiliencePolicy.deadline_seconds` is set and the query waited in
    the queue (or behind bisection/retries) longer than that; counted in
    ``deadline_misses``.  A query whose *result* arrives late is still
    resolved -- only the miss is counted -- because throwing away computed
    work helps nobody.
    """


class ArtifactBreakerOpenError(RuntimeError):
    """An artifact build was short-circuited by an open circuit breaker.

    The planner usually absorbs this into the degradation ladder (grounded
    fallback for resistance serving); it reaches clients only for artifacts
    that have no cheaper substitute (e.g. solver preprocessing).
    """


@dataclass(frozen=True)
class ResiliencePolicy:
    """Per-service failure-containment knobs (immutable, like FlushPolicy).

    ``deadline_seconds`` -- per-query deadline measured from submission;
    ``None`` (default) disables deadline enforcement.  ``max_retries`` --
    additional attempts for *transient* failures (types listed in
    ``transient_types``), with exponential backoff starting at
    ``backoff_base_seconds``, capped at ``backoff_max_seconds``, and
    multiplied by ``1 + U(0, backoff_jitter)`` so retry storms decorrelate.
    ``breaker_threshold`` consecutive build failures of one artifact open
    its breaker for ``breaker_ttl_seconds`` (see :class:`CircuitBreaker`).
    ``seed`` drives the jitter stream deterministically.
    """

    deadline_seconds: Optional[float] = None
    max_retries: int = 2
    backoff_base_seconds: float = 0.01
    backoff_max_seconds: float = 0.5
    backoff_jitter: float = 0.5
    transient_types: Tuple[type, ...] = (TransientFaultError,)
    breaker_threshold: int = 2
    breaker_ttl_seconds: float = 30.0
    seed: int = 0

    def __post_init__(self):
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0 or None, got {self.deadline_seconds}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_seconds < 0 or self.backoff_max_seconds < 0:
            raise ValueError("backoff seconds must be >= 0")
        if self.backoff_jitter < 0:
            raise ValueError(f"backoff_jitter must be >= 0, got {self.backoff_jitter}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_ttl_seconds < 0:
            raise ValueError(
                f"breaker_ttl_seconds must be >= 0, got {self.breaker_ttl_seconds}"
            )

    def backoff_seconds(self, attempt: int, rng: np.random.Generator) -> float:
        """Jittered exponential backoff before retry number ``attempt + 1``."""
        base = min(
            self.backoff_max_seconds, self.backoff_base_seconds * (2.0 ** attempt)
        )
        return base * (1.0 + self.backoff_jitter * float(rng.random()))


class HealthStats:
    """Thread-safe resilience counters surfaced by ``metrics_snapshot``.

    ``retries_total`` -- transient failures that were retried;
    ``breaker_open_total`` -- build attempts short-circuited by an open
    breaker; ``degraded_total`` -- queries answered through a fallback rung
    of the degradation ladder (grounded path instead of an oracle, rebuild
    instead of a failed repair); ``deadline_misses`` -- queries that missed
    the policy deadline (failed pre-execution, or resolved late).
    """

    FIELDS = ("retries_total", "breaker_open_total", "degraded_total", "deadline_misses")

    def __init__(self):
        self._lock = threading.Lock()
        self.retries_total = 0
        self.breaker_open_total = 0
        self.degraded_total = 0
        self.deadline_misses = 0

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (one of :attr:`FIELDS`)."""
        if name not in self.FIELDS:
            raise ValueError(f"unknown health counter {name!r}; use one of {self.FIELDS}")
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of every counter, keyed as in :attr:`FIELDS`."""
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}


class CircuitBreaker:
    """TTL'd negative cache over repeated failures, keyed arbitrarily.

    Classic three-state breaker per key: *closed* (all calls pass),
    *open* after ``threshold`` consecutive failures (calls refused until
    ``ttl_seconds`` elapse), then *half-open* (one probe passes; its failure
    re-opens immediately, its success closes).  The planner keys it by
    ``(fingerprint, kind, params)`` -- per artifact identity, so one graph's
    failing sketch build cannot trip another's, and ``eta`` is part of the
    key exactly as the cache key carries it.

    ``clock`` is injectable for TTL tests.  Bounded: at most ``MAX_KEYS``
    tracked keys; beyond that the oldest tracked key is evicted (losing a
    failure count only delays one breaker from opening).
    """

    #: bound on tracked keys (failure counts + open timestamps)
    MAX_KEYS = 4096

    def __init__(
        self,
        threshold: int = 2,
        ttl_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        self.ttl_seconds = float(ttl_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures: Dict[Hashable, int] = {}
        self._opened_at: Dict[Hashable, float] = {}

    def allow(self, key: Hashable) -> bool:
        """Whether a call for ``key`` may proceed (handles half-open probes).

        An expired open entry transitions to half-open as a side effect: the
        caller gets ``True`` once, with the failure count re-armed at
        ``threshold - 1`` so a failing probe re-opens immediately.
        """
        with self._lock:
            opened = self._opened_at.get(key)
            if opened is None:
                return True
            if self._clock() - opened >= self.ttl_seconds:
                del self._opened_at[key]
                self._failures[key] = self.threshold - 1
                return True
            return False

    def record_failure(self, key: Hashable) -> bool:
        """Count one failure; returns whether the breaker is now open."""
        with self._lock:
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
            if count >= self.threshold:
                self._opened_at[key] = self._clock()
            self._prune_locked()
            return count >= self.threshold

    def record_success(self, key: Hashable) -> None:
        """Reset ``key`` to closed (clears failures and any open state)."""
        with self._lock:
            self._failures.pop(key, None)
            self._opened_at.pop(key, None)

    def is_open(self, key: Hashable) -> bool:
        """Read-only open check (no half-open transition side effect)."""
        with self._lock:
            opened = self._opened_at.get(key)
            return opened is not None and self._clock() - opened < self.ttl_seconds

    @property
    def open_count(self) -> int:
        """Number of keys currently holding an open timestamp."""
        with self._lock:
            return len(self._opened_at)

    def _prune_locked(self) -> None:
        while len(self._failures) > self.MAX_KEYS:
            victim = next(iter(self._failures))
            self._failures.pop(victim)
            self._opened_at.pop(victim, None)


class DrainRateTracker:
    """Observed completion rate of a queue, over a sliding event window.

    Both front doors record ``observe(count)`` whenever completions land
    (a flush in-process, a query reply in the cluster) and read ``rate()``
    when they must shed: the current queue depth divided by this rate is
    how long an honest *retry-after* hint says the backlog will take to
    drain.  Thread-safe; ``rate()`` returns ``None`` until the window holds
    observations spanning a positive time interval (a cold or idle queue
    has no defensible estimate -- callers fall back to a default hint).
    """

    def __init__(self, window: int = 128):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self._lock = threading.Lock()
        self._events: "deque[Tuple[float, int]]" = deque(maxlen=window)

    def observe(self, count: int = 1, now: Optional[float] = None) -> None:
        """Record ``count`` completions at time ``now`` (monotonic seconds)."""
        if count <= 0:
            return
        stamp = time.monotonic() if now is None else now
        with self._lock:
            self._events.append((stamp, int(count)))

    def rate(self, now: Optional[float] = None) -> Optional[float]:
        """Completions per second over the window, or ``None`` if unknown.

        Measured from the oldest retained observation to ``now`` (so a
        queue that *stopped* draining reports a decaying rate rather than
        its last burst's instantaneous one).
        """
        stamp = time.monotonic() if now is None else now
        with self._lock:
            if len(self._events) < 2:
                return None
            oldest, first_count = self._events[0]
            total = sum(count for _, count in self._events) - first_count
            span = stamp - oldest
        if span <= 0 or total <= 0:
            return None
        return total / span


def estimate_retry_after(
    depth: int,
    drain_rate: Optional[float],
    default_seconds: float = 0.05,
    min_seconds: float = 0.001,
    max_seconds: float = 5.0,
) -> float:
    """The retry-after hint for a shed request: time to drain ``depth``.

    ``depth / drain_rate``, clamped to ``[min_seconds, max_seconds]`` so a
    momentary rate glitch cannot tell clients to wait an hour; with no
    usable rate (``None`` or non-positive) the conservative
    ``default_seconds`` is returned.  This is the one formula both the
    in-process and the cluster front door use, so the contract documented
    in ``docs/resilience.md`` cannot fork between them.
    """
    if drain_rate is None or drain_rate <= 0:
        return default_seconds
    return float(min(max_seconds, max(min_seconds, depth / drain_rate)))


def call_with_retries(
    fn: Callable[[], Any],
    policy: ResiliencePolicy,
    rng: np.random.Generator,
    health: Optional[HealthStats] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Run ``fn``, retrying transient failures per ``policy``.

    Only exception types in ``policy.transient_types`` are retried (at most
    ``policy.max_retries`` extra attempts, with jittered exponential
    backoff drawn from ``rng``); everything else -- including
    :class:`NumericalHealthError` and persistent injected faults --
    propagates immediately so containment stays loud.  Each retry counts in
    ``health.retries_total``.  ``sleep`` is injectable for tests.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except policy.transient_types:
            if attempt >= policy.max_retries:
                raise
            if health is not None:
                health.increment("retries_total")
            delay = policy.backoff_seconds(attempt, rng)
            if delay > 0:
                sleep(delay)
            attempt += 1
