"""Deterministic, seedable fault injection for the serving tier.

Resilience claims that are not continuously exercised rot: the only way to
*know* that a failed sketch build degrades to the grounded path, or that a
poisoned query cannot take its batch neighbours down, is to make those
failures happen on demand.  This module is the harness: a declarative
:class:`FaultPlan` of :class:`FaultRule` entries is armed on a service
(:meth:`~repro.serve.service.LaplacianService.arm_faults`), and the planner
calls the resulting :class:`FaultInjector`'s seams at the few places real
failures originate:

``build``
    an artifact build of a given ``kind`` (``"preprocessing"``,
    ``"grounded"``, ``"resistance_oracle"``, ``"sketched_resistance"``,
    ``"gram_structure"``, ``"maxflow"``, ``"certification"``) raises before
    the builder runs -- the deterministic stand-in for singular ``splu``,
    ``MemoryError`` on a ``k``-column sketch, ARPACK non-convergence.
``execute``
    batch execution raises when the batch contains a matching query
    (by ``query_id`` and/or query ``kind``) -- the stand-in for a kernel
    blowing up mid-batch, which is what batch bisection contains.
``repair``
    a repair walk raises at a chosen ``step`` of the mutation delta -- the
    stand-in for a mid-walk crash, which must fall back to rebuild.
``nan``
    a matching query's *output* is silently overwritten with NaN before the
    planner's numerical-health guard sees it -- proving the guard refuses
    (``NumericalHealthError``) instead of returning garbage.
``worker_kill`` / ``worker_wedge`` / ``worker_drop_ping``
    *process-tier* faults, driven from the cluster parent's health-monitor
    tick rather than the planner: hard-kill a worker process, inject a
    blocking delay into a worker's message loop (a hang without a crash),
    or discard a worker's heartbeat reply.  These seams never raise -- they
    return the seeded decision and the monitor performs the action (see
    ``ClusterService`` and ``FaultPlan.cluster_chaos``).

Latency is injected through ``delay_seconds`` on any rule (with
``fail=False`` for a pure slowdown), which is how deadline enforcement is
tested without real slow hardware.

Determinism: given the same :class:`FaultPlan` (rules + seed) and the same
query stream, the injector makes identical decisions -- probabilistic rules
draw from one seeded generator in stream order.  Unarmed services pay one
dictionary lookup per seam (the default injector holds an empty plan).

Faults raise :class:`FaultInjectionError`, or :class:`TransientFaultError`
when the rule is marked ``transient=True`` -- the latter is what
:class:`~repro.serve.resilience.ResiliencePolicy` retries with backoff.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Operations a :class:`FaultRule` can target (see the module docstring).
FAULT_OPS = (
    "build",
    "execute",
    "repair",
    "nan",
    "worker_kill",
    "worker_wedge",
    "worker_drop_ping",
)

#: Worker-scoped ops: driven from the cluster parent's health-monitor tick,
#: never from the planner's seams.  These never raise -- the monitor reads
#: the decision and performs the action (kill the process, send a wedge
#: message, discard a heartbeat) itself.
WORKER_FAULT_OPS = ("worker_kill", "worker_wedge", "worker_drop_ping")


class FaultInjectionError(RuntimeError):
    """A deliberate failure raised by an armed :class:`FaultInjector` rule."""


class TransientFaultError(FaultInjectionError):
    """An injected failure that models a *transient* fault.

    :class:`~repro.serve.resilience.ResiliencePolicy` retries these with
    exponential backoff (``max_retries`` attempts); everything else fails
    fast.  Probabilistic transient rules therefore model flaky
    infrastructure: a retry re-draws the coin and usually succeeds.
    """


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault: where it fires, how often, and what it does.

    ``op`` selects the seam (one of :data:`FAULT_OPS`); the optional
    selectors narrow it -- ``kind`` matches the artifact kind for ``build``
    seams and the query kind elsewhere, ``query_id`` pins a specific query
    (``execute``/``nan``), ``step`` pins a repair-walk record index, and
    ``worker`` pins a cluster worker name for the worker-scoped ops
    (:data:`WORKER_FAULT_OPS`).  A selector left ``None`` matches everything
    at that seam.

    For ``worker_wedge`` rules, ``delay_seconds`` is the injected blocking
    delay the wedged worker sleeps for (its message loop stalls that long
    without crashing); worker rules never raise, so ``fail``/``transient``
    are ignored on them.

    Behaviour knobs: ``probability`` gates each firing on a seeded coin,
    ``times`` caps total firings (``None`` = unlimited), ``delay_seconds``
    sleeps before acting (latency injection), ``fail=False`` makes the rule
    delay-only, ``transient`` picks :class:`TransientFaultError` over
    :class:`FaultInjectionError`, and ``message`` overrides the error text.
    """

    op: str
    kind: Optional[str] = None
    query_id: Optional[int] = None
    step: Optional[int] = None
    worker: Optional[str] = None
    probability: float = 1.0
    times: Optional[int] = None
    delay_seconds: float = 0.0
    fail: bool = True
    transient: bool = False
    message: Optional[str] = None

    def __post_init__(self):
        if self.op not in FAULT_OPS:
            raise ValueError(f"unknown fault op {self.op!r}; use one of {FAULT_OPS}")
        if self.worker is not None and self.op not in WORKER_FAULT_OPS:
            raise ValueError(
                f"the worker selector only applies to worker ops "
                f"{WORKER_FAULT_OPS}, not {self.op!r}"
            )
        if self.op == "worker_wedge" and self.delay_seconds <= 0:
            raise ValueError("worker_wedge rules need delay_seconds > 0")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"probability must lie in [0, 1], got {self.probability}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 (or None), got {self.times}")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of :class:`FaultRule` entries plus the firing seed.

    The plan is pure data -- arm it on a service via
    :meth:`~repro.serve.service.LaplacianService.arm_faults`, which wraps it
    in a :class:`FaultInjector` (the stateful part: seeded coin flips and
    per-rule fire counters live there, so one plan can be re-armed for an
    identical replay).
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def chaos(
        cls,
        seed: int,
        build_rate: float = 0.05,
        execute_rate: float = 0.02,
        repair_rate: float = 0.25,
        nan_rate: float = 0.02,
        transient_rate: float = 0.05,
        delay_seconds: float = 0.0,
    ) -> "FaultPlan":
        """A randomized-but-seeded plan exercising every seam at once.

        The chaos test suite's workhorse: unselective probabilistic rules for
        every op (persistent build/execute failures, a transient build flake,
        repair-walk crashes, NaN output poisoning, optional uniform latency),
        all driven by one seed so a failing run replays exactly.
        """
        rules = [
            FaultRule(op="build", probability=build_rate),
            FaultRule(op="build", probability=transient_rate, transient=True),
            FaultRule(op="execute", probability=execute_rate),
            FaultRule(op="repair", probability=repair_rate),
            FaultRule(op="nan", probability=nan_rate),
        ]
        if delay_seconds > 0:
            rules.append(
                FaultRule(op="execute", probability=1.0, fail=False, delay_seconds=delay_seconds)
            )
        return cls(rules=tuple(rules), seed=seed)

    @classmethod
    def cluster_chaos(
        cls,
        seed: int,
        kill_rate: float = 0.05,
        wedge_rate: float = 0.0,
        drop_ping_rate: float = 0.0,
        wedge_seconds: float = 1.0,
        max_kills: Optional[int] = None,
        max_wedges: Optional[int] = None,
        worker: Optional[str] = None,
    ) -> "FaultPlan":
        """A seeded plan for the *process-tier* seams the cluster parent drives.

        Each health-monitor tick evaluates these rules once per worker (in
        sorted worker order, so the seeded stream is deterministic):
        ``kill_rate`` hard-kills the probed worker, ``wedge_rate`` injects a
        ``wedge_seconds`` blocking delay into its message loop (a hang, not
        a crash -- what the suspect ladder must catch), and
        ``drop_ping_rate`` discards its heartbeat reply (a flaky link).
        ``max_kills`` / ``max_wedges`` cap total firings so a chaos trace
        cannot depopulate (or permanently stall) the cluster; ``worker``
        pins every rule to one shard.
        """
        rules = []
        if kill_rate > 0:
            rules.append(
                FaultRule(
                    op="worker_kill", probability=kill_rate, times=max_kills, worker=worker
                )
            )
        if wedge_rate > 0:
            rules.append(
                FaultRule(
                    op="worker_wedge",
                    probability=wedge_rate,
                    times=max_wedges,
                    delay_seconds=wedge_seconds,
                    worker=worker,
                )
            )
        if drop_ping_rate > 0:
            rules.append(
                FaultRule(op="worker_drop_ping", probability=drop_ping_rate, worker=worker)
            )
        return cls(rules=tuple(rules), seed=seed)


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan` (thread-safe).

    The planner holds exactly one (an empty-plan injector when disarmed) and
    calls the ``on_*`` seams; rules match as documented on
    :class:`FaultRule`.  Fire counts are observable -- ``fired_total`` and
    :meth:`fire_counts` -- which is how tests assert *negative* facts like
    "no sketch build was attempted while the breaker was open".
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._lock = threading.Lock()
        self._fired: List[int] = [0] * len(plan.rules)
        self.fired_total = 0
        self._by_op: Dict[str, List[Tuple[int, FaultRule]]] = {}
        for index, rule in enumerate(plan.rules):
            self._by_op.setdefault(rule.op, []).append((index, rule))

    @property
    def armed(self) -> bool:
        """Whether the plan holds any rules at all."""
        return bool(self.plan.rules)

    def fire_counts(self) -> Tuple[int, ...]:
        """Per-rule fire counts, aligned with ``plan.rules``."""
        with self._lock:
            return tuple(self._fired)

    # -- seams (called by the planner) -----------------------------------------

    def on_build(self, kind: str) -> None:
        """Fire matching ``build`` rules for an artifact build of ``kind``."""
        self._fire("build", kind=kind)

    def on_execute(self, batch) -> None:
        """Fire matching ``execute`` rules for a :class:`QueryBatch`.

        Rules are matched per query, so a rule pinned to one ``query_id``
        raises whenever -- and only when -- the batch contains that query:
        after bisection splits the batch, the half without the poisoned
        query executes clean.
        """
        if "execute" not in self._by_op:
            return
        for query in batch.queries:
            self._fire("execute", kind=query.kind, query_id=query.query_id)

    def on_repair(self, step: int) -> None:
        """Fire matching ``repair`` rules at record index ``step`` of a walk."""
        self._fire("repair", step=step)

    def nan_output(self, query) -> bool:
        """Whether a matching ``nan`` rule poisons this query's output.

        Unlike the raising seams this returns a flag: the *planner*
        overwrites the already-computed value with NaN, so the poison takes
        the exact path a sick kernel output would take into the
        numerical-health guard.
        """
        return self._fire("nan", kind=query.kind, query_id=query.query_id)

    # -- worker-scoped seams (called by the cluster's health monitor) ----------

    def worker_kill(self, worker: str) -> bool:
        """Whether a ``worker_kill`` rule fires for this worker's probe tick."""
        return self._fire_worker("worker_kill", worker) is not None

    def worker_wedge(self, worker: str) -> Optional[float]:
        """Seconds of injected blocking delay for this worker, or ``None``.

        The parent sends the wedged worker a ``wedge`` message; the worker
        sleeps inside its message loop for that long, exactly like a hung
        kernel call would stall it, so the health monitor's suspect -> dead
        ladder is exercised without a crash.
        """
        rule = self._fire_worker("worker_wedge", worker)
        return rule.delay_seconds if rule is not None else None

    def drop_ping(self, worker: str) -> bool:
        """Whether this worker's answered heartbeat should be discarded."""
        return self._fire_worker("worker_drop_ping", worker) is not None

    def _fire_worker(self, op: str, worker: str) -> Optional[FaultRule]:
        """Non-raising rule match for the worker seams; returns the fired rule.

        Unlike :meth:`_fire` this never sleeps and never raises -- the
        health monitor owns the action (the injector only makes the seeded
        decision), so a wedge delay must not block the parent's monitor
        thread.  The first matching rule wins.
        """
        for index, rule in self._by_op.get(op, ()):
            if rule.worker is not None and rule.worker != worker:
                continue
            with self._lock:
                if rule.times is not None and self._fired[index] >= rule.times:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                self._fired[index] += 1
                self.fired_total += 1
            return rule
        return None

    # -- internals -------------------------------------------------------------

    def _fire(
        self,
        op: str,
        kind: Optional[str] = None,
        query_id: Optional[int] = None,
        step: Optional[int] = None,
    ) -> bool:
        matched = False
        for index, rule in self._by_op.get(op, ()):
            if rule.kind is not None and rule.kind != kind:
                continue
            if rule.query_id is not None and rule.query_id != query_id:
                continue
            if rule.step is not None and rule.step != step:
                continue
            with self._lock:
                if rule.times is not None and self._fired[index] >= rule.times:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                self._fired[index] += 1
                self.fired_total += 1
            if rule.delay_seconds > 0:
                time.sleep(rule.delay_seconds)
            if not rule.fail:
                continue
            if op == "nan":
                matched = True
                continue
            message = rule.message or self._describe(op, kind, query_id, step)
            raise (TransientFaultError if rule.transient else FaultInjectionError)(message)
        return matched

    @staticmethod
    def _describe(op, kind, query_id, step) -> str:
        parts = [f"injected {op} fault"]
        if kind is not None:
            parts.append(f"kind={kind}")
        if query_id is not None:
            parts.append(f"query={query_id}")
        if step is not None:
            parts.append(f"step={step}")
        return " ".join(parts)


def disarmed_injector() -> FaultInjector:
    """The no-op injector an unarmed planner holds (empty plan, never fires)."""
    return FaultInjector(FaultPlan())
