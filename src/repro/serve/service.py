"""`LaplacianService`: the synchronous front door of the serving layer.

Register a graph once, then query it many times -- the service holds the
:class:`~repro.serve.registry.GraphRegistry`, the
:class:`~repro.serve.artifacts.ArtifactCache` and the
:class:`~repro.serve.planner.QueryPlanner` together behind a thread-safe
submission queue:

* ``submit(query)`` enqueues and returns a :class:`QueryTicket` immediately;
  the queue flushes when ``FlushPolicy.max_batch`` queries are pending or
  ``FlushPolicy.max_wait_seconds`` after the oldest pending arrival (a
  background flusher thread enforces the deadline), coalescing whatever is
  pending into blocked kernel calls.
* the synchronous conveniences (``solve``, ``solve_many``,
  ``effective_resistance``, ``effective_resistances``, ``certify``) submit and
  flush in one call -- single-client code pays no latency for the queue while
  still sharing artifacts (and batches, when several threads are in flight)
  with everyone else.

Metrics: :meth:`LaplacianService.metrics` reports cache hit rate, batch
occupancy (mean coalesced batch size), per-query latency percentiles, and the
raw cache counters -- the numbers a capacity dashboard would scrape.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.digraph import FlowNetwork
from repro.graphs.graph import WeightedGraph
from repro.serve.artifacts import ArtifactCache
from repro.serve.faults import FaultInjector
from repro.serve.planner import (
    CertificationReport,
    Query,
    QueryBatch,
    QueryPlanner,
    QueryResult,
    certify_query,
    flow_query,
    gram_query,
    resistance_batch_query,
    resistance_query,
    solve_query,
)
from repro.serve.registry import GraphRegistry
from repro.serve.resilience import (
    DeadlineExceededError,
    DrainRateTracker,
    HealthStats,
    ResiliencePolicy,
    call_with_retries,
    estimate_retry_after,
)
from repro.solvers.laplacian import LaplacianSolveReport


class ServiceOverloadedError(RuntimeError):
    """The submission queue is at ``FlushPolicy.max_pending``; shed load.

    Raised by :meth:`LaplacianService.submit` *before* the query is enqueued:
    the caller's work is rejected intact (no half-registered ticket), and a
    well-behaved client backs off and retries.  Rejections are counted in
    ``metrics_snapshot()["rejected_total"]``.

    ``retry_after_seconds`` is the server's backpressure hint: the current
    queue depth divided by the observed drain rate (see
    :func:`~repro.serve.resilience.estimate_retry_after`), i.e. how long the
    backlog is expected to take to clear.  Both the in-process service and
    the cluster front door attach it; ``None`` means the shedding side had
    no estimate (clients fall back to their own backoff, as the traffic
    harness's :class:`~repro.serve.traffic.ClientRetryPolicy` does).
    """

    def __init__(self, message: str, retry_after_seconds: Optional[float] = None):
        super().__init__(message)
        #: server-computed backoff hint in seconds, or ``None`` if unknown
        self.retry_after_seconds = retry_after_seconds


@dataclass(frozen=True)
class FlushPolicy:
    """When the submission queue drains into the planner.

    ``max_batch`` bounds occupancy (a flush fires as soon as that many
    queries are pending); ``max_wait_seconds`` bounds latency (the background
    flusher drains the queue that long after the oldest pending arrival, even
    if the batch is not full); ``max_pending`` bounds the queue itself --
    admission control: once that many queries are pending (e.g. because
    producers outrun the planner), further submissions raise
    :class:`ServiceOverloadedError` instead of growing the queue without
    bound.  ``None`` keeps the historical unbounded behaviour.
    """

    max_batch: int = 64
    max_wait_seconds: float = 0.01
    max_pending: Optional[int] = None

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_seconds < 0:
            raise ValueError(
                f"max_wait_seconds must be >= 0, got {self.max_wait_seconds}"
            )
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")


class QueryTicket:
    """Handle for one submitted query; blocks on :meth:`result`."""

    def __init__(self, query: Query):
        self.query = query
        #: monotonic submission timestamp; deadlines are measured from here
        self.submitted_at = time.monotonic()
        self._event = threading.Event()
        self._result: Optional[QueryResult] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        """Whether the query has finished (successfully or with an error)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """The :class:`QueryResult`, waiting for the flush if necessary."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query {self.query.query_id} not finished within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _resolve(self, result: QueryResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class ServiceMetrics:
    """Aggregated serving metrics (thread-safe)."""

    #: retain at most this many recent latency samples for the percentiles
    LATENCY_WINDOW = 8192

    def __init__(self):
        self._lock = threading.Lock()
        self.queries_total = 0
        self.batches_total = 0
        self.coalesced_queries = 0
        self.rejected_total = 0
        self.failures_total = 0
        self.queries_by_kind: Dict[str, int] = {}
        self.failures_by_kind: Dict[str, int] = {}
        self._latencies: List[float] = []

    def observe_rejection(self) -> None:
        """Count one submission shed by admission control."""
        with self._lock:
            self.rejected_total += 1

    def observe(self, results: Sequence[QueryResult], batches: int) -> None:
        """Fold one flush's results into the counters and latency window."""
        with self._lock:
            self.queries_total += len(results)
            self.batches_total += batches
            self.coalesced_queries += sum(1 for r in results if r.batch_size > 1)
            for result in results:
                kind = result.query.kind
                self.queries_by_kind[kind] = self.queries_by_kind.get(kind, 0) + 1
                self._latencies.append(result.seconds)
            if len(self._latencies) > self.LATENCY_WINDOW:
                del self._latencies[: len(self._latencies) - self.LATENCY_WINDOW]

    def observe_failures(self, failed: Sequence[Tuple[Query, float]]) -> None:
        """Fold one flush's *failed* queries into the metrics.

        Failed queries used to be invisible here, which made the latency
        percentiles lie under fault load (the slowest queries -- the failing
        ones -- were exactly the ones dropped from the window).  Each entry
        is ``(query, seconds)`` with the per-query share of the wall-clock
        spent before the failure surfaced; the latency lands in the same
        window the percentiles read.  ``queries_total`` still counts only
        successful queries -- ``failures_total`` is the separate ledger.
        """
        with self._lock:
            self.failures_total += len(failed)
            for query, seconds in failed:
                kind = query.kind
                self.failures_by_kind[kind] = self.failures_by_kind.get(kind, 0) + 1
                self._latencies.append(seconds)
            if len(self._latencies) > self.LATENCY_WINDOW:
                del self._latencies[: len(self._latencies) - self.LATENCY_WINDOW]

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p90/p99 over the retained window of per-query latencies."""
        with self._lock:
            samples = list(self._latencies)
        if not samples:
            return {"p50": 0.0, "p90": 0.0, "p99": 0.0}
        p50, p90, p99 = np.percentile(samples, [50, 90, 99])
        return {"p50": float(p50), "p90": float(p90), "p99": float(p99)}

    @property
    def batch_occupancy(self) -> float:
        """Mean queries per executed flush batch (1.0 = no coalescing)."""
        with self._lock:
            if self.batches_total == 0:
                return 0.0
            return self.queries_total / self.batches_total


class LaplacianService:
    """Batched Laplacian query service over registered graphs.

    Parameters mirror :class:`BCCLaplacianSolver` preprocessing knobs
    (``solver_seed``, ``t_override``, ``bundle_scale``, ``backend``); they are
    part of every artifact's cache identity, so two services sharing one
    cache but configured differently never alias artifacts.

    ``auto_flush=False`` disables the background deadline flusher (useful in
    tests and single-threaded scripts where every public method flushes
    synchronously anyway).

    ``resilience=`` takes a :class:`~repro.serve.resilience.ResiliencePolicy`
    (per-query deadline, transient-failure retries, circuit-breaker
    threshold/TTL); ``faults=`` pre-arms a
    :class:`~repro.serve.faults.FaultPlan` for deterministic failure drills
    (see :meth:`arm_faults`).  Failure semantics -- batch bisection, the
    degradation ladder, numerical-health refusal -- are documented in
    ``docs/resilience.md``.

    ``repair=True`` (the default) lets the planner absorb short mutation
    deltas of a registered graph -- read from the graph's journal via
    :meth:`~repro.graphs.graph.WeightedGraph.delta_since` -- into the cached
    artifact stack with low-rank updates instead of rebuilding it from
    scratch.  Repair is *lazy*: detecting a mutation only stashes the delta
    in the cache's pending ledger (``metrics_snapshot()`` reports the ledger
    depth as ``pending_repairs``); each stale artifact pays its own repair on
    its first post-mutation lookup, and an artifact never looked up again
    never pays at all.  ``repair=False`` restores unconditional
    invalidate-and-rebuild.  Either way the staleness contract is identical:
    a query observing a mutated graph is always answered against the
    *current* content.

    Thread-safety: ``submit``/``flush`` and every synchronous front door may
    be called from any number of threads; queries are validated at submit
    time, execution (including artifact repair) is serialised behind one
    execute lock, and results travel on per-query tickets.  Mutating a
    registered ``WeightedGraph`` itself is *not* thread-safe against
    concurrent queries of that graph -- mutate from one thread, or fence
    mutations with your own lock; the service then detects the version bump
    on the next flush.
    """

    def __init__(
        self,
        registry: Optional[GraphRegistry] = None,
        cache: Optional[ArtifactCache] = None,
        flush_policy: Optional[FlushPolicy] = None,
        solver_seed: Optional[int] = 0,
        t_override: Optional[int] = None,
        bundle_scale: float = 1.0,
        backend: str = "auto",
        auto_flush: bool = True,
        repair: bool = True,
        resilience: Optional[ResiliencePolicy] = None,
        faults=None,
    ):
        self.registry = registry if registry is not None else GraphRegistry()
        self.cache = cache if cache is not None else ArtifactCache()
        self.flush_policy = flush_policy if flush_policy is not None else FlushPolicy()
        #: failure-containment knobs (deadline, retries, breaker); shared
        #: with the planner so service and planner can never disagree
        self.resilience = resilience if resilience is not None else ResiliencePolicy()
        #: resilience counters (retries/breaker/degradations/deadline misses)
        self.health = HealthStats()
        self.planner = QueryPlanner(
            self.registry,
            self.cache,
            solver_seed=solver_seed,
            t_override=t_override,
            bundle_scale=bundle_scale,
            backend=backend,
            repair_enabled=repair,
            resilience=self.resilience,
            health=self.health,
        )
        if faults is not None:
            self.planner.arm_faults(faults)
        self.metrics = ServiceMetrics()
        # retry jitter for batch execution; offset from the planner's stream
        # so build retries and batch retries draw independent sequences
        self._retry_rng = np.random.default_rng(self.resilience.seed + 1)
        self._pending: List[Tuple[Query, QueryTicket]] = []
        #: observed flush throughput, for the retry-after hint on shed
        self._drain = DrainRateTracker()
        self._oldest_pending: Optional[float] = None
        self._lock = threading.RLock()
        self._execute_lock = threading.Lock()
        self._auto_flush = auto_flush
        self._flusher: Optional[threading.Thread] = None
        self._wakeup = threading.Event()
        self._closed = False

    # -- registration ----------------------------------------------------------

    def register(self, graph, name: Optional[str] = None) -> str:
        """Register a graph and return its stable query handle.

        Accepts the undirected :class:`~repro.graphs.graph.WeightedGraph`
        (solve/resistance/certify workloads) and the directed
        :class:`~repro.graphs.digraph.FlowNetwork` (flow/gram workloads);
        both are content-fingerprinted the same way.
        """
        return self.registry.register(graph, name=name)

    # -- asynchronous submission -----------------------------------------------

    def submit(self, query: Query) -> QueryTicket:
        """Enqueue ``query``; returns immediately with a ticket.

        Malformed queries (unknown graph, wrong right-hand-side shape,
        out-of-range vertices) are rejected here, before they can coalesce
        with -- and fail -- other clients' queries in a shared batch.  When
        ``flush_policy.max_pending`` is set and the queue is full, the
        submission is shed with :class:`ServiceOverloadedError` (counted in
        the metrics) instead of growing the queue without bound.

        Triggers an inline flush when the pending count reaches
        ``flush_policy.max_batch``; otherwise the background flusher (or the
        next synchronous call) picks the query up within
        ``flush_policy.max_wait_seconds``.
        """
        self._validate(query)
        ticket = QueryTicket(query)
        max_pending = self.flush_policy.max_pending
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if max_pending is not None and len(self._pending) >= max_pending:
                self.metrics.observe_rejection()
                retry_after = estimate_retry_after(
                    len(self._pending), self._drain.rate()
                )
                raise ServiceOverloadedError(
                    f"submission queue is full ({len(self._pending)} pending >= "
                    f"max_pending={max_pending}); retry in ~{retry_after:.3f}s",
                    retry_after_seconds=retry_after,
                )
            self._pending.append((query, ticket))
            if self._oldest_pending is None:
                self._oldest_pending = time.monotonic()
            pending = len(self._pending)
            if self._auto_flush and self._flusher is None:
                self._start_flusher_locked()
        if pending >= self.flush_policy.max_batch:
            self.flush()
        elif self._auto_flush:
            self._wakeup.set()
        return ticket

    def flush(self) -> int:
        """Drain the queue through the planner; return #queries flushed.

        Failure containment: a batch that raises is *bisected* -- split in
        half and re-executed -- so exactly the poisoned queries fail with
        the error that named them and every innocent neighbour still
        resolves (see :meth:`_run_batch`).  With a deadline configured,
        queries that expired while queued fail fast with
        :class:`DeadlineExceededError`; queries whose results arrive late
        still resolve (the miss is counted in ``deadline_misses``).
        """
        with self._lock:
            drained = self._pending
            self._pending = []
            self._oldest_pending = None
        if not drained:
            return 0
        tickets = {query.query_id: ticket for query, ticket in drained}
        queries = [query for query, _ in drained]
        failed: List[Tuple[Query, float]] = []
        try:
            with self._execute_lock:
                batches = self.planner.plan(queries)
                results: List[QueryResult] = []
                for batch in batches:
                    self._run_batch(batch, tickets, results, failed)
        except BaseException as error:
            # KeyboardInterrupt/SystemExit: unblock every waiter, then let
            # the interrupt propagate instead of executing remaining batches
            for _, ticket in drained:
                if not ticket.done():
                    ticket._fail(error)
            raise
        deadline = self.resilience.deadline_seconds
        now = time.monotonic()
        for result in results:
            ticket = tickets[result.query.query_id]
            if deadline is not None and now - ticket.submitted_at > deadline:
                # late but computed: resolve anyway, count the miss
                self.health.increment("deadline_misses")
            ticket._resolve(result)
        self.metrics.observe(results, batches=len(batches))
        if failed:
            self.metrics.observe_failures(failed)
        self._drain.observe(len(queries))
        return len(queries)

    def _run_batch(
        self,
        batch: QueryBatch,
        tickets: Dict[int, QueryTicket],
        results: List[QueryResult],
        failed: List[Tuple[Query, float]],
    ) -> None:
        """Execute one batch with deadline, retry, and bisection containment.

        Queries already past the deadline fail *before* execution (no work
        wasted on an answer nobody is waiting for).  The batch then executes
        with the policy's transient-failure retries; if it still raises and
        holds more than one query, it splits in half and both halves
        re-execute recursively -- artifact builds are cached/warm by then, so
        re-execution costs kernel time only, and after ``O(log size)`` rounds
        exactly the poisoned queries have failed with the error that named
        them.  A single-query batch fails normally: its ticket gets the
        original error and there is no further recursion.
        """
        deadline = self.resilience.deadline_seconds
        if deadline is not None:
            now = time.monotonic()
            live = []
            for query in batch.queries:
                if now - tickets[query.query_id].submitted_at > deadline:
                    self.health.increment("deadline_misses")
                    tickets[query.query_id]._fail(
                        DeadlineExceededError(
                            f"query {query.query_id} exceeded its "
                            f"{deadline}s deadline before execution"
                        )
                    )
                    failed.append((query, 0.0))
                else:
                    live.append(query)
            if not live:
                return
            if len(live) < len(batch.queries):
                batch = QueryBatch(
                    batch.graph_key, batch.kind, batch.coalesce_params, live
                )
        start = time.perf_counter()
        try:
            batch_results = call_with_retries(
                lambda: self.planner.execute_batch(batch),
                self.resilience,
                self._retry_rng,
                health=self.health,
            )
        except Exception as error:
            elapsed = time.perf_counter() - start
            if batch.size == 1:
                query = batch.queries[0]
                tickets[query.query_id]._fail(error)
                failed.append((query, elapsed))
                return
            mid = batch.size // 2
            for half in (batch.queries[:mid], batch.queries[mid:]):
                self._run_batch(
                    QueryBatch(batch.graph_key, batch.kind, batch.coalesce_params, half),
                    tickets,
                    results,
                    failed,
                )
            return
        results.extend(batch_results)

    # -- synchronous front door ------------------------------------------------

    def solve(self, graph_key: str, b: np.ndarray, eps: float = 1e-6) -> LaplacianSolveReport:
        """Solve ``L_G x = b`` on the registered graph (coalesced if possible)."""
        return self._submit_and_wait(solve_query(graph_key, b, eps=eps)).value

    def solve_many(
        self, graph_key: str, rhs: Sequence[np.ndarray], eps: float = 1e-6
    ) -> List[LaplacianSolveReport]:
        """Solve many right-hand sides as one blocked batch.

        A bulk call larger than ``flush_policy.max_pending`` must not shed
        its own tail (the head would be computed and thrown away), so when a
        submission hits the admission bound the helper drains the queue and
        re-submits -- the work proceeds in queue-capacity chunks.  A second
        rejection right after a flush is genuine overload from concurrent
        producers and propagates.
        """
        tickets = []
        for b in rhs:
            query = solve_query(graph_key, b, eps=eps)
            try:
                tickets.append(self.submit(query))
            except ServiceOverloadedError:
                self.flush()
                tickets.append(self.submit(query))
        self.flush()
        return [t.result().value for t in tickets]

    def effective_resistance(
        self, graph_key: str, u: int, v: int, eta: Optional[float] = None
    ) -> float:
        """Effective resistance between two vertices of a registered graph.

        ``eta=None`` demands the exact value.  A float in ``(0, 1)`` accepts
        a ``(1 +/- eta)``-approximate answer, which lets graphs above the
        dense-oracle gate serve from the cached JL-sketched oracle in O(k)
        instead of a triangular solve; below the gate exact answers are
        served either way.  Approximate queries never share a batch with
        exact ones.
        """
        return self._submit_and_wait(resistance_query(graph_key, u, v, eta=eta)).value

    def effective_resistances(
        self, graph_key: str, pairs: Iterable[Tuple[int, int]], eta: Optional[float] = None
    ) -> np.ndarray:
        """Batched effective resistances: one queue entry, one kernel call.

        ``eta`` as in :meth:`effective_resistance`; the accuracy bound
        applies to every pair of the batch.
        """
        pair_list = list(pairs)
        if not pair_list:
            return np.zeros(0)
        return np.asarray(
            self._submit_and_wait(
                resistance_batch_query(graph_key, pair_list, eta=eta)
            ).value
        )

    def certify(self, graph_key: str, eps: float = 0.5) -> CertificationReport:
        """Certify the cached sparsifier of the graph (Definition 2.1)."""
        return self._submit_and_wait(certify_query(graph_key, eps=eps)).value

    def min_cost_flow(
        self,
        graph_key: str,
        engine: str = "barrier",
        seed: Optional[int] = None,
        eps_scale: float = 1e-6,
        perturb: bool = True,
        memoise_result: bool = False,
    ):
        """Exact min-cost max-flow of a registered :class:`FlowNetwork`.

        The pipeline consumes cached serving artifacts -- the phase-1 max
        flow and the gram (``A^T D A``) factorisations of every Newton step
        -- so repeated solves on the same network run against warm
        preprocessing.  Returns the same
        :class:`~repro.flow.mincostflow.MinCostFlowResult` as the direct
        path, with :attr:`~repro.flow.mincostflow.MinCostFlowResult.gram_stats`
        describing how the bridge served the run.

        ``memoise_result=True`` additionally caches the final result under
        the network's content identity, so repeat queries on an unchanged
        network skip the IPM entirely (read-heavy traffic); the default
        stays off so a warm query still measures gram amortisation.
        """
        return self._submit_and_wait(
            flow_query(
                graph_key,
                engine=engine,
                seed=seed,
                eps_scale=eps_scale,
                perturb=perturb,
                memoise_result=memoise_result,
            )
        ).value

    def solve_gram(
        self,
        graph_key: str,
        d: np.ndarray,
        rhs: np.ndarray,
        formulation: str = "fixed-value",
    ) -> np.ndarray:
        """One ``(A^T D A) y = rhs`` solve of the registered network's flow LP.

        ``d`` is the positive Newton diagonal over the LP rows, ``rhs`` a
        vector over the non-source vertices; the answer comes off the cached
        grounded ``splu`` factorisation family of Lemma 5.1.
        """
        return self._submit_and_wait(
            gram_query(graph_key, d, rhs, formulation=formulation)
        ).value

    def _submit_and_wait(self, query: Query) -> QueryResult:
        ticket = self.submit(query)
        self.flush()
        # the flush may have raced another thread's; wait for whichever ran it
        return ticket.result(timeout=None)

    def _validate(self, query: Query) -> None:
        """Reject malformed queries before they can poison a shared batch.

        Beyond shapes and ranges, *non-finite inputs* are rejected here: a
        ``b`` with one NaN would coalesce into the shared blocked
        ``solve_many`` and poison every column of the block -- submit-time
        is the only place the blast radius is still one client.
        """
        # UnknownGraphError (a KeyError subclass) for unknown keys
        entry = self.registry.get(query.graph_key)
        n = entry.graph.n
        if query.kind == "solve":
            b = query.payload["b"]
            if b.shape != (n,):
                raise ValueError(
                    f"right-hand side must have shape ({n},), got {b.shape}"
                )
            if not np.all(np.isfinite(b)):
                raise ValueError(
                    "right-hand side contains non-finite entries (NaN/inf); "
                    "a poisoned b would corrupt the shared blocked solve"
                )
        elif query.kind == "resistance":
            u = np.asarray(query.payload["u"])
            v = np.asarray(query.payload["v"])
            if u.size and (
                int(min(u.min(), v.min())) < 0 or int(max(u.max(), v.max())) >= n
            ):
                raise ValueError(f"pair endpoints out of range [0, {n})")
        elif query.kind in ("flow", "gram"):
            if not isinstance(entry.graph, FlowNetwork):
                raise ValueError(
                    f"{query.kind!r} queries need a registered FlowNetwork, "
                    f"got {type(entry.graph).__name__}"
                )
            # edge construction checks capacity > 0 / cost finite-ish, but a
            # NaN passes every ordered comparison: refuse it explicitly
            if not np.all(np.isfinite(entry.graph.capacities())) or not np.all(
                np.isfinite(entry.graph.costs())
            ):
                raise ValueError(
                    "registered flow network has non-finite capacities or costs"
                )
            if query.kind == "gram":
                m = entry.graph.m
                rows = (
                    m
                    if query.payload["formulation"] == "fixed-value"
                    else m + 2 * (n - 1) + 1
                )
                d = query.payload["d"]
                rhs = query.payload["rhs"]
                if d.shape != (rows,):
                    raise ValueError(
                        f"gram diagonal must have shape ({rows},) for the "
                        f"{query.payload['formulation']} formulation, got {d.shape}"
                    )
                if rhs.shape != (n - 1,):
                    raise ValueError(
                        f"gram right-hand side must have shape ({n - 1},), got {rhs.shape}"
                    )
                # isfinite first: a NaN d slips through `d <= 0` (NaN
                # compares false) and would poison the aggregated weights
                if not np.all(np.isfinite(d)):
                    raise ValueError(
                        "gram diagonal contains non-finite entries (NaN/inf)"
                    )
                if np.any(d <= 0.0):
                    raise ValueError("gram diagonal must be strictly positive")
                if not np.all(np.isfinite(rhs)):
                    raise ValueError(
                        "gram right-hand side contains non-finite entries (NaN/inf)"
                    )

    # -- fault injection -------------------------------------------------------

    def arm_faults(self, faults) -> FaultInjector:
        """Arm a :class:`~repro.serve.faults.FaultPlan` on this service.

        Accepts a plan, a pre-built
        :class:`~repro.serve.faults.FaultInjector`, or ``None`` to disarm;
        returns the active injector so callers can read fire counters
        (``fired_total``, :meth:`~repro.serve.faults.FaultInjector.fire_counts`).
        Faults only fire at the planner's seams -- builds, batch execution,
        repair walks, output poisoning -- so an armed production service
        degrades exactly the way the chaos suite proves it does.
        """
        return self.planner.arm_faults(faults)

    # -- metrics / lifecycle ---------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One dict with everything a dashboard would scrape.

        Includes the resilience ledger: ``failures_total`` /
        ``failures_by_kind`` (queries whose tickets got an error),
        ``retries_total``, ``breaker_open_total``, ``degraded_total`` and
        ``deadline_misses`` (see :class:`~repro.serve.resilience.HealthStats`).
        """
        cache_stats = self.cache.stats
        snapshot = {
            "queries_total": self.metrics.queries_total,
            "rejected_total": self.metrics.rejected_total,
            "failures_total": self.metrics.failures_total,
            "failures_by_kind": dict(self.metrics.failures_by_kind),
            "batches_total": self.metrics.batches_total,
            "batch_occupancy": self.metrics.batch_occupancy,
            "queries_by_kind": dict(self.metrics.queries_by_kind),
            "latency_seconds": self.metrics.latency_percentiles(),
            "cache": cache_stats.as_dict(),
            "cache_entries": len(self.cache),
            "cache_bytes": self.cache.total_bytes,
            "pending_repairs": self.cache.pending_repairs,
            "registered_graphs": len(self.registry),
        }
        snapshot.update(self.health.as_dict())
        return snapshot

    def close(self) -> None:
        """Flush outstanding queries and stop the background flusher."""
        with self._lock:
            self._closed = True
        self._wakeup.set()
        self.flush()
        flusher = self._flusher
        if flusher is not None:
            flusher.join(timeout=1.0)

    def __enter__(self) -> "LaplacianService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- background flusher ----------------------------------------------------

    def _start_flusher_locked(self) -> None:
        self._flusher = threading.Thread(
            target=self._flusher_loop, name="laplacian-service-flusher", daemon=True
        )
        self._flusher.start()

    def _flusher_loop(self) -> None:
        max_wait = self.flush_policy.max_wait_seconds
        while True:
            self._wakeup.wait(timeout=max_wait if max_wait > 0 else None)
            with self._lock:
                if self._closed:
                    return
                self._wakeup.clear()
                oldest = self._oldest_pending
            if oldest is None:
                continue
            deadline = oldest + max_wait
            now = time.monotonic()
            if now < deadline:
                time.sleep(deadline - now)
            self.flush()
