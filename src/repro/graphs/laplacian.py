"""Laplacian and incidence matrices, spectral comparisons (Section 2.2).

The Laplacian of a weighted graph ``G = (V, E, w)`` is ``L = B^T W B`` where
``B`` is the edge-vertex incidence matrix and ``W`` the diagonal weight matrix.
A reweighted subgraph ``H`` is a ``(1 +/- eps)``-spectral sparsifier of ``G``
when ``(1-eps) x^T L_H x <= x^T L_G x <= (1+eps) x^T L_H x`` for all ``x``
(Definition 2.1).  The helpers below verify that relation via generalised
eigenvalues restricted to the space orthogonal to the all-ones kernel.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph


def laplacian_matrix(graph: WeightedGraph) -> np.ndarray:
    """Dense Laplacian matrix ``L`` of ``graph`` (Section 2.2)."""
    n = graph.n
    L = np.zeros((n, n))
    for edge in graph.edges():
        u, v, w = edge.u, edge.v, edge.weight
        L[u, u] += w
        L[v, v] += w
        L[u, v] -= w
        L[v, u] -= w
    return L


def incidence_matrix(graph: WeightedGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Edge-vertex incidence matrix ``B`` (m x n) and weight vector ``w``.

    Edge orientation is from the smaller to the larger endpoint id (head = the
    larger id), which is immaterial for ``L = B^T W B``.
    """
    n, m = graph.n, graph.m
    B = np.zeros((m, n))
    w = np.zeros(m)
    for i, edge in enumerate(graph.edges()):
        u, v = edge.key
        B[i, v] = 1.0
        B[i, u] = -1.0
        w[i] = edge.weight
    return B, w


def laplacian_quadratic_form(graph: WeightedGraph, x: np.ndarray) -> float:
    """``x^T L_G x = sum_{(u,v) in E} w(u,v) (x_u - x_v)^2`` without forming L."""
    x = np.asarray(x, dtype=float)
    total = 0.0
    for edge in graph.edges():
        diff = x[edge.u] - x[edge.v]
        total += edge.weight * diff * diff
    return float(total)


def laplacian_pseudoinverse(graph: WeightedGraph) -> np.ndarray:
    """Moore-Penrose pseudoinverse of the Laplacian (dense; for verification)."""
    return np.linalg.pinv(laplacian_matrix(graph))


def laplacian_norm(L: np.ndarray, x: np.ndarray) -> float:
    """The ``||x||_L = sqrt(x^T L x)`` norm used in Theorems 1.3 and 2.3."""
    x = np.asarray(x, dtype=float)
    value = float(x @ (L @ x))
    return float(np.sqrt(max(0.0, value)))


def effective_resistances(graph: WeightedGraph) -> np.ndarray:
    """Effective resistance of every edge (ordered as ``graph.edges()``)."""
    Lplus = laplacian_pseudoinverse(graph)
    resistances = np.zeros(graph.m)
    for i, edge in enumerate(graph.edges()):
        chi = np.zeros(graph.n)
        chi[edge.u] = 1.0
        chi[edge.v] = -1.0
        resistances[i] = float(chi @ Lplus @ chi)
    return resistances


def _restricted_generalised_eigenvalues(
    L_G: np.ndarray, L_H: np.ndarray, tol: float = 1e-9
) -> np.ndarray:
    """Eigenvalues of ``pinv(L_H) L_G`` restricted to the joint image space.

    Both matrices are Laplacians of graphs on the same (connected) vertex set,
    so their common kernel contains the all-ones vector; we project it out.
    """
    n = L_G.shape[0]
    ones = np.ones((n, 1)) / np.sqrt(n)
    projector = np.eye(n) - ones @ ones.T
    A = projector @ L_G @ projector
    B = projector @ L_H @ projector
    # Work in the eigenbasis of B restricted to its image.
    eigvals, eigvecs = np.linalg.eigh(B)
    keep = eigvals > tol * max(1.0, float(np.max(np.abs(eigvals))))
    if not np.any(keep):
        return np.array([])
    V = eigvecs[:, keep]
    D_inv_sqrt = np.diag(1.0 / np.sqrt(eigvals[keep]))
    M = D_inv_sqrt @ V.T @ A @ V @ D_inv_sqrt
    return np.linalg.eigvalsh(M)


def spectral_approximation_factor(
    graph: WeightedGraph, sparsifier: WeightedGraph
) -> Tuple[float, float]:
    """Return ``(lambda_min, lambda_max)`` with ``lambda_min L_H <= L_G <= lambda_max L_H``.

    A ``(1 +/- eps)``-sparsifier in the sense of Definition 2.1 has
    ``lambda_min >= 1 - eps`` and ``lambda_max <= 1 + eps``.
    """
    if graph.n != sparsifier.n:
        raise ValueError("graph and sparsifier must share the vertex set")
    L_G = laplacian_matrix(graph)
    L_H = laplacian_matrix(sparsifier)
    eigs = _restricted_generalised_eigenvalues(L_G, L_H)
    if eigs.size == 0:
        return (1.0, 1.0)
    return float(np.min(eigs)), float(np.max(eigs))


def is_spectral_sparsifier(
    graph: WeightedGraph,
    sparsifier: WeightedGraph,
    eps: float,
    slack: float = 1e-7,
) -> bool:
    """Whether ``sparsifier`` is a ``(1 +/- eps)``-spectral sparsifier of ``graph``."""
    lo, hi = spectral_approximation_factor(graph, sparsifier)
    return lo >= 1.0 - eps - slack and hi <= 1.0 + eps + slack


def relative_condition_number(graph: WeightedGraph, preconditioner: WeightedGraph) -> float:
    """``kappa`` with ``A <= B <= kappa A`` as used in Theorem 2.3 (A = L_G, B ~ L_H)."""
    lo, hi = spectral_approximation_factor(graph, preconditioner)
    if lo <= 0:
        return float("inf")
    return float(hi / lo)


def is_symmetric_diagonally_dominant(M: np.ndarray, tol: float = 1e-9) -> bool:
    """Check that ``M`` is symmetric and (weakly) diagonally dominant."""
    M = np.asarray(M, dtype=float)
    if M.ndim != 2 or M.shape[0] != M.shape[1]:
        return False
    if not np.allclose(M, M.T, atol=tol):
        return False
    off_diag = np.sum(np.abs(M), axis=1) - np.abs(np.diag(M))
    return bool(np.all(np.diag(M) >= off_diag - tol))


def graph_from_laplacian(L: np.ndarray, tol: float = 1e-12) -> WeightedGraph:
    """Reconstruct a weighted graph from a Laplacian matrix (for round-tripping)."""
    L = np.asarray(L, dtype=float)
    n = L.shape[0]
    graph = WeightedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            w = -L[u, v]
            if w > tol:
                graph.add_edge(u, v, float(w))
    return graph
