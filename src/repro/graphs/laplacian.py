"""Laplacian and incidence matrices, spectral comparisons (Section 2.2).

The Laplacian of a weighted graph ``G = (V, E, w)`` is ``L = B^T W B`` where
``B`` is the edge-vertex incidence matrix and ``W`` the diagonal weight matrix.
A reweighted subgraph ``H`` is a ``(1 +/- eps)``-spectral sparsifier of ``G``
when ``(1-eps) x^T L_H x <= x^T L_G x <= (1+eps) x^T L_H x`` for all ``x``
(Definition 2.1).  The helpers below verify that relation via generalised
eigenvalues restricted to the space orthogonal to the all-ones kernel.

Backend selection
-----------------
The hot kernels (``laplacian_matrix``, ``incidence_matrix``,
``laplacian_quadratic_form``, ``effective_resistances``) are vectorised over
the cached edge arrays of :meth:`WeightedGraph.edge_array` and accept a
``backend`` keyword:

* ``'dense'`` -- numpy arrays / the dense pseudoinverse reference.
* ``'sparse'`` -- ``scipy.sparse`` CSR matrices and one-factorisation batched
  solves from :mod:`repro.linalg.sparse_backend` (the path that scales to
  ``n >= 10^4``).
* ``'auto'`` -- sparse above ``sparse_backend.DENSE_BACKEND_LIMIT`` vertices,
  dense below.

Matrix-returning helpers default to ``'dense'`` so existing callers keep
receiving ``np.ndarray``; pure-number helpers (quadratic form, effective
resistances, and the spectral certification trio
``spectral_approximation_factor`` / ``is_spectral_sparsifier`` /
``relative_condition_number``) default to ``'auto'``.  The sparse
certification path solves the grounded generalized eigenproblem with
``scipy.sparse.linalg.eigsh`` instead of a dense ``eigh``, removing the
``O(n^3)`` bottleneck at ``n >= 2000``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.linalg import sparse_backend
from repro.linalg.sparse_backend import resolve_backend


def laplacian_matrix(graph: WeightedGraph, backend: str = "dense"):
    """Laplacian matrix ``L`` of ``graph`` (Section 2.2).

    Returns a dense ``np.ndarray`` for ``backend='dense'`` (the default, and
    what ``'auto'`` resolves to at small ``n``) and a ``scipy.sparse`` CSR
    matrix for ``backend='sparse'``.
    """
    if resolve_backend(graph, backend) == "sparse":
        return sparse_backend.laplacian_csr(graph)
    return sparse_backend.laplacian_csr(graph).toarray()


def incidence_matrix(graph: WeightedGraph, backend: str = "dense"):
    """Edge-vertex incidence matrix ``B`` (m x n) and weight vector ``w``.

    Edge orientation is from the smaller to the larger endpoint id (head = the
    larger id), which is immaterial for ``L = B^T W B``.  ``backend='sparse'``
    returns ``B`` as a CSR matrix.
    """
    B, w = sparse_backend.incidence_csr(graph)
    if resolve_backend(graph, backend) == "sparse":
        return B, w
    return B.toarray(), w


def laplacian_quadratic_form(graph: WeightedGraph, x: np.ndarray) -> float:
    """``x^T L_G x = sum_{(u,v) in E} w(u,v) (x_u - x_v)^2`` without forming L."""
    return sparse_backend.laplacian_quadratic_form_vectorized(graph, x)


def laplacian_pseudoinverse(graph: WeightedGraph) -> np.ndarray:
    """Moore-Penrose pseudoinverse of the Laplacian (dense; for verification)."""
    return np.linalg.pinv(laplacian_matrix(graph))


def laplacian_norm(L, x: np.ndarray) -> float:
    """The ``||x||_L = sqrt(x^T L x)`` norm used in Theorems 1.3 and 2.3.

    ``L`` may be a dense array or a scipy sparse matrix.
    """
    x = np.asarray(x, dtype=float)
    value = float(x @ (L @ x))
    return float(np.sqrt(max(0.0, value)))


def effective_resistances(graph: WeightedGraph, backend: str = "auto") -> np.ndarray:
    """Effective resistance of every edge (ordered as ``graph.edges()``).

    The dense path computes the pseudoinverse once and reads all resistances
    off it with fancy indexing; the sparse path factorises the grounded
    Laplacian once and batch-solves ``L x_e = chi_e`` (no ``n x n`` dense
    matrix is ever formed), which is the scalable route for ``n >= 10^3``.
    """
    if resolve_backend(graph, backend) == "sparse":
        return sparse_backend.effective_resistances_sparse(graph)
    if graph.m == 0:
        return np.zeros(0)
    u, v, _ = graph.edge_array()
    Lplus = laplacian_pseudoinverse(graph)
    return Lplus[u, u] + Lplus[v, v] - 2.0 * Lplus[u, v]


def _restricted_generalised_eigenvalues(
    L_G: np.ndarray, L_H: np.ndarray, tol: float = 1e-9
) -> Tuple[np.ndarray, float]:
    """Eigenvalues of ``pinv(L_H) L_G`` restricted to the image of ``L_H``.

    Both matrices are Laplacians of graphs on the same vertex set, so their
    common kernel contains the all-ones vector; we project it out.  Also
    returns the largest Rayleigh quotient of ``L_G`` over the *remaining*
    kernel of ``L_H`` (beyond the all-ones direction): a strictly positive
    value there means no finite ``hi`` satisfies ``L_G <= hi L_H`` -- e.g. a
    disconnected sparsifier of a connected graph.
    """
    n = L_G.shape[0]
    ones = np.ones((n, 1)) / np.sqrt(n)
    projector = np.eye(n) - ones @ ones.T
    A = projector @ L_G @ projector
    B = projector @ L_H @ projector
    # Work in the eigenbasis of B restricted to its image.  Thresholds are
    # relative to each matrix's own spectral scale so the certification stays
    # scale-invariant (a uniformly tiny-weight graph is still a perfect
    # sparsifier of itself).
    eigvals, eigvecs = np.linalg.eigh(B)
    scale_B = float(np.max(np.abs(eigvals)))
    keep = eigvals > tol * scale_B if scale_B > 0 else np.zeros_like(eigvals, dtype=bool)
    scale_A = float(np.max(np.abs(A))) if A.size else 0.0
    # Energy of L_G on ker(L_H) beyond the all-ones direction.  The projector
    # already removed the ones vector, on which A is zero as well, so any
    # leaked energy here witnesses a direction where L_H vanishes but L_G
    # does not.
    V0 = eigvecs[:, ~keep]
    kernel_leak = 0.0
    if V0.shape[1]:
        kernel_leak = float(np.max(np.linalg.eigvalsh(V0.T @ A @ V0)))
    if not np.any(keep):
        return np.array([]), kernel_leak
    V = eigvecs[:, keep]
    D_inv_sqrt = np.diag(1.0 / np.sqrt(eigvals[keep]))
    M = D_inv_sqrt @ V.T @ A @ V @ D_inv_sqrt
    leak_significant = kernel_leak > tol * scale_A
    return np.linalg.eigvalsh(M), kernel_leak if leak_significant else 0.0


def _spectral_approximation_factor_sparse(
    graph: WeightedGraph, sparsifier: WeightedGraph
) -> Tuple[float, float]:
    """Sparse certification: reduced generalized eigenproblem via ARPACK.

    Degenerate-sparsifier semantics match the dense reference's *decisions*:
    an empty sparsifier of a non-empty graph is ``(0.0, inf)``, and a
    sparsifier whose component partition differs from the graph's (extra
    kernel directions) gets ``lambda_max = inf``.  In the latter case the
    dense path still reports the restricted ``lambda_min``; the sparse path
    returns ``(0.0, inf)`` without computing it -- certification and
    condition numbers agree (``False`` / ``inf`` on both).
    """
    if graph.m == 0:
        # L_G = 0: the inequalities of Definition 2.1 hold with (0, 0) for a
        # non-empty H and with equality (1, 1) when H is empty too.
        return (1.0, 1.0) if sparsifier.m == 0 else (0.0, 0.0)
    if sparsifier.m == 0:
        return (0.0, float("inf"))
    components = graph.connected_components()
    partition_g = {frozenset(c) for c in components}
    partition_h = {frozenset(c) for c in sparsifier.connected_components()}
    if partition_g != partition_h:
        return (0.0, float("inf"))
    return sparse_backend.pencil_extreme_eigenvalues(
        graph, sparsifier, components=components
    )


def spectral_approximation_factor(
    graph: WeightedGraph, sparsifier: WeightedGraph, backend: str = "auto"
) -> Tuple[float, float]:
    """Return ``(lambda_min, lambda_max)`` with ``lambda_min L_H <= L_G <= lambda_max L_H``.

    A ``(1 +/- eps)``-sparsifier in the sense of Definition 2.1 has
    ``lambda_min >= 1 - eps`` and ``lambda_max <= 1 + eps``.

    Degenerate sparsifiers are reported honestly rather than certified: if
    ``L_H`` restricted to the non-trivial space is zero (empty sparsifier, or
    all sparsifier edges inside isolated cliques of a larger vertex set) the
    result is ``(0.0, inf)``, and if ``L_H`` merely has extra kernel
    directions on which ``L_G`` is positive (disconnected sparsifier of a
    connected graph) ``lambda_max`` is ``inf``.

    ``backend='dense'`` is the ``np.linalg.eigh`` reference (``O(n^3)`` time,
    ``O(n^2)`` memory); ``backend='sparse'`` grounds one vertex per component
    and reads both pencil extremes off ``scipy.sparse.linalg.eigsh``, which is
    what keeps certification tractable at ``n >= 2000``.  ``'auto'`` (the
    default) resolves by graph size like every other backend switch.
    """
    if graph.n != sparsifier.n:
        raise ValueError("graph and sparsifier must share the vertex set")
    if resolve_backend(graph, backend) == "sparse":
        return _spectral_approximation_factor_sparse(graph, sparsifier)
    L_G = laplacian_matrix(graph)
    L_H = laplacian_matrix(sparsifier)
    eigs, kernel_leak = _restricted_generalised_eigenvalues(L_G, L_H)
    if eigs.size == 0:
        if graph.m == 0 and sparsifier.m == 0:
            # Both Laplacians are identically zero: every inequality of
            # Definition 2.1 holds with equality, so the empty sparsifier of
            # an empty graph is (trivially) perfect.
            return (1.0, 1.0)
        # L_H is (numerically) zero on the whole non-trivial space while L_G
        # is not: nothing is certified.  Returning (1.0, 1.0) here -- as the
        # seed implementation did -- would vacuously accept a degenerate
        # sparsifier.
        return (0.0, float("inf"))
    lo, hi = float(np.min(eigs)), float(np.max(eigs))
    if kernel_leak > 0.0:
        hi = float("inf")
    return lo, hi


def is_spectral_sparsifier(
    graph: WeightedGraph,
    sparsifier: WeightedGraph,
    eps: float,
    slack: float = 1e-7,
    backend: str = "auto",
) -> bool:
    """Whether ``sparsifier`` is a ``(1 +/- eps)``-spectral sparsifier of ``graph``."""
    lo, hi = spectral_approximation_factor(graph, sparsifier, backend=backend)
    return lo >= 1.0 - eps - slack and hi <= 1.0 + eps + slack


def relative_condition_number(
    graph: WeightedGraph, preconditioner: WeightedGraph, backend: str = "auto"
) -> float:
    """``kappa`` with ``A <= B <= kappa A`` as used in Theorem 2.3 (A = L_G, B ~ L_H)."""
    lo, hi = spectral_approximation_factor(graph, preconditioner, backend=backend)
    if lo <= 0 or not np.isfinite(hi):
        return float("inf")
    return float(hi / lo)


def is_symmetric_diagonally_dominant(M: np.ndarray, tol: float = 1e-9) -> bool:
    """Check that ``M`` is symmetric and (weakly) diagonally dominant."""
    M = np.asarray(M, dtype=float)
    if M.ndim != 2 or M.shape[0] != M.shape[1]:
        return False
    if not np.allclose(M, M.T, atol=tol):
        return False
    off_diag = np.sum(np.abs(M), axis=1) - np.abs(np.diag(M))
    return bool(np.all(np.diag(M) >= off_diag - tol))


def graph_from_laplacian(L: np.ndarray, tol: float = 1e-12) -> WeightedGraph:
    """Reconstruct a weighted graph from a Laplacian matrix (for round-tripping)."""
    L = np.asarray(L, dtype=float)
    n = L.shape[0]
    graph = WeightedGraph(n)
    weights = -np.triu(L, k=1)
    rows, cols = np.nonzero(weights > tol)
    graph.add_edges(rows, cols, weights[rows, cols])
    return graph
