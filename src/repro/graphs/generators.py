"""Graph generators for tests, examples and benchmark workloads.

All generators take a ``seed`` (or a ``numpy.random.Generator``) so that every
experiment in EXPERIMENTS.md is reproducible.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.graphs.digraph import FlowNetwork
from repro.graphs.graph import WeightedGraph

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _connect_components(
    graph: WeightedGraph,
    rng: np.random.Generator,
    max_weight: float,
    fixed_weight: Optional[float] = None,
) -> None:
    """Add random edges between components in one sweep until connected.

    One components pass instead of the previous quadratic recompute-per-edge
    loop.  The rng call sequence is kept identical to the old implementation
    (seed stability): each step draws ``choice`` over the sorted merged
    component (which always contains vertex 0, hence always comes first in a
    recomputed component list), then ``choice`` over the sorted next component,
    then ``integers`` for the weight.

    ``fixed_weight`` bypasses the integer weight draw for generators whose
    contract is a uniform edge weight (e.g. :func:`watts_strogatz`); their
    repair edges must carry the same weight as every other edge.
    """
    components = graph.connected_components()
    if len(components) <= 1:
        return
    merged = sorted(components[0])
    merged_set = set(components[0])
    for component in components[1:]:
        second = sorted(component)
        u = int(rng.choice(merged))
        v = int(rng.choice(second))
        if fixed_weight is not None:
            weight = float(fixed_weight)
        else:
            weight = float(rng.integers(1, max(2, int(max_weight)) + 1))
        graph.add_edge(u, v, weight)
        merged_set |= component
        merged = sorted(merged_set)


def path_graph(n: int, weight: float = 1.0) -> WeightedGraph:
    """Path on ``n`` vertices with uniform edge weight."""
    graph = WeightedGraph(n)
    for v in range(n - 1):
        graph.add_edge(v, v + 1, weight)
    return graph


def cycle_graph(n: int, weight: float = 1.0) -> WeightedGraph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError(f"a cycle needs at least 3 vertices, got {n}")
    graph = path_graph(n, weight)
    graph.add_edge(n - 1, 0, weight)
    return graph


def star_graph(n: int, weight: float = 1.0) -> WeightedGraph:
    """Star with centre 0 and ``n - 1`` leaves."""
    graph = WeightedGraph(n)
    for v in range(1, n):
        graph.add_edge(0, v, weight)
    return graph


def complete_graph(n: int, weight: float = 1.0) -> WeightedGraph:
    """Complete graph ``K_n`` with uniform weights."""
    graph = WeightedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v, weight)
    return graph


def grid_graph(rows: int, cols: int, weight: float = 1.0) -> WeightedGraph:
    """``rows x cols`` grid graph."""
    n = rows * cols
    graph = WeightedGraph(n)

    def index(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge(index(r, c), index(r, c + 1), weight)
            if r + 1 < rows:
                graph.add_edge(index(r, c), index(r + 1, c), weight)
    return graph


def barbell_graph(clique_size: int, path_length: int = 1) -> WeightedGraph:
    """Two cliques of ``clique_size`` vertices joined by a path -- a classic
    bad case for uniform edge sampling and a good sparsifier stress test."""
    n = 2 * clique_size + max(0, path_length - 1)
    graph = WeightedGraph(n)
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            graph.add_edge(u, v, 1.0)
    offset = clique_size + max(0, path_length - 1)
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            graph.add_edge(offset + u, offset + v, 1.0)
    # the connecting path
    previous = clique_size - 1
    for i in range(max(0, path_length - 1)):
        middle = clique_size + i
        graph.add_edge(previous, middle, 1.0)
        previous = middle
    graph.add_edge(previous, offset, 1.0)
    return graph


def erdos_renyi(
    n: int,
    p: float,
    max_weight: float = 1.0,
    seed: RngLike = None,
    ensure_connected: bool = True,
) -> WeightedGraph:
    """Erdos-Renyi ``G(n, p)`` with integer weights uniform in ``[1, max_weight]``."""
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"edge probability must lie in [0, 1], got {p}")
    rng = _rng(seed)
    graph = WeightedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                weight = float(rng.integers(1, max(2, int(max_weight)) + 1))
                graph.add_edge(u, v, weight)
    if ensure_connected and n > 1:
        _connect_components(graph, rng, max_weight)
    return graph


def random_regular_expander(n: int, degree: int = 8, seed: RngLike = None) -> WeightedGraph:
    """Random near-regular multigraph-free expander via repeated matchings."""
    rng = _rng(seed)
    if degree >= n:
        return complete_graph(n)
    graph = WeightedGraph(n)
    attempts = 0
    while graph.min_weight() == 0.0 or any(graph.degree(v) < degree for v in range(n)):
        attempts += 1
        if attempts > 20 * degree:
            break
        perm = rng.permutation(n)
        for i in range(0, n - 1, 2):
            u, v = int(perm[i]), int(perm[i + 1])
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v, 1.0)
    _connect_components(graph, rng, 1.0)
    return graph


def barabasi_albert(
    n: int,
    attach: int = 3,
    weight: float = 1.0,
    seed: RngLike = None,
) -> WeightedGraph:
    """Barabasi-Albert preferential attachment graph (power-law degrees).

    Starts from a clique on ``attach + 1`` vertices; every later vertex
    attaches to ``attach`` distinct existing vertices chosen with probability
    proportional to their current degree (the classic repeated-endpoints
    urn).  The result is connected by construction and has the heavy-tailed
    degree distribution that stresses uniform-sampling sparsifiers -- the
    serving benchmarks use it as the "scale-free" workload.
    """
    if attach < 1:
        raise ValueError(f"attachment count must be >= 1, got {attach}")
    if n <= attach + 1:
        return complete_graph(n, weight)
    rng = _rng(seed)
    graph = WeightedGraph(n)
    # urn of edge endpoints: each vertex appears once per incident edge
    urn: list = []
    for u in range(attach + 1):
        for v in range(u + 1, attach + 1):
            graph.add_edge(u, v, weight)
            urn.extend((u, v))
    for v in range(attach + 1, n):
        targets: set = set()
        while len(targets) < attach:
            targets.add(int(urn[int(rng.integers(len(urn)))]))
        for t in sorted(targets):
            graph.add_edge(v, t, weight)
            urn.extend((v, t))
    return graph


def watts_strogatz(
    n: int,
    k: int = 4,
    beta: float = 0.1,
    weight: float = 1.0,
    seed: RngLike = None,
    ensure_connected: bool = True,
) -> WeightedGraph:
    """Watts-Strogatz small-world graph: ring lattice with random rewiring.

    Every vertex starts connected to its ``k`` nearest ring neighbours
    (``k`` even); each lattice edge is then rewired with probability ``beta``
    to a uniformly random non-duplicate endpoint.  ``beta = 0`` is the pure
    lattice (long shortest paths), ``beta = 1`` close to a random graph; the
    small-``beta`` regime keeps high clustering with short paths, a workload
    shape neither grids nor Erdos-Renyi graphs cover.
    """
    if k % 2 != 0:
        raise ValueError(f"lattice degree k must be even, got {k}")
    if not (2 <= k < n):
        raise ValueError(f"lattice degree k must lie in [2, n), got k={k}, n={n}")
    if not (0.0 <= beta <= 1.0):
        raise ValueError(f"rewiring probability must lie in [0, 1], got {beta}")
    rng = _rng(seed)
    graph = WeightedGraph(n)
    for v in range(n):
        for j in range(1, k // 2 + 1):
            graph.add_edge(v, (v + j) % n, weight)
    for v in range(n):
        for j in range(1, k // 2 + 1):
            target = (v + j) % n
            if rng.random() >= beta or not graph.has_edge(v, target):
                continue
            candidate = int(rng.integers(n))
            if candidate == v or graph.has_edge(v, candidate):
                continue  # keep the lattice edge rather than retry (standard WS)
            graph.remove_edge(v, target)
            graph.add_edge(v, candidate, weight)
    if ensure_connected:
        _connect_components(graph, rng, weight, fixed_weight=weight)
    return graph


def random_weighted_graph(
    n: int,
    average_degree: float = 6.0,
    max_weight: float = 16.0,
    seed: RngLike = None,
) -> WeightedGraph:
    """Connected random graph with the given expected average degree."""
    p = min(1.0, average_degree / max(1, n - 1))
    return erdos_renyi(n, p, max_weight=max_weight, seed=seed, ensure_connected=True)


def random_flow_network(
    n: int,
    average_degree: float = 4.0,
    max_capacity: int = 16,
    max_cost: int = 8,
    seed: RngLike = None,
) -> FlowNetwork:
    """Random connected flow network with integral capacities and costs.

    The source is vertex ``0`` and the sink is vertex ``n - 1``.  A directed
    Hamiltonian-ish backbone guarantees that the sink is reachable from the
    source so the maximum flow value is positive.
    """
    if n < 2:
        raise ValueError(f"a flow network needs at least 2 vertices, got {n}")
    rng = _rng(seed)
    net = FlowNetwork(n, source=0, sink=n - 1)
    order = list(range(1, n - 1))
    rng.shuffle(order)
    backbone = [0] + order + [n - 1]
    for a, b in zip(backbone[:-1], backbone[1:]):
        net.add_edge(a, b, float(rng.integers(1, max_capacity + 1)), float(rng.integers(0, max_cost + 1)))
    p = min(1.0, average_degree / max(1, n - 1))
    for u in range(n):
        for v in range(n):
            if u == v or net.has_edge(u, v):
                continue
            if v == net.source or u == net.sink:
                continue
            if rng.random() < p:
                net.add_edge(u, v, float(rng.integers(1, max_capacity + 1)), float(rng.integers(0, max_cost + 1)))
    return net


def layered_flow_network(
    layers: int,
    width: int,
    max_capacity: int = 10,
    max_cost: int = 5,
    seed: RngLike = None,
) -> FlowNetwork:
    """A layered DAG flow network: source -> layer_1 -> ... -> layer_k -> sink.

    This is the workload the paper's introduction motivates (routing through a
    network with bounded link capacities and per-link costs).
    """
    rng = _rng(seed)
    n = 2 + layers * width
    net = FlowNetwork(n, source=0, sink=n - 1)

    def node(layer: int, i: int) -> int:
        return 1 + layer * width + i

    for i in range(width):
        net.add_edge(0, node(0, i), float(rng.integers(1, max_capacity + 1)), float(rng.integers(0, max_cost + 1)))
        net.add_edge(node(layers - 1, i), n - 1, float(rng.integers(1, max_capacity + 1)), float(rng.integers(0, max_cost + 1)))
    for layer in range(layers - 1):
        for i in range(width):
            for j in range(width):
                if rng.random() < 0.7:
                    net.add_edge(
                        node(layer, i),
                        node(layer + 1, j),
                        float(rng.integers(1, max_capacity + 1)),
                        float(rng.integers(0, max_cost + 1)),
                    )
    # make sure every layer node has at least one outgoing edge forward
    for layer in range(layers - 1):
        for i in range(width):
            if not any(net.has_edge(node(layer, i), node(layer + 1, j)) for j in range(width)):
                net.add_edge(
                    node(layer, i),
                    node(layer + 1, int(rng.integers(0, width))),
                    float(rng.integers(1, max_capacity + 1)),
                    float(rng.integers(0, max_cost + 1)),
                )
    return net


def weighted_graph_with_bounded_weights(
    n: int, max_weight: int, seed: RngLike = None
) -> WeightedGraph:
    """Connected graph whose weights exercise the ``log W`` terms of Lemma 3.2."""
    rng = _rng(seed)
    graph = random_weighted_graph(n, average_degree=max(3.0, math.log2(max(2, n))), max_weight=max_weight, seed=rng)
    return graph
