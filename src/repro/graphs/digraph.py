"""Directed capacitated graphs -- the flow instances of Sections 2.4 and 5.

A :class:`FlowNetwork` is a directed graph with positive integral capacities
and integral costs, plus designated source ``s`` and sink ``t``.  It provides
the LP building blocks used in Section 5 (edge-vertex incidence matrix with the
source row removed) and flow feasibility / value / cost checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np


@dataclass(frozen=True)
class DirectedEdge:
    """A directed edge ``u -> v`` with capacity and cost."""

    u: int
    v: int
    capacity: float = 1.0
    cost: float = 0.0

    def __post_init__(self):
        if self.u == self.v:
            raise ValueError(f"self-loops are not allowed: ({self.u}, {self.v})")
        if self.capacity <= 0:
            raise ValueError(f"capacities must be positive, got {self.capacity}")


class FlowNetwork:
    """A directed graph with capacities, costs, a source and a sink.

    Vertices are ``0 .. n-1``.  Parallel edges (same ordered pair) are not
    allowed; anti-parallel edges are.
    """

    def __init__(
        self,
        n: int,
        source: int,
        sink: int,
        edges: Optional[Iterable[Tuple[int, int, float, float]]] = None,
    ):
        if n < 2:
            raise ValueError(f"a flow network needs at least 2 vertices, got {n}")
        if not (0 <= source < n) or not (0 <= sink < n):
            raise ValueError(f"source {source} / sink {sink} out of range [0, {n})")
        if source == sink:
            raise ValueError("source and sink must differ")
        self._n = int(n)
        self.source = int(source)
        self.sink = int(sink)
        self._edges: Dict[Tuple[int, int], DirectedEdge] = {}
        self._version = 0
        if edges is not None:
            for u, v, capacity, cost in edges:
                self.add_edge(u, v, capacity, cost)

    # -- construction ----------------------------------------------------------

    def add_edge(self, u: int, v: int, capacity: float, cost: float = 0.0) -> None:
        """Add the directed edge ``u -> v``; overwrites an existing one."""
        self._check_vertex(u)
        self._check_vertex(v)
        edge = DirectedEdge(u, v, float(capacity), float(cost))
        self._edges[(u, v)] = edge
        self._version += 1

    def copy(self) -> "FlowNetwork":
        g = FlowNetwork(self._n, self.source, self.sink)
        g._edges = dict(self._edges)
        return g

    @classmethod
    def from_networkx(cls, graph, source, sink) -> "FlowNetwork":
        """Convert a networkx.DiGraph with ``capacity``/``weight`` attributes."""
        mapping = {node: i for i, node in enumerate(sorted(graph.nodes()))}
        net = cls(graph.number_of_nodes(), mapping[source], mapping[sink])
        for u, v, data in graph.edges(data=True):
            net.add_edge(
                mapping[u],
                mapping[v],
                float(data.get("capacity", 1.0)),
                float(data.get("weight", data.get("cost", 0.0))),
            )
        return net

    def to_networkx(self):
        """Convert to networkx.DiGraph with ``capacity`` and ``weight`` attributes."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(self._n))
        for (u, v), e in self._edges.items():
            graph.add_edge(u, v, capacity=e.capacity, weight=e.cost)
        return graph

    # -- queries ----------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of directed edges."""
        return len(self._edges)

    @property
    def version(self) -> int:
        """Mutation counter (incremented by every :meth:`add_edge`).

        The serving tier's registry uses it for cheap staleness checks, the
        same contract :class:`~repro.graphs.weighted.WeightedGraph` offers.
        Flow networks keep no mutation journal, so a stale serve entry is
        always rebuilt rather than repaired.
        """
        return self._version

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Edge data ``(u, v, capacity, cost)`` in :meth:`edge_keys` order.

        The content-addressed form the serving registry fingerprints.
        """
        keys = self.edge_keys()
        u = np.array([a for a, _ in keys], dtype=np.int64)
        v = np.array([b for _, b in keys], dtype=np.int64)
        capacity = np.array([self._edges[k].capacity for k in keys], dtype=float)
        cost = np.array([self._edges[k].cost for k in keys], dtype=float)
        return u, v, capacity, cost

    def vertices(self) -> range:
        return range(self._n)

    def edges(self) -> Iterator[DirectedEdge]:
        """Iterate over edges in canonical (sorted key) order."""
        for key in sorted(self._edges):
            yield self._edges[key]

    def edge_keys(self) -> List[Tuple[int, int]]:
        """Sorted list of ordered edge pairs (the LP's edge indexing)."""
        return sorted(self._edges)

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._edges

    def edge(self, u: int, v: int) -> DirectedEdge:
        return self._edges[(u, v)]

    def capacities(self) -> np.ndarray:
        """Capacity vector indexed consistently with :meth:`edge_keys`."""
        return np.array([self._edges[k].capacity for k in self.edge_keys()], dtype=float)

    def costs(self) -> np.ndarray:
        """Cost vector indexed consistently with :meth:`edge_keys`."""
        return np.array([self._edges[k].cost for k in self.edge_keys()], dtype=float)

    def max_capacity(self) -> float:
        return float(max((e.capacity for e in self._edges.values()), default=0.0))

    def max_cost_magnitude(self) -> float:
        return float(max((abs(e.cost) for e in self._edges.values()), default=0.0))

    def out_neighbours(self, v: int) -> Set[int]:
        return {b for (a, b) in self._edges if a == v}

    def in_neighbours(self, v: int) -> Set[int]:
        return {a for (a, b) in self._edges if b == v}

    def underlying_undirected_adjacency(self) -> Dict[int, Set[int]]:
        """Adjacency of the underlying undirected graph (for BC-model topologies)."""
        adj: Dict[int, Set[int]] = {v: set() for v in range(self._n)}
        for (u, v) in self._edges:
            adj[u].add(v)
            adj[v].add(u)
        return adj

    # -- incidence matrices -------------------------------------------------------

    def incidence_matrix(self, drop_vertex: Optional[int] = None) -> np.ndarray:
        """Edge-vertex incidence matrix ``B`` with ``B[e, head] = +1, B[e, tail] = -1``.

        Section 5 uses the matrix with the row (here: column) of the source
        removed; pass ``drop_vertex=self.source`` for that variant.  The result
        has shape ``(m, n)`` or ``(m, n-1)``.
        """
        keys = self.edge_keys()
        cols = [v for v in range(self._n) if v != drop_vertex]
        col_index = {v: i for i, v in enumerate(cols)}
        B = np.zeros((len(keys), len(cols)))
        for row, (u, v) in enumerate(keys):
            # edge u -> v: tail u gets -1, head v gets +1
            if u in col_index:
                B[row, col_index[u]] = -1.0
            if v in col_index:
                B[row, col_index[v]] = 1.0
        return B

    # -- flow semantics ------------------------------------------------------------

    def flow_conservation_violation(self, flow: Dict[Tuple[int, int], float]) -> float:
        """Maximum absolute violation of conservation at non-terminal vertices."""
        imbalance = np.zeros(self._n)
        for (u, v), f in flow.items():
            imbalance[u] -= f
            imbalance[v] += f
        mask = np.ones(self._n, dtype=bool)
        mask[self.source] = False
        mask[self.sink] = False
        return float(np.max(np.abs(imbalance[mask]))) if mask.any() else 0.0

    def is_feasible_flow(self, flow: Dict[Tuple[int, int], float], tol: float = 1e-6) -> bool:
        """Check capacity and conservation constraints up to ``tol``."""
        for key, f in flow.items():
            if key not in self._edges:
                return False
            if f < -tol or f > self._edges[key].capacity + tol:
                return False
        return self.flow_conservation_violation(flow) <= tol

    def flow_value(self, flow: Dict[Tuple[int, int], float]) -> float:
        """Net flow out of the source."""
        out_flow = sum(f for (u, _v), f in flow.items() if u == self.source)
        in_flow = sum(f for (_u, v), f in flow.items() if v == self.source)
        return float(out_flow - in_flow)

    def flow_cost(self, flow: Dict[Tuple[int, int], float]) -> float:
        """Total cost ``sum_e q_e f_e``."""
        return float(sum(self._edges[key].cost * f for key, f in flow.items() if key in self._edges))

    def zero_flow(self) -> Dict[Tuple[int, int], float]:
        """The all-zeros flow."""
        return {key: 0.0 for key in self.edge_keys()}

    # -- dunder ---------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"FlowNetwork(n={self._n}, m={self.m}, source={self.source}, sink={self.sink})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, FlowNetwork):
            return NotImplemented
        return (
            self._n == other._n
            and self.source == other.source
            and self.sink == other.sink
            and self._edges == other._edges
        )

    # equality is structural, identity-hash keeps networks usable as dict keys
    __hash__ = object.__hash__

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self._n):
            raise ValueError(f"vertex {v} out of range [0, {self._n})")
