"""Weighted undirected graphs.

The central data structure of Sections 2-3: an undirected graph with positive
real edge weights, vertices identified by integers ``0..n-1`` (the integer
doubles as the O(log n)-bit identifier of the corresponding processor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np


def canonical_edge(u: int, v: int) -> Tuple[int, int]:
    """Canonical (sorted) representation of an undirected edge."""
    if u == v:
        raise ValueError(f"self-loops are not allowed: ({u}, {v})")
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class Edge:
    """An undirected weighted edge between ``u`` and ``v``."""

    u: int
    v: int
    weight: float = 1.0

    def __post_init__(self):
        if self.u == self.v:
            raise ValueError(f"self-loops are not allowed: ({self.u}, {self.v})")
        if self.weight <= 0:
            raise ValueError(f"edge weights must be positive, got {self.weight}")

    @property
    def key(self) -> Tuple[int, int]:
        """Canonical (u, v) with u < v."""
        return canonical_edge(self.u, self.v)

    def other(self, vertex: int) -> int:
        """The endpoint different from ``vertex``."""
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise ValueError(f"vertex {vertex} is not an endpoint of edge ({self.u}, {self.v})")


class WeightedGraph:
    """An undirected graph with positive edge weights.

    Vertices are the integers ``0 .. n-1``.  Parallel edges are not allowed;
    adding an existing edge overwrites its weight.
    """

    def __init__(self, n: int, edges: Optional[Iterable[Tuple[int, int, float]]] = None):
        if n < 1:
            raise ValueError(f"graph must have at least one vertex, got n={n}")
        self._n = int(n)
        self._weights: Dict[Tuple[int, int], float] = {}
        self._adj: Dict[int, Set[int]] = {v: set() for v in range(self._n)}
        self._edge_arrays: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        if edges is not None:
            for u, v, w in edges:
                self.add_edge(u, v, w)

    # -- construction ---------------------------------------------------------

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or overwrite) the undirected edge ``{u, v}`` with ``weight``."""
        self._check_vertex(u)
        self._check_vertex(v)
        if weight <= 0:
            raise ValueError(f"edge weights must be positive, got {weight}")
        key = canonical_edge(u, v)
        self._weights[key] = float(weight)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._edge_arrays = None

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge ``{u, v}``.

        Raises ``ValueError`` for out-of-range vertices (like every other
        mutator) and ``KeyError`` if the edge is absent.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        key = canonical_edge(u, v)
        del self._weights[key]
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._edge_arrays = None

    def copy(self) -> "WeightedGraph":
        """Deep copy of this graph."""
        g = WeightedGraph(self._n)
        g._weights = dict(self._weights)
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        return g

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int, float]]) -> "WeightedGraph":
        """Build a graph on ``n`` vertices from ``(u, v, weight)`` triples."""
        return cls(n, edges)

    @classmethod
    def from_networkx(cls, graph) -> "WeightedGraph":
        """Convert a networkx graph (weights default to 1.0)."""
        mapping = {node: i for i, node in enumerate(sorted(graph.nodes()))}
        g = cls(graph.number_of_nodes())
        for u, v, data in graph.edges(data=True):
            g.add_edge(mapping[u], mapping[v], float(data.get("weight", 1.0)))
        return g

    def to_networkx(self):
        """Convert to a networkx.Graph with ``weight`` attributes."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._n))
        for (u, v), w in self._weights.items():
            graph.add_edge(u, v, weight=w)
        return graph

    # -- queries ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._weights)

    def vertices(self) -> range:
        """Iterable over vertex identifiers."""
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges in canonical order."""
        for (u, v) in sorted(self._weights):
            yield Edge(u, v, self._weights[(u, v)])

    def edge_list(self) -> List[Tuple[int, int, float]]:
        """All edges as sorted ``(u, v, weight)`` triples with ``u < v``."""
        return [(u, v, self._weights[(u, v)]) for (u, v) in sorted(self._weights)]

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edges as three aligned numpy columns ``(u, v, w)`` with ``u < v``.

        Rows follow the canonical :meth:`edges` order.  The arrays are cached
        until the next mutation and returned read-only, so repeated calls from
        the vectorised Laplacian/backend kernels are O(1); callers that need to
        modify them must copy.
        """
        if self._edge_arrays is None:
            keys = sorted(self._weights)
            m = len(keys)
            u = np.fromiter((k[0] for k in keys), dtype=np.int64, count=m)
            v = np.fromiter((k[1] for k in keys), dtype=np.int64, count=m)
            w = np.fromiter((self._weights[k] for k in keys), dtype=np.float64, count=m)
            for arr in (u, v, w):
                arr.setflags(write=False)
            self._edge_arrays = (u, v, w)
        return self._edge_arrays

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` exists."""
        if u == v:
            return False
        return canonical_edge(u, v) in self._weights

    def weight(self, u: int, v: int) -> float:
        """Weight of the edge ``{u, v}``; raises ``KeyError`` if absent."""
        return self._weights[canonical_edge(u, v)]

    def neighbours(self, v: int) -> Set[int]:
        """Neighbours of ``v``."""
        self._check_vertex(v)
        return set(self._adj[v])

    def degree(self, v: int) -> int:
        """Number of edges incident to ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def weighted_degree(self, v: int) -> float:
        """Sum of the weights of edges incident to ``v``."""
        self._check_vertex(v)
        return float(sum(self._weights[canonical_edge(v, u)] for u in self._adj[v]))

    def max_weight(self) -> float:
        """Largest edge weight (``||w||_inf``), or 0.0 for an empty graph."""
        if not self._weights:
            return 0.0
        return float(max(self._weights.values()))

    def min_weight(self) -> float:
        """Smallest edge weight, or 0.0 for an empty graph."""
        if not self._weights:
            return 0.0
        return float(min(self._weights.values()))

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(sum(self._weights.values()))

    def adjacency_dict(self) -> Dict[int, Set[int]]:
        """Copy of the adjacency structure (used to build model topologies)."""
        return {v: set(nbrs) for v, nbrs in self._adj.items()}

    # -- structure -------------------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the graph is connected (single-vertex graphs count as connected)."""
        if self._n <= 1:
            return True
        seen = {0}
        stack = [0]
        while stack:
            v = stack.pop()
            for u in self._adj[v]:
                if u not in seen:
                    seen.add(u)
                    stack.append(u)
        return len(seen) == self._n

    def connected_components(self) -> List[Set[int]]:
        """List of vertex sets, one per connected component."""
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in range(self._n):
            if start in seen:
                continue
            component = {start}
            stack = [start]
            seen.add(start)
            while stack:
                v = stack.pop()
                for u in self._adj[v]:
                    if u not in seen:
                        seen.add(u)
                        component.add(u)
                        stack.append(u)
            components.append(component)
        return components

    def subgraph_with_edges(self, edge_keys: Iterable[Tuple[int, int]]) -> "WeightedGraph":
        """Subgraph on the same vertex set containing exactly ``edge_keys``."""
        g = WeightedGraph(self._n)
        for (u, v) in edge_keys:
            g.add_edge(u, v, self.weight(u, v))
        return g

    def reweighted(self, weights: Dict[Tuple[int, int], float]) -> "WeightedGraph":
        """Graph with the same edges but weights overridden by ``weights``."""
        g = WeightedGraph(self._n)
        for (u, v), w in self._weights.items():
            g.add_edge(u, v, weights.get((u, v), w))
        return g

    # -- distances -------------------------------------------------------------

    def shortest_path_lengths_from(self, source: int) -> Dict[int, float]:
        """Dijkstra distances from ``source`` (inf for unreachable vertices)."""
        import heapq

        self._check_vertex(source)
        dist = {v: float("inf") for v in range(self._n)}
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            for u in self._adj[v]:
                nd = d + self._weights[canonical_edge(u, v)]
                if nd < dist[u]:
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        return dist

    def all_pairs_shortest_paths(self) -> np.ndarray:
        """Dense matrix of all-pairs shortest path distances."""
        dist = np.full((self._n, self._n), np.inf)
        for s in range(self._n):
            lengths = self.shortest_path_lengths_from(s)
            for v, d in lengths.items():
                dist[s, v] = d
        return dist

    # -- dunder ----------------------------------------------------------------

    def __contains__(self, edge: Tuple[int, int]) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return self._n == other._n and self._weights == other._weights

    def __hash__(self):  # graphs are mutable; keep them unhashable
        raise TypeError("WeightedGraph is not hashable")

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self._n}, m={self.m})"

    # -- internals --------------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self._n):
            raise ValueError(f"vertex {v} out of range [0, {self._n})")
