"""Weighted undirected graphs.

The central data structure of Sections 2-3: an undirected graph with positive
real edge weights, vertices identified by integers ``0..n-1`` (the integer
doubles as the O(log n)-bit identifier of the corresponding processor).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

#: Default bound on the per-graph mutation journal (see
#: :meth:`WeightedGraph.delta_since`).  Repair consumers only ever care about
#: short deltas -- a delta longer than the serving layer's repair limit forces
#: a rebuild anyway -- so the journal trades completeness for O(1) memory:
#: once it overflows, deltas reaching past the retained window report as
#: unavailable (``None``) instead of growing without bound.
JOURNAL_LIMIT = 1024


def canonical_edge(u: int, v: int) -> Tuple[int, int]:
    """Canonical (sorted) representation of an undirected edge."""
    if u == v:
        raise ValueError(f"self-loops are not allowed: ({u}, {v})")
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class Edge:
    """An undirected weighted edge between ``u`` and ``v``."""

    u: int
    v: int
    weight: float = 1.0

    def __post_init__(self):
        if self.u == self.v:
            raise ValueError(f"self-loops are not allowed: ({self.u}, {self.v})")
        if self.weight <= 0:
            raise ValueError(f"edge weights must be positive, got {self.weight}")

    @property
    def key(self) -> Tuple[int, int]:
        """Canonical (u, v) with u < v."""
        return canonical_edge(self.u, self.v)

    def other(self, vertex: int) -> int:
        """The endpoint different from ``vertex``."""
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise ValueError(f"vertex {vertex} is not an endpoint of edge ({self.u}, {self.v})")


@dataclass(frozen=True)
class MutationRecord:
    """One journal entry: what a single mutator call did to a single edge.

    ``version`` is the graph version *after* the mutation (one
    :meth:`WeightedGraph.add_edges` call bumps the version once but may emit
    several records sharing that version).  ``op`` is one of ``"add"`` (a new
    edge; ``prev_weight`` is ``None``), ``"update"`` (an existing edge
    reweighted; both weights recorded) or ``"remove"`` (``weight`` is ``None``
    and ``prev_weight`` is the removed weight).  ``u < v`` is canonical.
    """

    version: int
    op: str
    u: int
    v: int
    weight: Optional[float]
    prev_weight: Optional[float]

    @property
    def weight_delta(self) -> float:
        """Signed weight change on the Laplacian: ``w_new - w_old`` (0 for absent)."""
        new = self.weight if self.weight is not None else 0.0
        old = self.prev_weight if self.prev_weight is not None else 0.0
        return new - old


class WeightedGraph:
    """An undirected graph with positive edge weights.

    Vertices are the integers ``0 .. n-1``.  Parallel edges are not allowed;
    adding an existing edge overwrites its weight.
    """

    def __init__(self, n: int, edges: Optional[Iterable[Tuple[int, int, float]]] = None):
        if n < 1:
            raise ValueError(f"graph must have at least one vertex, got n={n}")
        self._n = int(n)
        self._weights: Dict[Tuple[int, int], float] = {}
        self._adj: Dict[int, Set[int]] = {v: set() for v in range(self._n)}
        self._edge_arrays: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._version = 0
        self._journal: Deque[MutationRecord] = deque()
        self._journal_floor = 0
        if edges is not None:
            for u, v, w in edges:
                self.add_edge(u, v, w)

    # -- construction ---------------------------------------------------------

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or overwrite) the undirected edge ``{u, v}`` with ``weight``."""
        self._check_vertex(u)
        self._check_vertex(v)
        if weight <= 0:
            raise ValueError(f"edge weights must be positive, got {weight}")
        key = canonical_edge(u, v)
        prev = self._weights.get(key)
        self._weights[key] = float(weight)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._edge_arrays = None
        self._version += 1
        self._journal_append(
            MutationRecord(
                version=self._version,
                op="add" if prev is None else "update",
                u=key[0],
                v=key[1],
                weight=float(weight),
                prev_weight=prev,
            )
        )

    def add_edges(self, u, v, weight=1.0) -> None:
        """Vectorised bulk form of :meth:`add_edge`.

        ``u`` and ``v`` are aligned integer array-likes; ``weight`` is either a
        scalar or an aligned array of positive weights.  Validation matches the
        scalar path (range checks, no self-loops, positive weights) but runs as
        whole-array predicates, and the weight dictionary is filled with one
        bulk ``update`` instead of ``m`` Python-level calls.  Duplicate pairs
        within one batch behave like repeated ``add_edge``: the last one wins.
        """
        u = np.asarray(u, dtype=np.int64).ravel()
        v = np.asarray(v, dtype=np.int64).ravel()
        if u.shape != v.shape:
            raise ValueError(f"endpoint arrays must align, got {u.shape} vs {v.shape}")
        if u.size == 0:
            return
        w = np.broadcast_to(np.asarray(weight, dtype=np.float64), u.shape)
        if int(min(u.min(), v.min())) < 0 or int(max(u.max(), v.max())) >= self._n:
            raise ValueError(f"edge endpoints out of range [0, {self._n})")
        if np.any(u == v):
            bad = int(u[np.argmax(u == v)])
            raise ValueError(f"self-loops are not allowed: ({bad}, {bad})")
        if np.any(w <= 0):
            raise ValueError(
                f"edge weights must be positive, got {float(w[np.argmax(w <= 0)])}"
            )
        lo = np.minimum(u, v).tolist()
        hi = np.maximum(u, v).tolist()
        weights = w.tolist()
        self._edge_arrays = None
        self._version += 1
        if len(lo) > JOURNAL_LIMIT:
            # a bulk mutation larger than the journal window cannot be
            # replayed anyway: drop the journal and mark deltas reaching past
            # this version as unavailable, instead of paying a per-edge
            # record on the vectorised path
            self._journal.clear()
            self._journal_floor = self._version
            self._weights.update(zip(zip(lo, hi), weights))
        else:
            weight_dict = self._weights
            version = self._version
            for a, b, weight in zip(lo, hi, weights):
                key = (a, b)
                prev = weight_dict.get(key)
                weight_dict[key] = weight
                self._journal_append(
                    MutationRecord(
                        version=version,
                        op="add" if prev is None else "update",
                        u=a,
                        v=b,
                        weight=weight,
                        prev_weight=prev,
                    )
                )
        adj = self._adj
        for a, b in zip(lo, hi):
            adj[a].add(b)
            adj[b].add(a)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge ``{u, v}``.

        Raises ``ValueError`` for out-of-range vertices (like every other
        mutator) and ``KeyError`` if the edge is absent.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        key = canonical_edge(u, v)
        prev = self._weights.pop(key)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._edge_arrays = None
        self._version += 1
        self._journal_append(
            MutationRecord(
                version=self._version,
                op="remove",
                u=key[0],
                v=key[1],
                weight=None,
                prev_weight=prev,
            )
        )

    def copy(self) -> "WeightedGraph":
        """Deep copy of this graph."""
        g = WeightedGraph(self._n)
        g._weights = dict(self._weights)
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._version = self._version
        g._journal = deque(self._journal)
        g._journal_floor = self._journal_floor
        return g

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int, float]]) -> "WeightedGraph":
        """Build a graph on ``n`` vertices from ``(u, v, weight)`` triples."""
        return cls(n, edges)

    @classmethod
    def from_networkx(cls, graph) -> "WeightedGraph":
        """Convert a networkx graph (weights default to 1.0)."""
        mapping = {node: i for i, node in enumerate(sorted(graph.nodes()))}
        g = cls(graph.number_of_nodes())
        for u, v, data in graph.edges(data=True):
            g.add_edge(mapping[u], mapping[v], float(data.get("weight", 1.0)))
        return g

    def to_networkx(self):
        """Convert to a networkx.Graph with ``weight`` attributes."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._n))
        for (u, v), w in self._weights.items():
            graph.add_edge(u, v, weight=w)
        return graph

    # -- queries ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._weights)

    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Bumped by every mutator (:meth:`add_edge`, :meth:`add_edges`,
        :meth:`remove_edge`), so a holder of a graph reference -- e.g. the
        serving layer's :class:`repro.serve.registry.GraphRegistry` -- can
        detect that cached artifacts (sparsifiers, factorisations) built
        against an earlier state of this object are stale instead of silently
        serving them.
        """
        return self._version

    def delta_since(self, version: int) -> Optional[List[MutationRecord]]:
        """Journal of mutations applied after ``version``, oldest first.

        The serving layer uses this to *diff* two versions of a registered
        graph instead of refingerprinting: a short delta lets cached artifacts
        (factorisations, resistance oracles, embeddings) be repaired with
        low-rank updates rather than rebuilt from scratch.

        Returns ``[]`` when ``version`` is the current version, the list of
        :class:`MutationRecord` entries with ``record.version > version``
        otherwise, and ``None`` when the delta cannot be reconstructed -- the
        requested version lies in the future, or the bounded journal (at most
        :data:`JOURNAL_LIMIT` records; bulk :meth:`add_edges` calls larger
        than the window drop it entirely) no longer reaches back that far.
        ``None`` means "rebuild", never "no change".

        The answer is complete-or-``None`` even when mutators run on another
        thread (the serving tier reads deltas on its flush thread while user
        threads keep mutating): the journal deque is snapshotted in one
        C-level copy *before* the floor/version checks, and
        :meth:`_journal_append` raises the floor *before* popping the record
        it evicts.  Any record that overflows out of the window concurrently
        with this call therefore either survives in the snapshot or has
        already raised the floor past ``version`` -- a truncated delta is
        never returned for mixed ``add_edges``/``remove_edge`` traffic that
        overruns the window mid-read.
        """
        # Snapshot first: list(deque) is a single C-level copy, atomic under
        # the GIL, and immune to "deque mutated during iteration" from a
        # concurrent _journal_append.
        records = list(self._journal)
        # Check the floor *after* the snapshot: an overflow that dropped a
        # needed record before the copy ran has already raised the floor, so
        # the stale request falls through to the rebuild path.
        if version > self._version:
            return None
        if version < self._journal_floor:
            return None
        return [record for record in records if record.version > version]

    def vertices(self) -> range:
        """Iterable over vertex identifiers."""
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges in canonical order."""
        for (u, v) in sorted(self._weights):
            yield Edge(u, v, self._weights[(u, v)])

    def edge_list(self) -> List[Tuple[int, int, float]]:
        """All edges as sorted ``(u, v, weight)`` triples with ``u < v``."""
        return [(u, v, self._weights[(u, v)]) for (u, v) in sorted(self._weights)]

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edges as three aligned numpy columns ``(u, v, w)`` with ``u < v``.

        Rows follow the canonical :meth:`edges` order.  The arrays are cached
        until the next mutation and returned read-only, so repeated calls from
        the vectorised Laplacian/backend kernels are O(1); callers that need to
        modify them must copy.
        """
        if self._edge_arrays is None:
            keys = sorted(self._weights)
            m = len(keys)
            u = np.fromiter((k[0] for k in keys), dtype=np.int64, count=m)
            v = np.fromiter((k[1] for k in keys), dtype=np.int64, count=m)
            w = np.fromiter((self._weights[k] for k in keys), dtype=np.float64, count=m)
            for arr in (u, v, w):
                arr.setflags(write=False)
            self._edge_arrays = (u, v, w)
        return self._edge_arrays

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` exists."""
        if u == v:
            return False
        return canonical_edge(u, v) in self._weights

    def weight(self, u: int, v: int) -> float:
        """Weight of the edge ``{u, v}``; raises ``KeyError`` if absent."""
        return self._weights[canonical_edge(u, v)]

    def neighbours(self, v: int) -> Set[int]:
        """Neighbours of ``v``."""
        self._check_vertex(v)
        return set(self._adj[v])

    def degree(self, v: int) -> int:
        """Number of edges incident to ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def weighted_degree(self, v: int) -> float:
        """Sum of the weights of edges incident to ``v``."""
        self._check_vertex(v)
        return float(sum(self._weights[canonical_edge(v, u)] for u in self._adj[v]))

    def max_weight(self) -> float:
        """Largest edge weight (``||w||_inf``), or 0.0 for an empty graph."""
        if not self._weights:
            return 0.0
        return float(max(self._weights.values()))

    def min_weight(self) -> float:
        """Smallest edge weight, or 0.0 for an empty graph."""
        if not self._weights:
            return 0.0
        return float(min(self._weights.values()))

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(sum(self._weights.values()))

    def adjacency_dict(self) -> Dict[int, Set[int]]:
        """Copy of the adjacency structure (used to build model topologies)."""
        return {v: set(nbrs) for v, nbrs in self._adj.items()}

    # -- structure -------------------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the graph is connected (single-vertex graphs count as connected)."""
        if self._n <= 1:
            return True
        seen = {0}
        stack = [0]
        while stack:
            v = stack.pop()
            for u in self._adj[v]:
                if u not in seen:
                    seen.add(u)
                    stack.append(u)
        return len(seen) == self._n

    def connected_components(self) -> List[Set[int]]:
        """List of vertex sets, one per connected component."""
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in range(self._n):
            if start in seen:
                continue
            component = {start}
            stack = [start]
            seen.add(start)
            while stack:
                v = stack.pop()
                for u in self._adj[v]:
                    if u not in seen:
                        seen.add(u)
                        component.add(u)
                        stack.append(u)
            components.append(component)
        return components

    def subgraph_with_edges(self, edge_keys: Iterable[Tuple[int, int]]) -> "WeightedGraph":
        """Subgraph on the same vertex set containing exactly ``edge_keys``."""
        g = WeightedGraph(self._n)
        for (u, v) in edge_keys:
            g.add_edge(u, v, self.weight(u, v))
        return g

    def reweighted(self, weights: Dict[Tuple[int, int], float]) -> "WeightedGraph":
        """Graph with the same edges but weights overridden by ``weights``."""
        g = WeightedGraph(self._n)
        for (u, v), w in self._weights.items():
            g.add_edge(u, v, weights.get((u, v), w))
        return g

    # -- distances -------------------------------------------------------------

    def shortest_path_lengths_from(self, source: int) -> Dict[int, float]:
        """Dijkstra distances from ``source`` (inf for unreachable vertices)."""
        import heapq

        self._check_vertex(source)
        dist = {v: float("inf") for v in range(self._n)}
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            for u in self._adj[v]:
                nd = d + self._weights[canonical_edge(u, v)]
                if nd < dist[u]:
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        return dist

    def all_pairs_shortest_paths(self) -> np.ndarray:
        """Dense matrix of all-pairs shortest path distances."""
        dist = np.full((self._n, self._n), np.inf)
        for s in range(self._n):
            lengths = self.shortest_path_lengths_from(s)
            for v, d in lengths.items():
                dist[s, v] = d
        return dist

    # -- dunder ----------------------------------------------------------------

    def __contains__(self, edge: Tuple[int, int]) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return self._n == other._n and self._weights == other._weights

    def __hash__(self):  # graphs are mutable; keep them unhashable
        raise TypeError("WeightedGraph is not hashable")

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self._n}, m={self.m})"

    # -- internals --------------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self._n):
            raise ValueError(f"vertex {v} out of range [0, {self._n})")

    def _journal_append(self, record: MutationRecord) -> None:
        if len(self._journal) >= JOURNAL_LIMIT:
            # the oldest record falls off the window: deltas starting before
            # the *post*-state of that record are no longer reconstructible.
            # Raise the floor BEFORE popping -- a concurrent delta_since that
            # snapshots the deque between the two steps must already see the
            # floor above the record it is about to lose, so it returns None
            # instead of a truncated delta.
            self._journal_floor = self._journal[0].version
            self._journal.popleft()
        self._journal.append(record)


class EdgeView:
    """Array-native view of an alive subset of a fixed base edge set.

    The spanner/bundle/sparsify layers repeatedly run on "the input graph
    minus the edges decided so far".  Materialising each of those residual
    graphs as a :class:`WeightedGraph` costs a dict + adjacency rebuild per
    call; an ``EdgeView`` instead shares three aligned base columns
    ``(u, v, w)`` in canonical edge order (as produced by
    :meth:`WeightedGraph.edge_array`) plus a boolean ``alive`` mask, so
    peeling edges off is an O(decided) mask update and a fresh view is O(1).

    ``w`` is owned by the creator and may be mutated in place between runs
    (the sparsification loop quadruples the weights of surviving non-bundle
    edges); ``alive`` must not be mutated once a view has been handed to a
    consumer -- derive a new view with :meth:`subview` instead.
    """

    __slots__ = ("n", "u", "v", "w", "alive")

    def __init__(
        self,
        n: int,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray,
        alive: Optional[np.ndarray] = None,
    ):
        self.n = int(n)
        self.u = u
        self.v = v
        self.w = w
        self.alive = np.ones(u.shape[0], dtype=bool) if alive is None else alive

    @classmethod
    def from_graph(cls, graph: "WeightedGraph") -> "EdgeView":
        """Full view of ``graph`` with a private, mutable weight column."""
        u, v, w = graph.edge_array()
        return cls(graph.n, u, v, w.copy(), np.ones(u.shape[0], dtype=bool))

    @property
    def base_m(self) -> int:
        """Number of base edges (alive or not)."""
        return self.u.shape[0]

    @property
    def m(self) -> int:
        """Number of alive edges."""
        return int(np.count_nonzero(self.alive))

    def subview(self, alive: np.ndarray) -> "EdgeView":
        """A sibling view over the same base arrays with a different mask."""
        return EdgeView(self.n, self.u, self.v, self.w, alive)

    def alive_indices(self) -> np.ndarray:
        """Base indices of the alive edges, ascending (= canonical edge order)."""
        return np.flatnonzero(self.alive)

    def max_weight(self) -> float:
        """Largest alive edge weight, or 0.0 when no edge is alive."""
        if not np.any(self.alive):
            return 0.0
        return float(np.max(self.w[self.alive]))

    def edge_key(self, index: int) -> Tuple[int, int]:
        """Canonical key of base edge ``index``."""
        return (int(self.u[index]), int(self.v[index]))

    def adjacency_lists(self) -> List[List[Tuple[int, float, int]]]:
        """Per-vertex ``(neighbour, weight, edge_index)`` lists over alive edges.

        Built in one pass over the alive edges in canonical order, which keeps
        every per-vertex list sorted by neighbour identifier: for a vertex
        ``x`` the lower neighbours arrive from edges ``(u, x)`` in ascending
        ``u`` (first coordinate ``u < x``), all before the higher neighbours
        from edges ``(x, v)`` in ascending ``v``.
        """
        adj: List[List[Tuple[int, float, int]]] = [[] for _ in range(self.n)]
        idx = self.alive_indices()
        for ei, a, b, weight in zip(
            idx.tolist(), self.u[idx].tolist(), self.v[idx].tolist(), self.w[idx].tolist()
        ):
            adj[a].append((b, weight, ei))
            adj[b].append((a, weight, ei))
        return adj

    def to_graph(self) -> "WeightedGraph":
        """Materialise the alive edges as a :class:`WeightedGraph`."""
        graph = WeightedGraph(self.n)
        idx = self.alive_indices()
        graph.add_edges(self.u[idx], self.v[idx], self.w[idx])
        return graph
