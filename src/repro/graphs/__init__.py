"""Graph and matrix substrate.

Weighted undirected graphs (the objects spanners/sparsifiers/Laplacians are
computed on), directed capacitated graphs (the flow instances of Section 5),
Laplacian and edge-vertex incidence matrices (Section 2.2), spectral
comparisons, and a library of graph generators used by the tests, examples and
benchmark workloads.
"""

from repro.graphs.graph import Edge, EdgeView, MutationRecord, WeightedGraph
from repro.graphs.digraph import DirectedEdge, FlowNetwork
from repro.graphs.laplacian import (
    effective_resistances,
    incidence_matrix,
    is_spectral_sparsifier,
    laplacian_matrix,
    laplacian_pseudoinverse,
    laplacian_quadratic_form,
    relative_condition_number,
    spectral_approximation_factor,
)
from repro.graphs import generators

__all__ = [
    "Edge",
    "EdgeView",
    "MutationRecord",
    "WeightedGraph",
    "DirectedEdge",
    "FlowNetwork",
    "laplacian_matrix",
    "incidence_matrix",
    "laplacian_quadratic_form",
    "laplacian_pseudoinverse",
    "effective_resistances",
    "is_spectral_sparsifier",
    "spectral_approximation_factor",
    "relative_condition_number",
    "generators",
]
