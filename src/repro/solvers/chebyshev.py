"""Preconditioned Chebyshev iteration (Theorem 2.3 / Corollary 2.4).

Given symmetric positive semi-definite ``A`` and ``B`` with ``A <= B <= kappa A``
(in the Loewner order), the iteration solves ``A x = b`` up to relative error
``eps`` in the ``A``-norm using ``O(sqrt(kappa) log(1/eps))`` iterations, each
consisting of one multiplication by ``A``, one linear solve in ``B`` and a
constant number of vector operations -- exactly the operation profile the
paper's round analysis charges for.

The implementation is the classical Chebyshev acceleration (Saad, *Iterative
Methods for Sparse Linear Systems*, Alg. 12.1) applied to the preconditioned
operator ``B^+ A`` whose nonzero spectrum lies in ``[1/kappa, 1]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.linalg.sparse_backend import as_apply_fn

ApplyFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class ChebyshevReport:
    """Convergence record of one preconditioned Chebyshev run."""

    iterations: int
    kappa: float
    eps: float
    residual_norms: List[float] = field(default_factory=list)
    matvec_count: int = 0
    preconditioner_solves: int = 0

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def chebyshev_iteration_count(kappa: float, eps: float) -> int:
    """The ``O(sqrt(kappa) log(1/eps))`` iteration bound of Theorem 2.3."""
    if kappa < 1:
        raise ValueError(f"kappa must be >= 1, got {kappa}")
    if not (0 < eps <= 0.5):
        raise ValueError(f"eps must lie in (0, 1/2], got {eps}")
    return max(1, math.ceil(math.sqrt(kappa) * (math.log(1.0 / eps) + 1.0)))


def preconditioned_chebyshev(
    apply_A: ApplyFn,
    solve_B: ApplyFn,
    b: np.ndarray,
    kappa: float,
    eps: float,
    x0: Optional[np.ndarray] = None,
    max_iterations: Optional[int] = None,
    residual_stop: Optional[float] = None,
) -> Tuple[np.ndarray, ChebyshevReport]:
    """Solve ``A x = b`` with preconditioner ``B`` satisfying ``A <= B <= kappa A``.

    Parameters
    ----------
    apply_A:
        Function computing ``A @ v``; a dense or scipy sparse matrix is also
        accepted and wrapped into a matvec.
    solve_B:
        Function computing ``B^+ @ v`` (an exact or high-precision solve in B);
        a dense or sparse matrix is likewise accepted.
    b:
        Right-hand side (must lie in the range of ``A`` for singular systems).
        May also be an ``(n, k)`` block of right-hand sides: the recurrence
        coefficients are independent of ``b``, so all columns advance in
        lockstep through block matvecs/solves and the reported residual norms
        are Frobenius norms of the block residual.
    kappa:
        Relative condition number bound of the pair ``(A, B)``.
    eps:
        Target relative error in the ``A``-norm (Theorem 2.3 guarantee).
    x0:
        Optional initial iterate (defaults to zero).
    max_iterations:
        Override of the iteration budget (defaults to the theorem's bound).
    residual_stop:
        Optional early-stopping threshold on ``||b - A x||_2 / ||b||_2``.

    Returns
    -------
    (x, report):
        The approximate solution and the convergence report.
    """
    apply_A = as_apply_fn(apply_A)
    solve_B = as_apply_fn(solve_B)
    b = np.asarray(b, dtype=float)
    iterations = max_iterations if max_iterations is not None else chebyshev_iteration_count(kappa, eps)

    # Spectrum of the preconditioned operator B^+ A lies in [1/kappa, 1].
    lam_min = 1.0 / float(kappa)
    lam_max = 1.0
    theta = 0.5 * (lam_max + lam_min)
    delta = 0.5 * (lam_max - lam_min)

    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=float)
    r = b - apply_A(x)
    report = ChebyshevReport(iterations=0, kappa=float(kappa), eps=float(eps))
    report.matvec_count += 1
    b_norm = float(np.linalg.norm(b))
    report.residual_norms.append(float(np.linalg.norm(r)) / max(b_norm, 1e-300))

    if delta <= 0:
        # kappa == 1: a single preconditioner solve is exact.
        x = x + solve_B(r)
        report.preconditioner_solves += 1
        report.iterations = 1
        r = b - apply_A(x)
        report.matvec_count += 1
        report.residual_norms.append(float(np.linalg.norm(r)) / max(b_norm, 1e-300))
        return x, report

    z = solve_B(r)
    report.preconditioner_solves += 1
    d = z / theta
    sigma1 = theta / delta
    rho = 1.0 / sigma1

    for k in range(iterations):
        x = x + d
        r = r - apply_A(d)
        report.matvec_count += 1
        report.iterations = k + 1
        rel_res = float(np.linalg.norm(r)) / max(b_norm, 1e-300)
        report.residual_norms.append(rel_res)
        if residual_stop is not None and rel_res <= residual_stop:
            break
        if k == iterations - 1:
            break
        z = solve_B(r)
        report.preconditioner_solves += 1
        rho_next = 1.0 / (2.0 * sigma1 - rho)
        d = rho_next * rho * d + (2.0 * rho_next / delta) * z
        rho = rho_next
    return x, report


def chebyshev_error_bound(kappa: float, iterations: int) -> float:
    """Theoretical ``A``-norm error factor after ``iterations`` steps.

    The Chebyshev polynomial bound ``2 ((sqrt(kappa)-1)/(sqrt(kappa)+1))^k``.
    """
    if kappa <= 1:
        return 0.0
    q = (math.sqrt(kappa) - 1.0) / (math.sqrt(kappa) + 1.0)
    return 2.0 * (q ** iterations)
