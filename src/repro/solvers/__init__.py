"""Laplacian and SDD solvers (Sections 2.3, 3.3 and the reduction used in Section 5).

* :mod:`repro.solvers.chebyshev` -- preconditioned Chebyshev iteration
  (Theorem 2.3) and its specialisation to sparsifier preconditioners
  (Corollary 2.4).
* :mod:`repro.solvers.laplacian` -- the Broadcast Congested Clique Laplacian
  solver of Theorem 1.3: preprocessing computes a (1 +/- 1/2)-spectral
  sparsifier which every vertex learns, each solve then runs Chebyshev
  iterations whose only communication is a matrix-vector product with the true
  Laplacian per iteration.
* :mod:`repro.solvers.sdd` -- the Gremban reduction from symmetric diagonally
  dominant systems to Laplacian systems, needed for the ``A^T D A`` systems of
  the flow LP (Lemma 5.1).
"""

from repro.solvers.chebyshev import ChebyshevReport, preconditioned_chebyshev
from repro.solvers.laplacian import (
    BCCLaplacianSolver,
    LaplacianSolveReport,
    SolverPreprocessing,
)
from repro.solvers.sdd import GrembanReduction, SDDSolver, gremban_expand, is_sdd_matrix

__all__ = [
    "preconditioned_chebyshev",
    "ChebyshevReport",
    "BCCLaplacianSolver",
    "LaplacianSolveReport",
    "SolverPreprocessing",
    "GrembanReduction",
    "SDDSolver",
    "gremban_expand",
    "is_sdd_matrix",
]
