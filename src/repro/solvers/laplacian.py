"""The Broadcast Congested Clique Laplacian solver (Theorem 1.3).

Preprocessing computes a ``(1 +/- 1/2)``-spectral sparsifier ``H`` of the input
graph with the Broadcast-CONGEST algorithm of Theorem 1.2; because every edge
of ``H`` was announced on the blackboard when it was added, after preprocessing
every vertex knows the whole sparsifier and can solve systems in ``L_H``
internally.  Each solve instance ``(b, eps)`` then runs the preconditioned
Chebyshev iteration of Corollary 2.4 with ``A = L_G``, ``B = (3/2) L_H`` and
``kappa = 3``; the only communication per iteration is one multiplication of
``L_G`` by a vector, costing ``O(log(nU/eps))`` bits per vertex.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.congest.ledger import CommunicationPrimitives, RoundLedger
from repro.graphs.graph import WeightedGraph
from repro.graphs.laplacian import laplacian_matrix, laplacian_norm
from repro.linalg.sparse_backend import (
    GroundedLaplacianSolver,
    RepairableGroundedSolver,
    resolve_backend,
)
from repro.sparsify.spectral import SparsifierResult, spectral_sparsify
from repro.solvers.chebyshev import ChebyshevReport, preconditioned_chebyshev


@dataclass
class LaplacianSolveReport:
    """Result of one ``(b, eps)`` solve instance."""

    solution: np.ndarray
    eps: float
    rounds: float
    chebyshev: ChebyshevReport
    error_bound_holds: Optional[bool] = None
    measured_relative_error: Optional[float] = None


@dataclass
class PreprocessingReport:
    """Result of the preprocessing stage (Theorem 1.3's first phase)."""

    sparsifier: WeightedGraph
    rounds: float
    sparsifier_edges: int
    kappa: float


@dataclass
class SolverPreprocessing:
    """Reusable preprocessing artifact (the expensive half of Theorem 1.3).

    The paper's amortisation story is that one preprocessing pass -- the
    spectral sparsifier broadcast plus, on the sparse backend, one grounded
    ``splu`` factorisation of its Laplacian -- pays for arbitrarily many cheap
    solve instances.  Build this once with :meth:`BCCLaplacianSolver.prepare`
    and hand it to any number of :class:`BCCLaplacianSolver` constructions
    over the same graph content via the ``preprocessing=`` keyword; the
    serving layer's :class:`repro.serve.artifacts.ArtifactCache` holds these
    per ``(graph, params)`` pair.

    A reused artifact charges zero preprocessing rounds to the ledger (the
    sparsifier is already on every vertex's blackboard).
    """

    n: int
    backend: str
    exact_preconditioner: bool
    sparsifier: WeightedGraph
    sparsifier_result: Optional[SparsifierResult]
    rounds: float
    kappa: float
    scale: float
    #: sparse backend: grounded ``splu`` factorisation of the sparsifier
    grounded: Optional[GroundedLaplacianSolver] = None
    #: dense backend: pseudoinverse of ``B = scale * L_H``
    B_pinv: Optional[np.ndarray] = None

    def nbytes(self) -> int:
        """Approximate resident size (for cache byte accounting)."""
        total = 0
        u, v, w = self.sparsifier.edge_array()
        # edge dict + adjacency sets dominate the graph itself; ~100 bytes
        # per edge is a measured CPython figure for small-int keyed dicts.
        total += 100 * self.sparsifier.m + u.nbytes + v.nbytes + w.nbytes
        if self.grounded is not None:
            total += self.grounded.nbytes()
        if self.B_pinv is not None:
            total += int(self.B_pinv.nbytes)
        return total

    def apply_insertion(self, u: int, v: int, delta_w: float) -> bool:
        """Repair the artifact for a weight *increase* of edge ``{u, v}``.

        If the input graph gained ``delta_w > 0`` of weight on ``{u, v}`` (a
        new edge, or an existing one reweighted upward), adding
        ``delta_w / scale`` to the sparsifier keeps the preconditioner
        invariant with the *same* ``kappa``: the preconditioner is
        ``B = scale * L_H``, so the repaired ``B' = B + delta_w chi chi^T``
        satisfies ``L_G' <= B'`` (the graph gained exactly ``delta_w chi``)
        and ``B' <= kappa L_G'`` (since ``kappa >= 1``).  The sparsifier's
        grounded factorisation absorbs the same update through
        :meth:`RepairableGroundedSolver.apply_update`.

        Returns ``False`` -- artifact unchanged, caller must rebuild -- for
        non-positive ``delta_w`` (a weight *decrease* or removal can push the
        sparsifier below the lower spectral bound), for the dense backend
        (no rank-1 path through the pseudoinverse), or when the grounded
        update itself refuses (cross-component edge, exhausted budget).  On
        success ``sparsifier_result`` is cleared: the construction transcript
        no longer describes the repaired sparsifier, and consumers (the
        certify path) must not treat it as current.
        """
        if delta_w <= 0:
            return False
        if self.backend != "sparse" or not isinstance(self.grounded, RepairableGroundedSolver):
            return False
        weight = delta_w / self.scale
        if not self.grounded.apply_update(u, v, weight):
            return False
        existing = self.sparsifier.weight(u, v) if self.sparsifier.has_edge(u, v) else 0.0
        self.sparsifier.add_edge(u, v, existing + weight)
        self.sparsifier_result = None
        return True


class BCCLaplacianSolver:
    """High-precision Laplacian solver in the Broadcast Congested Clique.

    Parameters
    ----------
    graph:
        Connected weighted graph whose Laplacian systems are to be solved.
    seed:
        RNG seed for the sparsifier computation.
    t_override, bundle_scale:
        Experiment knobs forwarded to the sparsifier (defaults follow the paper).
    exact_preconditioner:
        If True, skip the sparsifier and precondition with ``L_G`` itself
        (kappa = 1).  Useful to isolate Chebyshev behaviour in tests/ablations.
    backend:
        ``'auto'``, ``'dense'`` or ``'sparse'``.  The dense path stores
        ``L_G`` as an ndarray and preconditions through a dense pseudoinverse;
        the sparse path stores ``L_G`` as a CSR matrix and solves in the
        preconditioner through one cached ``splu`` factorisation of the
        sparsifier's grounded Laplacian, which is what makes ``n >= 10^3``
        instances run in seconds.  ``'auto'`` switches on graph size.

        When ``t_override``/``bundle_scale`` deviate from the paper's
        parameters the constructor *measures* kappa via
        ``spectral_approximation_factor``, which itself resolves its backend
        by graph size: above the auto threshold the measurement runs through
        the sparse generalized eigensolver, so large-``n`` instances no longer
        pay a dense ``O(n^3)`` ``eigh`` at construction time.
    """

    #: quality of the preprocessing sparsifier, fixed to 1/2 as in Theorem 1.3
    SPARSIFIER_EPS = 0.5

    def __init__(
        self,
        graph: WeightedGraph,
        seed: Optional[int] = None,
        t_override: Optional[int] = None,
        bundle_scale: float = 1.0,
        exact_preconditioner: bool = False,
        ledger: Optional[RoundLedger] = None,
        backend: str = "auto",
        preprocessing: Optional[SolverPreprocessing] = None,
    ):
        self.graph = graph
        if preprocessing is not None:
            # prepare() already verified connectivity for the graph content
            # this artifact was built from; the caller (e.g. the serving
            # layer's version-keyed cache) vouches that the content is
            # unchanged, so the O(n + m) BFS is not repeated on the warm path.
            if preprocessing.n != graph.n:
                raise ValueError(
                    f"preprocessing artifact was built for n={preprocessing.n}, "
                    f"graph has n={graph.n}"
                )
            # the artifact bakes in every preprocessing knob; accepting
            # conflicting arguments here would silently configure the solver
            # contrary to what the caller asked for
            if (
                seed is not None
                or t_override is not None
                or bundle_scale != 1.0
                or (exact_preconditioner and not preprocessing.exact_preconditioner)
            ):
                raise ValueError(
                    "seed/t_override/bundle_scale/exact_preconditioner are baked "
                    "into the preprocessing artifact; do not pass them together "
                    "with preprocessing="
                )
            if backend != "auto" and backend != preprocessing.backend:
                raise ValueError(
                    f"preprocessing artifact was built for backend="
                    f"{preprocessing.backend!r}, cannot honour backend={backend!r}"
                )
            self.backend = preprocessing.backend
        else:
            if not graph.is_connected():
                raise ValueError("the Laplacian solver requires a connected graph")
            self.backend = resolve_backend(graph, backend)
        self.ledger = ledger if ledger is not None else RoundLedger()
        self._L = laplacian_matrix(graph, backend=self.backend)
        self._U = max(1.0, graph.max_weight())
        self._exact_solver: Optional[GroundedLaplacianSolver] = None
        self._comm = CommunicationPrimitives(
            graph.n, self.ledger, value_magnitude=self._U, precision=1e-12
        )

        reused = preprocessing is not None
        if preprocessing is None:
            preprocessing = self.prepare(
                graph,
                seed=seed,
                t_override=t_override,
                bundle_scale=bundle_scale,
                exact_preconditioner=exact_preconditioner,
                backend=self.backend,
            )
        self.prepared = preprocessing
        self._sparsifier_result = preprocessing.sparsifier_result
        # A reused artifact charges nothing: the sparsifier was broadcast when
        # it was first built, which is exactly the amortisation Theorem 1.3
        # promises across solve instances.
        self.ledger.charge(
            "sparsifier_preprocessing",
            0.0 if reused else preprocessing.rounds,
            "Theorem 1.2",
        )

        # B = scale * L_H; every vertex knows H, so solves in B are local.
        # _solve_B accepts an (n,) vector or an (n, k) block: the grounded
        # factorisation and the dense pseudoinverse both batch over columns,
        # which is what makes solve_many one block iteration instead of k runs.
        scale = preprocessing.scale
        if self.backend == "sparse":
            grounded = preprocessing.grounded
            self._solve_B = lambda r: (
                grounded.solve_many(r) if r.ndim == 2 else grounded.solve(r)
            ) / scale
            if preprocessing.exact_preconditioner:
                # the sparsifier IS the graph here: reuse the factorisation
                # instead of running a second identical splu in exact_solution
                self._exact_solver = grounded
        else:
            B_pinv = preprocessing.B_pinv
            self._solve_B = lambda r: B_pinv @ r
        self.preprocessing = PreprocessingReport(
            sparsifier=preprocessing.sparsifier,
            rounds=preprocessing.rounds,
            sparsifier_edges=preprocessing.sparsifier.m,
            kappa=preprocessing.kappa,
        )

    @classmethod
    def prepare(
        cls,
        graph: WeightedGraph,
        seed: Optional[int] = None,
        t_override: Optional[int] = None,
        bundle_scale: float = 1.0,
        exact_preconditioner: bool = False,
        backend: str = "auto",
    ) -> SolverPreprocessing:
        """Run the preprocessing phase once; return a reusable artifact.

        The artifact bundles the sparsifier, its measured (or theorem-given)
        ``kappa``/``scale``, and the backend-specific preconditioner state
        (grounded ``splu`` factorisation or dense pseudoinverse).  Passing it
        back via ``BCCLaplacianSolver(graph, preprocessing=artifact)`` skips
        the whole phase, which is what the serving layer's artifact cache
        amortises across queries.
        """
        if not graph.is_connected():
            raise ValueError("the Laplacian solver requires a connected graph")
        backend = resolve_backend(graph, backend)
        if exact_preconditioner:
            sparsifier_result: Optional[SparsifierResult] = None
            sparsifier = graph.copy()
            preprocessing_rounds = 0.0
            kappa = 1.0
            scale = 1.0
        else:
            sparsifier_result = spectral_sparsify(
                graph,
                eps=cls.SPARSIFIER_EPS,
                seed=seed,
                t_override=t_override,
                bundle_scale=bundle_scale,
                backend=backend,
            )
            sparsifier = sparsifier_result.sparsifier
            preprocessing_rounds = float(sparsifier_result.rounds)
            if t_override is None and bundle_scale == 1.0:
                # Paper parameters: H is a (1 +/- 1/2)-sparsifier whp, so
                # B = (3/2) L_H satisfies L_G <= B <= 3 L_G (Corollary 2.4).
                kappa = 3.0
                scale = 1.5
            else:
                # Experiment knobs weaken the guarantee; measure the actual
                # approximation factor and scale the preconditioner
                # accordingly, on the same backend as the solver so large-n
                # construction never falls back to dense certification.
                from repro.graphs.laplacian import spectral_approximation_factor

                lo, hi = spectral_approximation_factor(
                    graph, sparsifier, backend=backend
                )
                if lo <= 0 or not np.isfinite(hi):
                    raise ValueError(
                        "sparsifier computed with overridden parameters does not "
                        "spectrally approximate the graph; increase t_override"
                    )
                scale = hi
                kappa = max(1.0, hi / lo) * (1.0 + 1e-9)

        grounded: Optional[GroundedLaplacianSolver] = None
        B_pinv: Optional[np.ndarray] = None
        if backend == "sparse":
            # One grounded splu factorisation of L_H, reused by every solve:
            # B^+ r = (1/scale) L_H^+ r.  The Chebyshev residuals are
            # consistent because the sparsifier of a connected graph must be
            # connected for the kappa guarantee to hold at all.
            if not sparsifier.is_connected():
                raise ValueError(
                    "sparse backend requires a connected sparsifier "
                    "(a disconnected one cannot precondition a connected graph)"
                )
            # repairable subclass: identical until the serving layer routes an
            # edge insertion through apply_insertion, which then absorbs the
            # mutation as a rank-1 update instead of a refactorisation
            grounded = RepairableGroundedSolver(sparsifier)
        else:
            B_pinv = np.linalg.pinv(scale * laplacian_matrix(sparsifier, backend="dense"))
        return SolverPreprocessing(
            n=graph.n,
            backend=backend,
            exact_preconditioner=exact_preconditioner,
            sparsifier=sparsifier,
            sparsifier_result=sparsifier_result,
            rounds=preprocessing_rounds,
            kappa=kappa,
            scale=scale,
            grounded=grounded,
            B_pinv=B_pinv,
        )

    def nbytes(self) -> int:
        """Approximate resident size (cache accounting in the serving layer)."""
        total = self.prepared.nbytes()
        if isinstance(self._L, np.ndarray):
            total += int(self._L.nbytes)
        else:
            total += int(
                self._L.data.nbytes + self._L.indices.nbytes + self._L.indptr.nbytes
            )
        if self._exact_solver is not None and self._exact_solver is not self.prepared.grounded:
            total += self._exact_solver.nbytes()
        return total

    # -- theorem-level round bounds ------------------------------------------------

    def preprocessing_round_bound(self) -> float:
        """The ``O(log^5(n) log(nU))`` preprocessing bound of Theorem 1.3."""
        n = max(2, self.graph.n)
        return (math.log2(n) ** 5) * math.log2(n * self._U)

    def per_instance_round_bound(self, eps: float) -> float:
        """The ``O(log(1/eps) log(nU/eps))`` per-instance bound of Theorem 1.3."""
        n = max(2, self.graph.n)
        eps = min(0.5, max(1e-300, eps))
        return math.log2(1.0 / eps) * math.log2(n * self._U / eps)

    # -- solving -------------------------------------------------------------------

    def solve(self, b: np.ndarray, eps: float = 1e-6, check: bool = False) -> LaplacianSolveReport:
        """Solve ``L_G x = b`` up to ``||x - y||_{L_G} <= eps ||x||_{L_G}``.

        ``b`` is projected onto the range of ``L_G`` (i.e. made orthogonal to the
        all-ones vector), matching the theorem's promise that some ``x`` with
        ``L_G x = b`` exists.
        """
        if not (0 < eps <= 0.5):
            raise ValueError(f"eps must lie in (0, 1/2], got {eps}")
        b = np.asarray(b, dtype=float)
        if b.shape != (self.graph.n,):
            raise ValueError(f"right-hand side must have shape ({self.graph.n},), got {b.shape}")
        b = b - np.mean(b)

        ledger_before = self.ledger.total_rounds
        comm = CommunicationPrimitives(
            self.graph.n, self.ledger, value_magnitude=self._U, precision=eps
        )

        def apply_A(v: np.ndarray) -> np.ndarray:
            # one multiplication of L_G by a distributed vector per call
            return comm.distributed_matvec(self._L, v, "L_G @ v")

        def solve_B(r: np.ndarray) -> np.ndarray:
            comm.local_computation("solve in L_H (sparsifier known to every vertex)")
            return self._solve_B(r)

        x, cheb_report = preconditioned_chebyshev(
            apply_A,
            solve_B,
            b,
            kappa=self.preprocessing.kappa,
            eps=eps,
            residual_stop=None,
        )
        for _ in range(cheb_report.iterations):
            comm.vector_op("Chebyshev vector updates")

        rounds = self.ledger.total_rounds - ledger_before
        report = LaplacianSolveReport(
            solution=x,
            eps=eps,
            rounds=rounds,
            chebyshev=cheb_report,
        )
        if check:
            exact = self.exact_solution(b)
            denom = laplacian_norm(self._L, exact)
            error = laplacian_norm(self._L, exact - x)
            report.measured_relative_error = error / max(denom, 1e-300)
            report.error_bound_holds = bool(report.measured_relative_error <= eps + 1e-9)
        return report

    def solve_many(
        self, rhs: List[np.ndarray], eps: float = 1e-6, check: bool = False
    ) -> List[LaplacianSolveReport]:
        """Solve several instances with ONE blocked Chebyshev iteration.

        The Chebyshev recurrence coefficients depend only on ``kappa``, never
        on the right-hand side, so all instances advance in lockstep on an
        ``(n, k)`` block: each step is one multiplication of ``L_G`` by the
        block (``k`` coordinate broadcasts are charged -- the same rounds per
        instance as ``k`` separate solves) and one preconditioner solve with
        ``k`` right-hand sides through the cached grounded factorisation
        (:meth:`GroundedLaplacianSolver.solve_many`) or the dense
        pseudoinverse.  This replaces the historical loop of full per-vector
        ``solve`` calls; at ``k = 32`` right-hand sides the batched path is
        several times faster because the factorisation's triangular solves and
        the matvecs amortise across columns.

        Returns one report per instance; the instances share a single
        :class:`ChebyshevReport` (the block iteration is one run, its residual
        norms are Frobenius norms of the block) and each report's ``rounds``
        is the per-instance share of the batch cost.
        """
        if not (0 < eps <= 0.5):
            raise ValueError(f"eps must lie in (0, 1/2], got {eps}")
        if not rhs:
            return []
        n = self.graph.n
        block = np.column_stack([np.asarray(b, dtype=float) for b in rhs])
        if block.shape[0] != n:
            raise ValueError(
                f"right-hand sides must have shape ({n},), got {block.shape[0]} rows"
            )
        block = block - block.mean(axis=0)
        k = block.shape[1]

        ledger_before = self.ledger.total_rounds
        comm = CommunicationPrimitives(
            n, self.ledger, value_magnitude=self._U, precision=eps
        )

        def apply_A(V: np.ndarray) -> np.ndarray:
            # one L_G multiplication per distributed vector in the block
            for _ in range(k):
                comm.matvec("L_G @ v (batched)")
            return self._L @ V

        def solve_B(R: np.ndarray) -> np.ndarray:
            comm.local_computation("solve in L_H (sparsifier known to every vertex)")
            return self._solve_B(R)

        X, cheb_report = preconditioned_chebyshev(
            apply_A,
            solve_B,
            block,
            kappa=self.preprocessing.kappa,
            eps=eps,
            residual_stop=None,
        )
        for _ in range(cheb_report.iterations):
            comm.vector_op("Chebyshev vector updates (batched)")

        rounds_per_instance = (self.ledger.total_rounds - ledger_before) / k
        exact = self.exact_solution_many(block) if check else None
        reports = []
        for j in range(k):
            report = LaplacianSolveReport(
                solution=X[:, j],
                eps=eps,
                rounds=rounds_per_instance,
                chebyshev=cheb_report,
            )
            if check:
                denom = laplacian_norm(self._L, exact[:, j])
                error = laplacian_norm(self._L, exact[:, j] - X[:, j])
                report.measured_relative_error = error / max(denom, 1e-300)
                report.error_bound_holds = bool(
                    report.measured_relative_error <= eps + 1e-9
                )
            reports.append(report)
        return reports

    # -- exact reference -------------------------------------------------------------

    def exact_solution(self, b: np.ndarray) -> np.ndarray:
        """Minimum-norm exact solution of ``L_G x = b``.

        Dense backend: pseudoinverse reference.  Sparse backend: one cached
        grounded ``splu`` factorisation of ``L_G`` (the graph is connected, so
        the re-centred grounded solution *is* the minimum-norm solution).
        """
        b = np.asarray(b, dtype=float)
        b = b - np.mean(b)
        if self.backend == "sparse":
            if self._exact_solver is None:
                self._exact_solver = GroundedLaplacianSolver(self.graph)
            return self._exact_solver.solve(b)
        return np.linalg.pinv(self._L) @ b

    def exact_solution_many(self, B: np.ndarray) -> np.ndarray:
        """Column-wise :meth:`exact_solution` for a dense ``(n, k)`` block."""
        B = np.asarray(B, dtype=float)
        B = B - B.mean(axis=0)
        if self.backend == "sparse":
            if self._exact_solver is None:
                self._exact_solver = GroundedLaplacianSolver(self.graph)
            return self._exact_solver.solve_many(B)
        return np.linalg.pinv(self._L) @ B
