"""Gremban reduction from SDD systems to Laplacian systems (used in Lemma 5.1).

A symmetric diagonally dominant (SDD) matrix ``M`` with non-negative diagonal
can be written ``M = D - N + P`` where ``N`` (resp. ``P``) collects the
magnitudes of the negative (resp. positive) off-diagonal entries and ``D`` is
the diagonal.  The Gremban expansion is the ``2n x 2n`` Laplacian

    L = [[ D',        -P - S/2 ],     D' = diag(N 1) + diag(P 1) + S/2,
         [ -P - S/2,   D'      ]]     S  = D - diag((N + P) 1)  (the slack),
        + [[-N, 0], [0, -N]] off-diagonal within each copy,

and a solution of ``L [x1; x2] = [b; -b]`` yields ``x = (x1 - x2)/2`` with
``M x = b``.  The construction keeps each row locally computable: vertex ``i``
of the original system owns rows ``i`` and ``i + n`` of ``L``, which is exactly
how Lemma 5.1 simulates the virtual ``2(|V| - 1)``-vertex graph on the real
network (two simulated rounds per real round).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.laplacian import graph_from_laplacian, is_symmetric_diagonally_dominant
from repro.linalg.sparse_backend import GroundedLaplacianSolver, resolve_backend_for_size
from repro.solvers.laplacian import BCCLaplacianSolver


def is_sdd_matrix(M: np.ndarray, tol: float = 1e-9) -> bool:
    """Whether ``M`` is symmetric diagonally dominant with non-negative diagonal."""
    M = np.asarray(M, dtype=float)
    return is_symmetric_diagonally_dominant(M, tol) and bool(np.all(np.diag(M) >= -tol))


def gremban_expand(M: np.ndarray) -> np.ndarray:
    """The ``2n x 2n`` Laplacian of the Gremban expansion of the SDD matrix ``M``."""
    M = np.asarray(M, dtype=float)
    if not is_sdd_matrix(M):
        raise ValueError("Gremban expansion requires a symmetric diagonally dominant matrix")
    n = M.shape[0]
    D = np.diag(np.diag(M))
    off = M - D
    N = np.where(off < 0, -off, 0.0)  # magnitudes of negative off-diagonal entries
    P = np.where(off > 0, off, 0.0)  # positive off-diagonal entries
    row_sums = (N + P) @ np.ones(n)
    S = np.diag(np.diag(D) - row_sums)  # diagonal slack (non-negative by SDD)
    D_prime = np.diag(N @ np.ones(n) + P @ np.ones(n)) + 0.5 * S

    top = np.hstack([D_prime - N, -P - 0.5 * S])
    bottom = np.hstack([-P - 0.5 * S, D_prime - N])
    return np.vstack([top, bottom])


@dataclass
class GrembanReduction:
    """The expansion Laplacian together with the lift/restrict maps."""

    laplacian: np.ndarray
    n: int

    @classmethod
    def from_sdd(cls, M: np.ndarray) -> "GrembanReduction":
        M = np.asarray(M, dtype=float)
        return cls(laplacian=gremban_expand(M), n=M.shape[0])

    def lift_rhs(self, b: np.ndarray) -> np.ndarray:
        """``b -> [b; -b]``."""
        b = np.asarray(b, dtype=float)
        return np.concatenate([b, -b])

    def restrict_solution(self, xy: np.ndarray) -> np.ndarray:
        """``[x1; x2] -> (x1 - x2) / 2``."""
        xy = np.asarray(xy, dtype=float)
        return 0.5 * (xy[: self.n] - xy[self.n :])

    def expansion_graph(self) -> WeightedGraph:
        """The weighted graph whose Laplacian is the expansion (may be disconnected
        only if the original matrix was reducible)."""
        return graph_from_laplacian(self.laplacian)


class SDDSolver:
    """Solve SDD systems by reducing to a Laplacian system (Lemma 5.1).

    The Laplacian system is solved either with the BCC Laplacian solver of
    Theorem 1.3 (``method='bcc'``) or with the expansion Laplacian directly
    (``method='direct'``, the numerical reference).  Rounds reported for the
    BCC method are doubled because each virtual vertex pair is simulated by one
    real vertex (Lemma 5.1).

    The direct path accepts ``backend={'auto', 'dense', 'sparse'}``: dense is
    a cached pseudoinverse; sparse grounds the expansion Laplacian per
    component and factorises it once with ``splu`` (right-hand sides must be
    consistent for singular ``M``, which the theorems promise anyway).
    """

    def __init__(
        self,
        M: np.ndarray,
        method: str = "direct",
        seed: Optional[int] = None,
        t_override: Optional[int] = None,
        backend: str = "auto",
    ):
        if method not in ("direct", "bcc"):
            raise ValueError(f"unknown method {method!r}; use 'direct' or 'bcc'")
        self.M = np.asarray(M, dtype=float)
        if not is_sdd_matrix(self.M):
            raise ValueError("SDDSolver requires a symmetric diagonally dominant matrix")
        self.method = method
        self.reduction = GrembanReduction.from_sdd(self.M)
        # the solved system is the 2n x 2n expansion, so resolve on that size
        self.backend = resolve_backend_for_size(2 * self.reduction.n, backend)
        self.rounds = 0.0
        self._bcc_solver: Optional[BCCLaplacianSolver] = None
        self._direct_solver = None
        if method == "bcc":
            graph = self.reduction.expansion_graph()
            if graph.is_connected():
                self._bcc_solver = BCCLaplacianSolver(graph, seed=seed, t_override=t_override)
                self.rounds += 2.0 * self._bcc_solver.preprocessing.rounds
            else:
                # Disconnected expansion (e.g. a pure Laplacian input): fall back
                # to the dense reference, the reduction is not needed there.
                self.method = "direct"

    def solve(self, b: np.ndarray, eps: float = 1e-9) -> np.ndarray:
        """Solve ``M x = b`` (``b`` must be consistent for singular ``M``)."""
        b = np.asarray(b, dtype=float)
        if b.shape != (self.reduction.n,):
            raise ValueError(
                f"right-hand side must have shape ({self.reduction.n},), got {b.shape}"
            )
        if self.method == "bcc" and self._bcc_solver is not None:
            lifted = self.reduction.lift_rhs(b)
            report = self._bcc_solver.solve(lifted, eps=eps)
            self.rounds += 2.0 * report.rounds
            return self.reduction.restrict_solution(report.solution)
        # direct reference path (factorisation / pseudoinverse cached across solves)
        lifted = self.reduction.lift_rhs(b)
        if self.backend == "sparse":
            if self._direct_solver is None:
                self._direct_solver = GroundedLaplacianSolver(self.reduction.expansion_graph())
            xy = self._direct_solver.solve(lifted)
        else:
            if self._direct_solver is None:
                self._direct_solver = np.linalg.pinv(self.reduction.laplacian)
            xy = self._direct_solver @ lifted
        return self.reduction.restrict_solution(xy)
