"""Per-vertex algorithm interface for the genuine message-passing simulation.

A distributed algorithm is written as a :class:`VertexAlgorithm` subclass.  In
every synchronous round the network calls :meth:`VertexAlgorithm.round` once per
vertex with a :class:`VertexContext` that exposes

* the vertex's identifier and its graph neighbours,
* the messages received at the *start* of the round (sent in the previous one),
* ``send``/``broadcast`` operations that are validated against the model.

The contract matches Section 2.1: at the start of a round each vertex sends,
then receives, then performs unlimited local computation before the next round.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Set

from repro.congest.messages import Message


class VertexContext:
    """Interface through which a vertex interacts with the network in one round."""

    def __init__(
        self,
        vertex: int,
        neighbours: Set[int],
        comm_neighbours: Set[int],
        inbox: List[Message],
        broadcast_only: bool,
    ):
        self.vertex = vertex
        self._neighbours = set(neighbours)
        self._comm_neighbours = set(comm_neighbours)
        self._inbox = list(inbox)
        self._broadcast_only = broadcast_only
        self._outbox: Dict[int, Any] = {}
        self._broadcast_payload: Any = None
        self._has_broadcast = False

    @property
    def neighbours(self) -> Set[int]:
        """Graph neighbours of this vertex."""
        return set(self._neighbours)

    @property
    def inbox(self) -> List[Message]:
        """Messages received at the start of this round."""
        return list(self._inbox)

    def messages_from(self, sender: int) -> List[Message]:
        """Messages in the inbox that were sent by ``sender``."""
        return [m for m in self._inbox if m.sender == sender]

    def send(self, recipient: int, payload: Any) -> None:
        """Queue a unicast message to ``recipient`` for delivery next round."""
        if self._broadcast_only:
            raise ValueError(
                f"vertex {self.vertex}: unicast send() is not allowed under the "
                "broadcast constraint; use broadcast()"
            )
        if recipient not in self._comm_neighbours:
            raise ValueError(
                f"vertex {self.vertex} may not send to {recipient} in this model"
            )
        if recipient in self._outbox:
            raise ValueError(
                f"vertex {self.vertex} already queued a message to {recipient} this round"
            )
        self._outbox[recipient] = payload

    def broadcast(self, payload: Any) -> None:
        """Queue one message for delivery to *all* communication neighbours."""
        if self._has_broadcast:
            raise ValueError(
                f"vertex {self.vertex} already broadcast a message this round"
            )
        self._broadcast_payload = payload
        self._has_broadcast = True

    # -- used by the network ------------------------------------------------

    def collect_outgoing(self) -> Dict[int, Any]:
        """Materialise the per-recipient payload map for this round."""
        outgoing: Dict[int, Any] = dict(self._outbox)
        if self._has_broadcast:
            for u in self._comm_neighbours:
                if u in outgoing:
                    raise ValueError(
                        f"vertex {self.vertex} both unicast to {u} and broadcast this round"
                    )
                outgoing[u] = self._broadcast_payload
        return outgoing

    def did_broadcast(self) -> bool:
        return self._has_broadcast

    def broadcast_payload(self) -> Any:
        return self._broadcast_payload


class VertexAlgorithm(ABC):
    """Base class for per-vertex distributed algorithms.

    Subclasses implement :meth:`initialize` (round 0 local setup), :meth:`round`
    (one synchronous round) and :meth:`is_finished`.  The algorithm terminates
    when every vertex reports it is finished and no messages are in flight.
    """

    @abstractmethod
    def initialize(self, ctx: VertexContext) -> None:
        """Local initialisation before the first communication round."""

    @abstractmethod
    def round(self, ctx: VertexContext, round_number: int) -> None:
        """Execute one synchronous round for this vertex."""

    @abstractmethod
    def is_finished(self, vertex: int) -> bool:
        """Whether this vertex has terminated."""

    def result(self, vertex: int) -> Optional[Any]:
        """Local output of ``vertex`` (override in subclasses)."""
        return None
