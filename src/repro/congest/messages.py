"""Messages and bandwidth accounting for the CONGEST-family models.

The models of Section 2.1 allow messages of ``B = Theta(log n)`` bits per round.
We measure message sizes in *words*, where one word is ``ceil(log2 n)`` bits
(enough for a vertex identifier), and allow a message to occupy several words --
the simulator then charges several rounds for it, exactly as the paper does when
edge weights need ``log W`` extra bits (Lemma 3.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Tuple


def word_size_bits(n: int) -> int:
    """Number of bits in one machine word for an ``n``-vertex network.

    The models allow ``B = Theta(log n)`` bits per message; we use exactly
    ``ceil(log2 n)`` (at least 1) so identifiers always fit in one word.
    """
    if n < 1:
        raise ValueError(f"network size must be positive, got {n}")
    return max(1, math.ceil(math.log2(max(2, n))))


def _payload_bits(value: Any, n: int) -> int:
    """Best-effort bit size of a message payload entry."""
    word = word_size_bits(n)
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(1, int(value).bit_length() + 1)
    if isinstance(value, float):
        # Weights/values are assumed polynomially bounded and transmitted as
        # fixed-point numbers; we charge a standard double word.
        return 2 * word
    if isinstance(value, str):
        return 8 * len(value)
    if isinstance(value, (tuple, list)):
        return sum(_payload_bits(v, n) for v in value)
    return 2 * word


def message_size_bits(payload: Any, n: int) -> int:
    """Total size in bits of a message payload on an ``n``-vertex network."""
    return _payload_bits(payload, n)


def message_size_words(payload: Any, n: int) -> int:
    """Size of ``payload`` in ``ceil(log2 n)``-bit words (at least one)."""
    return max(1, math.ceil(message_size_bits(payload, n) / word_size_bits(n)))


@dataclass(frozen=True)
class Message:
    """A single message sent in one round.

    Attributes
    ----------
    sender:
        Identifier of the sending vertex.
    payload:
        Arbitrary (picklable) content.  The simulator measures its size and may
        charge multiple rounds if it does not fit in one word.
    """

    sender: int
    payload: Any = field(default=None)

    def size_words(self, n: int) -> int:
        """Size of this message in words on an ``n``-vertex network."""
        return message_size_words(self.payload, n)

    def size_bits(self, n: int) -> int:
        """Size of this message in bits on an ``n``-vertex network."""
        return message_size_bits(self.payload, n)


def split_into_words(payload: Any, n: int) -> Tuple[int, int]:
    """Return ``(words, bits)`` needed to transmit ``payload``."""
    return message_size_words(payload, n), message_size_bits(payload, n)
