"""Round-cost accounting for the algebraic layers of the paper.

The Laplacian solver, the Lee-Sidford LP solver and the flow pipeline are
analysed in the paper through a small set of communication primitives whose
costs are stated in the respective lemmas (e.g. "broadcasting the vector values
needs ``O(log(nU/eps))`` bits, hence ``O(log(nU/eps)/log n)`` rounds", Theorem
1.3).  :class:`CommunicationPrimitives` implements exactly those primitives:
each call records its round cost (in BCC rounds) into a :class:`RoundLedger`
and performs the corresponding numerical operation with numpy.

This mirrors how the paper itself reasons about these algorithms -- it never
serialises the IPM state into log-n-bit words either -- while keeping the round
accounting faithful to the stated complexities.  The combinatorial algorithms
(spanners, sparsifiers) do *not* use this layer; they run on the genuine
per-vertex simulator in :mod:`repro.congest.network`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class LedgerEntry:
    """One charged operation."""

    operation: str
    rounds: float
    detail: str = ""


@dataclass
class RoundLedger:
    """Accumulates BCC round charges of the algebraic pipeline."""

    entries: List[LedgerEntry] = field(default_factory=list)
    #: running sum of every charge -- total_rounds is read once per
    #: weight/leverage computation (hundreds of thousands of times in one
    #: LP solve), so it must not rescan the entry list
    _total: float = field(default=0.0, repr=False)

    def charge(self, operation: str, rounds: float, detail: str = "") -> float:
        """Record ``rounds`` rounds for ``operation`` and return the charge."""
        if rounds < 0:
            raise ValueError(f"cannot charge negative rounds ({rounds}) for {operation}")
        self.entries.append(LedgerEntry(operation=operation, rounds=float(rounds), detail=detail))
        self._total += float(rounds)
        return float(rounds)

    @property
    def total_rounds(self) -> float:
        """Total rounds charged so far."""
        return self._total

    def rounds_by_operation(self) -> Dict[str, float]:
        """Total rounds grouped by operation name."""
        grouped: Dict[str, float] = {}
        for entry in self.entries:
            grouped[entry.operation] = grouped.get(entry.operation, 0.0) + entry.rounds
        return grouped

    def reset(self) -> None:
        self.entries.clear()
        self._total = 0.0

    def merge(self, other: "RoundLedger") -> None:
        """Absorb all entries of ``other``."""
        self.entries.extend(other.entries)
        self._total += other._total


def _bits_for_value_range(n: int, magnitude: float, eps: float) -> int:
    """Bits needed to represent values of size poly(n) * magnitude / eps.

    This is the ``O(log(nU/eps))`` quantity appearing throughout Sections 3-5.
    """
    n = max(2, int(n))
    magnitude = max(1.0, float(abs(magnitude)))
    eps = min(0.5, max(1e-300, float(eps)))
    return max(1, math.ceil(math.log2(n) + math.log2(magnitude) + math.log2(1.0 / eps)))


class CommunicationPrimitives:
    """BCC communication primitives with paper-faithful round charges.

    Parameters
    ----------
    n:
        Number of vertices of the BCC network.
    ledger:
        Ledger to which round charges are appended.  A fresh one is created if
        omitted.
    value_magnitude:
        Bound ``U`` on the magnitude of transmitted values (weights, costs).
    precision:
        Working precision ``eps`` used to size fixed-point encodings.
    """

    def __init__(
        self,
        n: int,
        ledger: Optional[RoundLedger] = None,
        value_magnitude: float = 1.0,
        precision: float = 1e-9,
    ):
        if n < 1:
            raise ValueError(f"network size must be positive, got {n}")
        self.n = int(n)
        self.ledger = ledger if ledger is not None else RoundLedger()
        self.value_magnitude = float(value_magnitude)
        self.precision = float(precision)

    # -- helpers -------------------------------------------------------------

    @property
    def word_bits(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.n))))

    def _words_per_value(self) -> int:
        bits = _bits_for_value_range(self.n, self.value_magnitude, self.precision)
        return max(1, math.ceil(bits / self.word_bits))

    # -- primitives ----------------------------------------------------------

    def broadcast_scalar(self, detail: str = "") -> float:
        """One vertex writes one value to the blackboard: O(log(nU/eps)) bits."""
        return self.ledger.charge("broadcast_scalar", self._words_per_value(), detail)

    def broadcast_vector_coordinatewise(self, length: int, detail: str = "") -> float:
        """Every vertex broadcasts its own coordinate(s) of a length-``length`` vector.

        In the BCC a vector distributed with one coordinate per vertex is made
        global knowledge in one round per word; when ``length > n`` (edge-indexed
        vectors) each vertex owns ``ceil(length/n)`` coordinates and the cost
        scales accordingly.
        """
        per_vertex = max(1, math.ceil(length / self.n))
        rounds = per_vertex * self._words_per_value()
        return self.ledger.charge("broadcast_vector", rounds, detail)

    def matvec(self, detail: str = "") -> float:
        """Multiply a locally-known-rows matrix by a distributed vector.

        Each vertex needs the vector values of its neighbours, i.e. one
        coordinate-wise broadcast: O(log(nU/eps)) bits -> O(log(nU/eps)/log n)
        rounds (Theorem 1.3's accounting).
        """
        return self.ledger.charge("matvec", self._words_per_value(), detail)

    def vector_op(self, detail: str = "") -> float:
        """Local vector operation (addition, scaling): zero communication."""
        return self.ledger.charge("vector_op", 0.0, detail)

    def global_sum(self, detail: str = "") -> float:
        """All vertices learn the sum of locally-held values: one broadcast each."""
        return self.ledger.charge("global_sum", self._words_per_value(), detail)

    def leader_election(self, detail: str = "") -> float:
        """Highest-ID leader election: one round of ID broadcasts."""
        return self.ledger.charge("leader_election", 1, detail)

    def broadcast_random_bits(self, bits: int, detail: str = "") -> float:
        """The leader broadcasts ``bits`` shared random bits (Theorem 4.4 usage)."""
        rounds = max(1, math.ceil(bits / self.word_bits))
        return self.ledger.charge("broadcast_random_bits", rounds, detail)

    def local_computation(self, detail: str = "") -> float:
        """Unlimited local computation: free, recorded for traceability."""
        return self.ledger.charge("local_computation", 0.0, detail)

    def laplacian_solve(self, rounds: float, detail: str = "") -> float:
        """Charge the round cost of one (preconditioned) Laplacian solve."""
        return self.ledger.charge("laplacian_solve", rounds, detail)

    # -- numerical convenience wrappers ---------------------------------------

    def distributed_matvec(self, matrix, vector: np.ndarray, detail: str = "") -> np.ndarray:
        """Compute ``matrix @ vector`` while charging one matvec primitive.

        ``matrix`` may be a dense ndarray or a scipy sparse matrix; the round
        charge is identical (each vertex broadcasts one coordinate either way).
        """
        self.matvec(detail)
        return matrix @ np.asarray(vector)

    def distributed_sum(self, values: np.ndarray, detail: str = "") -> float:
        """Sum locally-held values while charging one global_sum primitive."""
        self.global_sum(detail)
        return float(np.sum(values))
