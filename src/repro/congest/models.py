"""The four bandwidth-constrained message-passing models of Section 2.1.

A :class:`Model` decides, for a given communication topology,

* which destination sets a vertex may address in a round,
* whether the broadcast constraint applies (same message to every recipient),
* and which pairs of vertices may communicate at all.

The :class:`~repro.congest.network.Network` uses the model to validate every
send operation and to account for rounds.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Mapping, Set


class Model(ABC):
    """Abstract communication model.

    Parameters
    ----------
    adjacency:
        Mapping from vertex id to the set of its neighbours in the *input*
        graph.  For clique models the communication topology is the complete
        graph regardless of ``adjacency``, but the input graph is still needed
        so algorithms can ask who their graph neighbours are.
    """

    #: human-readable model name
    name: str = "abstract"
    #: whether every message of a vertex in a round must be identical
    broadcast_only: bool = False
    #: whether communication is restricted to input-graph edges
    edge_restricted: bool = True

    def __init__(self, adjacency: Mapping[int, Set[int]]):
        self._adjacency: Dict[int, Set[int]] = {
            v: set(neighbours) for v, neighbours in adjacency.items()
        }
        self._vertices = sorted(self._adjacency)

    @property
    def vertices(self) -> Iterable[int]:
        """All vertex identifiers, sorted."""
        return list(self._vertices)

    @property
    def n(self) -> int:
        """Number of vertices in the network."""
        return len(self._vertices)

    def graph_neighbours(self, v: int) -> Set[int]:
        """Neighbours of ``v`` in the *input graph*."""
        return set(self._adjacency[v])

    @abstractmethod
    def communication_neighbours(self, v: int) -> Set[int]:
        """Vertices that ``v`` may address in one round."""

    def validate_send(self, sender: int, recipients: Set[int], distinct_payloads: bool) -> None:
        """Raise ``ValueError`` if a send violates the model's constraints."""
        allowed = self.communication_neighbours(sender)
        illegal = recipients - allowed
        if illegal:
            raise ValueError(
                f"model {self.name}: vertex {sender} may not send to {sorted(illegal)}"
            )
        if self.broadcast_only and distinct_payloads:
            raise ValueError(
                f"model {self.name}: vertex {sender} attempted distinct per-neighbour "
                "messages, but the broadcast constraint requires a single message"
            )


class CongestModel(Model):
    """CONGEST: per-edge messages of O(log n) bits, distinct per neighbour."""

    name = "CONGEST"
    broadcast_only = False
    edge_restricted = True

    def communication_neighbours(self, v: int) -> Set[int]:
        return set(self._adjacency[v])


class BroadcastCongestModel(Model):
    """Broadcast CONGEST: one message per vertex per round, sent to all neighbours."""

    name = "Broadcast CONGEST"
    broadcast_only = True
    edge_restricted = True

    def communication_neighbours(self, v: int) -> Set[int]:
        return set(self._adjacency[v])


class CongestedCliqueModel(Model):
    """Congested Clique: all-to-all, distinct O(log n)-bit messages per pair."""

    name = "Congested Clique"
    broadcast_only = False
    edge_restricted = False

    def communication_neighbours(self, v: int) -> Set[int]:
        return {u for u in self._vertices if u != v}


class BroadcastCongestedCliqueModel(Model):
    """Broadcast Congested Clique: one O(log n)-bit message per vertex per round,
    visible to every other vertex (the shared-blackboard view of [DKO12])."""

    name = "Broadcast Congested Clique"
    broadcast_only = True
    edge_restricted = False

    def communication_neighbours(self, v: int) -> Set[int]:
        return {u for u in self._vertices if u != v}


MODEL_REGISTRY = {
    "congest": CongestModel,
    "broadcast-congest": BroadcastCongestModel,
    "congested-clique": CongestedCliqueModel,
    "broadcast-congested-clique": BroadcastCongestedCliqueModel,
    "bcc": BroadcastCongestedCliqueModel,
    "bc": BroadcastCongestModel,
}


def make_model(name: str, adjacency: Mapping[int, Set[int]]) -> Model:
    """Instantiate a model by name (``congest``, ``bc``, ``congested-clique``, ``bcc``)."""
    key = name.strip().lower()
    if key not in MODEL_REGISTRY:
        raise ValueError(f"unknown model {name!r}; choose from {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key](adjacency)
