"""Synchronous message-passing model simulators.

This subpackage implements the four models of Section 2.1 of the paper:

* :class:`~repro.congest.models.CongestModel` -- the CONGEST model: per-round,
  per-edge messages of ``O(log n)`` bits, communication only along graph edges.
* :class:`~repro.congest.models.BroadcastCongestModel` -- the Broadcast CONGEST
  model: same bandwidth, but every vertex must send the *same* message to all of
  its neighbours in a round.
* :class:`~repro.congest.models.CongestedCliqueModel` -- the Congested Clique:
  all-to-all communication with per-pair ``O(log n)``-bit messages.
* :class:`~repro.congest.models.BroadcastCongestedCliqueModel` -- the Broadcast
  Congested Clique (BCC): one ``O(log n)``-bit message per vertex per round,
  delivered to everyone (the "shared blackboard" view).

Two layers of fidelity are provided, matching DESIGN.md:

* a genuine per-vertex simulation (:class:`~repro.congest.network.Network` plus
  :class:`~repro.congest.vertex.VertexAlgorithm`) used by the combinatorial
  algorithms (spanners, sparsifiers), and
* a :class:`~repro.congest.ledger.RoundLedger` cost-accounting layer with
  communication primitives whose round costs follow the paper's lemmas, used by
  the algebraic algorithms (Laplacian solver, LP solver, flow).
"""

from repro.congest.messages import Message, message_size_bits, word_size_bits
from repro.congest.models import (
    BroadcastCongestedCliqueModel,
    BroadcastCongestModel,
    CongestedCliqueModel,
    CongestModel,
    Model,
)
from repro.congest.network import Network, NetworkMetrics
from repro.congest.vertex import VertexAlgorithm, VertexContext
from repro.congest.ledger import CommunicationPrimitives, RoundLedger

__all__ = [
    "Message",
    "message_size_bits",
    "word_size_bits",
    "Model",
    "CongestModel",
    "BroadcastCongestModel",
    "CongestedCliqueModel",
    "BroadcastCongestedCliqueModel",
    "Network",
    "NetworkMetrics",
    "VertexAlgorithm",
    "VertexContext",
    "RoundLedger",
    "CommunicationPrimitives",
]
