"""Synchronous network simulator executing :class:`VertexAlgorithm` programs.

The simulator enforces the model's constraints (who may talk to whom, the
broadcast constraint) and measures the three quantities the paper cares about:

* **rounds** -- the main metric of the models in Section 2.1.  A message whose
  payload does not fit in one ``Theta(log n)``-bit word is charged as multiple
  rounds (the per-round maximum over all vertices of the number of words any
  vertex needs to ship), matching how Lemma 3.2 charges ``1 + log W / log n``
  rounds per spanner message.
* **messages** -- total number of (logical) messages delivered.
* **bits** -- total payload bits shipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set

from repro.congest.messages import Message, message_size_words
from repro.congest.models import Model
from repro.congest.vertex import VertexAlgorithm, VertexContext


@dataclass
class NetworkMetrics:
    """Counters accumulated while executing a distributed algorithm."""

    rounds: int = 0
    logical_rounds: int = 0
    messages: int = 0
    bits: int = 0
    broadcasts: int = 0
    max_words_in_round: List[int] = field(default_factory=list)

    def as_dict(self) -> Dict[str, int]:
        return {
            "rounds": self.rounds,
            "logical_rounds": self.logical_rounds,
            "messages": self.messages,
            "bits": self.bits,
            "broadcasts": self.broadcasts,
        }


class Network:
    """Synchronous executor for a :class:`VertexAlgorithm` under a :class:`Model`.

    Parameters
    ----------
    model:
        Communication model instance (already bound to the input adjacency).
    charge_message_words:
        If True (default), a logical round in which some vertex ships a
        ``w``-word message is charged as ``w`` model rounds.  Set to False to
        count logical rounds only.
    """

    def __init__(self, model: Model, charge_message_words: bool = True):
        self.model = model
        self.charge_message_words = charge_message_words
        self.metrics = NetworkMetrics()
        self._inboxes: Dict[int, List[Message]] = {v: [] for v in model.vertices}

    @property
    def n(self) -> int:
        return self.model.n

    def run(self, algorithm: VertexAlgorithm, max_rounds: int = 1_000_000) -> NetworkMetrics:
        """Execute ``algorithm`` to completion and return the metrics."""
        vertices = list(self.model.vertices)

        # Round 0: local initialisation, no communication.
        for v in vertices:
            ctx = self._make_context(v)
            algorithm.initialize(ctx)
            self._stash_outgoing(v, ctx)
        self._deliver()

        round_number = 0
        while True:
            round_number += 1
            if round_number > max_rounds:
                raise RuntimeError(
                    f"algorithm did not terminate within {max_rounds} rounds"
                )
            contexts: Dict[int, VertexContext] = {}
            for v in vertices:
                ctx = self._make_context(v)
                algorithm.round(ctx, round_number)
                contexts[v] = ctx
            words_this_round = self._stash_all(contexts)
            delivered = self._deliver()

            self.metrics.logical_rounds += 1
            charge = max(1, words_this_round) if self.charge_message_words else 1
            if delivered == 0 and words_this_round == 0:
                # a purely-local round still counts as one round of the model
                charge = 1
            self.metrics.rounds += charge
            self.metrics.max_words_in_round.append(words_this_round)

            if delivered == 0 and all(algorithm.is_finished(v) for v in vertices):
                break
        return self.metrics

    # -- internals -----------------------------------------------------------

    def _make_context(self, v: int) -> VertexContext:
        inbox = self._inboxes[v]
        self._inboxes[v] = []
        return VertexContext(
            vertex=v,
            neighbours=self.model.graph_neighbours(v),
            comm_neighbours=self.model.communication_neighbours(v),
            inbox=inbox,
            broadcast_only=self.model.broadcast_only,
        )

    def _stash_all(self, contexts: Mapping[int, VertexContext]) -> int:
        """Validate and queue all outgoing messages; return max words per sender."""
        max_words = 0
        self._pending = {v: [] for v in self.model.vertices}
        for v, ctx in contexts.items():
            words = self._stash_outgoing(v, ctx)
            max_words = max(max_words, words)
        return max_words

    def _stash_outgoing(self, v: int, ctx: VertexContext) -> int:
        if not hasattr(self, "_pending"):
            self._pending = {u: [] for u in self.model.vertices}
        outgoing = ctx.collect_outgoing()
        if not outgoing:
            return 0
        recipients = set(outgoing)
        distinct = len({repr(p) for p in outgoing.values()}) > 1
        self.model.validate_send(v, recipients, distinct_payloads=distinct)
        max_words = 0
        if ctx.did_broadcast():
            self.metrics.broadcasts += 1
        for recipient, payload in outgoing.items():
            msg = Message(sender=v, payload=payload)
            words = message_size_words(payload, self.n)
            max_words = max(max_words, words)
            self.metrics.messages += 1
            self.metrics.bits += msg.size_bits(self.n)
            self._pending[recipient].append(msg)
        return max_words

    def _deliver(self) -> int:
        """Move pending messages into inboxes; return number delivered."""
        if not hasattr(self, "_pending"):
            return 0
        delivered = 0
        for recipient, messages in self._pending.items():
            if messages:
                self._inboxes[recipient].extend(messages)
                delivered += len(messages)
        self._pending = {v: [] for v in self.model.vertices}
        return delivered
