"""High-level public API: the paper's pipeline behind five functions.

    spanner            -> Section 3.1   (Broadcast CONGEST)
    spectral_sparsifier-> Theorem 1.2   (Broadcast CONGEST)
    solve_laplacian    -> Theorem 1.3   (Broadcast Congested Clique)
    solve_lp           -> Theorem 1.4   (Broadcast Congested Clique)
    min_cost_max_flow  -> Theorem 1.1   (Broadcast Congested Clique)

Each function returns the result object of the underlying subsystem, which
carries the round accounting used by the experiments in EXPERIMENTS.md.
"""

from repro.core.api import (
    effective_resistances,
    min_cost_max_flow,
    solve_laplacian,
    solve_lp,
    solve_many,
    spanner,
    spectral_sparsifier,
)
from repro.core.pipeline import PipelineReport, run_full_pipeline

__all__ = [
    "spanner",
    "spectral_sparsifier",
    "solve_laplacian",
    "solve_many",
    "effective_resistances",
    "solve_lp",
    "min_cost_max_flow",
    "run_full_pipeline",
    "PipelineReport",
]
