"""Facade functions over the subsystem packages."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.flow.mincostflow import MinCostFlowResult
from repro.flow.mincostflow import min_cost_max_flow as _min_cost_max_flow
from repro.graphs.digraph import FlowNetwork
from repro.graphs.graph import WeightedGraph
from repro.lp.barrier_ipm import BarrierIPM
from repro.lp.lee_sidford import LeeSidfordSolver
from repro.lp.problem import LPProblem, LPSolution
from repro.solvers.laplacian import BCCLaplacianSolver, LaplacianSolveReport
from repro.spanners.probabilistic import SpannerResult, probabilistic_spanner
from repro.sparsify.spectral import SparsifierResult, spectral_sparsify


def spanner(
    graph: WeightedGraph,
    k: int = 2,
    probabilities: Optional[Dict[Tuple[int, int], float]] = None,
    seed: Optional[int] = None,
) -> SpannerResult:
    """Compute a ``(2k-1)``-spanner with probabilistic edges (Section 3.1).

    With ``probabilities=None`` this is a plain Baswana-Sen-style spanner; with
    probabilities the result partitions the decided edges into ``F+`` and
    ``F-`` as required by the sparsification framework.
    """
    return probabilistic_spanner(graph, probabilities=probabilities, k=k, seed=seed)


def spectral_sparsifier(
    graph: WeightedGraph,
    eps: float = 0.5,
    seed: Optional[int] = None,
    **kwargs,
) -> SparsifierResult:
    """Compute a ``(1 +/- eps)``-spectral sparsifier in the Broadcast CONGEST
    model (Theorem 1.2).  Extra keyword arguments are experiment knobs
    (``t_override``, ``bundle_scale``, ``k_override``)."""
    return spectral_sparsify(graph, eps=eps, seed=seed, **kwargs)


def solve_laplacian(
    graph: WeightedGraph,
    b: np.ndarray,
    eps: float = 1e-6,
    seed: Optional[int] = None,
    solver: Optional[BCCLaplacianSolver] = None,
    **kwargs,
) -> LaplacianSolveReport:
    """Solve ``L_G x = b`` up to relative error ``eps`` in the ``L_G``-norm
    (Theorem 1.3).  Pass an existing :class:`BCCLaplacianSolver` to reuse its
    preprocessing across right-hand sides."""
    if solver is None:
        solver = BCCLaplacianSolver(graph, seed=seed, **kwargs)
    return solver.solve(b, eps=eps)


def solve_lp(
    problem: LPProblem,
    x0: np.ndarray,
    eps: float = 1e-6,
    engine: str = "barrier",
    seed: Optional[int] = None,
    **kwargs,
) -> LPSolution:
    """Solve ``min c^T x, A^T x = b, l <= x <= u`` from the interior point ``x0``
    (Theorem 1.4).  ``engine`` selects the robust log-barrier IPM (default) or
    the faithful Lee-Sidford weighted path following (``"lee-sidford"``)."""
    if engine == "barrier":
        return BarrierIPM(problem, **kwargs).solve(x0, eps=eps)
    if engine == "lee-sidford":
        return LeeSidfordSolver(problem, seed=seed, **kwargs).solve(x0, eps=eps)
    raise ValueError(f"unknown engine {engine!r}; use 'barrier' or 'lee-sidford'")


def min_cost_max_flow(
    network: FlowNetwork,
    seed: Optional[int] = None,
    **kwargs,
) -> MinCostFlowResult:
    """Exact minimum cost maximum ``s``-``t`` flow (Theorem 1.1)."""
    return _min_cost_max_flow(network, seed=seed, **kwargs)
