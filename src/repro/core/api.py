"""Facade functions over the subsystem packages."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.flow.mincostflow import MinCostFlowResult
from repro.flow.mincostflow import min_cost_max_flow as _min_cost_max_flow
from repro.graphs.digraph import FlowNetwork
from repro.graphs.graph import WeightedGraph
from repro.graphs.laplacian import effective_resistances as _edge_effective_resistances
from repro.linalg.sparse_backend import GroundedLaplacianSolver, resolve_backend
from repro.lp.barrier_ipm import BarrierIPM
from repro.lp.lee_sidford import LeeSidfordSolver
from repro.lp.problem import LPProblem, LPSolution
from repro.solvers.laplacian import BCCLaplacianSolver, LaplacianSolveReport
from repro.spanners.probabilistic import SpannerResult, probabilistic_spanner
from repro.sparsify.spectral import SparsifierResult, spectral_sparsify


def spanner(
    graph: WeightedGraph,
    k: int = 2,
    probabilities: Optional[Dict[Tuple[int, int], float]] = None,
    seed: Optional[int] = None,
) -> SpannerResult:
    """Compute a ``(2k-1)``-spanner with probabilistic edges (Section 3.1).

    With ``probabilities=None`` this is a plain Baswana-Sen-style spanner; with
    probabilities the result partitions the decided edges into ``F+`` and
    ``F-`` as required by the sparsification framework.
    """
    return probabilistic_spanner(graph, probabilities=probabilities, k=k, seed=seed)


def spectral_sparsifier(
    graph: WeightedGraph,
    eps: float = 0.5,
    seed: Optional[int] = None,
    **kwargs,
) -> SparsifierResult:
    """Compute a ``(1 +/- eps)``-spectral sparsifier in the Broadcast CONGEST
    model (Theorem 1.2).  Extra keyword arguments are experiment knobs
    (``t_override``, ``bundle_scale``, ``k_override``)."""
    return spectral_sparsify(graph, eps=eps, seed=seed, **kwargs)


def solve_laplacian(
    graph: WeightedGraph,
    b: np.ndarray,
    eps: float = 1e-6,
    seed: Optional[int] = None,
    solver: Optional[BCCLaplacianSolver] = None,
    **kwargs,
) -> LaplacianSolveReport:
    """Solve ``L_G x = b`` up to relative error ``eps`` in the ``L_G``-norm
    (Theorem 1.3).  Pass an existing :class:`BCCLaplacianSolver` to reuse its
    preprocessing across right-hand sides."""
    if solver is None:
        solver = BCCLaplacianSolver(graph, seed=seed, **kwargs)
    return solver.solve(b, eps=eps)


def solve_many(
    graph: WeightedGraph,
    rhs: Sequence[np.ndarray],
    eps: float = 1e-6,
    seed: Optional[int] = None,
    solver: Optional[BCCLaplacianSolver] = None,
    **kwargs,
) -> List[LaplacianSolveReport]:
    """Solve ``L_G x = b`` for every ``b`` in ``rhs`` with ONE blocked
    Chebyshev iteration (Theorem 1.3 amortised over instances).

    All instances share the preprocessing sparsifier and advance in lockstep
    on an ``(n, k)`` block, so at ``k`` right-hand sides the per-instance cost
    is a fraction of ``k`` separate :func:`solve_laplacian` calls.  Pass an
    existing :class:`BCCLaplacianSolver` (e.g. one holding cached
    preprocessing from the serving layer) to skip preprocessing entirely.
    """
    if solver is None:
        solver = BCCLaplacianSolver(graph, seed=seed, **kwargs)
    return solver.solve_many(list(rhs), eps=eps)


def effective_resistances(
    graph: WeightedGraph,
    pairs: Optional[Iterable[Tuple[int, int]]] = None,
    backend: str = "auto",
    solver=None,
    eta: Optional[float] = None,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Effective resistances, batched through one Laplacian factorisation.

    With ``pairs=None`` this returns the resistance of every edge in
    canonical order (delegating to
    :func:`repro.graphs.laplacian.effective_resistances`).  With an iterable
    of ``(u, v)`` vertex pairs -- which need not be edges -- all queries are
    answered from a single factorisation (sparse backend) or pseudoinverse
    (dense backend): ``u == v`` pairs report ``0`` and cross-component pairs
    ``inf``.  Pass ``solver`` to reuse an already-built
    :class:`GroundedLaplacianSolver`,
    :class:`~repro.linalg.sparse_backend.ResistanceOracle` or
    :class:`~repro.linalg.resistance.SketchedResistanceOracle` (the serving
    layer caches one per graph); anything with a ``pair_resistances(u, v)``
    method works.

    ``eta`` is the approximate-resistance knob: a float in ``(0, 1)``
    accepts relative error ``eta`` (with high probability over ``seed``),
    served from one JL-sketched oracle of ``k = O(eta^-2 log m)`` rows --
    ``k`` blocked solves of build work and ``O(n k)`` memory instead of one
    solve per pair.  The one-shot facade only pays that build when the pair
    list is long enough to beat per-pair solves (``> k`` pairs); shorter
    lists are answered exactly, which trivially satisfies ``eta``.  For a
    reusable sketch across calls build a
    :class:`~repro.linalg.resistance.SketchedResistanceOracle` once and pass
    it as ``solver`` (its own accuracy contract then applies; ``eta`` is
    ignored).
    """
    if pairs is None and solver is None and eta is None:
        return _edge_effective_resistances(graph, backend=backend)
    if pairs is None:
        u, v, _ = graph.edge_array()
        if u.size == 0:
            return np.zeros(0)
    else:
        pair_array = np.asarray(list(pairs), dtype=np.int64)
        if pair_array.size == 0:
            return np.zeros(0)
        if pair_array.ndim != 2 or pair_array.shape[1] != 2:
            raise ValueError(f"pairs must be (u, v) tuples, got shape {pair_array.shape}")
        u, v = pair_array[:, 0], pair_array[:, 1]
    if solver is not None:
        return solver.pair_resistances(u, v)
    if eta is not None:
        from repro.linalg.jl import resistance_sketch_dimension
        from repro.linalg.resistance import SketchedResistanceOracle

        if u.size > resistance_sketch_dimension(graph.m, eta):
            oracle = SketchedResistanceOracle(graph, eta=eta, seed=seed)
            return oracle.pair_resistances(u, v)
        # fall through: fewer pairs than sketch rows, exact per-pair solves
        # are cheaper than the build and exact answers satisfy any eta
    if resolve_backend(graph, backend) == "sparse":
        return GroundedLaplacianSolver(graph).pair_resistances(u, v)
    # dense reference: read all pair resistances off the pseudoinverse, with
    # the same cross-component semantics as the grounded path
    if u.size and (int(min(u.min(), v.min())) < 0 or int(max(u.max(), v.max())) >= graph.n):
        raise ValueError(f"pair endpoints out of range [0, {graph.n})")
    from repro.graphs.laplacian import laplacian_pseudoinverse

    labels = np.empty(graph.n, dtype=np.int64)
    for i, component in enumerate(graph.connected_components()):
        labels[sorted(component)] = i
    Lplus = laplacian_pseudoinverse(graph)
    resistances = Lplus[u, u] + Lplus[v, v] - 2.0 * Lplus[u, v]
    resistances[labels[u] != labels[v]] = np.inf
    resistances[u == v] = 0.0
    return resistances


def solve_lp(
    problem: LPProblem,
    x0: np.ndarray,
    eps: float = 1e-6,
    engine: str = "barrier",
    seed: Optional[int] = None,
    **kwargs,
) -> LPSolution:
    """Solve ``min c^T x, A^T x = b, l <= x <= u`` from the interior point ``x0``
    (Theorem 1.4).  ``engine`` selects the robust log-barrier IPM (default) or
    the faithful Lee-Sidford weighted path following (``"lee-sidford"``)."""
    if engine == "barrier":
        return BarrierIPM(problem, **kwargs).solve(x0, eps=eps)
    if engine == "lee-sidford":
        return LeeSidfordSolver(problem, seed=seed, **kwargs).solve(x0, eps=eps)
    raise ValueError(f"unknown engine {engine!r}; use 'barrier' or 'lee-sidford'")


def min_cost_max_flow(
    network: FlowNetwork,
    seed: Optional[int] = None,
    service=None,
    **kwargs,
) -> MinCostFlowResult:
    """Exact minimum cost maximum ``s``-``t`` flow (Theorem 1.1).

    Pass ``service`` (a :class:`~repro.serve.service.LaplacianService`) to
    route the solve through the serving tier: the network is registered (a
    content-level no-op when already registered) and the pipeline consumes
    cached artifacts -- the phase-1 max flow and every Newton system's gram
    factorisation -- so repeated solves of the same network run warm.
    """
    if service is not None:
        key = service.register(network)
        return service.min_cost_flow(key, seed=seed, **kwargs)
    return _min_cost_max_flow(network, seed=seed, **kwargs)
