"""End-to-end pipeline run reproducing Figure 1 of the paper.

Runs every box of the dependency diagram on one input: a probabilistic
spanner, the spectral sparsifier built from bundles of such spanners, the
Laplacian solver preconditioned by the sparsifier, an LP solve whose Newton
systems go through the SDD reduction, and finally an exact minimum cost
maximum flow -- collecting the round counts of every stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.flow.mincostflow import min_cost_max_flow
from repro.graphs.digraph import FlowNetwork
from repro.graphs.graph import WeightedGraph
from repro.solvers.laplacian import BCCLaplacianSolver
from repro.spanners.probabilistic import probabilistic_spanner
from repro.sparsify.spectral import spectral_sparsify


@dataclass
class PipelineReport:
    """Round counts and key figures of one full pipeline run (Figure 1)."""

    spanner_edges: int = 0
    spanner_rounds: int = 0
    sparsifier_edges: int = 0
    sparsifier_rounds: int = 0
    laplacian_solve_rounds: float = 0.0
    laplacian_relative_error: float = 0.0
    flow_value: float = 0.0
    flow_cost: float = 0.0
    flow_rounds: float = 0.0
    stage_rounds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_rounds(self) -> float:
        return float(sum(self.stage_rounds.values()))


def run_full_pipeline(
    network: FlowNetwork,
    seed: Optional[int] = None,
    sparsifier_t_override: Optional[int] = 2,
    backend: str = "auto",
) -> PipelineReport:
    """Run spanner -> sparsifier -> Laplacian solver -> LP solver -> min-cost flow.

    The undirected support of ``network`` (unit weights) is used for the
    spanner/sparsifier/Laplacian stages; the flow stages run on ``network``
    itself.  ``backend`` selects the linear-algebra path of the Laplacian
    solver stage (``'auto'``/``'dense'``/``'sparse'``; see
    :mod:`repro.linalg.sparse_backend`).
    """
    rng = np.random.default_rng(seed)
    report = PipelineReport()

    # undirected unit-weight support: dedupe arc directions, one bulk insert
    support = WeightedGraph(network.n)
    keys = np.array(
        sorted({(u, v) if u < v else (v, u) for (u, v) in network.edge_keys()}),
        dtype=np.int64,
    ).reshape(-1, 2)
    support.add_edges(keys[:, 0], keys[:, 1], 1.0)

    spanner_result = probabilistic_spanner(support, k=2, seed=seed)
    report.spanner_edges = len(spanner_result.f_plus)
    report.spanner_rounds = spanner_result.rounds
    report.stage_rounds["spanner"] = float(spanner_result.rounds)

    sparsifier_result = spectral_sparsify(
        support, eps=0.5, seed=seed, t_override=sparsifier_t_override
    )
    report.sparsifier_edges = sparsifier_result.size
    report.sparsifier_rounds = sparsifier_result.rounds
    report.stage_rounds["sparsifier"] = float(sparsifier_result.rounds)

    solver = BCCLaplacianSolver(
        support, seed=seed, t_override=sparsifier_t_override, backend=backend
    )
    b = rng.normal(size=support.n)
    solve_report = solver.solve(b, eps=1e-6, check=True)
    report.laplacian_solve_rounds = solve_report.rounds
    report.laplacian_relative_error = float(solve_report.measured_relative_error or 0.0)
    report.stage_rounds["laplacian_solver"] = float(
        solver.preprocessing.rounds + solve_report.rounds
    )

    flow_result = min_cost_max_flow(network, seed=seed, verify_against_baseline=True)
    report.flow_value = flow_result.value
    report.flow_cost = flow_result.cost
    report.flow_rounds = flow_result.rounds
    report.stage_rounds["lp_and_flow"] = float(flow_result.rounds)
    return report
