"""The Lee-Sidford weighted path-following LP solver (Section 4.2, Algorithms 9-11).

Structure-faithful implementation of ``LPSolve`` / ``PathFollowing`` /
``CenteringInexact``: the iterate is a pair ``(x, w)`` of a primal point and a
vector of (approximate, regularised) Lewis weights, each centering step takes a
projected Newton step on ``x`` (one ``A^T D A`` solve), recomputes approximate
Lewis weights at the new point and moves ``log w`` towards them by a step
projected onto a mixed norm ball (Section 4.3).

Two kinds of parameters exist:

* the *structural* ones of the paper (``c_k = 2 log 4m``, ``C_norm``,
  ``R``, the ``eta``-accuracies), reproduced verbatim in
  :func:`lee_sidford_constants`; and
* the *step-size aggressiveness*.  The paper's literal ``alpha =
  R/(1600 sqrt(n) log^2 m)`` is astronomically small (it exists to make the
  proof go through) and would need ~10^10 iterations even for toy instances.
  The implementation therefore exposes ``alpha`` with a practical default of
  ``1/(8 sqrt(n))`` -- the same ``Theta(1/sqrt(n))`` dependence that gives the
  ``O(sqrt(n) log(1/eps))`` iteration count of Theorem 1.4 -- and re-centers
  with as many ``CenteringInexact`` steps as needed (measured and reported).
  This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.congest.ledger import CommunicationPrimitives
from repro.graphs.graph import WeightedGraph
from repro.linalg.lewis import compute_apx_weights, lewis_p_parameter, lewis_regularisation
from repro.linalg.mixed_ball import project_mixed_ball
from repro.lp.barriers import BarrierFunction
from repro.lp.gram import detect_incidence_structure, scale_rows
from repro.lp.problem import LPProblem, LPSolution


@dataclass
class LeeSidfordConstants:
    """The weight-function constants of Definition 4.2 / Section 4.2."""

    c_1: float
    c_s: float
    c_k: float
    C_norm: float
    R: float
    p: float
    c_0: float


def lee_sidford_constants(m: int, n: int) -> LeeSidfordConstants:
    """Constants for a problem with ``m`` variables and ``n`` constraints."""
    m = max(2, int(m))
    n = max(1, int(n))
    c_1 = 1.5 * n
    c_s = 4.0
    c_k = 2.0 * math.log(4 * m)
    C_norm = 24.0 * math.sqrt(c_s * c_k)
    R = 1.0 / (768.0 * c_k ** 2 * math.log(36.0 * c_1 * c_s * c_k * m))
    return LeeSidfordConstants(
        c_1=c_1,
        c_s=c_s,
        c_k=c_k,
        C_norm=C_norm,
        R=R,
        p=lewis_p_parameter(m),
        c_0=lewis_regularisation(m, n),
    )


@dataclass
class LeeSidfordReport:
    """Diagnostics of one LPSolve run."""

    path_following_steps: int = 0
    centering_steps: int = 0
    gram_solves: int = 0
    weight_recomputations: int = 0
    final_centrality: float = 0.0
    objective_history: List[float] = field(default_factory=list)


class LeeSidfordSolver:
    """Weighted path finding in the Broadcast Congested Clique (Theorem 1.4).

    Parameters
    ----------
    problem:
        LP in the form ``min c^T x, A^T x = b, l <= x <= u`` with ``rank(A) = n``.
    alpha:
        Relative step of the path parameter ``t`` per iteration.  ``None``
        selects the practical ``1/(8 sqrt(n))`` default; the paper's proof value
        is ``R / (1600 sqrt(n) log^2 m)``.
    reweight:
        If True (default), maintain approximate Lewis weights as in the paper;
        if False, keep ``w === 1`` (classical path following, used in ablations).
    use_sketching:
        Forwarded to the Lewis-weight computation (JL-sketched leverage scores
        versus exact ones).
    resistance_oracle:
        Serving hook forwarded to graph-mode Lewis-weight computations (see
        :func:`repro.linalg.lewis.compute_apx_weights`): a resident
        sketched-resistance oracle for the auxiliary graph that lets uniform
        iterates read leverage scores off shared serving artifacts.  Only
        consulted when ``A`` is incidence-structured with a bijective
        row/pair map.
    """

    def __init__(
        self,
        problem: LPProblem,
        alpha: Optional[float] = None,
        reweight: bool = True,
        use_sketching: bool = False,
        comm: Optional[CommunicationPrimitives] = None,
        centering_repeats: int = 3,
        seed: Optional[int] = None,
        resistance_oracle=None,
    ):
        self.problem = problem
        self.constants = lee_sidford_constants(problem.m, problem.n)
        self.alpha = alpha if alpha is not None else 1.0 / (8.0 * math.sqrt(max(1, problem.n)))
        self.reweight = reweight
        self.use_sketching = use_sketching
        self.comm = comm
        self.centering_repeats = int(centering_repeats)
        self.rng = np.random.default_rng(seed)
        self.report = LeeSidfordReport()
        self.resistance_oracle = resistance_oracle
        # Lemma 5.1 fast path: if A is incidence-structured, every
        # Lewis-weight recomputation can run in graph mode (leverage scores =
        # weighted effective resistances on the auxiliary graph, one sparse
        # grounded factorisation per iteration) instead of sketching or
        # pinv-ing the reweighted matrix.  Rows that collapse onto repeated
        # pairs (anti-parallel flow edges) share one resistance per pair.
        self.structure = detect_incidence_structure(problem.A)

    # -- inner machinery -------------------------------------------------------------

    def _projected_step(
        self,
        barrier: BarrierFunction,
        x: np.ndarray,
        w: np.ndarray,
        t: float,
        cost: np.ndarray,
    ) -> np.ndarray:
        """The Newton-like step of CenteringInexact (line 3 of Algorithm 11).

        Computes ``P_{x,w} v`` with ``v = (t c + w phi'(x)) / (w sqrt(phi''(x)))``
        through one solve with ``A_x^T W^{-1} A_x`` and returns the movement
        ``- (1/sqrt(phi''(x))) P_{x,w} v`` (before the inside-the-box safeguard).
        """
        problem = self.problem
        phi1 = barrier.gradient(x)
        phi2 = barrier.hessian(x)
        sqrt_phi2 = np.sqrt(phi2)
        v = (t * cost + w * phi1) / (w * sqrt_phi2)
        # A_x = (Phi'')^{-1/2} A ; the projection matrix is
        # P = I - W^{-1} A_x (A_x^T W^{-1} A_x)^{-1} A_x^T
        A_x = scale_rows(problem.A, 1.0 / sqrt_phi2)
        d = 1.0 / (w * phi2)  # diagonal of (Phi'')^{-1/2} W^{-1} (Phi'')^{-1/2}
        rhs = A_x.T @ v
        y = problem.solve_gram(d, rhs)
        self.report.gram_solves += 1
        projected = v - (A_x @ y) / w
        if self.comm is not None:
            self.comm.matvec("A_x^T v")
            self.comm.matvec("A_x y")
            self.comm.laplacian_solve(1.0, "solve in A_x^T W^{-1} A_x")
            self.comm.vector_op("centering vector operations")
        return -projected / sqrt_phi2

    def _mixed_norm(self, w: np.ndarray, z: np.ndarray) -> float:
        """The ``|| . ||_{w + inf}`` norm of Section 4.1."""
        weighted = math.sqrt(float(np.sum(w * z * z)))
        return float(np.max(np.abs(z))) + self.constants.C_norm * weighted

    def _lewis_weights(
        self,
        phi2: np.ndarray,
        w0: Optional[np.ndarray],
        eta: float,
        max_iterations: int,
    ):
        """Approximate Lewis weights of ``(Phi'')^{-1/2} A``, per row.

        On incidence-structured problems the reweighted matrix *is* the
        weighted incidence matrix of the auxiliary graph (row ``r`` has
        squared norm ``scale_r^2 / phi2_r``), so the computation runs in
        graph-``rows`` mode -- each fixed-point iteration costs one sparse
        grounded factorisation instead of a dense pseudoinverse or a JL
        regression loop, with parallel rows of one pair sharing a single
        resistance.  Generic problems take the matrix path unchanged.
        """
        structure = self.structure
        if structure is None:
            A_x = scale_rows(self.problem.A, 1.0 / np.sqrt(phi2))
            return compute_apx_weights(
                A_x,
                self.constants.p,
                w0=w0,
                eta=eta,
                rng=self.rng,
                comm=self.comm,
                use_sketching=self.use_sketching,
                max_iterations=max_iterations,
            )
        row_norm2 = 1.0 / phi2
        if structure.row_scale2 is not None:
            row_norm2 = row_norm2 * structure.row_scale2
        graph = WeightedGraph(structure.n + 1)
        # pairs are stored in the canonical order WeightedGraph.edge_array
        # uses, so pair index == auxiliary-graph edge index
        graph.add_edges(structure.pair_u, structure.pair_v, structure.aggregate(1.0 / phi2))
        return compute_apx_weights(
            p=self.constants.p,
            w0=w0,
            eta=eta,
            rng=self.rng,
            comm=self.comm,
            use_sketching=self.use_sketching,
            max_iterations=max_iterations,
            graph=graph,
            resistance_oracle=self.resistance_oracle,
            rows=(structure.row_pair, row_norm2),
        )

    def _recompute_weights(
        self, barrier: BarrierFunction, x_new: np.ndarray, w: np.ndarray, delta: float
    ) -> np.ndarray:
        """Lines 4-6 of CenteringInexact: move ``log w`` towards the new Lewis weights."""
        constants = self.constants
        phi2 = barrier.hessian(x_new)
        target_eta = min(0.5, math.expm1(constants.R))
        weights_report = self._lewis_weights(
            phi2,
            np.maximum(w - constants.c_0, constants.c_0),
            max(target_eta, 1e-3),
            4,
        )
        self.report.weight_recomputations += 1
        z = np.log(np.maximum(weights_report.weights + constants.c_0, 1e-300))
        log_w = np.log(w)
        direction = (1.0 / (12.0 * constants.R)) * (z - log_w)
        if not np.any(direction):
            return w
        ball = project_mixed_ball(direction, constants.C_norm * np.sqrt(w), comm=self.comm)
        step_scale = (1.0 - 6.0 / (7.0 * constants.c_k)) * min(1.0, delta)
        u = step_scale * ball.x
        # keep the weights in a sane range around the regularisation floor
        new_log_w = np.clip(log_w + u, math.log(constants.c_0 / 2.0), math.log(2.0 * constants.c_1))
        return np.exp(new_log_w)

    def centering_inexact(
        self,
        barrier: BarrierFunction,
        x: np.ndarray,
        w: np.ndarray,
        t: float,
        cost: np.ndarray,
    ):
        """One step of ``CenteringInexact`` (Algorithm 11)."""
        step = self._projected_step(barrier, x, w, t, cost)
        phi2 = barrier.hessian(x)
        delta = self._mixed_norm(w, -step * np.sqrt(phi2))
        # Safeguard (deviation from the idealised analysis): shrink the step so
        # the iterate stays strictly inside the box.
        alpha_max = 1.0
        with np.errstate(divide="ignore", invalid="ignore"):
            down = np.where(step < 0, (x - barrier.lower) / (-step), np.inf)
            up = np.where(step > 0, (barrier.upper - x) / step, np.inf)
        limit = float(min(np.min(down), np.min(up)))
        alpha_max = min(alpha_max, 0.9 * limit)
        x_new = x + alpha_max * step

        if self.reweight:
            w_new = self._recompute_weights(barrier, x_new, w, delta)
        else:
            w_new = w
        self.report.centering_steps += 1
        self.report.final_centrality = delta
        return x_new, w_new, delta

    def path_following(
        self,
        x: np.ndarray,
        w: np.ndarray,
        t_start: float,
        t_end: float,
        eta: float,
        cost: np.ndarray,
        max_steps: int = 10_000,
    ):
        """``PathFollowing`` (Algorithm 10) from ``t_start`` to ``t_end``."""
        barrier = self.problem.barrier()
        t = float(t_start)
        steps = 0
        while not math.isclose(t, t_end, rel_tol=1e-12) and steps < max_steps:
            steps += 1
            for _ in range(self.centering_repeats):
                x, w, delta = self.centering_inexact(barrier, x, w, t, cost)
                if delta < 0.1:
                    break
            if t_end > t:
                t = min((1.0 + self.alpha) * t, t_end)
            else:
                t = max((1.0 - self.alpha) * t, t_end)
            self.report.path_following_steps += 1
            self.report.objective_history.append(self.problem.objective(x))
        # final centering at t_end (the paper does 4 c_k log(1/eta) steps)
        final_steps = min(60, max(4, math.ceil(4.0 * math.log(1.0 / max(eta, 1e-12)))))
        for _ in range(final_steps):
            x, w, delta = self.centering_inexact(barrier, x, w, t_end, cost)
            if delta < eta:
                break
        return x, w

    # -- public API ---------------------------------------------------------------------

    def solve(
        self,
        x0: np.ndarray,
        eps: float = 1e-3,
        max_steps: int = 10_000,
    ) -> LPSolution:
        """``LPSolve`` (Algorithm 9): returns ``x`` with ``c^T x <= OPT + eps``.

        ``x0`` must be strictly feasible.  The two PathFollowing phases follow
        the paper: the first re-centers the start with respect to the synthetic
        cost ``d = w phi'(x0)``, the second follows the real cost up to
        ``t_2 ~ m / eps``.
        """
        problem = self.problem
        if not problem.is_strictly_feasible(x0, tol=1e-6):
            raise ValueError("LPSolve needs a strictly feasible starting point")
        barrier = problem.barrier()
        m, n = problem.m, problem.n
        U = problem.bound_parameter(x0)

        self.report = LeeSidfordReport()
        # initial regularised Lewis weights at x0
        if self.reweight:
            phi2 = barrier.hessian(np.asarray(x0, dtype=float))
            init = self._lewis_weights(phi2, None, 0.25, 6)
            w = init.weights + self.constants.c_0
        else:
            w = np.ones(m)

        x = np.array(x0, dtype=float)
        d = w * barrier.gradient(x)

        t1 = 1.0 / (2.0 ** 10 * (m ** 1.5) * (U ** 2) * max(1.0, math.log(m) ** 4))
        t2 = 2.0 * m / max(eps, 1e-300)
        eta1 = 1.0 / (2.0 ** 18 * max(1.0, math.log(m) ** 3))
        eta2 = eps / (8.0 * U ** 2)

        x, w = self.path_following(x, w, 1.0, t1, eta1, d, max_steps=max_steps)
        x, w = self.path_following(x, w, t1, t2, eta2, problem.c, max_steps=max_steps)

        rounds = self.comm.ledger.total_rounds if self.comm is not None else 0.0
        return LPSolution(
            x=x,
            objective=problem.objective(x),
            iterations=self.report.path_following_steps,
            rounds=rounds,
            converged=problem.is_feasible(x, tol=1e-5),
            duality_gap=(m + 1) / t2,
            history=self.report.objective_history,
        )

    def iteration_bound(self, eps: float, U: Optional[float] = None) -> float:
        """The ``O(sqrt(n) log(U/eps))`` bound of Theorem 1.4."""
        n = max(2, self.problem.n)
        U = U if U is not None else 2.0
        return math.sqrt(n) * math.log(max(2.0, U) / max(eps, 1e-300))
