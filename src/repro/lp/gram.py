"""SDD Gram-solve machinery for flow LPs (Lemma 5.1) and the serving bridge.

Every Newton system of the flow LP engines is a solve with ``A^T D A`` for a
positive diagonal ``D``.  Lemma 5.1 observes that for the flow formulations
``A`` is (an augmentation of) an edge-vertex incidence matrix, so ``A^T D A``
is a *grounded Laplacian* of an auxiliary graph whose edge weights are sums of
entries of ``D`` -- symmetric, diagonally dominant, and solvable with the
sparse ``splu`` + Chebyshev machinery of Section 3 instead of a dense
``O(n^3)`` factorisation per Newton step.

This module provides three layers on top of that observation:

* :func:`detect_incidence_structure` -- recognise, from ``A`` alone, that every
  row is ``+/- s (e_j - e_k)`` or ``+/- s e_j`` (the fixed-value LP's incidence
  rows and the Section 5 LP's slack rows respectively) and compile the
  row -> vertex-pair mapping into an :class:`IncidenceStructure`.  Single-entry
  rows become edges to a synthetic *ground* vertex; ``A^T D A`` is then exactly
  the ground-grounded Laplacian of the auxiliary graph.
* :class:`GramFactorisation` -- one immutable sparse ``splu`` factorisation of
  ``A^T D A`` at a fixed aggregated weight vector; what the
  :class:`~repro.serve.artifacts.ArtifactCache` stores.
* :class:`GramSolverBridge` -- the ``LPProblem.gram_solver`` plug-in that
  answers each solve through cached factorisations.  Between Newton steps only
  the diagonal ``D`` drifts, so the bridge serves each request by the cheapest
  sufficient strategy: exact reuse of the current factorisation, bridge-local
  Sherman-Morrison rank-1 overlays for a few *big movers* (the reweight-delta
  analogue of the PR-5 repair path -- the cached base factorisation is never
  mutated), preconditioned Chebyshev against the held factorisation while the
  residual drift stays inside a spectral band, and a fresh factorisation
  (cache :meth:`~repro.serve.artifacts.ArtifactCache.get_or_build`, so repeat
  solves on the same instance hit warm artifacts) once the drift leaves it.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.sparse import csgraph

from repro.linalg.sparse_backend import NumericalHealthError
from repro.solvers.chebyshev import preconditioned_chebyshev

#: multiplicative per-weight drift band served by Chebyshev against the held
#: factorisation; drift beyond it (on more pairs than the rank-1 budget
#: absorbs) refactorises.  The band is deliberately tight: inside it the
#: preconditioned condition number is at most ``DRIFT_BAND**2 ~ 1.1``, so a
#: handful of Chebyshev iterations (one matvec + one triangular solve each)
#: answers exactly, while the big inter-stage moves of an IPM refactorise and
#: land in the artifact cache where repeat solves find them warm.
DRIFT_BAND = 1.05

#: Chebyshev relative-residual target for in-band solves; comfortably below
#: what the IPM's infeasible-start correction absorbs per Newton step.
CHEBYSHEV_RESIDUAL = 1e-12

#: refuse a Sherman-Morrison overlay whose denominator is this close to
#: singular (mirrors the sparse-backend repair tolerance).
OVERLAY_DENOM_TOL = 1e-6

#: columns below this gate keep the dense fallback in
#: :func:`default_gram_solver`: a dense ``solve`` on a tiny Gram matrix beats
#: the per-call sparse assembly + ``splu`` overhead.
SPARSE_GRAM_MIN_COLS = 48


def scale_rows(A, s: np.ndarray):
    """``diag(s) @ A`` for dense or scipy-sparse ``A`` (rows scaled by ``s``)."""
    if sp.issparse(A):
        return (sp.diags(np.asarray(s, dtype=float)) @ A).tocsr()
    return np.asarray(A, dtype=float) * np.asarray(s, dtype=float)[:, None]


@dataclass(frozen=True)
class IncidenceStructure:
    """Compiled row -> vertex-pair mapping of an incidence-structured ``A``.

    The auxiliary graph lives on ``n + 1`` vertices: the ``n`` LP columns plus
    the synthetic ground vertex ``n`` (for the flow LPs, the dropped source
    row).  ``A^T D A`` equals the Laplacian of that graph -- with pair ``P``
    carrying weight ``sum_{rows r of P} scale_r^2 d_r`` -- after deleting the
    ground row and column.  Pairs are stored canonically (``(min, max)``
    endpoint order, lexicographically sorted), so two structures built from
    the same pattern -- whether detected from ``A`` or compiled directly from
    a :class:`~repro.graphs.digraph.FlowNetwork` -- are bit-identical and
    share one :attr:`fingerprint` (and hence one family of cached
    factorisations).
    """

    n: int
    pair_u: np.ndarray  #: (P,) smaller endpoint of each distinct pair
    pair_v: np.ndarray  #: (P,) larger endpoint (== n for ground pairs)
    row_pair: np.ndarray  #: (m,) LP row -> pair index
    row_scale2: Optional[np.ndarray]  #: (m,) squared row magnitudes; None == all 1
    fingerprint: str
    #: COO assembly pattern of the grounded Laplacian (precompiled once)
    _entry_rows: np.ndarray = field(repr=False)
    _entry_cols: np.ndarray = field(repr=False)
    _entry_sign: np.ndarray = field(repr=False)
    _entry_pair: np.ndarray = field(repr=False)

    @property
    def ground(self) -> int:
        """Index of the synthetic ground vertex."""
        return self.n

    @property
    def m(self) -> int:
        """Number of LP rows the structure covers."""
        return int(self.row_pair.shape[0])

    @property
    def n_pairs(self) -> int:
        """Number of distinct vertex pairs (auxiliary-graph edges)."""
        return int(self.pair_u.shape[0])

    @classmethod
    def from_rows(
        cls,
        n: int,
        row_a: np.ndarray,
        row_b: np.ndarray,
        scale: Optional[np.ndarray] = None,
    ) -> Optional["IncidenceStructure"]:
        """Compile per-row endpoint pairs (ground == ``n``) into a structure.

        Returns ``None`` when the auxiliary graph is disconnected -- the
        grounded Laplacian is then singular (``A`` rank-deficient) and the
        caller must keep its generic fallback.
        """
        row_a = np.asarray(row_a, dtype=np.int64)
        row_b = np.asarray(row_b, dtype=np.int64)
        lo = np.minimum(row_a, row_b)
        hi = np.maximum(row_a, row_b)
        codes = lo * (n + 1) + hi
        unique_codes, row_pair = np.unique(codes, return_inverse=True)
        pair_u = (unique_codes // (n + 1)).astype(np.int64)
        pair_v = (unique_codes % (n + 1)).astype(np.int64)

        adjacency = sp.coo_matrix(
            (np.ones(pair_u.shape[0]), (pair_u, pair_v)), shape=(n + 1, n + 1)
        )
        n_components, _ = csgraph.connected_components(adjacency, directed=False)
        if n_components != 1:
            return None

        scale2: Optional[np.ndarray] = None
        if scale is not None:
            scale = np.asarray(scale, dtype=float)
            if not np.all(scale == 1.0):
                scale2 = scale * scale

        # precompile the COO pattern of the grounded Laplacian: pair (a, b)
        # with a, b < n contributes (a,a,+) (b,b,+) (a,b,-) (b,a,-); a ground
        # pair (a, n) contributes only its diagonal (a,a,+)
        interior = pair_v < n
        ia, ib = pair_u[interior], pair_v[interior]
        ipair = np.flatnonzero(interior)
        gpair = np.flatnonzero(~interior)
        ga = pair_u[~interior]
        entry_rows = np.concatenate([ia, ib, ia, ib, ga])
        entry_cols = np.concatenate([ia, ib, ib, ia, ga])
        entry_sign = np.concatenate(
            [
                np.ones(ia.size),
                np.ones(ib.size),
                -np.ones(ia.size),
                -np.ones(ib.size),
                np.ones(ga.size),
            ]
        )
        entry_pair = np.concatenate([ipair, ipair, ipair, ipair, gpair])

        digest = hashlib.sha256()
        digest.update(str(n).encode("ascii"))
        digest.update(pair_u.tobytes())
        digest.update(pair_v.tobytes())
        digest.update(row_pair.astype(np.int64).tobytes())
        if scale2 is not None:
            digest.update(scale2.tobytes())
        return cls(
            n=int(n),
            pair_u=pair_u,
            pair_v=pair_v,
            row_pair=row_pair.astype(np.int64),
            row_scale2=scale2,
            fingerprint=digest.hexdigest(),
            _entry_rows=entry_rows.astype(np.int64),
            _entry_cols=entry_cols.astype(np.int64),
            _entry_sign=entry_sign,
            _entry_pair=entry_pair.astype(np.int64),
        )

    def aggregate(self, d: np.ndarray) -> np.ndarray:
        """Pair weights ``w_P = sum_{rows r of P} scale_r^2 d_r`` from ``D``."""
        d = np.asarray(d, dtype=float)
        if self.row_scale2 is not None:
            d = d * self.row_scale2
        return np.bincount(self.row_pair, weights=d, minlength=self.n_pairs)

    def reduced_matrix(self, w: np.ndarray) -> sp.csr_matrix:
        """The grounded Laplacian ``A^T D A`` at pair weights ``w`` (CSR)."""
        data = self._entry_sign * w[self._entry_pair]
        return sp.csr_matrix(
            (data, (self._entry_rows, self._entry_cols)), shape=(self.n, self.n)
        )

    def pair_indicator(self, pair: int) -> np.ndarray:
        """The reduced vector ``c`` with ``c c^T`` the pair's Laplacian term."""
        c = np.zeros(self.n)
        c[self.pair_u[pair]] = 1.0
        if self.pair_v[pair] < self.n:
            c[self.pair_v[pair]] = -1.0
        return c


def detect_incidence_structure(A) -> Optional[IncidenceStructure]:
    """Recognise an incidence-structured ``A`` (Lemma 5.1) or return ``None``.

    Accepts dense arrays and scipy sparse matrices.  Eligible rows are
    ``s (e_j - e_k)`` (two entries of equal magnitude and opposite sign) or
    ``s e_j`` (one nonzero entry); anything else -- more entries, equal-sign
    pairs, zero rows -- disqualifies the whole matrix, as does a disconnected
    auxiliary graph (rank-deficient ``A``).
    """
    if sp.issparse(A):
        coo = A.tocoo()
        rows, cols, data = coo.row, coo.col, coo.data
        keep = data != 0.0
        rows, cols, data = rows[keep], cols[keep], data[keep]
        m, n = A.shape
    else:
        A = np.asarray(A)
        if A.ndim != 2:
            return None
        m, n = A.shape
        rows, cols = np.nonzero(A)
        data = A[rows, cols]
    if m == 0 or n == 0:
        return None
    counts = np.bincount(rows, minlength=m)
    if counts.size and (counts.max(initial=0) > 2 or counts.min(initial=3) < 1):
        return None

    order = np.lexsort((cols, rows))
    cols = cols[order]
    data = data[order]
    starts = np.zeros(m, dtype=np.int64)
    starts[1:] = np.cumsum(counts)[:-1]

    first_col = cols[starts]
    first_val = data[starts]
    row_a = np.full(m, n, dtype=np.int64)
    row_b = first_col.astype(np.int64)
    scale = np.abs(first_val)
    two = counts == 2
    if two.any():
        second = starts[two] + 1
        if not np.array_equal(first_val[two], -data[second]):
            return None
        row_a[two] = cols[second]
    if np.any(scale <= 0.0):
        return None
    return IncidenceStructure.from_rows(n, row_a, row_b, scale=scale)


def flow_gram_structure(network, formulation: str = "fixed-value") -> IncidenceStructure:
    """Compile the Gram structure of a flow LP directly from the network.

    Produces exactly the structure :func:`detect_incidence_structure` finds on
    the constraint matrix of :func:`~repro.flow.lp_formulation.build_fixed_value_lp`
    (``formulation="fixed-value"``) or
    :func:`~repro.flow.lp_formulation.build_flow_lp` (``"section5"``) -- same
    fingerprint, so gram queries and full flow solves share one family of
    cached factorisations.  LP columns are the non-source vertices in sorted
    order and the ground vertex is the dropped source.
    """
    if formulation not in GRAM_FORMULATIONS:
        raise ValueError(
            f"unknown gram formulation {formulation!r}; use one of {GRAM_FORMULATIONS}"
        )
    columns = [v for v in range(network.n) if v != network.source]
    col_index = {v: i for i, v in enumerate(columns)}
    n = len(columns)
    ground = n

    def col(vertex: int) -> int:
        return col_index.get(vertex, ground)

    row_a: List[int] = []
    row_b: List[int] = []
    for (u, v) in network.edge_keys():
        row_a.append(col(u))
        row_b.append(col(v))
    if formulation == "section5":
        # y and z slack rows are +/- e_i (one per non-source vertex, twice),
        # the F row is -e_t: all edges from an LP column to ground
        for _ in range(2):
            for i in range(n):
                row_a.append(i)
                row_b.append(ground)
        row_a.append(col(network.sink))
        row_b.append(ground)
    structure = IncidenceStructure.from_rows(
        n, np.asarray(row_a, dtype=np.int64), np.asarray(row_b, dtype=np.int64)
    )
    if structure is None:
        raise ValueError(
            "flow network's auxiliary gram graph is disconnected; the LP "
            "constraint matrix is rank-deficient"
        )
    return structure


GRAM_FORMULATIONS = ("fixed-value", "section5")


def weights_digest(w: np.ndarray) -> str:
    """Content digest of an aggregated pair-weight vector (cache identity)."""
    return hashlib.sha256(np.ascontiguousarray(w, dtype=float).tobytes()).hexdigest()


class GramFactorisation:
    """Immutable sparse ``splu`` factorisation of ``A^T D A`` at fixed weights.

    This is the artifact the serving cache stores: it is never mutated after
    construction (bridge-local Sherman-Morrison overlays live in the
    :class:`GramSolverBridge`, not here), so one cached instance can serve any
    number of concurrent bridges.
    """

    def __init__(self, structure: IncidenceStructure, w: np.ndarray):
        self.structure = structure
        self.w = np.array(w, dtype=float)
        reduced = structure.reduced_matrix(self.w).tocsc()
        self._lu = spla.splu(reduced, permc_spec="MMD_AT_PLUS_A")
        self._nnz = int(self._lu.L.nnz + self._lu.U.nnz)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Exact solve against the factorised weights (triangular solves only)."""
        return self._lu.solve(np.asarray(rhs, dtype=float))

    def nbytes(self) -> int:
        """Resident size for cache accounting (LU factors + weights)."""
        return int(12 * self._nnz + 2 * self.structure.n * 4 + self.w.nbytes)


@dataclass
class _Overlay:
    """One bridge-local Sherman-Morrison correction on top of the base LU."""

    u: int
    v: int  #: == structure.n for ground pairs (no second endpoint)
    delta: float
    z: np.ndarray
    denom: float

    def c_dot(self, x: np.ndarray, n: int) -> float:
        value = float(x[self.u])
        if self.v < n:
            value -= float(x[self.v])
        return value


@dataclass
class GramBridgeStats:
    """Per-bridge serving statistics (one bridge = one IPM run)."""

    solves: int = 0
    factorisations: int = 0
    cache_hits: int = 0
    reuse_solves: int = 0
    rank1_updates: int = 0
    chebyshev_solves: int = 0
    chebyshev_iterations: int = 0
    seconds_total: float = 0.0
    seconds_factorise: float = 0.0
    #: per-solve trajectory ``(strategy, seconds)`` -- the bench's
    #: per-iteration gram-solve cost signal
    per_solve: List[Tuple[str, float]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (the per-solve list is aggregated)."""
        seconds = [s for _, s in self.per_solve]
        return {
            "solves": self.solves,
            "factorisations": self.factorisations,
            "cache_hits": self.cache_hits,
            "reuse_solves": self.reuse_solves,
            "rank1_updates": self.rank1_updates,
            "chebyshev_solves": self.chebyshev_solves,
            "chebyshev_iterations": self.chebyshev_iterations,
            "seconds_total": self.seconds_total,
            "seconds_factorise": self.seconds_factorise,
            "per_solve_mean_seconds": float(np.mean(seconds)) if seconds else 0.0,
            "per_solve_max_seconds": float(np.max(seconds)) if seconds else 0.0,
        }


class GramSolverBridge:
    """``LPProblem.gram_solver`` plug-in serving solves from cached artifacts.

    Per solve the bridge aggregates the Newton diagonal ``d`` into auxiliary
    edge weights ``w`` and picks the cheapest sufficient strategy against the
    factorisation it currently holds:

    * ``reuse`` -- ``w`` unchanged: two triangular solves;
    * ``rank1`` -- at most :attr:`rank1_budget` pairs drifted outside the
      spectral band while the rest are unchanged: absorb the big movers with
      bridge-local Sherman-Morrison overlays (the cached base stays
      immutable), then solve exactly;
    * ``chebyshev`` -- the drift stays inside ``[1/DRIFT_BAND, DRIFT_BAND]``
      per pair (after any overlays): preconditioned Chebyshev with the held
      factorisation as ``B``, condition number at most ``band**2``;
    * ``factorise`` -- otherwise: fetch a factorisation at ``w`` through the
      :class:`~repro.serve.artifacts.ArtifactCache` (a repeat solve of the
      same instance replays the same deterministic ``w`` sequence and hits
      every one of these warm -- the cold-vs-warm spread ``BENCH_flow.json``
      records).

    Without a cache the bridge still works (factorisations are simply not
    shared across bridges).
    """

    def __init__(
        self,
        structure: IncidenceStructure,
        cache=None,
        graph_key: str = "",
        version: int = 0,
        drift_band: float = DRIFT_BAND,
        rank1_budget: Optional[int] = None,
        chebyshev_residual: float = CHEBYSHEV_RESIDUAL,
    ):
        if drift_band < 1.0:
            raise ValueError(f"drift_band must be >= 1, got {drift_band}")
        self.structure = structure
        self.cache = cache
        self.graph_key = graph_key or structure.fingerprint
        self.version = int(version)
        self.drift_band = float(drift_band)
        self.rank1_budget = (
            int(rank1_budget)
            if rank1_budget is not None
            else max(4, math.isqrt(max(1, structure.n)))
        )
        self.chebyshev_residual = float(chebyshev_residual)
        self.stats = GramBridgeStats()
        self._fact: Optional[GramFactorisation] = None
        self._overlays: List[_Overlay] = []
        self._w_state: Optional[np.ndarray] = None

    # -- gram_solver protocol --------------------------------------------------

    def __call__(self, d: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(A^T diag(d) A) y = rhs``."""
        start = time.perf_counter()
        w = self.structure.aggregate(d)
        if np.any(w <= 0.0):
            raise ValueError("gram diagonal must aggregate to positive pair weights")
        strategy, y = self._solve(w, np.asarray(rhs, dtype=float))
        if not np.all(np.isfinite(y)):
            # numerical-health guard: an IPM fed a NaN Newton direction
            # diverges silently many steps later -- refuse loudly here instead
            raise NumericalHealthError(
                f"gram solve (strategy {strategy!r}) produced non-finite output"
            )
        elapsed = time.perf_counter() - start
        self.stats.solves += 1
        self.stats.seconds_total += elapsed
        self.stats.per_solve.append((strategy, elapsed))
        return y

    # -- internals -------------------------------------------------------------

    def _solve(self, w: np.ndarray, rhs: np.ndarray) -> Tuple[str, np.ndarray]:
        if self._fact is None:
            self._refactorise(w)
            return "factorise", self._overlay_solve(rhs)
        assert self._w_state is not None
        if np.array_equal(w, self._w_state):
            self.stats.reuse_solves += 1
            return "reuse", self._overlay_solve(rhs)

        ratios = w / self._w_state
        band = self.drift_band
        out = (ratios > band) | (ratios < 1.0 / band)
        n_out = int(np.count_nonzero(out))
        if n_out and (
            n_out > self.rank1_budget
            or len(self._overlays) + n_out > self.rank1_budget
        ):
            self._refactorise(w)
            return "factorise", self._overlay_solve(rhs)
        if n_out and not self._apply_overlays(np.flatnonzero(out), w):
            self._refactorise(w)
            return "factorise", self._overlay_solve(rhs)

        in_band = ~out
        r_hi = 1.0
        r_lo = 1.0
        if in_band.any():
            r_hi = max(r_hi, float(ratios[in_band].max()))
            r_lo = min(r_lo, float(ratios[in_band].min()))
        if r_hi == r_lo == 1.0:
            # the overlays absorbed every change exactly
            return "rank1", self._overlay_solve(rhs)
        kappa = r_hi / r_lo
        # contract A <= B <= kappa A with A = L(w), B = r_hi * L(w_state):
        # every pair weight satisfies r_lo w_state <= w <= r_hi w_state
        reduced = self.structure.reduced_matrix(w)
        y, report = preconditioned_chebyshev(
            lambda x: reduced @ x,
            lambda r: self._overlay_solve(r) / r_hi,
            rhs,
            kappa=kappa,
            eps=self.chebyshev_residual,
            residual_stop=self.chebyshev_residual,
        )
        self.stats.chebyshev_solves += 1
        self.stats.chebyshev_iterations += report.iterations
        return "chebyshev", y

    def _refactorise(self, w: np.ndarray) -> None:
        start = time.perf_counter()
        if self.cache is None:
            fact = GramFactorisation(self.structure, w)
            hit = False
        else:
            fact, hit = self.cache.get_or_build(
                self.graph_key,
                self.version,
                "gram",
                (self.structure.fingerprint, weights_digest(w)),
                lambda: GramFactorisation(self.structure, w),
            )
        self.stats.factorisations += 1
        if hit:
            self.stats.cache_hits += 1
        self.stats.seconds_factorise += time.perf_counter() - start
        self._fact = fact
        self._overlays = []
        self._w_state = fact.w.copy()

    def _overlay_solve(self, rhs: np.ndarray) -> np.ndarray:
        assert self._fact is not None
        x = self._fact.solve(rhs)
        n = self.structure.n
        for overlay in self._overlays:
            coeff = overlay.delta * overlay.c_dot(x, n) / overlay.denom
            if coeff != 0.0:
                x = x - coeff * overlay.z
        return x

    def _apply_overlays(self, pairs: np.ndarray, w: np.ndarray) -> bool:
        """Absorb the out-of-band pairs with rank-1 overlays; False on refusal."""
        assert self._w_state is not None
        n = self.structure.n
        applied: List[_Overlay] = []
        for pair in pairs:
            delta = float(w[pair] - self._w_state[pair])
            c = self.structure.pair_indicator(int(pair))
            z = self._overlay_solve(c)
            denom = 1.0 + delta * float(c @ z)
            if denom <= OVERLAY_DENOM_TOL:
                # roll back this batch: the solve must refactorise instead
                del self._overlays[len(self._overlays) - len(applied):]
                return False
            overlay = _Overlay(
                u=int(self.structure.pair_u[pair]),
                v=int(self.structure.pair_v[pair]),
                delta=delta,
                z=z,
                denom=denom,
            )
            self._overlays.append(overlay)
            applied.append(overlay)
            self._w_state[pair] = w[pair]
            self.stats.rank1_updates += 1
        return True


class _IncidenceGramSolver:
    """Per-call sparse fallback for incidence-structured ``A`` (no cache).

    The structural half of the ``solve_gram`` satellite fix: when ``A`` is
    incidence-structured and wide enough, each default Gram solve assembles
    the grounded Laplacian in CSR and factorises it with ``splu`` --
    ``O(nnz)`` assembly plus a sparse factorisation instead of the dense
    ``O(m n^2)`` Gram build and ``O(n^3)`` solve.
    """

    def __init__(self, structure: IncidenceStructure):
        self.structure = structure

    def __call__(self, d: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        w = self.structure.aggregate(d)
        reduced = self.structure.reduced_matrix(w).tocsc()
        return spla.splu(reduced, permc_spec="MMD_AT_PLUS_A").solve(
            np.asarray(rhs, dtype=float)
        )


class _DenseGramSolver:
    """Dense fallback with the rebuild waste removed (satellite fix).

    The Gram matrix itself must be recomputed (``d`` changes every Newton
    step), but the old fallback also allocated a fresh ``n x n`` identity and
    a second ``n x n`` temporary per call just to add the ridge; the ridge is
    now added in place on the Gram diagonal.
    """

    def __init__(self, A):
        self.A = sp.csr_matrix(A) if sp.issparse(A) else np.asarray(A, dtype=float)

    def __call__(self, d: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        A = self.A
        if sp.issparse(A):
            gram = np.asarray((A.T @ sp.diags(np.asarray(d, dtype=float)) @ A).todense())
        else:
            gram = A.T @ (d[:, None] * A)
        n = gram.shape[0]
        ridge = 1e-12 * max(1.0, float(np.trace(gram)) / max(1, n))
        gram.flat[:: n + 1] += ridge
        return np.linalg.solve(gram, np.asarray(rhs, dtype=float))


def default_gram_solver(A):
    """Build the default ``solve_gram`` backend for a constraint matrix ``A``.

    Incidence-structured matrices (Lemma 5.1) with enough columns route
    through the sparse grounded-Laplacian path; everything else keeps the
    dense solve, minus the per-call ridge-matrix allocation.  Called once per
    :class:`~repro.lp.problem.LPProblem` and cached there.
    """
    structure = detect_incidence_structure(A)
    if structure is not None and (
        structure.n >= SPARSE_GRAM_MIN_COLS or sp.issparse(A)
    ):
        return _IncidenceGramSolver(structure)
    return _DenseGramSolver(A)
