"""Self-concordant barrier functions for box domains (Definition 4.1, Section 4.1).

Each LP variable ``x_i`` lives in ``dom(x_i) = [l_i, u_i]`` with at least one
finite endpoint; the paper attaches a 1-self-concordant barrier to each
coordinate:

* ``phi_i(x) = -log(x - l_i)``                        if only ``l_i`` is finite,
* ``phi_i(x) = -log(u_i - x)``                        if only ``u_i`` is finite,
* ``phi_i(x) = -log cos(a_i x + b_i)``                if both are finite, with
  ``a_i = pi / (u_i - l_i)`` and ``b_i = -(pi/2) (u_i + l_i)/(u_i - l_i)``
  (the trigonometric barrier).

:class:`BarrierFunction` evaluates ``phi``, ``phi'`` and ``phi''``
coordinate-wise; everything is local computation in the Broadcast Congested
Clique because vertex ``i`` owns the coordinates whose rows of ``A`` it knows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class BarrierFunction:
    """Coordinate-wise self-concordant barrier for the box ``[lower, upper]``."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self):
        self.lower = np.asarray(self.lower, dtype=float)
        self.upper = np.asarray(self.upper, dtype=float)
        if self.lower.shape != self.upper.shape:
            raise ValueError("lower and upper bounds must have the same shape")
        if np.any(np.isinf(self.lower) & np.isinf(self.upper)):
            raise ValueError(
                "every coordinate needs at least one finite bound "
                "(dom(x_i) must not be the whole real line)"
            )
        if np.any(self.upper <= self.lower):
            raise ValueError("upper bounds must exceed lower bounds")
        finite_both = np.isfinite(self.lower) & np.isfinite(self.upper)
        self._both = finite_both
        self._only_lower = np.isfinite(self.lower) & ~np.isfinite(self.upper)
        self._only_upper = ~np.isfinite(self.lower) & np.isfinite(self.upper)
        span = np.where(finite_both, self.upper - self.lower, 1.0)
        self._a = np.where(finite_both, math.pi / span, 0.0)
        self._b = np.where(
            finite_both, -(math.pi / 2.0) * (self.upper + self.lower) / span, 0.0
        )

    @property
    def m(self) -> int:
        """Number of coordinates."""
        return self.lower.shape[0]

    def contains(self, x: np.ndarray, margin: float = 0.0) -> bool:
        """Whether ``x`` lies strictly inside the box (with optional margin)."""
        x = np.asarray(x, dtype=float)
        return bool(np.all(x > self.lower + margin) and np.all(x < self.upper - margin))

    def value(self, x: np.ndarray) -> np.ndarray:
        """``phi_i(x_i)`` for every coordinate (``+inf`` outside the domain)."""
        x = np.asarray(x, dtype=float)
        out = np.full_like(x, np.inf)
        ok = (x > self.lower) & (x < self.upper)

        idx = self._only_lower & ok
        out[idx] = -np.log(x[idx] - self.lower[idx])
        idx = self._only_upper & ok
        out[idx] = -np.log(self.upper[idx] - x[idx])
        idx = self._both & ok
        out[idx] = -np.log(np.cos(self._a[idx] * x[idx] + self._b[idx]))
        return out

    def gradient(self, x: np.ndarray) -> np.ndarray:
        """``phi_i'(x_i)`` coordinate-wise."""
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        idx = self._only_lower
        out[idx] = -1.0 / (x[idx] - self.lower[idx])
        idx = self._only_upper
        out[idx] = 1.0 / (self.upper[idx] - x[idx])
        idx = self._both
        out[idx] = self._a[idx] * np.tan(self._a[idx] * x[idx] + self._b[idx])
        return out

    def hessian(self, x: np.ndarray) -> np.ndarray:
        """``phi_i''(x_i)`` coordinate-wise (always positive inside the domain)."""
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        idx = self._only_lower
        out[idx] = 1.0 / (x[idx] - self.lower[idx]) ** 2
        idx = self._only_upper
        out[idx] = 1.0 / (self.upper[idx] - x[idx]) ** 2
        idx = self._both
        cos_term = np.cos(self._a[idx] * x[idx] + self._b[idx])
        out[idx] = (self._a[idx] ** 2) / (cos_term ** 2)
        return out

    def total_value(self, x: np.ndarray) -> float:
        """``sum_i phi_i(x_i)``."""
        return float(np.sum(self.value(x)))

    def analytic_center_start(self) -> np.ndarray:
        """A point well inside the box (used to seed feasibility phases)."""
        centre = np.zeros(self.m)
        both = self._both
        centre[both] = 0.5 * (self.lower[both] + self.upper[both])
        centre[self._only_lower] = self.lower[self._only_lower] + 1.0
        centre[self._only_upper] = self.upper[self._only_upper] - 1.0
        return centre

    def self_concordance_check(self, x: np.ndarray, h: Optional[np.ndarray] = None) -> bool:
        """Numerically verify |D^3 phi[h,h,h]| <= 2 |D^2 phi[h,h]|^{3/2} at ``x``.

        Used by the tests to validate Definition 4.1(2) for the implemented
        barriers (coordinate-wise, so it suffices to check scalar directions).
        """
        x = np.asarray(x, dtype=float)
        if not self.contains(x):
            return False
        h = np.ones_like(x) if h is None else np.asarray(h, dtype=float)
        eps = 1e-5
        d2 = self.hessian(x) * h * h
        d3 = (self.hessian(x + eps * h) - self.hessian(x - eps * h)) / (2 * eps) * h * h * h
        return bool(np.all(np.abs(d3) <= 2.0 * np.power(np.abs(d2), 1.5) + 1e-3 * (1 + np.abs(d3))))


def make_barrier(lower: np.ndarray, upper: np.ndarray) -> BarrierFunction:
    """Build the coordinate-wise barrier for the box ``[lower, upper]``."""
    return BarrierFunction(lower=np.asarray(lower, dtype=float), upper=np.asarray(upper, dtype=float))
