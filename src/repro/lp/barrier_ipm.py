"""A robust primal log-barrier interior point method.

This is the engineering fallback engine described in DESIGN.md: it solves the
same LPs as the Lee-Sidford solver (``min c^T x, A^T x = b, l <= x <= u``),
uses the *same* linear-system primitive per Newton step -- one solve with
``A^T D A`` for a positive diagonal ``D`` -- and is charged with the same
Broadcast Congested Clique communication primitives, but follows the classical
(unweighted) central path with damped Newton steps and a long-step barrier
update.  At float64 on laptop-scale instances it reaches duality gaps around
``1e-9``, which is what the exact min-cost-flow rounding of Section 5 needs.

The number of Newton iterations of this engine is ``O(sqrt(m) log(1/eps))`` in
theory (standard path following); the Lee-Sidford solver improves the ``m`` to
``n = rank(A)``, which is the point of the paper.  Experiment E4 compares the
two iteration counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.congest.ledger import CommunicationPrimitives, RoundLedger
from repro.lp.barriers import BarrierFunction
from repro.lp.problem import LPProblem, LPSolution


@dataclass
class IPMReport:
    """Per-run diagnostics of the barrier IPM."""

    newton_iterations: int = 0
    outer_iterations: int = 0
    gram_solves: int = 0
    final_t: float = 0.0
    final_decrement: float = 0.0
    objective_history: List[float] = field(default_factory=list)


class BarrierIPM:
    """Primal log-barrier path following with ``A^T D A`` Newton systems.

    Parameters
    ----------
    problem:
        The LP in Lee-Sidford form.
    comm:
        Optional communication tracker; every Newton step charges two
        matrix-vector products and one Gram solve (``T(n, m)`` rounds).
    t_increase:
        Multiplicative barrier-parameter update (long steps by default).
    """

    def __init__(
        self,
        problem: LPProblem,
        comm: Optional[CommunicationPrimitives] = None,
        t_increase: float = 8.0,
        centering_tolerance: float = 0.25,
        max_newton_per_stage: int = 200,
    ):
        self.problem = problem
        self.comm = comm
        self.t_increase = float(t_increase)
        self.centering_tolerance = float(centering_tolerance)
        self.max_newton_per_stage = int(max_newton_per_stage)
        self.report = IPMReport()

    # -- internals -----------------------------------------------------------------

    def _newton_direction(
        self, barrier: BarrierFunction, x: np.ndarray, t: float
    ) -> np.ndarray:
        """Projected Newton direction for ``t c^T x + phi(x)`` on ``A^T x = b``."""
        problem = self.problem
        g = t * problem.c + barrier.gradient(x)
        h = barrier.hessian(x)
        h_inv = 1.0 / h
        # infeasible-start Newton: aim for A^T (x + dx) = b so that numerical
        # drift in the equality constraints is corrected at every step
        residual = problem.equality_residual(x)
        rhs = residual - problem.A.T @ (h_inv * g)
        y = problem.solve_gram(h_inv, rhs)
        dx = -h_inv * (g + problem.A @ y)
        self.report.gram_solves += 1
        if self.comm is not None:
            self.comm.matvec("A^T (H^{-1} g)")
            self.comm.matvec("A y")
            self.comm.laplacian_solve(1.0, "Newton system A^T H^{-1} A")
            self.comm.vector_op("Newton update")
        return dx

    @staticmethod
    def _max_step_inside(
        barrier: BarrierFunction, x: np.ndarray, dx: np.ndarray
    ) -> float:
        """Largest step alpha with ``x + alpha dx`` still strictly inside the box."""
        alpha = 1.0
        lower, upper = barrier.lower, barrier.upper
        with np.errstate(divide="ignore", invalid="ignore"):
            down = np.where(dx < 0, (x - lower) / (-dx), np.inf)
            up = np.where(dx > 0, (upper - x) / dx, np.inf)
        limit = float(min(np.min(down), np.min(up)))
        return min(alpha, 0.99 * limit)

    def _least_norm_correction(self, residual: np.ndarray) -> np.ndarray:
        """Minimum-norm ``delta`` with ``A^T delta = residual``.

        ``delta = A (A^T A)^{-1} residual`` -- one unweighted Gram solve, so it
        reuses whatever backend (sparse grounded Laplacian, serving bridge)
        ``solve_gram`` is wired to, and works for sparse ``A`` where
        ``np.linalg.lstsq`` would not.
        """
        problem = self.problem
        ones = np.ones(problem.m)
        return problem.A @ problem.solve_gram(ones, residual)

    def _restore_equality(self, x: np.ndarray) -> np.ndarray:
        """Project ``x`` back onto ``A^T x = b`` (least-squares correction).

        Newton directions live in the null space of ``A^T`` up to the accuracy
        of the Gram solve; this correction removes the accumulated drift so the
        certified duality gap refers to a genuinely feasible point.
        """
        residual = self.problem.equality_residual(x)
        if float(np.linalg.norm(residual, ord=np.inf)) < 1e-13:
            return x
        corrected = x - self._least_norm_correction(residual)
        barrier = self.problem.barrier()
        return corrected if barrier.contains(corrected) else x

    def _polish_feasibility(self, x: np.ndarray, iterations: int = 50) -> np.ndarray:
        """Alternating projections onto ``{A^T x = b}`` and the box.

        The extreme barrier parameter of the final centering stage leaves a
        small equality residual (the Gram systems are nearly singular there);
        a few alternating projections push it below 1e-9 while staying inside
        the box, without noticeably moving the objective.
        """
        problem = self.problem
        best = x
        for _ in range(iterations):
            residual = problem.equality_residual(best)
            if float(np.linalg.norm(residual, ord=np.inf)) < 1e-10:
                break
            best = np.clip(
                best - self._least_norm_correction(residual), problem.lower, problem.upper
            )
        return best

    def _center(
        self,
        barrier: BarrierFunction,
        x: np.ndarray,
        t: float,
        tolerance: float,
    ) -> np.ndarray:
        """Damped Newton until the Newton decrement drops below ``tolerance``."""
        x = self._restore_equality(x)
        for _ in range(self.max_newton_per_stage):
            dx = self._newton_direction(barrier, x, t)
            h = barrier.hessian(x)
            decrement = math.sqrt(max(0.0, float(dx @ (h * dx))))
            self.report.newton_iterations += 1
            self.report.final_decrement = decrement
            if decrement <= tolerance:
                break
            step = 1.0 / (1.0 + decrement) if decrement > 0.25 else 1.0
            step = min(step, self._max_step_inside(barrier, x, dx))
            if step <= 1e-16:
                break
            x = x + step * dx
        return x

    # -- public API ------------------------------------------------------------------

    def solve(
        self,
        x0: np.ndarray,
        eps: float = 1e-8,
        t0: Optional[float] = None,
        max_outer: int = 200,
    ) -> LPSolution:
        """Follow the central path from ``x0`` until the duality-gap bound is ``<= eps``.

        ``x0`` must be strictly feasible (``A^T x0 = b`` and strictly inside the
        box); the flow formulation of Section 5 provides one explicitly.
        """
        problem = self.problem
        barrier = problem.barrier()
        x = np.array(x0, dtype=float)
        if not problem.is_strictly_feasible(x, tol=1e-6):
            raise ValueError("the barrier IPM needs a strictly feasible starting point")

        m = problem.m
        # nu = m: every coordinate carries a 1-self-concordant barrier.
        cost_scale = max(1.0, float(np.max(np.abs(problem.c))))
        t = t0 if t0 is not None else 1.0 / cost_scale
        t_final = (m + 1) / max(eps, 1e-300)

        self.report = IPMReport()
        history: List[float] = []
        outer = 0
        while t < t_final and outer < max_outer:
            outer += 1
            x = self._center(barrier, x, t, self.centering_tolerance)
            history.append(problem.objective(x))
            t *= self.t_increase
        # final centering at t >= t_final for a certified gap
        t = max(t, t_final)
        x = self._center(barrier, x, t, self.centering_tolerance / 2.0)
        x = self._polish_feasibility(x)
        history.append(problem.objective(x))

        self.report.outer_iterations = outer
        self.report.final_t = t
        self.report.objective_history = history
        gap_bound = (m + math.sqrt(m)) / t

        rounds = self.comm.ledger.total_rounds if self.comm is not None else 0.0
        return LPSolution(
            x=x,
            objective=problem.objective(x),
            iterations=self.report.newton_iterations,
            rounds=rounds,
            converged=bool(problem.is_feasible(x, tol=1e-6)),
            duality_gap=gap_bound,
            history=history,
        )


def theoretical_iteration_bound_sqrt_m(m: int, eps: float) -> float:
    """Classical path following needs ``O(sqrt(m) log(m/eps))`` Newton steps."""
    m = max(2, int(m))
    eps = max(1e-300, float(eps))
    return math.sqrt(m) * math.log(m / eps)


def theoretical_iteration_bound_sqrt_n(n: int, U: float, eps: float) -> float:
    """Lee-Sidford path following needs ``O(sqrt(n) log(U/eps))`` steps (Theorem 1.4)."""
    n = max(2, int(n))
    eps = max(1e-300, float(eps))
    return math.sqrt(n) * math.log(max(2.0, U) / eps)
