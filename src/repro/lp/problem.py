"""LP problem container in the Lee-Sidford form of Theorem 1.4.

    min c^T x   subject to   A^T x = b,   l <= x <= u,

with ``A in R^{m x n}`` of full column rank ``n``.  In flow formulations ``m``
is the number of edges (plus auxiliary variables) and ``n`` the number of
vertices minus one, which is why the paper writes the constraint as
``A^T x = b`` rather than ``A x = b``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from repro.lp.barriers import BarrierFunction, make_barrier


@dataclass
class LPProblem:
    """``min c^T x  s.t.  A^T x = b, lower <= x <= upper``."""

    A: np.ndarray
    b: np.ndarray
    c: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    #: optional solver for (A^T D A) y = rhs given the diagonal D (m-vector);
    #: defaults to a dense solve.  The flow pipeline plugs the SDD solver here.
    gram_solver: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None
    name: str = "lp"

    def __post_init__(self):
        if sp.issparse(self.A):
            self.A = self.A.tocsr().astype(float)
        else:
            self.A = np.asarray(self.A, dtype=float)
        self.b = np.asarray(self.b, dtype=float)
        self.c = np.asarray(self.c, dtype=float)
        self.lower = np.asarray(self.lower, dtype=float)
        self.upper = np.asarray(self.upper, dtype=float)
        m, n = self.A.shape
        if self.b.shape != (n,):
            raise ValueError(f"b must have shape ({n},), got {self.b.shape}")
        for name, vec in (("c", self.c), ("lower", self.lower), ("upper", self.upper)):
            if vec.shape != (m,):
                raise ValueError(f"{name} must have shape ({m},), got {vec.shape}")

    @property
    def m(self) -> int:
        """Number of variables (rows of A)."""
        return self.A.shape[0]

    @property
    def n(self) -> int:
        """Number of equality constraints (columns of A)."""
        return self.A.shape[1]

    def barrier(self) -> BarrierFunction:
        """The coordinate-wise barrier of the box ``[lower, upper]``."""
        return make_barrier(self.lower, self.upper)

    def objective(self, x: np.ndarray) -> float:
        """``c^T x``."""
        return float(self.c @ np.asarray(x, dtype=float))

    def equality_residual(self, x: np.ndarray) -> np.ndarray:
        """``A^T x - b``."""
        return self.A.T @ np.asarray(x, dtype=float) - self.b

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Feasibility w.r.t. both the equality and the box constraints."""
        x = np.asarray(x, dtype=float)
        if np.any(x < self.lower - tol) or np.any(x > self.upper + tol):
            return False
        return bool(np.linalg.norm(self.equality_residual(x), ord=np.inf) <= tol)

    def is_strictly_feasible(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        """Strict interior feasibility (needed to start an interior point method)."""
        x = np.asarray(x, dtype=float)
        if np.any(x <= self.lower) or np.any(x >= self.upper):
            return False
        return bool(np.linalg.norm(self.equality_residual(x), ord=np.inf) <= tol)

    def bound_parameter(self, x0: np.ndarray) -> float:
        """The parameter ``U`` of Theorem 1.4 for a given interior start ``x0``."""
        x0 = np.asarray(x0, dtype=float)
        gaps_up = np.where(np.isfinite(self.upper), self.upper - x0, 1.0)
        gaps_down = np.where(np.isfinite(self.lower), x0 - self.lower, 1.0)
        width = np.where(
            np.isfinite(self.upper) & np.isfinite(self.lower), self.upper - self.lower, 1.0
        )
        candidates = [
            float(np.max(1.0 / np.maximum(gaps_up, 1e-300))),
            float(np.max(1.0 / np.maximum(gaps_down, 1e-300))),
            float(np.max(width)),
            float(np.max(np.abs(self.c))) if self.c.size else 1.0,
        ]
        return max(1.0, *candidates)

    def solve_gram(self, d: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(A^T D A) y = rhs`` with the diagonal ``D = diag(d)``.

        Without a plugged ``gram_solver`` the default backend is chosen once
        per problem from the structure of ``A``: incidence-structured or
        sparse matrices (Lemma 5.1) route through the sparse grounded
        Laplacian; the rest use a dense solve with an in-place ridge (a tiny
        ridge keeps nearly singular Gram matrices solvable; the LP
        formulations used here always have full column rank).
        """
        if self.gram_solver is not None:
            return self.gram_solver(d, rhs)
        fallback = self.__dict__.get("_gram_fallback")
        if fallback is None:
            from repro.lp.gram import default_gram_solver

            fallback = default_gram_solver(self.A)
            self.__dict__["_gram_fallback"] = fallback
        return fallback(d, rhs)


@dataclass
class LPSolution:
    """Solution record returned by the LP engines."""

    x: np.ndarray
    objective: float
    iterations: int
    rounds: float = 0.0
    converged: bool = True
    duality_gap: Optional[float] = None
    history: list = field(default_factory=list)
