"""Linear program solvers in the Broadcast Congested Clique (Section 4).

The LPs have the Lee-Sidford form

    min c^T x   subject to   A^T x = b,  l_i <= x_i <= u_i,

with the constraint matrix distributed so that matrix-vector products and
solves in ``A^T D A`` are cheap (graph-structured).

* :mod:`repro.lp.barriers` -- the 1-self-concordant barrier functions of
  Definition 4.1 (log barriers for one-sided domains, the trigonometric
  barrier for two-sided ones).
* :mod:`repro.lp.problem` -- the :class:`LPProblem` container and feasibility
  helpers.
* :mod:`repro.lp.barrier_ipm` -- a robust primal log-barrier interior point
  method whose Newton systems are ``A^T D A`` solves; the default engine for
  the flow pipeline (see DESIGN.md, substitutions).
* :mod:`repro.lp.lee_sidford` -- the faithful structure of Lee-Sidford
  weighted path finding: ``LPSolve``, ``PathFollowing`` and
  ``CenteringInexact`` (Algorithms 9-11) built on regularised Lewis weights and
  the mixed-norm-ball projection.
* :mod:`repro.lp.gram` -- the SDD Gram-solve machinery of Lemma 5.1:
  incidence-structure detection, grounded-Laplacian factorisations, and the
  :class:`GramSolverBridge` that answers Newton systems through the serving
  tier's artifact cache.
"""

from repro.lp.barriers import BarrierFunction, make_barrier
from repro.lp.problem import LPProblem, LPSolution
from repro.lp.barrier_ipm import BarrierIPM, IPMReport
from repro.lp.gram import (
    GramBridgeStats,
    GramFactorisation,
    GramSolverBridge,
    IncidenceStructure,
    detect_incidence_structure,
    flow_gram_structure,
)
from repro.lp.lee_sidford import LeeSidfordSolver, LeeSidfordReport

__all__ = [
    "BarrierFunction",
    "make_barrier",
    "LPProblem",
    "LPSolution",
    "BarrierIPM",
    "IPMReport",
    "GramBridgeStats",
    "GramFactorisation",
    "GramSolverBridge",
    "IncidenceStructure",
    "detect_incidence_structure",
    "flow_gram_structure",
    "LeeSidfordSolver",
    "LeeSidfordReport",
]
