"""The end-to-end minimum cost maximum flow pipeline (Theorem 1.1).

The Broadcast Congested Clique algorithm of the paper plugs the LP formulation
of Section 5 into the Lee-Sidford solver, solving every Newton system with the
SDD/Laplacian machinery of Lemma 5.1, and finally rounds the near-optimal
fractional solution to an exact integral flow.

The default engine here follows the same outline with the numerically robust
pieces documented in DESIGN.md:

1. the maximum flow value ``F*`` is fixed (combinatorially, or by an LP phase
   maximising ``F`` -- the paper folds this into one LP via the large reward on
   ``F``, which needs more float64 head-room than laptop hardware offers);
2. the fixed-value LP ``min q~^T x, B x = F* e_t, 0 <= x <= c`` with
   Daitch-Spielman-perturbed costs is solved by an interior point engine whose
   Newton systems are ``A^T D A`` solves (chargeable to the SDD solver of
   Lemma 5.1);
3. the fractional solution is rounded edge-wise to the nearest integer; if the
   rounded vector is not a feasible optimal flow (which the paper's uniqueness
   argument rules out w.h.p., but float64 can spoil), an exact combinatorial
   correction step repairs it and the event is reported.

Round accounting follows Theorem 1.1: ``Õ(sqrt(n))`` path-following iterations,
each costing ``Õ(log M)`` rounds of matrix-vector products plus one SDD solve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.congest.ledger import CommunicationPrimitives, RoundLedger
from repro.flow.baselines import edmonds_karp_max_flow, successive_shortest_paths
from repro.flow.lp_formulation import build_fixed_value_lp, build_flow_lp
from repro.graphs.digraph import FlowNetwork
from repro.lp.barrier_ipm import BarrierIPM
from repro.lp.lee_sidford import LeeSidfordSolver

EdgeKey = Tuple[int, int]


@dataclass
class MinCostFlowResult:
    """Exact minimum cost maximum flow plus diagnostics."""

    flow: Dict[EdgeKey, float]
    value: float
    cost: float
    rounds: float = 0.0
    lp_iterations: int = 0
    rounding_fallback: bool = False
    fractional_cost: Optional[float] = None
    ledger: Optional[RoundLedger] = None
    #: serving statistics of the plugged gram-solver bridge (None off the
    #: serving path); see :class:`repro.lp.gram.GramBridgeStats.as_dict`.
    gram_stats: Optional[Dict[str, Any]] = None

    def as_integers(self) -> Dict[EdgeKey, int]:
        """The flow with integer values (valid because the result is exact)."""
        return {key: int(round(f)) for key, f in self.flow.items()}


def theorem_round_bound(n: int, M: float) -> float:
    """The ``Õ(sqrt(n) log^3 M)`` round bound of Theorem 1.1 (up to constants)."""
    n = max(2, int(n))
    M = max(2.0, float(M))
    return math.sqrt(n) * (math.log2(M) ** 3) * (math.log2(n) ** 2)


def _phase_one_max_flow(
    network: FlowNetwork,
    comm: CommunicationPrimitives,
) -> Tuple[float, Dict[EdgeKey, float]]:
    """Fix the maximum flow value ``F*`` (and return a witnessing max flow).

    The paper determines ``F*`` implicitly through the reward term of the
    Section 5 LP; here it is computed exactly and its communication is charged
    as one LP solve worth of rounds (an upper bound: ``F*`` could equally be
    found by binary search over ``Õ(log(nM))`` feasibility LPs, Section 2.4).
    """
    value, flow = edmonds_karp_max_flow(network)
    comm.ledger.charge(
        "phase1_max_flow",
        theorem_round_bound(network.n, max(network.max_capacity(), 2.0)),
        "flow value fixed via the Section 2.4 binary search (charged at the theorem bound)",
    )
    return float(round(value)), flow


def _round_and_validate(
    network: FlowNetwork,
    fractional: Dict[EdgeKey, float],
    target_value: float,
) -> Tuple[Dict[EdgeKey, float], bool]:
    """Round the fractional flow edge-wise and check it is a feasible flow of the
    right value; returns ``(flow, ok)``."""
    rounded = {key: float(round(f)) for key, f in fractional.items()}
    ok = network.is_feasible_flow(rounded, tol=1e-6) and math.isclose(
        network.flow_value(rounded), target_value, abs_tol=1e-6
    )
    return rounded, ok


def min_cost_max_flow(
    network: FlowNetwork,
    engine: str = "barrier",
    seed: Optional[int] = None,
    eps_scale: float = 1e-6,
    perturb: bool = True,
    verify_against_baseline: bool = False,
    gram_solver_factory: Optional[Callable[..., Any]] = None,
    phase_one: Optional[Tuple[float, Dict[EdgeKey, float]]] = None,
    resistance_oracle: Optional[Any] = None,
) -> MinCostFlowResult:
    """Compute an exact minimum cost maximum ``s``-``t`` flow (Theorem 1.1).

    Parameters
    ----------
    network:
        Directed graph with integral capacities and costs.
    engine:
        ``"barrier"`` (robust log-barrier IPM, default) or ``"lee-sidford"``
        (the faithful weighted-path-following solver; slower, small instances).
    seed:
        Seed for the cost perturbation and any randomised subroutine.
    eps_scale:
        The LP is solved to additive error ``eps_scale`` times the cost scale;
        the default leaves ample room for exact rounding on integral instances.
    verify_against_baseline:
        If True, cross-check the result against the successive-shortest-path
        baseline and raise if they disagree (used in tests and experiments).
    gram_solver_factory:
        Serving hook: called with the built :class:`FlowLP` and expected to
        return a ``gram_solver`` callable (typically a
        :class:`~repro.lp.gram.GramSolverBridge` wired to an artifact cache)
        that is plugged into the LP before solving.  The LP constraint matrix
        is kept sparse on this path and the bridge's serving statistics are
        reported in :attr:`MinCostFlowResult.gram_stats`.
    phase_one:
        Optional precomputed ``(max_flow_value, witness_flow)`` pair (a cached
        serving artifact); the communication ledger is still charged at the
        theorem bound for fixing ``F*``.
    resistance_oracle:
        Serving hook forwarded to the ``"lee-sidford"`` engine's graph-mode
        Lewis-weight computations (ignored by ``"barrier"``); see
        :class:`~repro.lp.lee_sidford.LeeSidfordSolver`.
    """
    if engine not in ("barrier", "lee-sidford"):
        raise ValueError(f"unknown engine {engine!r}; use 'barrier' or 'lee-sidford'")
    rng = np.random.default_rng(seed)
    ledger = RoundLedger()
    M = max(2.0, network.max_capacity(), network.max_cost_magnitude())
    comm = CommunicationPrimitives(network.n, ledger, value_magnitude=M, precision=eps_scale)

    # Phase 1: the maximum flow value (plus a witnessing, not necessarily
    # cheapest, max flow used as the interior starting point).
    if phase_one is not None:
        target_value, witness_flow = phase_one
        target_value = float(round(target_value))
        comm.ledger.charge(
            "phase1_max_flow",
            theorem_round_bound(network.n, max(network.max_capacity(), 2.0)),
            "flow value fixed via the Section 2.4 binary search (cached witness)",
        )
    else:
        target_value, witness_flow = _phase_one_max_flow(network, comm)

    if target_value <= 0:
        zero = network.zero_flow()
        return MinCostFlowResult(flow=zero, value=0.0, cost=0.0, rounds=ledger.total_rounds, ledger=ledger)

    # Phase 2: minimum cost flow of that value, via the LP formulation.  The
    # box is relaxed by a tiny delta because min-cut edges are saturated in
    # every flow of value F*, so the unrelaxed box has no strict interior.
    costs = network.costs()
    if perturb:
        granularity = 1.0 / (4.0 * network.m * network.m * M * M)
        perturbed = costs + granularity * rng.integers(1, 2 * network.m * int(M) + 1, size=network.m)
    else:
        perturbed = costs.copy()
    box_delta = 1e-3
    flow_lp = build_fixed_value_lp(
        network,
        target_value,
        costs=perturbed,
        box_relaxation=box_delta,
        sparse=gram_solver_factory is not None,
    )
    bridge = None
    if gram_solver_factory is not None:
        bridge = gram_solver_factory(flow_lp)
        flow_lp.problem.gram_solver = bridge

    base = np.array([witness_flow[key] for key in flow_lp.edge_keys])
    interior = base  # strictly inside the relaxed box, satisfies B x = F* e_t
    capacities = network.capacities()

    cost_scale = float(np.max(np.abs(perturbed)) * max(1.0, float(np.max(capacities))) * network.m)
    eps = eps_scale * max(1.0, cost_scale)

    lp_iterations = 0
    fractional_cost = None
    fractional = dict(witness_flow)
    solved = False
    if flow_lp.problem.is_strictly_feasible(interior, tol=1e-6):
        if engine == "barrier":
            solver = BarrierIPM(flow_lp.problem, comm=comm)
            solution = solver.solve(interior, eps=eps)
        else:
            solver = LeeSidfordSolver(
                flow_lp.problem, comm=comm, seed=seed, resistance_oracle=resistance_oracle
            )
            solution = solver.solve(interior, eps=eps)
        lp_iterations = solution.iterations
        fractional = flow_lp.extract_flow(solution.x)
        fractional_cost = network.flow_cost(fractional)
        solved = True

    rounded, ok = _round_and_validate(network, fractional, target_value)
    fallback = False
    if solved and ok:
        flow = rounded
    else:
        # Exact combinatorial correction (the event the paper's uniqueness
        # argument makes unlikely; reported so experiments can count it).
        _v, _c, flow = successive_shortest_paths(network, target_value=target_value)
        fallback = True

    cost = network.flow_cost(flow)
    if verify_against_baseline:
        base_value, base_cost, _ = successive_shortest_paths(network)
        if not math.isclose(base_value, target_value, abs_tol=1e-6) or cost > base_cost + 1e-6:
            raise AssertionError(
                f"min-cost flow mismatch: value {target_value} vs {base_value}, "
                f"cost {cost} vs {base_cost}"
            )

    gram_stats = None
    if bridge is not None and hasattr(bridge, "stats"):
        gram_stats = bridge.stats.as_dict()
    return MinCostFlowResult(
        flow=flow,
        value=float(target_value),
        cost=float(cost),
        rounds=ledger.total_rounds,
        lp_iterations=lp_iterations,
        rounding_fallback=fallback,
        fractional_cost=fractional_cost,
        ledger=ledger,
        gram_stats=gram_stats,
    )
