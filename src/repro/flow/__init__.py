"""Minimum cost maximum flow in the Broadcast Congested Clique (Section 5).

* :mod:`repro.flow.baselines` -- exact combinatorial algorithms (Edmonds-Karp
  maximum flow, successive shortest paths min-cost flow, networkx wrappers)
  used as ground truth and benchmark comparators.
* :mod:`repro.flow.lp_formulation` -- the LP of Section 5: auxiliary variables
  ``y, z``, the flow-value variable ``F``, the Daitch-Spielman cost
  perturbation, and the explicit interior point.
* :mod:`repro.flow.mincostflow` -- the end-to-end pipeline of Theorem 1.1:
  build the LP, solve it with an interior point engine whose Newton systems are
  SDD (Lemma 5.1), round to an exact integral flow, and account the rounds.
"""

from repro.flow.baselines import (
    edmonds_karp_max_flow,
    networkx_min_cost_max_flow,
    successive_shortest_paths,
)
from repro.flow.lp_formulation import FlowLP, build_flow_lp, build_fixed_value_lp
from repro.flow.mincostflow import MinCostFlowResult, min_cost_max_flow

__all__ = [
    "edmonds_karp_max_flow",
    "successive_shortest_paths",
    "networkx_min_cost_max_flow",
    "FlowLP",
    "build_flow_lp",
    "build_fixed_value_lp",
    "MinCostFlowResult",
    "min_cost_max_flow",
]
