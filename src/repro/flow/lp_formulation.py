"""LP formulations of the minimum cost maximum flow problem (Sections 2.4 and 5).

Two formulations are provided:

* :func:`build_flow_lp` -- the single LP of Section 5 with auxiliary slack
  variables ``y, z`` and the flow-value variable ``F``: the constraint matrix
  is ``A = [B | I | -I | -e_t]^T`` (``B`` the edge-vertex incidence matrix with
  the source row removed), the objective trades off the perturbed edge costs, a
  penalty ``lambda`` on the slacks and a large reward ``2 n M~`` on ``F``, and
  the paper's explicit interior point is returned alongside.
* :func:`build_fixed_value_lp` -- the classical formulation of Section 2.4 for
  a *given* flow value ``F`` (used with an outer binary search / a max-flow
  precomputation): ``min q^T x`` s.t. ``B x = F e_t``, ``0 <= x <= c``.

Both produce :class:`~repro.lp.problem.LPProblem` instances whose ``A^T D A``
matrices are symmetric diagonally dominant (Lemma 5.1), so the Gram solver can
be the Laplacian/SDD machinery of Section 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.digraph import FlowNetwork
from repro.lp.problem import LPProblem

EdgeKey = Tuple[int, int]


@dataclass
class FlowLP:
    """An LP formulation of a flow instance plus the bookkeeping to read it back."""

    problem: LPProblem
    network: FlowNetwork
    edge_keys: List[EdgeKey]
    interior_point: np.ndarray
    #: slice boundaries of (x, y, z, F) inside the variable vector; the
    #: fixed-value formulation has only the x block.
    blocks: Dict[str, slice]
    perturbed_costs: Optional[np.ndarray] = None
    perturbation_scale: float = 1.0

    def extract_flow(self, solution: np.ndarray) -> Dict[EdgeKey, float]:
        """Edge flow dictionary from an LP solution vector."""
        x = np.asarray(solution, dtype=float)[self.blocks["x"]]
        return {key: float(x[i]) for i, key in enumerate(self.edge_keys)}


def _vertex_columns(network: FlowNetwork) -> List[int]:
    """Vertices indexing the equality constraints (every vertex except the source)."""
    return [v for v in range(network.n) if v != network.source]


def daitch_spielman_perturbation(
    costs: np.ndarray,
    max_cost: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, float]:
    """Perturb integral costs so the optimum is unique with probability >= 1/2.

    Every cost gets a uniformly random additive term from
    ``{1, 2, ..., 2 |E| M} / (4 |E|^2 M^2)`` and the result is rescaled to be
    integral again (Section 5, following Daitch and Spielman).  Returns the
    integral perturbed costs together with the scale factor ``4 |E|^2 M^2``.
    """
    m = costs.shape[0]
    M = max(1.0, float(max_cost))
    denominator = 4.0 * m * m * M * M
    numerators = rng.integers(1, max(2, int(2 * m * M)) + 1, size=m)
    perturbed = costs * denominator + numerators
    return perturbed.astype(float), float(denominator)


def build_fixed_value_lp(
    network: FlowNetwork,
    flow_value: float,
    costs: Optional[np.ndarray] = None,
    box_relaxation: float = 0.0,
    sparse: bool = False,
) -> FlowLP:
    """The Section 2.4 formulation ``min q^T x`` s.t. ``B x = F e_t``, ``0 <= x <= c``.

    At the maximum flow value the min-cut edges are necessarily saturated, so
    the box ``[0, c]`` has no strictly interior flow of that value;
    ``box_relaxation`` widens the box to ``[-delta, c + delta]`` so an interior
    point method can start from any feasible flow.  With integral data and a
    tiny ``delta`` the rounded optimum is unaffected (the pipeline validates
    this and falls back to an exact correction otherwise).

    With ``sparse=True`` the incidence matrix is kept in CSR form (two nonzeros
    per row), which drops the per-Newton-step matvec cost from ``O(m n)`` to
    ``O(m)`` -- the representation the serving path uses.
    """
    keys = network.edge_keys()
    B = network.incidence_matrix(drop_vertex=network.source)  # m x (n-1)
    columns = _vertex_columns(network)
    b = np.zeros(len(columns))
    b[columns.index(network.sink)] = float(flow_value)
    q = network.costs() if costs is None else np.asarray(costs, dtype=float)
    capacities = network.capacities()
    delta = float(box_relaxation)

    A = sp.csr_matrix(B) if sparse else B
    problem = LPProblem(
        A=A,
        b=b,
        c=q,
        lower=-delta * np.ones(network.m),
        upper=capacities + delta,
        name="min-cost-flow(fixed value)",
    )
    if sparse:
        x_ls = spla.lsqr(sp.csr_matrix(B.T), b, atol=1e-12, btol=1e-12)[0]
    else:
        x_ls, *_ = np.linalg.lstsq(B.T, b, rcond=None)
    return FlowLP(
        problem=problem,
        network=network,
        edge_keys=keys,
        interior_point=x_ls,
        blocks={"x": slice(0, network.m)},
    )


def build_flow_lp(
    network: FlowNetwork,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    perturb: bool = True,
) -> FlowLP:
    """The Section 5 LP with slacks ``y, z`` and flow-value variable ``F``.

    Variables are ordered ``(x_edges, y_vertices, z_vertices, F)`` with
    ``y, z in R^{|V| - 1}``; the equality constraints read
    ``B x + y - z - F e_t = 0`` for every vertex except the source.  The paper's
    interior point (``F = |V| M``, ``x = c/2``, ...) is returned with the LP.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    keys = network.edge_keys()
    n_vertices = network.n
    m_edges = network.m
    columns = _vertex_columns(network)
    n_constraints = len(columns)
    M = max(1.0, network.max_capacity(), network.max_cost_magnitude())

    B = network.incidence_matrix(drop_vertex=network.source)  # m x (n-1)
    identity = np.eye(n_constraints)
    e_t = np.zeros((1, n_constraints))
    e_t[0, columns.index(network.sink)] = 1.0

    # A^T = [B^T | I | -I | -e_t]  =>  A is the vertical stack below.
    A = np.vstack([B, identity, -identity, -e_t])

    costs = network.costs()
    if perturb:
        perturbed, scale = daitch_spielman_perturbation(costs, M, rng)
    else:
        perturbed, scale = costs.copy(), 1.0
    m_tilde = 8.0 * (m_edges ** 2) * (M ** 3) * scale
    lam = 440.0 * (m_edges ** 4) * (m_tilde ** 2) * (M ** 3) / max(1.0, m_tilde)
    # The literal lambda of the paper overflows float64 head-room on anything
    # but trivial instances; any lambda large enough to dominate the slack
    # usage works for the reduction, so it is capped (documented in DESIGN.md).
    lam = min(lam, 1e6 * float(np.max(np.abs(perturbed)) + 1.0))
    flow_reward = 2.0 * n_vertices * m_tilde
    flow_reward = min(flow_reward, 1e7 * float(np.max(np.abs(perturbed)) + 1.0))

    c = np.concatenate(
        [
            perturbed,
            lam * np.ones(n_constraints),
            lam * np.ones(n_constraints),
            [-flow_reward],
        ]
    )
    lower = np.zeros(m_edges + 2 * n_constraints + 1)
    upper = np.concatenate(
        [
            network.capacities(),
            4.0 * n_vertices * M * np.ones(n_constraints),
            4.0 * n_vertices * M * np.ones(n_constraints),
            [2.0 * n_vertices * M],
        ]
    )
    b = np.zeros(n_constraints)

    problem = LPProblem(
        A=A,
        b=b,
        c=c,
        lower=lower,
        upper=upper,
        name="min-cost-max-flow(section 5)",
    )

    # the paper's explicit interior point
    F0 = float(n_vertices * M)
    x0 = network.capacities() / 2.0
    bx = B.T @ x0  # net inflow per non-source vertex
    e_t_vec = e_t.flatten()
    y0 = 2.0 * n_vertices * M * np.ones(n_constraints) - np.minimum(bx - F0 * e_t_vec, 0.0)
    z0 = 2.0 * n_vertices * M * np.ones(n_constraints) + np.maximum(bx - F0 * e_t_vec, 0.0)
    interior = np.concatenate([x0, y0, z0, [F0]])

    return FlowLP(
        problem=problem,
        network=network,
        edge_keys=keys,
        interior_point=interior,
        blocks={
            "x": slice(0, m_edges),
            "y": slice(m_edges, m_edges + n_constraints),
            "z": slice(m_edges + n_constraints, m_edges + 2 * n_constraints),
            "F": slice(m_edges + 2 * n_constraints, m_edges + 2 * n_constraints + 1),
        },
        perturbed_costs=perturbed,
        perturbation_scale=scale,
    )
