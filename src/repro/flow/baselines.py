"""Exact combinatorial flow baselines.

These centralised algorithms serve two purposes: they are the ground truth the
LP-based pipeline of Theorem 1.1 is verified against, and they are the
comparators of benchmark E5.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graphs.digraph import FlowNetwork

EdgeKey = Tuple[int, int]


def _split_antiparallel(network: FlowNetwork) -> Tuple[FlowNetwork, Dict[EdgeKey, Tuple[EdgeKey, Optional[EdgeKey]]]]:
    """Remove anti-parallel edge pairs by routing one of them through a new vertex.

    Residual-graph algorithms index arcs by ordered vertex pairs, so a pair
    ``(u, v)`` / ``(v, u)`` of opposite edges would collide.  For every such
    pair the lexicographically larger edge ``(v, u)`` is replaced by
    ``(v, w), (w, u)`` through a fresh vertex ``w``.  Returns the transformed
    network and, for every original edge, the arc(s) that carry its flow.
    """
    keys = set(network.edge_keys())
    conflicts = {(u, v) for (u, v) in keys if (v, u) in keys and u < v}
    if not conflicts:
        mapping = {key: (key, None) for key in keys}
        return network, mapping

    extra = len(conflicts)
    split = FlowNetwork(network.n + extra, network.source, network.sink)
    mapping: Dict[EdgeKey, Tuple[EdgeKey, Optional[EdgeKey]]] = {}
    next_vertex = network.n
    to_split = {(v, u) for (u, v) in conflicts}
    for edge in network.edges():
        key = (edge.u, edge.v)
        if key in to_split:
            w = next_vertex
            next_vertex += 1
            split.add_edge(edge.u, w, edge.capacity, edge.cost)
            split.add_edge(w, edge.v, edge.capacity, 0.0)
            mapping[key] = ((edge.u, w), (w, edge.v))
        else:
            split.add_edge(edge.u, edge.v, edge.capacity, edge.cost)
            mapping[key] = (key, None)
    return split, mapping


def _map_back(
    network: FlowNetwork,
    mapping: Dict[EdgeKey, Tuple[EdgeKey, Optional[EdgeKey]]],
    split_flow: Dict[EdgeKey, float],
) -> Dict[EdgeKey, float]:
    """Translate a flow on the split network back to the original edges."""
    return {
        key: float(split_flow.get(primary, 0.0))
        for key, (primary, _secondary) in mapping.items()
        if network.has_edge(*key)
    }


def edmonds_karp_max_flow(network: FlowNetwork) -> Tuple[float, Dict[EdgeKey, float]]:
    """Maximum ``s``-``t`` flow via BFS augmenting paths (Edmonds-Karp).

    Returns ``(value, flow)`` with ``flow`` keyed by the network's edge pairs.
    """
    original = network
    network, mapping = _split_antiparallel(network)
    n = network.n
    source, sink = network.source, network.sink
    # residual capacities over ordered pairs (original + reverse arcs)
    residual: Dict[EdgeKey, float] = {}
    for edge in network.edges():
        residual[(edge.u, edge.v)] = residual.get((edge.u, edge.v), 0.0) + edge.capacity
        residual.setdefault((edge.v, edge.u), 0.0)
    adjacency: Dict[int, set] = {v: set() for v in range(n)}
    for (u, v) in residual:
        adjacency[u].add(v)

    flow_value = 0.0
    while True:
        # BFS for a shortest augmenting path
        parent: Dict[int, Optional[int]] = {source: source}
        queue = deque([source])
        while queue and sink not in parent:
            u = queue.popleft()
            for v in adjacency[u]:
                if v not in parent and residual[(u, v)] > 1e-12:
                    parent[v] = u
                    queue.append(v)
        if sink not in parent:
            break
        # bottleneck
        bottleneck = float("inf")
        v = sink
        while v != source:
            u = parent[v]
            bottleneck = min(bottleneck, residual[(u, v)])
            v = u
        v = sink
        while v != source:
            u = parent[v]
            residual[(u, v)] -= bottleneck
            residual[(v, u)] += bottleneck
            v = u
        flow_value += bottleneck

    flow: Dict[EdgeKey, float] = {}
    for edge in network.edges():
        used = edge.capacity - residual[(edge.u, edge.v)]
        flow[(edge.u, edge.v)] = float(min(edge.capacity, max(0.0, used)))
    return flow_value, _map_back(original, mapping, flow)


def successive_shortest_paths(
    network: FlowNetwork, target_value: Optional[float] = None
) -> Tuple[float, float, Dict[EdgeKey, float]]:
    """Exact minimum-cost flow of maximum (or given) value.

    Uses Bellman-Ford shortest augmenting paths on the residual graph (costs
    may become negative on reverse arcs), which is exact for integral
    capacities.  Returns ``(value, cost, flow)``.
    """
    original = network
    network, mapping = _split_antiparallel(network)
    source, sink, n = network.source, network.sink, network.n
    capacity: Dict[EdgeKey, float] = {}
    cost: Dict[EdgeKey, float] = {}
    for edge in network.edges():
        capacity[(edge.u, edge.v)] = capacity.get((edge.u, edge.v), 0.0) + edge.capacity
        cost[(edge.u, edge.v)] = edge.cost
        capacity.setdefault((edge.v, edge.u), 0.0)
        cost.setdefault((edge.v, edge.u), -edge.cost)
    adjacency: Dict[int, set] = {v: set() for v in range(n)}
    for (u, v) in capacity:
        adjacency[u].add(v)

    flow: Dict[EdgeKey, float] = {key: 0.0 for key in capacity}
    value = 0.0
    remaining = float("inf") if target_value is None else float(target_value)

    while remaining > 1e-12:
        # Bellman-Ford from the source on the residual graph
        dist = {v: float("inf") for v in range(n)}
        parent: Dict[int, Optional[int]] = {v: None for v in range(n)}
        dist[source] = 0.0
        for _ in range(n - 1):
            updated = False
            for (u, v), cap in capacity.items():
                if cap - flow[(u, v)] > 1e-12 and dist[u] + cost[(u, v)] < dist[v] - 1e-15:
                    dist[v] = dist[u] + cost[(u, v)]
                    parent[v] = u
                    updated = True
            if not updated:
                break
        if not np.isfinite(dist[sink]):
            break
        # bottleneck along the path
        bottleneck = remaining
        v = sink
        while v != source:
            u = parent[v]
            bottleneck = min(bottleneck, capacity[(u, v)] - flow[(u, v)])
            v = u
        v = sink
        while v != source:
            u = parent[v]
            flow[(u, v)] += bottleneck
            flow[(v, u)] -= bottleneck
            v = u
        value += bottleneck
        if target_value is not None:
            remaining -= bottleneck

    split_flow: Dict[EdgeKey, float] = {}
    for edge in network.edges():
        f = max(0.0, flow[(edge.u, edge.v)])
        split_flow[(edge.u, edge.v)] = float(min(f, edge.capacity))
    result_flow = _map_back(original, mapping, split_flow)
    return float(value), float(original.flow_cost(result_flow)), result_flow


def networkx_min_cost_max_flow(
    network: FlowNetwork,
) -> Tuple[float, float, Dict[EdgeKey, float]]:
    """networkx's ``max_flow_min_cost`` as an independent exact reference."""
    import networkx as nx

    graph = network.to_networkx()
    flow_dict = nx.max_flow_min_cost(graph, network.source, network.sink)
    flow: Dict[EdgeKey, float] = {}
    for u, targets in flow_dict.items():
        for v, f in targets.items():
            if network.has_edge(u, v):
                flow[(u, v)] = float(f)
    for key in network.edge_keys():
        flow.setdefault(key, 0.0)
    value = network.flow_value(flow)
    cost = network.flow_cost(flow)
    return float(value), float(cost), flow
