"""Legacy setup shim.

The environment's setuptools predates full PEP 660 editable-install support, so
``pip install -e .`` falls back to this ``setup.py`` (invoked with
``--no-use-pep517`` / legacy develop mode).  All metadata lives in
``pyproject.toml``; this file only mirrors what the legacy path needs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "The Laplacian Paradigm in the Broadcast Congested Clique "
        "(Forster & de Vos, PODC 2022) - reference implementation"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7", "networkx>=2.6"],
)
