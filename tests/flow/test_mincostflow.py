"""End-to-end tests for the Theorem 1.1 min-cost max-flow pipeline."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.digraph import FlowNetwork
from repro.flow import min_cost_max_flow, networkx_min_cost_max_flow
from repro.flow.mincostflow import theorem_round_bound


class TestExactness:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_exact_baseline_random_networks(self, seed):
        net = generators.random_flow_network(10, seed=seed, max_capacity=8, max_cost=6)
        result = min_cost_max_flow(net, seed=seed, verify_against_baseline=True)
        value, cost, _ = networkx_min_cost_max_flow(net)
        assert result.value == pytest.approx(value)
        assert result.cost == pytest.approx(cost)
        assert net.is_feasible_flow(result.flow)

    def test_flow_is_integral(self):
        net = generators.random_flow_network(10, seed=21, max_capacity=5, max_cost=4)
        result = min_cost_max_flow(net, seed=21)
        integral = result.as_integers()
        assert all(abs(result.flow[key] - integral[key]) < 1e-9 for key in result.flow)

    def test_layered_network(self):
        net = generators.layered_flow_network(3, 3, seed=2)
        result = min_cost_max_flow(net, seed=2, verify_against_baseline=True)
        value, cost, _ = networkx_min_cost_max_flow(net)
        assert result.value == pytest.approx(value)
        assert result.cost == pytest.approx(cost)

    def test_lp_rounding_usually_succeeds_without_fallback(self):
        fallbacks = 0
        for seed in range(6):
            net = generators.random_flow_network(9, seed=seed + 50, max_capacity=6, max_cost=5)
            result = min_cost_max_flow(net, seed=seed, verify_against_baseline=True)
            fallbacks += int(result.rounding_fallback)
        assert fallbacks <= 1

    def test_zero_max_flow(self):
        net = FlowNetwork(4, source=0, sink=3)
        net.add_edge(0, 1, capacity=2, cost=1)
        net.add_edge(2, 3, capacity=2, cost=1)  # sink unreachable from source
        result = min_cost_max_flow(net, seed=1)
        assert result.value == 0.0
        assert result.cost == 0.0

    def test_unperturbed_mode_still_exact(self):
        net = generators.random_flow_network(9, seed=33, max_capacity=5, max_cost=4)
        result = min_cost_max_flow(net, seed=3, perturb=False, verify_against_baseline=True)
        value, cost, _ = networkx_min_cost_max_flow(net)
        assert result.cost == pytest.approx(cost)


class TestDiagnostics:
    def test_rounds_and_iterations_reported(self):
        net = generators.random_flow_network(10, seed=4)
        result = min_cost_max_flow(net, seed=4)
        assert result.rounds > 0
        assert result.lp_iterations > 0
        assert result.ledger is not None
        assert result.ledger.rounds_by_operation()["laplacian_solve"] > 0

    def test_fractional_cost_close_to_exact_cost(self):
        net = generators.random_flow_network(10, seed=5, max_capacity=6, max_cost=5)
        result = min_cost_max_flow(net, seed=5)
        if result.fractional_cost is not None and not result.rounding_fallback:
            assert result.fractional_cost == pytest.approx(result.cost, rel=0.05, abs=1.0)

    def test_theorem_round_bound_monotone(self):
        assert theorem_round_bound(100, 16) > theorem_round_bound(25, 16)
        assert theorem_round_bound(64, 64) > theorem_round_bound(64, 4)

    def test_invalid_engine_rejected(self):
        net = generators.random_flow_network(8, seed=6)
        with pytest.raises(ValueError):
            min_cost_max_flow(net, engine="simplex")


class TestLeeSidfordEngine:
    @pytest.mark.slow  # ~15s (re-measured): still the suite's slowest single test.
    # Was ~4 minutes before the Lewis fixed point went through graph mode (one
    # small dense resistance solve per iteration) and the round ledger kept a
    # running total instead of rescanning its entries on every read
    def test_small_instance_with_faithful_engine(self):
        net = generators.random_flow_network(7, seed=7, max_capacity=4, max_cost=3)
        result = min_cost_max_flow(net, engine="lee-sidford", seed=7, verify_against_baseline=True)
        value, cost, _ = networkx_min_cost_max_flow(net)
        assert result.value == pytest.approx(value)
        assert result.cost == pytest.approx(cost)
