"""Tests for the combinatorial flow baselines."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.digraph import FlowNetwork
from repro.flow.baselines import (
    edmonds_karp_max_flow,
    networkx_min_cost_max_flow,
    successive_shortest_paths,
)


def diamond():
    net = FlowNetwork(4, source=0, sink=3)
    net.add_edge(0, 1, capacity=2, cost=1)
    net.add_edge(1, 3, capacity=2, cost=1)
    net.add_edge(0, 2, capacity=3, cost=5)
    net.add_edge(2, 3, capacity=1, cost=5)
    return net


class TestEdmondsKarp:
    def test_diamond_value(self):
        value, flow = edmonds_karp_max_flow(diamond())
        assert value == 3.0
        assert diamond().is_feasible_flow(flow)
        assert diamond().flow_value(flow) == 3.0

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx_on_random_instances(self, seed):
        import networkx as nx

        net = generators.random_flow_network(12, seed=seed)
        value, flow = edmonds_karp_max_flow(net)
        expected, _ = nx.maximum_flow(net.to_networkx(), net.source, net.sink)
        assert value == pytest.approx(expected)
        assert net.is_feasible_flow(flow)
        assert net.flow_value(flow) == pytest.approx(expected)

    def test_antiparallel_edges_handled(self):
        net = FlowNetwork(3, source=0, sink=2)
        net.add_edge(0, 1, capacity=2, cost=0)
        net.add_edge(1, 0, capacity=2, cost=0)
        net.add_edge(1, 2, capacity=1, cost=0)
        value, flow = edmonds_karp_max_flow(net)
        assert value == 1.0
        assert net.is_feasible_flow(flow)


class TestSuccessiveShortestPaths:
    def test_diamond_prefers_cheap_path(self):
        value, cost, flow = successive_shortest_paths(diamond())
        assert value == 3.0
        # cheap path carries 2 units at cost 2 each, expensive path 1 unit at cost 10
        assert cost == pytest.approx(2 * 2 + 1 * 10)
        assert diamond().is_feasible_flow(flow)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx_min_cost(self, seed):
        net = generators.random_flow_network(10, seed=seed, max_capacity=6, max_cost=7)
        value, cost, flow = successive_shortest_paths(net)
        nx_value, nx_cost, _ = networkx_min_cost_max_flow(net)
        assert value == pytest.approx(nx_value)
        assert cost == pytest.approx(nx_cost)
        assert net.is_feasible_flow(flow)

    def test_target_value_respected(self):
        net = diamond()
        value, cost, flow = successive_shortest_paths(net, target_value=2.0)
        assert value == 2.0
        assert cost == pytest.approx(4.0)
        assert net.flow_value(flow) == pytest.approx(2.0)

    def test_layered_networks(self):
        net = generators.layered_flow_network(3, 3, seed=4)
        value, cost, flow = successive_shortest_paths(net)
        nx_value, nx_cost, _ = networkx_min_cost_max_flow(net)
        assert value == pytest.approx(nx_value)
        assert cost == pytest.approx(nx_cost)


class TestNetworkxWrapper:
    def test_returns_flow_on_network_edges_only(self):
        net = generators.random_flow_network(8, seed=9)
        _value, _cost, flow = networkx_min_cost_max_flow(net)
        assert set(flow) == set(net.edge_keys())
        assert net.is_feasible_flow(flow)
