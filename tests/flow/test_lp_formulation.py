"""Tests for the Section 5 LP formulations of min-cost max-flow."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.laplacian import is_symmetric_diagonally_dominant
from repro.flow.baselines import edmonds_karp_max_flow
from repro.flow.lp_formulation import (
    build_fixed_value_lp,
    build_flow_lp,
    daitch_spielman_perturbation,
)


class TestSectionFiveLP:
    def test_interior_point_strictly_feasible(self):
        for seed in range(4):
            net = generators.random_flow_network(9, seed=seed)
            flow_lp = build_flow_lp(net, seed=seed)
            assert flow_lp.problem.is_strictly_feasible(flow_lp.interior_point, tol=1e-6)

    def test_constraint_matrix_shape_and_rank(self):
        net = generators.random_flow_network(8, seed=5)
        flow_lp = build_flow_lp(net, seed=5)
        A = flow_lp.problem.A
        n_constraints = net.n - 1
        assert A.shape == (net.m + 2 * n_constraints + 1, n_constraints)
        assert np.linalg.matrix_rank(A) == n_constraints

    def test_gram_matrix_is_sdd(self):
        """Lemma 5.1: A^T D A is symmetric diagonally dominant for diagonal D."""
        net = generators.random_flow_network(8, seed=6)
        flow_lp = build_flow_lp(net, seed=6)
        rng = np.random.default_rng(7)
        D = rng.uniform(0.5, 2.0, size=flow_lp.problem.m)
        gram = flow_lp.problem.A.T @ (D[:, None] * flow_lp.problem.A)
        assert is_symmetric_diagonally_dominant(gram)

    def test_objective_rewards_flow_and_penalises_slack(self):
        net = generators.random_flow_network(8, seed=8)
        flow_lp = build_flow_lp(net, seed=8)
        c = flow_lp.problem.c
        blocks = flow_lp.blocks
        assert np.all(c[blocks["y"]] > 0)
        assert np.all(c[blocks["z"]] > 0)
        assert c[blocks["F"]][0] < 0
        # the flow reward dominates any single edge cost
        assert -c[blocks["F"]][0] > np.max(np.abs(c[blocks["x"]]))

    def test_extract_flow_roundtrip(self):
        net = generators.random_flow_network(8, seed=9)
        flow_lp = build_flow_lp(net, seed=9)
        flow = flow_lp.extract_flow(flow_lp.interior_point)
        assert set(flow) == set(net.edge_keys())
        for key, value in flow.items():
            assert value == pytest.approx(net.edge(*key).capacity / 2.0)


class TestFixedValueLP:
    def test_equality_encodes_flow_value(self):
        net = generators.random_flow_network(8, seed=10)
        target, witness = edmonds_karp_max_flow(net)
        flow_lp = build_fixed_value_lp(net, target, box_relaxation=1e-3)
        x = np.array([witness[key] for key in flow_lp.edge_keys])
        np.testing.assert_allclose(flow_lp.problem.equality_residual(x), 0.0, atol=1e-9)
        assert flow_lp.problem.is_strictly_feasible(x, tol=1e-6)

    def test_gram_matrix_is_sdd(self):
        net = generators.random_flow_network(8, seed=11)
        flow_lp = build_fixed_value_lp(net, 1.0)
        rng = np.random.default_rng(12)
        D = rng.uniform(0.5, 2.0, size=flow_lp.problem.m)
        gram = flow_lp.problem.A.T @ (D[:, None] * flow_lp.problem.A)
        assert is_symmetric_diagonally_dominant(gram)

    def test_box_relaxation_widens_bounds(self):
        net = generators.random_flow_network(8, seed=13)
        tight = build_fixed_value_lp(net, 1.0)
        relaxed = build_fixed_value_lp(net, 1.0, box_relaxation=0.5)
        assert np.all(relaxed.problem.lower < tight.problem.lower)
        assert np.all(relaxed.problem.upper > tight.problem.upper)


class TestPerturbation:
    def test_perturbed_costs_are_integral_and_ordered(self):
        rng = np.random.default_rng(14)
        costs = np.array([3.0, 0.0, 7.0])
        perturbed, scale = daitch_spielman_perturbation(costs, max_cost=7, rng=rng)
        assert np.allclose(perturbed, np.round(perturbed))
        # the perturbation never reorders costs that differ by >= 1
        assert perturbed[2] > perturbed[0] > perturbed[1]
        assert scale > 1
