"""Flow and gram queries through the serving tier (fast end-to-end path)."""

import numpy as np
import pytest

from repro.core import api
from repro.flow.lp_formulation import build_fixed_value_lp
from repro.flow.mincostflow import min_cost_max_flow
from repro.graphs import generators
from repro.serve import LaplacianService


@pytest.fixture
def network():
    return generators.random_flow_network(9, seed=5)


def make_service(**kwargs):
    kwargs.setdefault("t_override", 2)
    return LaplacianService(**kwargs)


class TestServedFlow:
    def test_served_flow_matches_direct_path(self, network):
        direct = min_cost_max_flow(network, seed=0)
        service = make_service()
        served = api.min_cost_max_flow(network, seed=0, service=service)
        assert served.value == pytest.approx(direct.value, abs=1e-8)
        assert served.cost == pytest.approx(direct.cost, abs=1e-8)
        for key, value in direct.flow.items():
            assert served.flow[key] == pytest.approx(value, abs=1e-8)
        assert served.gram_stats is not None
        assert served.gram_stats["solves"] > 0

    def test_warm_run_hits_gram_cache(self, network):
        service = make_service()
        key = service.register(network)
        cold = service.min_cost_flow(key, seed=0)
        warm = service.min_cost_flow(key, seed=0)
        assert warm.value == pytest.approx(cold.value, abs=1e-8)
        assert warm.cost == pytest.approx(cold.cost, abs=1e-8)
        # the deterministic rerun replays the same weight trajectory, so every
        # factorisation (and the phase-1 max flow) comes out of the cache
        assert warm.gram_stats["factorisations"] > 0
        assert warm.gram_stats["cache_hits"] == warm.gram_stats["factorisations"]
        assert cold.gram_stats["cache_hits"] < cold.gram_stats["factorisations"]
        kinds = service.metrics_snapshot()["queries_by_kind"]
        assert kinds.get("flow") == 2

    def test_registering_same_content_twice_shares_artifacts(self, network):
        service = make_service()
        api.min_cost_max_flow(network, seed=0, service=service)
        clone = generators.random_flow_network(9, seed=5)
        warm = api.min_cost_max_flow(clone, seed=0, service=service)
        assert warm.gram_stats["cache_hits"] == warm.gram_stats["factorisations"]

    def test_mutated_network_is_not_served_stale(self, network):
        service = make_service()
        key = service.register(network)
        before = service.min_cost_flow(key, seed=0)
        # overwrite the direct source->sink edge with a much smaller capacity:
        # the maximum flow value genuinely changes
        network.add_edge(network.source, network.sink, capacity=2.0, cost=100.0)
        after = service.min_cost_flow(key, seed=0)
        direct = min_cost_max_flow(network, seed=0)
        assert after.value == pytest.approx(direct.value, abs=1e-8)
        assert after.cost == pytest.approx(direct.cost, abs=1e-8)
        assert after.value != pytest.approx(before.value, abs=1e-8)


class TestResultMemoisation:
    def test_default_off_leaves_no_result_artifact(self, network):
        service = make_service()
        key = service.register(network)
        service.min_cost_flow(key, seed=0)
        entry = service.registry.get(key)
        assert not service.cache.contains(
            entry.fingerprint, entry.version, "flow_result", ("barrier", 0, 1e-6, True)
        )

    def test_memoised_rerun_skips_the_lp(self, network):
        service = make_service()
        key = service.register(network)
        cold = service.min_cost_flow(key, seed=0, memoise_result=True)
        entry = service.registry.get(key)
        assert service.cache.contains(
            entry.fingerprint, entry.version, "flow_result", ("barrier", 0, 1e-6, True)
        )
        hits_before = service.cache.stats.hits
        warm = service.min_cost_flow(key, seed=0, memoise_result=True)
        # the memoised artifact is the result object itself: no IPM rerun
        assert warm is cold
        assert service.cache.stats.hits > hits_before

    def test_memoisation_is_per_parameter_tuple(self, network):
        service = make_service()
        key = service.register(network)
        first = service.min_cost_flow(key, seed=0, memoise_result=True)
        other_seed = service.min_cost_flow(key, seed=1, memoise_result=True)
        assert other_seed is not first

    def test_mutation_invalidates_memoised_result(self, network):
        service = make_service()
        key = service.register(network)
        before = service.min_cost_flow(key, seed=0, memoise_result=True)
        network.add_edge(network.source, network.sink, capacity=2.0, cost=100.0)
        after = service.min_cost_flow(key, seed=0, memoise_result=True)
        assert after is not before
        direct = min_cost_max_flow(network, seed=0)
        assert after.value == pytest.approx(direct.value, abs=1e-8)
        assert after.cost == pytest.approx(direct.cost, abs=1e-8)


class TestGramFrontDoor:
    def test_solve_gram_matches_dense_reference(self, network, rng):
        service = make_service()
        key = service.register(network)
        A = np.asarray(build_fixed_value_lp(network, flow_value=1.0).problem.A)
        d = rng.uniform(0.5, 2.0, size=network.m)
        rhs = rng.normal(size=network.n - 1)
        y = service.solve_gram(key, d, rhs)
        np.testing.assert_allclose(
            y, np.linalg.solve(A.T @ (d[:, None] * A), rhs), atol=1e-8
        )

    def test_gram_queries_share_the_flow_solve_cache(self, network, rng):
        service = make_service()
        key = service.register(network)
        service.min_cost_flow(key, seed=0)
        hits_before = service.cache.stats.hits
        d = np.ones(network.m)
        service.solve_gram(key, d, rng.normal(size=network.n - 1))
        # the structure artifact is shared; a repeated diagonal also shares
        # the factorisation itself
        service.solve_gram(key, d, rng.normal(size=network.n - 1))
        assert service.cache.stats.hits > hits_before


class TestValidation:
    def test_flow_query_needs_a_flow_network(self, small_graph):
        service = make_service()
        key = service.register(small_graph)
        with pytest.raises(ValueError, match="FlowNetwork"):
            service.min_cost_flow(key)
        with pytest.raises(ValueError, match="FlowNetwork"):
            service.solve_gram(
                key, np.ones(small_graph.m), np.zeros(small_graph.n - 1)
            )

    def test_gram_shape_and_sign_rejections(self, network, rng):
        service = make_service()
        key = service.register(network)
        good_d = np.ones(network.m)
        good_rhs = np.zeros(network.n - 1)
        with pytest.raises(ValueError, match="diagonal must have shape"):
            service.solve_gram(key, np.ones(network.m + 1), good_rhs)
        with pytest.raises(ValueError, match="right-hand side"):
            service.solve_gram(key, good_d, np.zeros(network.n))
        with pytest.raises(ValueError, match="strictly positive"):
            bad = good_d.copy()
            bad[0] = 0.0
            service.solve_gram(key, bad, good_rhs)
        with pytest.raises(ValueError, match="formulation"):
            service.solve_gram(key, good_d, good_rhs, formulation="newton")

    def test_section5_gram_shape_is_the_augmented_row_count(self, network, rng):
        service = make_service()
        key = service.register(network)
        rows = network.m + 2 * (network.n - 1) + 1
        y = service.solve_gram(
            key,
            rng.uniform(0.5, 2.0, size=rows),
            rng.normal(size=network.n - 1),
            formulation="section5",
        )
        assert y.shape == (network.n - 1,)
        with pytest.raises(ValueError, match="diagonal must have shape"):
            service.solve_gram(
                key,
                np.ones(network.m),
                np.zeros(network.n - 1),
                formulation="section5",
            )

    def test_unknown_key_raises(self):
        service = make_service()
        with pytest.raises(KeyError):
            service.min_cost_flow("nope")
