"""Tests for the classical Baswana-Sen spanner (Appendix A)."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.spanners.baswana_sen import baswana_sen_spanner


def check_stretch(graph, spanner_graph, bound):
    """Maximum multiplicative stretch of spanner distances over graph distances."""
    dG = graph.all_pairs_shortest_paths()
    dS = spanner_graph.all_pairs_shortest_paths()
    mask = np.isfinite(dG) & (dG > 0)
    assert np.all(np.isfinite(dS[mask])), "spanner must preserve connectivity"
    return float(np.max(dS[mask] / dG[mask]))


class TestStretch:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_stretch_bound_random_graphs(self, k):
        for seed in range(3):
            g = generators.random_weighted_graph(25, average_degree=6, max_weight=8, seed=seed)
            result = baswana_sen_spanner(g, k=k, seed=seed + 100)
            stretch = check_stretch(g, result.spanner_graph(g), 2 * k - 1)
            assert stretch <= 2 * k - 1 + 1e-9

    def test_stretch_bound_unweighted_dense_graph(self):
        g = generators.erdos_renyi(30, 0.5, max_weight=1, seed=5)
        result = baswana_sen_spanner(g, k=3, seed=7)
        assert check_stretch(g, result.spanner_graph(g), 5) <= 5 + 1e-9

    def test_k1_returns_whole_graph(self):
        g = generators.random_weighted_graph(15, seed=1)
        result = baswana_sen_spanner(g, k=1, seed=2)
        assert result.spanner_edges == {e.key for e in g.edges()}

    def test_tree_input_is_preserved(self):
        g = generators.path_graph(10)
        result = baswana_sen_spanner(g, k=3, seed=3)
        # a tree is its own unique spanner: all edges must survive
        assert result.spanner_edges == {e.key for e in g.edges()}


class TestSize:
    def test_spanner_is_subgraph(self):
        g = generators.random_weighted_graph(30, seed=4)
        result = baswana_sen_spanner(g, k=3, seed=5)
        graph_edges = {e.key for e in g.edges()}
        assert result.spanner_edges <= graph_edges

    def test_spanner_smaller_than_dense_graph(self):
        g = generators.complete_graph(40)
        sizes = []
        for seed in range(5):
            result = baswana_sen_spanner(g, k=2, seed=seed)
            sizes.append(len(result.spanner_edges))
        # expectation is O(k n^{1+1/k}) = O(2 * 40^{1.5}) ~ 500 << 780
        assert np.mean(sizes) < g.m

    def test_invalid_k(self):
        g = generators.path_graph(5)
        with pytest.raises(ValueError):
            baswana_sen_spanner(g, k=0)


class TestDeterminism:
    def test_fixed_seed_reproducible(self):
        g = generators.random_weighted_graph(20, seed=6)
        a = baswana_sen_spanner(g, k=3, seed=9)
        b = baswana_sen_spanner(g, k=3, seed=9)
        assert a.spanner_edges == b.spanner_edges

    def test_marking_bits_control_clustering(self):
        g = generators.complete_graph(6)
        # never mark anything: every vertex leaves in phase 1 and connects to
        # every neighbouring singleton cluster => the full graph is returned
        bits = [{v: False for v in range(6)}]
        result = baswana_sen_spanner(g, k=2, marking_bits=bits)
        assert result.spanner_edges == {e.key for e in g.edges()}

    def test_marking_everything_keeps_clusters_singleton(self):
        g = generators.complete_graph(6)
        bits = [{v: True for v in range(6)}]
        result = baswana_sen_spanner(g, k=2, marking_bits=bits)
        # all clusters marked: nothing happens in the phase, the final step
        # connects every vertex to every other cluster -> whole graph again
        assert result.spanner_edges == {e.key for e in g.edges()}
