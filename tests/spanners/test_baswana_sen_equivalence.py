"""rng-stream equivalence of the EdgeView-native Baswana-Sen port.

The port (per-vertex adjacency lists built once + boolean alive mask) promises
*bit-identical* outputs to the historical implementation (per-phase
``Set[Tuple[int, int]]`` alive sets, per-centre scalar coin flips) for any
seed.  These tests pin that promise by re-implementing the historical
algorithm verbatim and comparing every output field on seeded graphs -- the
same methodology as ``tests/sparsify/test_vectorized_equivalence.py``.
"""

from typing import Dict, List, Optional, Set, Tuple

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.graph import WeightedGraph, canonical_edge
from repro.spanners.baswana_sen import BaswanaSenResult, baswana_sen_spanner


# -- historical reference implementation ----------------------------------------


def _reference_lightest_edge_per_cluster(graph, v, cluster_of, alive):
    best: Dict[int, Tuple[float, int]] = {}
    for u in graph.neighbours(v):
        if canonical_edge(u, v) not in alive:
            continue
        if u not in cluster_of:
            continue
        cluster = cluster_of[u]
        w = graph.weight(u, v)
        candidate = (w, u)
        if cluster not in best or candidate < best[cluster]:
            best[cluster] = candidate
    return best


def _reference_remove_cluster_edges(graph, v, cluster, cluster_of, alive):
    for u in graph.neighbours(v):
        if cluster_of.get(u) == cluster:
            alive.discard(canonical_edge(u, v))


def reference_baswana_sen(
    graph: WeightedGraph,
    k: int,
    seed: Optional[int] = None,
    marking_bits: Optional[List[Dict[int, bool]]] = None,
) -> BaswanaSenResult:
    """The pre-port implementation: per-phase alive sets, scalar coin flips."""
    rng = np.random.default_rng(seed)
    n = graph.n
    mark_probability = n ** (-1.0 / k)

    result = BaswanaSenResult()
    cluster_of: Dict[int, int] = {v: v for v in range(n)}
    alive: Set[Tuple[int, int]] = {edge.key for edge in graph.edges()}

    for phase in range(k - 1):
        result.clusters_per_phase.append(dict(cluster_of))
        centres = sorted(set(cluster_of.values()))
        if marking_bits is not None and phase < len(marking_bits):
            marked = {c for c in centres if marking_bits[phase].get(c, False)}
        else:
            marked = {c for c in centres if rng.random() < mark_probability}

        new_cluster_of = {v: c for v, c in cluster_of.items() if c in marked}

        for v in sorted(cluster_of):
            if cluster_of[v] in marked:
                continue
            best = _reference_lightest_edge_per_cluster(graph, v, cluster_of, alive)
            marked_options = {c: wu for c, wu in best.items() if c in marked}
            if not marked_options:
                for cluster, (w, u) in sorted(best.items()):
                    result.spanner_edges.add(canonical_edge(u, v))
                    _reference_remove_cluster_edges(graph, v, cluster, cluster_of, alive)
            else:
                w_join, u_join = min(
                    ((w, u) for (w, u) in marked_options.values()), key=lambda t: t
                )
                join_cluster = cluster_of[u_join]
                result.spanner_edges.add(canonical_edge(u_join, v))
                new_cluster_of[v] = join_cluster
                _reference_remove_cluster_edges(
                    graph, v, join_cluster, cluster_of, alive
                )
                for cluster, (w, u) in sorted(best.items()):
                    if cluster == join_cluster:
                        continue
                    if (w, u) < (w_join, u_join):
                        result.spanner_edges.add(canonical_edge(u, v))
                        _reference_remove_cluster_edges(
                            graph, v, cluster, cluster_of, alive
                        )
        cluster_of = new_cluster_of

    result.clusters_per_phase.append(dict(cluster_of))
    for v in range(n):
        best = _reference_lightest_edge_per_cluster(graph, v, cluster_of, alive)
        for cluster, (w, u) in sorted(best.items()):
            if cluster_of.get(v) == cluster:
                continue
            result.spanner_edges.add(canonical_edge(u, v))
    return result


# -- equivalence ----------------------------------------------------------------


WORKLOADS = [
    ("random-40", lambda: generators.random_weighted_graph(40, average_degree=6, max_weight=8, seed=3)),
    ("erdos-renyi-30", lambda: generators.erdos_renyi(30, 0.4, max_weight=5, seed=5)),
    ("complete-20", lambda: generators.complete_graph(20)),
    ("path-25", lambda: generators.path_graph(25)),
]


@pytest.mark.parametrize("name,factory", WORKLOADS)
@pytest.mark.parametrize("k", [2, 3, 4])
def test_port_matches_reference_bit_for_bit(name, factory, k):
    graph = factory()
    for seed in range(4):
        expected = reference_baswana_sen(graph, k=k, seed=seed)
        actual = baswana_sen_spanner(graph, k=k, seed=seed)
        assert actual.spanner_edges == expected.spanner_edges, (name, k, seed)
        assert actual.clusters_per_phase == expected.clusters_per_phase, (name, k, seed)


def test_port_matches_reference_with_marking_bits():
    graph = generators.random_weighted_graph(30, average_degree=5, seed=11)
    bits = [{v: v % 3 == 0 for v in range(30)}, {v: v % 5 == 0 for v in range(30)}]
    expected = reference_baswana_sen(graph, k=3, seed=1, marking_bits=bits)
    actual = baswana_sen_spanner(graph, k=3, seed=1, marking_bits=bits)
    assert actual.spanner_edges == expected.spanner_edges
    assert actual.clusters_per_phase == expected.clusters_per_phase


def test_port_matches_reference_on_disconnected_graph():
    graph = WeightedGraph(12)
    for u, v, w in [(0, 1, 2.0), (1, 2, 1.0), (3, 4, 5.0), (5, 6, 1.5), (6, 7, 2.5)]:
        graph.add_edge(u, v, w)
    for seed in range(3):
        expected = reference_baswana_sen(graph, k=2, seed=seed)
        actual = baswana_sen_spanner(graph, k=2, seed=seed)
        assert actual.spanner_edges == expected.spanner_edges
        assert actual.clusters_per_phase == expected.clusters_per_phase
