"""Tests for the Connect procedure (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spanners.connect import ConnectResult, connect, sort_candidates


class TestSorting:
    def test_sorts_by_weight_then_id(self):
        weights = {3: 2.0, 1: 1.0, 2: 1.0}
        assert sort_candidates([3, 1, 2], weights) == [1, 2, 3]

    def test_empty_candidates(self):
        assert sort_candidates([], {}) == []


class TestConnectDeterministic:
    def test_probability_one_accepts_lightest(self, rng):
        weights = {5: 3.0, 7: 1.0, 2: 2.0}
        probs = {u: 1.0 for u in weights}
        result = connect([5, 7, 2], weights, probs, rng)
        assert result.accepted == 7
        assert result.accepted_weight == 1.0
        assert result.rejected == []
        assert not result.is_bottom

    def test_probability_zero_rejects_everything(self, rng):
        weights = {1: 1.0, 2: 2.0}
        probs = {1: 0.0, 2: 0.0}
        result = connect([1, 2], weights, probs, rng)
        assert result.is_bottom
        assert result.rejected == [1, 2]

    def test_empty_input_returns_bottom(self, rng):
        result = connect([], {}, {}, rng)
        assert result.is_bottom
        assert result.rejected == []

    def test_partial_probabilities(self, rng):
        # first candidate never exists, second always does
        weights = {1: 1.0, 2: 2.0, 3: 3.0}
        probs = {1: 0.0, 2: 1.0, 3: 0.5}
        result = connect([1, 2, 3], weights, probs, rng)
        assert result.accepted == 2
        assert result.rejected == [1]
        # the third candidate was never inspected
        assert 3 not in result.tried

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(ValueError):
            connect([1], {1: 1.0}, {1: 1.5}, rng)


class TestConnectStatistics:
    def test_acceptance_rate_matches_probability(self):
        """A single candidate with probability p is accepted ~p of the time."""
        rng = np.random.default_rng(0)
        p = 0.3
        accepted = 0
        trials = 4000
        for _ in range(trials):
            result = connect([1], {1: 1.0}, {1: p}, rng)
            if not result.is_bottom:
                accepted += 1
        assert accepted / trials == pytest.approx(p, abs=0.03)

    def test_rejected_prefix_property(self):
        """Everything rejected sorts strictly before the accepted candidate."""
        rng = np.random.default_rng(1)
        weights = {u: float(u % 5 + 1) for u in range(1, 11)}
        probs = {u: 0.4 for u in weights}
        for _ in range(200):
            result = connect(list(weights), weights, probs, rng)
            if result.is_bottom:
                assert set(result.rejected) == set(weights)
                continue
            accepted_key = (weights[result.accepted], result.accepted)
            for u in result.rejected:
                assert (weights[u], u) < accepted_key


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=10, unique=True),
    st.integers(min_value=0, max_value=10**6),
)
def test_property_tried_is_prefix_of_sorted_order(candidates, seed):
    rng = np.random.default_rng(seed)
    weights = {u: float((u * 7) % 4 + 1) for u in candidates}
    probs = {u: ((u * 13) % 10) / 10.0 for u in candidates}
    result = connect(candidates, weights, probs, rng)
    ordered = sort_candidates(candidates, weights)
    assert result.tried == ordered[: len(result.tried)]
    assert set(result.rejected) <= set(result.tried)
    if result.accepted is not None:
        assert result.tried[-1] == result.accepted
        assert result.rejected == result.tried[:-1]
