"""Tests for t-bundle spanners (Algorithm 3)."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.spanners.bundle import bundle_spanner


def max_stretch(reference_graph, spanner_graph):
    dR = reference_graph.all_pairs_shortest_paths()
    dS = spanner_graph.all_pairs_shortest_paths()
    mask = np.isfinite(dR) & (dR > 0)
    return float(np.max(dS[mask] / dR[mask])) if np.any(mask) else 1.0


class TestBundleStructure:
    def test_bundle_and_rejected_partition_decided_edges(self):
        g = generators.random_weighted_graph(25, average_degree=8, seed=1)
        probs = {e.key: 0.5 for e in g.edges()}
        result = bundle_spanner(g, probabilities=probs, k=2, t=3, seed=2)
        assert result.bundle.isdisjoint(result.rejected)
        all_edges = {e.key for e in g.edges()}
        assert result.bundle <= all_edges
        assert result.rejected <= all_edges

    def test_deterministic_bundle_has_no_rejections(self):
        g = generators.random_weighted_graph(25, average_degree=8, seed=3)
        result = bundle_spanner(g, k=2, t=2, seed=4)
        assert result.rejected == set()

    def test_bundle_grows_with_t(self):
        g = generators.complete_graph(24)
        small = bundle_spanner(g, k=2, t=1, seed=5)
        large = bundle_spanner(g, k=2, t=3, seed=5)
        assert len(large.bundle) >= len(small.bundle)

    def test_t_spanners_are_edge_disjoint(self):
        g = generators.complete_graph(20)
        result = bundle_spanner(g, k=2, t=3, seed=6)
        seen = set()
        for spanner in result.per_spanner:
            assert spanner.f_plus.isdisjoint(seen)
            seen |= spanner.f_plus

    def test_every_layer_spans_what_remains(self):
        """T_i must be a (2k-1)-spanner of G minus the earlier layers (Def. 2.2)."""
        g = generators.random_weighted_graph(18, average_degree=8, seed=7)
        k = 2
        result = bundle_spanner(g, k=k, t=3, seed=8)
        removed = set()
        for spanner in result.per_spanner:
            remaining = g.subgraph_with_edges(
                [e.key for e in g.edges() if e.key not in removed]
            )
            layer = g.subgraph_with_edges(spanner.f_plus)
            # only check vertex pairs connected in the remaining graph
            dR = remaining.all_pairs_shortest_paths()
            dL = layer.all_pairs_shortest_paths()
            mask = np.isfinite(dR) & (dR > 0)
            assert np.all(dL[mask] <= (2 * k - 1) * dR[mask] + 1e-9)
            removed |= spanner.f_plus

    def test_rounds_accumulate_over_layers(self):
        g = generators.random_weighted_graph(20, seed=9)
        one = bundle_spanner(g, k=2, t=1, seed=10)
        three = bundle_spanner(g, k=2, t=3, seed=10)
        assert three.rounds >= one.rounds

    def test_invalid_t(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            bundle_spanner(g, t=0)

    def test_orientation_covers_bundle(self):
        g = generators.random_weighted_graph(20, seed=11)
        result = bundle_spanner(g, k=2, t=2, seed=12)
        orientation = result.orientation()
        assert set(orientation) >= result.bundle

    def test_stops_early_when_graph_exhausted(self):
        g = generators.path_graph(6)
        # a tree is consumed by the first spanner; further layers are empty
        result = bundle_spanner(g, k=2, t=5, seed=13)
        assert result.bundle == {e.key for e in g.edges()}
        assert len(result.per_spanner) <= 2
