"""Tests for the probabilistic spanner of Section 3.1."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators
from repro.spanners.probabilistic import ProbabilisticSpanner, probabilistic_spanner


def max_stretch(reference_graph, spanner_graph):
    dR = reference_graph.all_pairs_shortest_paths()
    dS = spanner_graph.all_pairs_shortest_paths()
    mask = np.isfinite(dR) & (dR > 0)
    if not np.any(mask):
        return 1.0
    assert np.all(np.isfinite(dS[mask])), "spanner must connect what the reference connects"
    return float(np.max(dS[mask] / dR[mask]))


class TestDeterministicCase:
    """With p === 1 the algorithm is the Baswana-Sen algorithm (Lemma 3.1)."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_bound(self, k):
        for seed in range(3):
            g = generators.random_weighted_graph(22, average_degree=6, max_weight=8, seed=seed)
            result = probabilistic_spanner(g, k=k, seed=seed + 50)
            assert len(result.f_minus) == 0
            stretch = max_stretch(g, result.spanner_graph(g))
            assert stretch <= 2 * k - 1 + 1e-9

    def test_unweighted_graph_stretch(self):
        g = generators.erdos_renyi(24, 0.4, max_weight=1, seed=11)
        result = probabilistic_spanner(g, k=3, seed=3)
        assert max_stretch(g, result.spanner_graph(g)) <= 5 + 1e-9

    def test_spanner_connected_when_input_connected(self):
        g = generators.random_weighted_graph(30, seed=13)
        result = probabilistic_spanner(g, k=4, seed=17)
        assert result.spanner_graph(g).is_connected()

    def test_size_smaller_than_complete_graph(self):
        g = generators.complete_graph(36)
        sizes = [
            len(probabilistic_spanner(g, k=2, seed=s).f_plus) for s in range(4)
        ]
        assert np.mean(sizes) < g.m

    def test_rounds_positive_and_recorded(self):
        g = generators.random_weighted_graph(20, seed=19)
        result = probabilistic_spanner(g, k=3, seed=23)
        assert result.rounds > 0
        assert len(result.broadcasts) > 0


class TestProbabilisticCase:
    def test_partition_into_fplus_fminus(self):
        g = generators.random_weighted_graph(24, average_degree=7, seed=2)
        probs = {e.key: 0.5 for e in g.edges()}
        result = probabilistic_spanner(g, probabilities=probs, k=3, seed=5)
        assert result.f_plus.isdisjoint(result.f_minus)
        all_edges = {e.key for e in g.edges()}
        assert result.f_plus <= all_edges
        assert result.f_minus <= all_edges

    def test_per_vertex_views_consistent(self):
        g = generators.random_weighted_graph(20, seed=3)
        probs = {e.key: 0.6 for e in g.edges()}
        result = probabilistic_spanner(g, probabilities=probs, k=3, seed=7)
        for v in range(g.n):
            for u in result.f_plus_of[v]:
                assert tuple(sorted((u, v))) in result.f_plus
                assert v in result.f_plus_of[u]
            for u in result.f_minus_of[v]:
                assert tuple(sorted((u, v))) in result.f_minus
                assert v in result.f_minus_of[u]

    def test_zero_probability_puts_every_decided_edge_in_fminus(self):
        g = generators.random_weighted_graph(15, seed=4)
        probs = {e.key: 0.0 for e in g.edges()}
        result = probabilistic_spanner(g, probabilities=probs, k=2, seed=9)
        assert result.f_plus == set()
        assert len(result.f_minus) > 0

    def test_stretch_against_fplus_union_undecided(self):
        """Lemma 3.1: S = (V, F+) spans (V, F+ | E'') for any E'' inside E \\ F."""
        rng = np.random.default_rng(31)
        for seed in range(3):
            g = generators.random_weighted_graph(20, average_degree=6, seed=seed)
            probs = {e.key: 0.5 for e in g.edges()}
            result = probabilistic_spanner(g, probabilities=probs, k=3, seed=seed + 7)
            undecided = [e.key for e in g.edges() if e.key not in result.f]
            subset = [key for key in undecided if rng.random() < 0.5]
            reference = g.subgraph_with_edges(list(result.f_plus) + subset)
            assert max_stretch(reference, result.spanner_graph(g)) <= 5 + 1e-9

    def test_acceptance_rate_tracks_probability(self):
        """Each decided edge lands in F+ with its maintained probability."""
        g = generators.complete_graph(8)
        p = 0.3
        probs = {e.key: p for e in g.edges()}
        in_plus = 0
        decided = 0
        for seed in range(300):
            result = probabilistic_spanner(g, probabilities=probs, k=2, seed=seed)
            in_plus += len(result.f_plus)
            decided += len(result.f)
        assert decided > 0
        assert in_plus / decided == pytest.approx(p, abs=0.06)

    def test_orientation_covers_all_spanner_edges(self):
        g = generators.random_weighted_graph(25, seed=6)
        result = probabilistic_spanner(g, k=3, seed=8)
        assert set(result.orientation) == result.f_plus
        for key, (tail, head) in result.orientation.items():
            assert {tail, head} == set(key)

    def test_max_out_degree_reported(self):
        g = generators.random_weighted_graph(25, seed=10)
        result = probabilistic_spanner(g, k=3, seed=12)
        degrees = result.out_degrees()
        assert result.max_out_degree() == max(degrees.values())
        assert sum(degrees.values()) == len(result.f_plus)


class TestValidation:
    def test_invalid_k(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            ProbabilisticSpanner(g, k=0)

    def test_invalid_probability(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            ProbabilisticSpanner(g, probabilities={(0, 1): 2.0}, k=2)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=5, max_value=16),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=10**6),
)
def test_property_fplus_always_spans_connected_input(n, k, seed):
    g = generators.random_weighted_graph(n, average_degree=4, seed=seed)
    result = probabilistic_spanner(g, k=k, seed=seed + 1)
    spanner = result.spanner_graph(g)
    assert spanner.is_connected()
    assert max_stretch(g, spanner) <= 2 * k - 1 + 1e-9
