"""Tests for preconditioned Chebyshev iteration (Theorem 2.3)."""

import numpy as np
import pytest

from repro.graphs import generators, laplacian_matrix
from repro.solvers.chebyshev import (
    chebyshev_error_bound,
    chebyshev_iteration_count,
    preconditioned_chebyshev,
)


def spd_system(n, condition, seed=0):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    eigenvalues = np.linspace(1.0, condition, n)
    A = Q @ np.diag(eigenvalues) @ Q.T
    x = rng.normal(size=n)
    return A, x, A @ x


class TestIterationCount:
    def test_scales_with_sqrt_kappa(self):
        assert chebyshev_iteration_count(100.0, 1e-3) >= 2 * chebyshev_iteration_count(4.0, 1e-3)

    def test_scales_with_log_eps(self):
        assert chebyshev_iteration_count(4.0, 1e-8) > chebyshev_iteration_count(4.0, 1e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            chebyshev_iteration_count(0.5, 1e-3)
        with pytest.raises(ValueError):
            chebyshev_iteration_count(2.0, 0.9)

    def test_error_bound_decreases(self):
        assert chebyshev_error_bound(10.0, 20) < chebyshev_error_bound(10.0, 5)
        assert chebyshev_error_bound(1.0, 3) == 0.0


class TestSPDSystems:
    def test_identity_preconditioner_with_true_kappa(self):
        A, x_true, b = spd_system(20, condition=50.0, seed=1)
        # B = lambda_max * I satisfies A <= B <= kappa A with kappa = 50
        x, report = preconditioned_chebyshev(
            apply_A=lambda v: A @ v,
            solve_B=lambda r: r / 50.0,
            b=b,
            kappa=50.0,
            eps=1e-8,
        )
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-6
        assert report.iterations <= chebyshev_iteration_count(50.0, 1e-8)

    def test_exact_preconditioner_converges_immediately(self):
        A, x_true, b = spd_system(15, condition=100.0, seed=2)
        A_inv = np.linalg.inv(A)
        x, report = preconditioned_chebyshev(
            apply_A=lambda v: A @ v,
            solve_B=lambda r: A_inv @ r,
            b=b,
            kappa=1.0,
            eps=1e-10,
        )
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-9
        assert report.iterations == 1

    def test_convergence_rate_beats_theory_bound(self):
        A, x_true, b = spd_system(25, condition=30.0, seed=3)
        iterations = 25
        x, _ = preconditioned_chebyshev(
            apply_A=lambda v: A @ v,
            solve_B=lambda r: r / 30.0,
            b=b,
            kappa=30.0,
            eps=1e-12,
            max_iterations=iterations,
        )
        a_norm = lambda v: float(np.sqrt(v @ A @ v))
        error = a_norm(x - x_true) / a_norm(x_true)
        assert error <= chebyshev_error_bound(30.0, iterations) + 1e-12

    def test_residual_early_stop(self):
        A, x_true, b = spd_system(20, condition=20.0, seed=4)
        x, report = preconditioned_chebyshev(
            apply_A=lambda v: A @ v,
            solve_B=lambda r: r / 20.0,
            b=b,
            kappa=20.0,
            eps=1e-12,
            residual_stop=1e-3,
        )
        assert report.final_residual <= 1e-3
        assert report.iterations < chebyshev_iteration_count(20.0, 1e-12)

    def test_report_counts_operations(self):
        A, _x, b = spd_system(10, condition=10.0, seed=5)
        _x2, report = preconditioned_chebyshev(
            apply_A=lambda v: A @ v,
            solve_B=lambda r: r / 10.0,
            b=b,
            kappa=10.0,
            eps=1e-6,
        )
        assert report.matvec_count >= report.iterations
        assert report.preconditioner_solves >= 1


class TestLaplacianSystems:
    def test_singular_laplacian_with_pinv_preconditioner(self):
        g = generators.random_weighted_graph(20, seed=6)
        L = laplacian_matrix(g)
        rng = np.random.default_rng(7)
        x_true = rng.normal(size=g.n)
        x_true -= x_true.mean()
        b = L @ x_true
        L_pinv = np.linalg.pinv(L)
        x, _report = preconditioned_chebyshev(
            apply_A=lambda v: L @ v,
            solve_B=lambda r: L_pinv @ r,
            b=b,
            kappa=1.0,
            eps=1e-10,
        )
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-8

    def test_sparsifier_style_preconditioner_kappa3(self):
        """Corollary 2.4's setting: B = 1.5 * L_H with H = G (exact sparsifier)."""
        g = generators.random_weighted_graph(18, seed=8)
        L = laplacian_matrix(g)
        B = 1.5 * L
        B_pinv = np.linalg.pinv(B)
        rng = np.random.default_rng(9)
        x_true = rng.normal(size=g.n)
        x_true -= x_true.mean()
        b = L @ x_true
        x, report = preconditioned_chebyshev(
            apply_A=lambda v: L @ v,
            solve_B=lambda r: B_pinv @ r,
            b=b,
            kappa=3.0,
            eps=1e-9,
        )
        a_norm = lambda v: float(np.sqrt(max(0.0, v @ L @ v)))
        assert a_norm(x - x_true) <= 1e-9 * a_norm(x_true) + 1e-12
        assert report.iterations <= chebyshev_iteration_count(3.0, 1e-9)
