"""Tests for the Broadcast Congested Clique Laplacian solver (Theorem 1.3)."""

import numpy as np
import pytest

from repro.graphs import generators, laplacian_matrix
from repro.graphs.laplacian import laplacian_norm
from repro.solvers import BCCLaplacianSolver


@pytest.fixture(scope="module")
def solver_graph():
    return generators.random_weighted_graph(24, average_degree=6, max_weight=8, seed=5)


@pytest.fixture(scope="module")
def solver(solver_graph):
    # t_override keeps preprocessing fast; the solver then measures the actual
    # preconditioner quality and still meets the accuracy contract.
    return BCCLaplacianSolver(solver_graph, seed=1, t_override=2)


class TestAccuracy:
    @pytest.mark.parametrize("eps", [1e-2, 1e-4, 1e-8])
    def test_error_bound_in_laplacian_norm(self, solver, solver_graph, eps):
        rng = np.random.default_rng(3)
        b = rng.normal(size=solver_graph.n)
        report = solver.solve(b, eps=eps, check=True)
        assert report.error_bound_holds
        assert report.measured_relative_error <= eps

    def test_paper_parameters_also_meet_bound(self):
        g = generators.random_weighted_graph(16, average_degree=5, seed=7)
        solver = BCCLaplacianSolver(g, seed=2)
        rng = np.random.default_rng(4)
        b = rng.normal(size=g.n)
        report = solver.solve(b, eps=1e-6, check=True)
        assert report.error_bound_holds

    def test_exact_preconditioner_mode(self, solver_graph):
        solver = BCCLaplacianSolver(solver_graph, exact_preconditioner=True)
        rng = np.random.default_rng(5)
        b = rng.normal(size=solver_graph.n)
        report = solver.solve(b, eps=1e-10, check=True)
        assert report.error_bound_holds
        assert solver.preprocessing.kappa == 1.0

    def test_solution_orthogonal_to_ones(self, solver, solver_graph):
        rng = np.random.default_rng(6)
        b = rng.normal(size=solver_graph.n)
        report = solver.solve(b, eps=1e-6)
        # the Chebyshev iterates stay in the range of L (b was projected)
        assert abs(np.mean(report.solution)) < 1e-6 * (1 + np.linalg.norm(report.solution))

    def test_exact_solution_reference(self, solver, solver_graph):
        rng = np.random.default_rng(7)
        b = rng.normal(size=solver_graph.n)
        x = solver.exact_solution(b)
        L = laplacian_matrix(solver_graph)
        b_projected = b - np.mean(b)
        np.testing.assert_allclose(L @ x, b_projected, atol=1e-8)


class TestRounds:
    def test_rounds_grow_with_precision(self, solver, solver_graph):
        rng = np.random.default_rng(8)
        b = rng.normal(size=solver_graph.n)
        cheap = solver.solve(b, eps=1e-2)
        precise = solver.solve(b, eps=1e-8)
        assert precise.rounds >= cheap.rounds
        assert precise.chebyshev.iterations >= cheap.chebyshev.iterations

    def test_preprocessing_recorded_once(self, solver):
        assert solver.preprocessing.rounds > 0
        assert solver.preprocessing.sparsifier_edges > 0

    def test_theorem_bounds_are_finite(self, solver):
        assert np.isfinite(solver.preprocessing_round_bound())
        assert solver.per_instance_round_bound(1e-6) > solver.per_instance_round_bound(1e-2) * 0.5

    def test_ledger_tracks_matvecs(self, solver_graph):
        solver = BCCLaplacianSolver(solver_graph, seed=3, t_override=2)
        rng = np.random.default_rng(9)
        solver.solve(rng.normal(size=solver_graph.n), eps=1e-4)
        grouped = solver.ledger.rounds_by_operation()
        assert "matvec" in grouped
        assert grouped["matvec"] > 0


class TestValidation:
    def test_disconnected_graph_rejected(self):
        from repro.graphs.graph import WeightedGraph

        g = WeightedGraph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError, match="connected"):
            BCCLaplacianSolver(g)

    def test_bad_eps_rejected(self, solver, solver_graph):
        with pytest.raises(ValueError):
            solver.solve(np.zeros(solver_graph.n), eps=0.9)

    def test_bad_rhs_shape_rejected(self, solver):
        with pytest.raises(ValueError):
            solver.solve(np.zeros(3), eps=1e-3)

    def test_solve_many(self, solver, solver_graph):
        rng = np.random.default_rng(10)
        rhs = [rng.normal(size=solver_graph.n) for _ in range(3)]
        reports = solver.solve_many(rhs, eps=1e-4)
        assert len(reports) == 3


class TestSparseBackend:
    def test_backend_attribute_resolution(self, solver_graph):
        dense = BCCLaplacianSolver(solver_graph, seed=1, t_override=2, backend="dense")
        sparse = BCCLaplacianSolver(solver_graph, seed=1, t_override=2, backend="sparse")
        assert dense.backend == "dense" and sparse.backend == "sparse"
        # small graph: auto resolves to dense
        assert BCCLaplacianSolver(solver_graph, seed=1, t_override=2).backend == "dense"

    def test_sparse_backend_matches_dense(self, solver_graph):
        rng = np.random.default_rng(17)
        b = rng.normal(size=solver_graph.n)
        dense = BCCLaplacianSolver(solver_graph, seed=1, t_override=2, backend="dense")
        sparse = BCCLaplacianSolver(solver_graph, seed=1, t_override=2, backend="sparse")
        rd = dense.solve(b, eps=1e-8, check=True)
        rs = sparse.solve(b, eps=1e-8, check=True)
        assert rd.error_bound_holds and rs.error_bound_holds
        np.testing.assert_allclose(rs.solution, rd.solution, atol=1e-7)
        np.testing.assert_allclose(
            sparse.exact_solution(b), dense.exact_solution(b), atol=1e-8
        )

    def test_sparse_exact_preconditioner(self, solver_graph):
        rng = np.random.default_rng(18)
        b = rng.normal(size=solver_graph.n)
        solver = BCCLaplacianSolver(solver_graph, exact_preconditioner=True, backend="sparse")
        report = solver.solve(b, eps=1e-8, check=True)
        assert report.error_bound_holds
        L = laplacian_matrix(solver_graph)
        residual = L @ report.solution - (b - b.mean())
        assert np.linalg.norm(residual) <= 1e-6 * max(1.0, np.linalg.norm(b))


class TestReusablePreprocessing:
    def test_prepare_then_construct_matches_from_scratch(self, solver_graph):
        rng = np.random.default_rng(23)
        b = rng.normal(size=solver_graph.n)
        scratch = BCCLaplacianSolver(solver_graph, seed=1, t_override=2)
        prepared = BCCLaplacianSolver.prepare(solver_graph, seed=1, t_override=2)
        reused = BCCLaplacianSolver(solver_graph, preprocessing=prepared)
        np.testing.assert_allclose(
            reused.solve(b, eps=1e-8).solution,
            scratch.solve(b, eps=1e-8).solution,
            atol=1e-10,
        )
        assert reused.preprocessing.kappa == scratch.preprocessing.kappa
        assert reused.preprocessing.sparsifier == scratch.preprocessing.sparsifier

    def test_reused_preprocessing_charges_no_rounds(self, solver_graph):
        prepared = BCCLaplacianSolver.prepare(solver_graph, seed=1, t_override=2)
        scratch = BCCLaplacianSolver(solver_graph, seed=1, t_override=2)
        reused = BCCLaplacianSolver(solver_graph, preprocessing=prepared)
        assert scratch.ledger.total_rounds > 0
        assert reused.ledger.total_rounds == 0
        # the report still documents what preprocessing originally cost
        assert reused.preprocessing.rounds == scratch.preprocessing.rounds > 0

    def test_preprocessing_shared_across_constructions(self, solver_graph):
        prepared = BCCLaplacianSolver.prepare(
            solver_graph, seed=1, t_override=2, backend="sparse"
        )
        a = BCCLaplacianSolver(solver_graph, preprocessing=prepared)
        c = BCCLaplacianSolver(solver_graph, preprocessing=prepared)
        assert a.backend == c.backend == "sparse"
        assert a.prepared is c.prepared is prepared
        assert prepared.grounded is not None  # one factorisation, shared

    def test_wrong_size_preprocessing_rejected(self, solver_graph):
        prepared = BCCLaplacianSolver.prepare(solver_graph, seed=1, t_override=2)
        other = generators.random_weighted_graph(solver_graph.n + 3, seed=4)
        with pytest.raises(ValueError):
            BCCLaplacianSolver(other, preprocessing=prepared)

    def test_prepare_requires_connected_graph(self):
        from repro.graphs.graph import WeightedGraph

        g = WeightedGraph(4)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            BCCLaplacianSolver.prepare(g)

    def test_nbytes_accounting(self, solver_graph):
        for backend in ("dense", "sparse"):
            prepared = BCCLaplacianSolver.prepare(
                solver_graph, seed=1, t_override=2, backend=backend
            )
            solver = BCCLaplacianSolver(solver_graph, preprocessing=prepared)
            assert solver.nbytes() >= prepared.nbytes() > 0


class TestBackendThreading:
    def test_sparsifier_result_records_solver_backend(self, solver_graph):
        sparse = BCCLaplacianSolver(solver_graph, seed=1, t_override=2, backend="sparse")
        dense = BCCLaplacianSolver(solver_graph, seed=1, t_override=2, backend="dense")
        assert sparse._sparsifier_result.backend == "sparse"
        assert dense._sparsifier_result.backend == "dense"

    def test_certify_defaults_to_producer_backend(self, solver_graph):
        from repro.sparsify import spectral_sparsify

        forced = spectral_sparsify(
            solver_graph, eps=0.5, seed=1, t_override=2, backend="sparse"
        )
        default = spectral_sparsify(solver_graph, eps=0.5, seed=1, t_override=2)
        assert forced.backend == "sparse" and default.backend == "auto"
        # same rng stream: the backend knob must not perturb the sparsifier
        assert forced.sparsifier == default.sparsifier
        assert forced.certify(solver_graph, eps=0.5) == default.certify(
            solver_graph, eps=0.5
        )

    def test_conflicting_knobs_with_preprocessing_rejected(self, solver_graph):
        prepared = BCCLaplacianSolver.prepare(
            solver_graph, seed=1, t_override=2, backend="sparse"
        )
        for kwargs in (
            {"seed": 1},
            {"t_override": 2},
            {"bundle_scale": 2.0},
            {"exact_preconditioner": True},
            {"backend": "dense"},
        ):
            with pytest.raises(ValueError):
                BCCLaplacianSolver(solver_graph, preprocessing=prepared, **kwargs)
        # backend='auto' and the artifact's own backend are both honoured
        assert BCCLaplacianSolver(
            solver_graph, preprocessing=prepared, backend="sparse"
        ).backend == "sparse"
