"""Tests for the Gremban SDD-to-Laplacian reduction and SDD solver."""

import numpy as np
import pytest

from repro.graphs import generators, laplacian_matrix
from repro.graphs.laplacian import is_symmetric_diagonally_dominant
from repro.solvers.sdd import GrembanReduction, SDDSolver, gremban_expand, is_sdd_matrix


def random_sdd_matrix(n, seed=0, with_positive_offdiag=True):
    """A strictly diagonally dominant symmetric matrix with mixed off-diagonal signs."""
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    M = (A + A.T) / 2
    np.fill_diagonal(M, 0.0)
    if not with_positive_offdiag:
        M = -np.abs(M)
    row_sums = np.sum(np.abs(M), axis=1)
    M = M + np.diag(row_sums + rng.uniform(0.1, 1.0, size=n))
    return M


class TestSDDCheck:
    def test_accepts_sdd(self):
        assert is_sdd_matrix(random_sdd_matrix(8, seed=1))

    def test_rejects_non_sdd(self):
        M = np.array([[1.0, -5.0], [-5.0, 1.0]])
        assert not is_sdd_matrix(M)

    def test_laplacian_is_sdd(self):
        g = generators.random_weighted_graph(10, seed=2)
        assert is_sdd_matrix(laplacian_matrix(g))


class TestGrembanExpansion:
    def test_expansion_is_laplacian(self):
        M = random_sdd_matrix(8, seed=3)
        L = gremban_expand(M)
        assert L.shape == (16, 16)
        assert is_symmetric_diagonally_dominant(L)
        np.testing.assert_allclose(L @ np.ones(16), 0.0, atol=1e-9)
        off_diag = L - np.diag(np.diag(L))
        assert np.all(off_diag <= 1e-12)

    def test_expansion_rejects_non_sdd(self):
        with pytest.raises(ValueError):
            gremban_expand(np.array([[1.0, -5.0], [-5.0, 1.0]]))

    def test_reduction_recovers_solution(self):
        M = random_sdd_matrix(10, seed=4)
        reduction = GrembanReduction.from_sdd(M)
        rng = np.random.default_rng(5)
        x_true = rng.normal(size=10)
        b = M @ x_true
        lifted = reduction.lift_rhs(b)
        xy = np.linalg.pinv(reduction.laplacian) @ lifted
        x = reduction.restrict_solution(xy)
        np.testing.assert_allclose(x, x_true, atol=1e-7)

    def test_expansion_graph_roundtrip(self):
        M = random_sdd_matrix(6, seed=6)
        reduction = GrembanReduction.from_sdd(M)
        graph = reduction.expansion_graph()
        np.testing.assert_allclose(
            laplacian_matrix(graph), reduction.laplacian, atol=1e-9
        )


class TestSDDSolver:
    @pytest.mark.parametrize("with_pos", [True, False])
    def test_direct_method_accuracy(self, with_pos):
        M = random_sdd_matrix(12, seed=7, with_positive_offdiag=with_pos)
        rng = np.random.default_rng(8)
        x_true = rng.normal(size=12)
        solver = SDDSolver(M, method="direct")
        x = solver.solve(M @ x_true)
        np.testing.assert_allclose(x, x_true, atol=1e-7)

    def test_bcc_method_accuracy(self):
        M = random_sdd_matrix(10, seed=9)
        rng = np.random.default_rng(10)
        x_true = rng.normal(size=10)
        solver = SDDSolver(M, method="bcc", seed=1, t_override=2)
        x = solver.solve(M @ x_true, eps=1e-10)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-6
        assert solver.rounds > 0

    def test_flow_style_matrix(self):
        """The A^T D A matrices of Section 5 are SDD; check the solver on one."""
        net = generators.random_flow_network(8, seed=11)
        B = net.incidence_matrix(drop_vertex=net.source)
        m = B.shape[0]
        rng = np.random.default_rng(12)
        D = np.diag(rng.uniform(0.5, 2.0, size=m))
        M = B.T @ D @ B + 1e-3 * np.eye(B.shape[1])
        assert is_sdd_matrix(M)
        x_true = rng.normal(size=M.shape[0])
        solver = SDDSolver(M, method="direct")
        np.testing.assert_allclose(solver.solve(M @ x_true), x_true, atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            SDDSolver(np.array([[1.0, -9.0], [-9.0, 1.0]]))
        with pytest.raises(ValueError):
            SDDSolver(random_sdd_matrix(5), method="fancy")
        solver = SDDSolver(random_sdd_matrix(5))
        with pytest.raises(ValueError):
            solver.solve(np.zeros(3))


class TestSparseDirectBackend:
    def test_sparse_backend_matches_dense(self):
        M = random_sdd_matrix(14, seed=21, with_positive_offdiag=True)
        rng = np.random.default_rng(22)
        x_true = rng.normal(size=14)
        b = M @ x_true
        xd = SDDSolver(M, method="direct", backend="dense").solve(b)
        xs = SDDSolver(M, method="direct", backend="sparse").solve(b)
        np.testing.assert_allclose(xs, xd, atol=1e-8)
        np.testing.assert_allclose(xs, x_true, atol=1e-7)

    def test_sparse_backend_on_singular_laplacian_input(self):
        g = generators.random_weighted_graph(10, seed=23)
        M = laplacian_matrix(g)
        rng = np.random.default_rng(24)
        x_true = rng.normal(size=10)
        x_true -= x_true.mean()
        b = M @ x_true  # consistent by construction
        xs = SDDSolver(M, method="direct", backend="sparse").solve(b)
        np.testing.assert_allclose(M @ xs, b, atol=1e-8)

    def test_unknown_backend_rejected(self):
        M = random_sdd_matrix(6, seed=25)
        with pytest.raises(ValueError, match="backend"):
            SDDSolver(M, backend="gpu")
