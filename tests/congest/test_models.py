"""Tests for the CONGEST-family communication models."""

import pytest

from repro.congest.models import (
    BroadcastCongestedCliqueModel,
    BroadcastCongestModel,
    CongestedCliqueModel,
    CongestModel,
    make_model,
)


def triangle_adjacency():
    return {0: {1, 2}, 1: {0, 2}, 2: {0, 1}}


def path_adjacency():
    return {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}


class TestTopologies:
    def test_congest_restricted_to_graph_edges(self):
        model = CongestModel(path_adjacency())
        assert model.communication_neighbours(0) == {1}
        assert model.communication_neighbours(1) == {0, 2}

    def test_clique_models_are_all_to_all(self):
        for cls in (CongestedCliqueModel, BroadcastCongestedCliqueModel):
            model = cls(path_adjacency())
            assert model.communication_neighbours(0) == {1, 2, 3}
            assert model.communication_neighbours(3) == {0, 1, 2}

    def test_graph_neighbours_preserved_in_clique_models(self):
        model = BroadcastCongestedCliqueModel(path_adjacency())
        assert model.graph_neighbours(0) == {1}

    def test_vertex_count(self):
        model = CongestModel(triangle_adjacency())
        assert model.n == 3
        assert list(model.vertices) == [0, 1, 2]


class TestBroadcastConstraint:
    def test_broadcast_models_flag(self):
        assert BroadcastCongestModel(triangle_adjacency()).broadcast_only
        assert BroadcastCongestedCliqueModel(triangle_adjacency()).broadcast_only
        assert not CongestModel(triangle_adjacency()).broadcast_only
        assert not CongestedCliqueModel(triangle_adjacency()).broadcast_only

    def test_validate_send_rejects_distinct_payloads_under_broadcast(self):
        model = BroadcastCongestModel(triangle_adjacency())
        with pytest.raises(ValueError, match="broadcast"):
            model.validate_send(0, {1, 2}, distinct_payloads=True)

    def test_validate_send_rejects_non_neighbours_in_congest(self):
        model = CongestModel(path_adjacency())
        with pytest.raises(ValueError, match="may not send"):
            model.validate_send(0, {3}, distinct_payloads=False)

    def test_validate_send_accepts_legal_sends(self):
        model = CongestModel(path_adjacency())
        model.validate_send(1, {0, 2}, distinct_payloads=True)
        bcc = BroadcastCongestedCliqueModel(path_adjacency())
        bcc.validate_send(0, {1, 2, 3}, distinct_payloads=False)


class TestRegistry:
    def test_make_model_by_name(self):
        adjacency = triangle_adjacency()
        assert isinstance(make_model("congest", adjacency), CongestModel)
        assert isinstance(make_model("bc", adjacency), BroadcastCongestModel)
        assert isinstance(make_model("bcc", adjacency), BroadcastCongestedCliqueModel)
        assert isinstance(make_model("congested-clique", adjacency), CongestedCliqueModel)

    def test_make_model_unknown_name(self):
        with pytest.raises(ValueError, match="unknown model"):
            make_model("mystery", triangle_adjacency())
