"""Tests for the synchronous network simulator."""

import pytest

from repro.congest.models import BroadcastCongestedCliqueModel, BroadcastCongestModel, CongestModel
from repro.congest.network import Network
from repro.congest.vertex import VertexAlgorithm, VertexContext


def path_adjacency(n=4):
    adj = {v: set() for v in range(n)}
    for v in range(n - 1):
        adj[v].add(v + 1)
        adj[v + 1].add(v)
    return adj


class FloodMax(VertexAlgorithm):
    """Every vertex learns the maximum identifier by flooding (Broadcast CONGEST)."""

    def __init__(self, n):
        self.known = {v: v for v in range(n)}
        self.changed = {v: True for v in range(n)}

    def initialize(self, ctx: VertexContext) -> None:
        ctx.broadcast(self.known[ctx.vertex])

    def round(self, ctx: VertexContext, round_number: int) -> None:
        best = self.known[ctx.vertex]
        for msg in ctx.inbox:
            best = max(best, msg.payload)
        self.changed[ctx.vertex] = best != self.known[ctx.vertex]
        self.known[ctx.vertex] = best
        if self.changed[ctx.vertex]:
            ctx.broadcast(best)

    def is_finished(self, vertex: int) -> bool:
        return not self.changed[vertex]

    def result(self, vertex: int):
        return self.known[vertex]


class UnicastEcho(VertexAlgorithm):
    """Vertex 0 sends a distinct message to each neighbour (needs unicast)."""

    def __init__(self):
        self.done = False

    def initialize(self, ctx: VertexContext) -> None:
        pass

    def round(self, ctx: VertexContext, round_number: int) -> None:
        if ctx.vertex == 0 and round_number == 1:
            for i, u in enumerate(sorted(ctx.neighbours)):
                ctx.send(u, ("hello", i))
        self.done = True

    def is_finished(self, vertex: int) -> bool:
        return self.done


class TestFloodMax:
    def test_all_vertices_learn_global_maximum(self):
        n = 6
        model = BroadcastCongestModel(path_adjacency(n))
        network = Network(model)
        algorithm = FloodMax(n)
        network.run(algorithm)
        assert all(algorithm.result(v) == n - 1 for v in range(n))

    def test_round_count_scales_with_diameter(self):
        short = Network(BroadcastCongestModel(path_adjacency(3)))
        long = Network(BroadcastCongestModel(path_adjacency(10)))
        short.run(FloodMax(3))
        long.run(FloodMax(10))
        assert long.metrics.logical_rounds > short.metrics.logical_rounds

    def test_bcc_floods_in_constant_rounds(self):
        n = 10
        network = Network(BroadcastCongestedCliqueModel(path_adjacency(n)))
        algorithm = FloodMax(n)
        network.run(algorithm)
        # one broadcast reaches everyone, a second round confirms quiescence
        assert network.metrics.logical_rounds <= 3
        assert all(algorithm.result(v) == n - 1 for v in range(n))

    def test_metrics_accumulate_messages_and_bits(self):
        n = 5
        network = Network(BroadcastCongestModel(path_adjacency(n)))
        network.run(FloodMax(n))
        assert network.metrics.messages > 0
        assert network.metrics.bits > 0
        assert network.metrics.broadcasts > 0


class TestModelEnforcement:
    def test_unicast_allowed_in_congest(self):
        network = Network(CongestModel(path_adjacency(4)))
        network.run(UnicastEcho())

    def test_unicast_rejected_under_broadcast_constraint(self):
        network = Network(BroadcastCongestModel(path_adjacency(4)))
        with pytest.raises(ValueError, match="broadcast"):
            network.run(UnicastEcho())

    def test_nontermination_is_detected(self):
        class Chatter(VertexAlgorithm):
            def initialize(self, ctx):
                pass

            def round(self, ctx, round_number):
                ctx.broadcast(round_number)

            def is_finished(self, vertex):
                return False

        network = Network(BroadcastCongestModel(path_adjacency(3)))
        with pytest.raises(RuntimeError, match="did not terminate"):
            network.run(Chatter(), max_rounds=20)
