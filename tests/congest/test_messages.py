"""Tests for message size accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.congest.messages import (
    Message,
    message_size_bits,
    message_size_words,
    split_into_words,
    word_size_bits,
)


class TestWordSize:
    def test_small_networks_have_at_least_one_bit(self):
        assert word_size_bits(1) >= 1
        assert word_size_bits(2) >= 1

    def test_word_size_grows_logarithmically(self):
        assert word_size_bits(16) == 4
        assert word_size_bits(1024) == 10
        assert word_size_bits(1025) == 11

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError):
            word_size_bits(0)

    @given(st.integers(min_value=2, max_value=10**6))
    def test_identifiers_fit_in_one_word(self, n):
        # every identifier 0..n-1 must be representable in one word
        assert (n - 1).bit_length() <= word_size_bits(n)


class TestMessageSizes:
    def test_none_payload_is_one_word(self):
        assert message_size_words(None, 16) == 1

    def test_identifier_payload_fits_one_word(self):
        assert message_size_words(7, 16) == 1

    def test_large_integer_needs_multiple_words(self):
        assert message_size_words(2 ** 40, 16) > 1

    def test_tuple_payload_sums_components(self):
        single = message_size_bits(5, 64)
        assert message_size_bits((5, 5, 5), 64) == 3 * single

    def test_float_payload_is_two_words(self):
        assert message_size_words(3.14, 256) == 2

    def test_split_into_words_consistency(self):
        words, bits = split_into_words((1, 2, 3), 32)
        assert words == message_size_words((1, 2, 3), 32)
        assert bits == message_size_bits((1, 2, 3), 32)

    @given(st.integers(min_value=0, max_value=2**60), st.integers(min_value=2, max_value=4096))
    def test_word_count_always_positive(self, value, n):
        assert message_size_words(value, n) >= 1


class TestMessageObject:
    def test_message_records_sender(self):
        msg = Message(sender=3, payload=(1, 2))
        assert msg.sender == 3
        assert msg.size_words(16) >= 1
        assert msg.size_bits(16) == message_size_bits((1, 2), 16)

    def test_message_is_frozen(self):
        msg = Message(sender=1, payload="x")
        with pytest.raises(AttributeError):
            msg.sender = 2
