"""Tests for the round ledger and communication primitives."""

import numpy as np
import pytest

from repro.congest.ledger import CommunicationPrimitives, RoundLedger


class TestRoundLedger:
    def test_total_rounds_accumulates(self):
        ledger = RoundLedger()
        ledger.charge("a", 3)
        ledger.charge("b", 2.5)
        assert ledger.total_rounds == pytest.approx(5.5)

    def test_rounds_by_operation_groups(self):
        ledger = RoundLedger()
        ledger.charge("matvec", 2)
        ledger.charge("matvec", 2)
        ledger.charge("broadcast", 1)
        grouped = ledger.rounds_by_operation()
        assert grouped["matvec"] == 4
        assert grouped["broadcast"] == 1

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            RoundLedger().charge("bad", -1)

    def test_reset_and_merge(self):
        a = RoundLedger()
        a.charge("x", 1)
        b = RoundLedger()
        b.charge("y", 2)
        a.merge(b)
        assert a.total_rounds == 3
        a.reset()
        assert a.total_rounds == 0


class TestCommunicationPrimitives:
    def test_local_operations_are_free(self):
        comm = CommunicationPrimitives(16)
        comm.vector_op()
        comm.local_computation()
        assert comm.ledger.total_rounds == 0

    def test_scalar_broadcast_costs_at_least_one_round(self):
        comm = CommunicationPrimitives(16)
        comm.broadcast_scalar()
        assert comm.ledger.total_rounds >= 1

    def test_matvec_cost_grows_with_precision(self):
        cheap = CommunicationPrimitives(64, precision=1e-3)
        costly = CommunicationPrimitives(64, precision=1e-12)
        cheap.matvec()
        costly.matvec()
        assert costly.ledger.total_rounds >= cheap.ledger.total_rounds

    def test_vector_broadcast_scales_with_length(self):
        comm = CommunicationPrimitives(10)
        r_short = comm.broadcast_vector_coordinatewise(10)
        r_long = comm.broadcast_vector_coordinatewise(100)
        assert r_long >= r_short
        assert r_long >= 10 * r_short / 10  # ceil(100/10)=10 coordinates per vertex

    def test_random_bits_broadcast(self):
        comm = CommunicationPrimitives(16)
        rounds = comm.broadcast_random_bits(bits=64)
        assert rounds == pytest.approx(np.ceil(64 / comm.word_bits))

    def test_distributed_matvec_matches_numpy(self):
        comm = CommunicationPrimitives(8)
        rng = np.random.default_rng(0)
        A = rng.normal(size=(8, 8))
        v = rng.normal(size=8)
        out = comm.distributed_matvec(A, v)
        np.testing.assert_allclose(out, A @ v)
        assert comm.ledger.total_rounds > 0

    def test_distributed_sum_matches_numpy(self):
        comm = CommunicationPrimitives(8)
        values = np.arange(8.0)
        assert comm.distributed_sum(values) == pytest.approx(28.0)

    def test_invalid_network_size(self):
        with pytest.raises(ValueError):
            CommunicationPrimitives(0)
