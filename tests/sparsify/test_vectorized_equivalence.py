"""rng-sequence equivalence of the array-native spanner/bundle/sparsify path.

The vectorised implementations (EdgeView masks, bulk reweighting, batched
final sampling) promise *bit-identical* outputs to the historical per-edge
implementations for any seed: they must consume the random stream in exactly
the same order.  These tests pin that promise by re-implementing the
pre-vectorisation ``bundle_spanner`` / ``spectral_sparsify`` /
``spectral_sparsify_apriori`` outer loops verbatim (rebuild-a-graph-per-layer,
dict-of-probabilities, scalar coin flips) on top of the shared
``ProbabilisticSpanner`` and comparing every output field on seeded graphs.
"""

import math

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.graph import EdgeView, WeightedGraph
from repro.spanners.bundle import bundle_spanner
from repro.spanners.probabilistic import ProbabilisticSpanner
from repro.sparsify import spectral_sparsify, spectral_sparsify_apriori
from repro.sparsify.spectral import _iteration_count, stretch_parameter


# -- historical reference implementations --------------------------------------


def reference_bundle_spanner(graph, probabilities=None, k=2, t=1, rng=None):
    """The pre-vectorisation Algorithm 3 loop: rebuild a graph per layer."""
    bundle, rejected, per_spanner, rounds = set(), set(), [], 0
    remaining = graph.copy()
    probabilities = dict(probabilities) if probabilities is not None else None
    for _ in range(t):
        if remaining.m == 0:
            break
        restricted_p = None
        if probabilities is not None:
            restricted_p = {
                edge.key: probabilities.get(edge.key, 1.0) for edge in remaining.edges()
            }
        spanner = ProbabilisticSpanner(
            remaining, probabilities=restricted_p, k=k, rng=rng
        ).run()
        per_spanner.append(spanner)
        bundle |= spanner.f_plus
        rejected |= spanner.f_minus
        rounds += spanner.rounds
        decided = spanner.f_plus | spanner.f_minus
        next_graph = WeightedGraph(remaining.n)
        for edge in remaining.edges():
            if edge.key not in decided:
                next_graph.add_edge(edge.u, edge.v, edge.weight)
        remaining = next_graph
    return bundle, rejected, per_spanner, rounds


def _reference_orientation(per_spanner):
    combined = {}
    for result in per_spanner:
        for key, arc in result.orientation.items():
            combined.setdefault(key, arc)
    return combined


def reference_spectral_sparsify(graph, eps, rng, t_override=None, k_override=None):
    """The pre-vectorisation Algorithm 5 loop (dicts + per-edge coin flips)."""
    n = graph.n
    k = k_override if k_override is not None else stretch_parameter(n)
    t = t_override
    current = graph.copy()
    probability = {edge.key: 1.0 for edge in graph.edges()}
    rounds = 0
    last_bundle, last_orientation = set(), {}
    for _ in range(1, _iteration_count(graph.m) + 1):
        restricted_p = {(u, v): probability[(u, v)] for (u, v, _) in current.edge_list()}
        bundle, rejected, per_spanner, bundle_rounds = reference_bundle_spanner(
            current, probabilities=restricted_p, k=k, t=t, rng=rng
        )
        last_bundle = set(bundle)
        last_orientation = _reference_orientation(per_spanner)
        rounds += bundle_rounds
        next_graph = WeightedGraph(n)
        for u, v, weight in current.edge_list():
            key = (u, v)
            if key in rejected:
                probability.pop(key, None)
                continue
            if key in bundle:
                probability[key] = 1.0
                next_graph.add_edge(u, v, weight)
            else:
                probability[key] = probability[key] / 4.0
                next_graph.add_edge(u, v, 4.0 * weight)
        current = next_graph

    sparsifier = WeightedGraph(n)
    orientation = {}
    broadcasts_per_vertex = {}
    for u, v, weight in current.edge_list():
        key = (u, v)
        if key in last_bundle:
            sparsifier.add_edge(u, v, weight)
            orientation[key] = last_orientation.get(key, (u, v))
            continue
        if rng.random() < probability[key]:
            sparsifier.add_edge(u, v, weight)
            orientation[key] = (u, v)
            broadcasts_per_vertex[u] = broadcasts_per_vertex.get(u, 0) + 1
    rounds += max(broadcasts_per_vertex.values()) if broadcasts_per_vertex else 1
    return sparsifier, orientation, dict(probability), rounds


def reference_spectral_sparsify_apriori(graph, eps, rng, t_override=None, k_override=None):
    """The pre-vectorisation Algorithm 4 loop (eager per-edge sampling)."""
    n = graph.n
    k = k_override if k_override is not None else stretch_parameter(n)
    current = graph.copy()
    orientation = {}
    for _ in range(1, _iteration_count(graph.m) + 1):
        bundle, _rejected, per_spanner, _rounds = reference_bundle_spanner(
            current, probabilities=None, k=k, t=t_override, rng=rng
        )
        bundle_orientation = _reference_orientation(per_spanner)
        next_graph = WeightedGraph(n)
        for key in sorted(bundle):
            u, v = key
            next_graph.add_edge(u, v, current.weight(u, v))
            orientation[key] = bundle_orientation.get(key, (u, v))
        for u, v, weight in current.edge_list():
            if (u, v) in bundle:
                continue
            if rng.random() < 0.25:
                next_graph.add_edge(u, v, 4.0 * weight)
                orientation[(u, v)] = (u, v)
        current = next_graph
    final_orientation = {
        key: orientation.get(key, (min(key), max(key)))
        for key in (edge.key for edge in current.edges())
    }
    return current, final_orientation


# -- the equivalence tests ------------------------------------------------------


def test_batched_uniforms_match_scalar_stream():
    """The vectorised final sampling relies on ``rng.random(k)`` consuming the
    bit stream exactly like ``k`` scalar draws; numpy guarantees this for the
    Generator API, and everything downstream of this file assumes it."""
    a = np.random.default_rng(123)
    b = np.random.default_rng(123)
    scalar = [b.random() for _ in range(257)]
    mixed = [a.random()] + list(a.random(255)) + [a.random()]
    np.testing.assert_array_equal(np.array(mixed), np.array(scalar))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_spanner_on_view_matches_materialised_subgraph(seed):
    graph = generators.random_weighted_graph(30, average_degree=6, max_weight=8, seed=seed)
    view = EdgeView.from_graph(graph)
    rng_mask = np.random.default_rng(seed)
    alive = rng_mask.random(view.base_m) < 0.7
    subgraph = graph.subgraph_with_edges(
        view.edge_key(i) for i in np.flatnonzero(alive)
    )
    probs = {e.key: 0.6 for e in subgraph.edges()}
    on_view = ProbabilisticSpanner(
        view.subview(alive),
        probabilities=probs,
        k=3,
        rng=np.random.default_rng(seed + 7),
    ).run()
    on_graph = ProbabilisticSpanner(
        subgraph, probabilities=probs, k=3, rng=np.random.default_rng(seed + 7)
    ).run()
    assert on_view.f_plus == on_graph.f_plus
    assert on_view.f_minus == on_graph.f_minus
    assert on_view.orientation == on_graph.orientation
    assert on_view.rounds == on_graph.rounds
    assert on_view.clusters_per_phase == on_graph.clusters_per_phase


@pytest.mark.parametrize("seed,with_probs", [(0, True), (1, True), (2, False)])
def test_bundle_matches_reference(seed, with_probs):
    graph = generators.random_weighted_graph(28, average_degree=7, max_weight=4, seed=seed)
    probs = {e.key: 0.5 for e in graph.edges()} if with_probs else None
    ref = reference_bundle_spanner(
        graph, probabilities=probs, k=2, t=3, rng=np.random.default_rng(seed + 50)
    )
    new = bundle_spanner(
        graph, probabilities=probs, k=2, t=3, rng=np.random.default_rng(seed + 50)
    )
    assert new.bundle == ref[0]
    assert new.rejected == ref[1]
    assert new.rounds == ref[3]
    assert [s.f_plus for s in new.per_spanner] == [s.f_plus for s in ref[2]]
    assert new.orientation() == _reference_orientation(ref[2])


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sparsify_matches_reference(seed):
    graph = generators.random_weighted_graph(32, average_degree=8, max_weight=16, seed=seed)
    ref_sparsifier, ref_orientation, ref_probs, ref_rounds = reference_spectral_sparsify(
        graph, eps=0.5, rng=np.random.default_rng(seed + 300), t_override=2
    )
    new = spectral_sparsify(graph, eps=0.5, rng=np.random.default_rng(seed + 300), t_override=2)
    assert new.sparsifier == ref_sparsifier
    assert new.orientation == ref_orientation
    assert new.final_probabilities == ref_probs
    assert new.rounds == ref_rounds
    assert len(new.iterations) == max(1, math.ceil(math.log2(graph.m)))


@pytest.mark.parametrize("seed", [0, 1])
def test_apriori_matches_reference(seed):
    graph = generators.random_weighted_graph(26, average_degree=7, seed=seed)
    ref_sparsifier, ref_orientation = reference_spectral_sparsify_apriori(
        graph, eps=0.5, rng=np.random.default_rng(seed + 400), t_override=2
    )
    new = spectral_sparsify_apriori(
        graph, eps=0.5, rng=np.random.default_rng(seed + 400), t_override=2
    )
    assert new.sparsifier == ref_sparsifier
    assert new.orientation == ref_orientation


def test_grid_with_paper_style_parameters():
    graph = generators.grid_graph(5, 6)
    ref = reference_spectral_sparsify(
        graph, eps=0.75, rng=np.random.default_rng(42), t_override=1, k_override=3
    )
    new = spectral_sparsify(
        graph, eps=0.75, rng=np.random.default_rng(42), t_override=1, k_override=3
    )
    assert new.sparsifier == ref[0]
    assert new.final_probabilities == ref[2]
