"""Tests for spectral sparsification (Algorithms 4 and 5, Theorem 1.2)."""

import math

import numpy as np
import pytest

from repro.graphs import generators, is_spectral_sparsifier, spectral_approximation_factor
from repro.sparsify import (
    bundle_size,
    spectral_sparsify,
    spectral_sparsify_apriori,
)
from repro.sparsify.spectral import stretch_parameter
from repro.graphs.graph import WeightedGraph


class TestParameters:
    def test_bundle_size_formula(self):
        assert bundle_size(16, 1.0) == math.ceil(400 * 16)
        assert bundle_size(16, 0.5) == math.ceil(400 * 16 / 0.25)
        assert bundle_size(16, 1.0, scale=0.01) == math.ceil(4 * 16)

    def test_bundle_size_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            bundle_size(16, 0.0)

    def test_stretch_parameter(self):
        assert stretch_parameter(16) == 4
        assert stretch_parameter(1000) == 10


class TestAdHocSparsifier:
    def test_paper_parameters_give_valid_sparsifier(self):
        """With the paper's bundle size the output is a (1 +/- eps) sparsifier
        (at this scale it usually contains every edge, which is still valid)."""
        g = generators.random_weighted_graph(24, average_degree=6, max_weight=4, seed=1)
        result = spectral_sparsify(g, eps=0.5, seed=2)
        assert is_spectral_sparsifier(g, result.sparsifier, eps=0.5)
        assert result.rounds > 0

    def test_sparsifier_edges_subset_with_power_of_four_weights(self):
        g = generators.random_weighted_graph(30, average_degree=8, max_weight=4, seed=3)
        result = spectral_sparsify(g, eps=0.5, seed=4, t_override=2)
        original = {e.key: e.weight for e in g.edges()}
        for edge in result.sparsifier.edges():
            assert edge.key in original
            ratio = edge.weight / original[edge.key]
            exponent = math.log(ratio, 4.0)
            assert exponent == pytest.approx(round(exponent), abs=1e-9)

    def test_iteration_count_is_log_m(self):
        g = generators.random_weighted_graph(30, average_degree=8, seed=5)
        result = spectral_sparsify(g, eps=0.5, seed=6, t_override=2)
        assert len(result.iterations) == max(1, math.ceil(math.log2(g.m)))

    def test_orientation_covers_every_sparsifier_edge(self):
        g = generators.random_weighted_graph(30, average_degree=8, seed=7)
        result = spectral_sparsify(g, eps=0.5, seed=8, t_override=2)
        sparsifier_edges = {e.key for e in result.sparsifier.edges()}
        assert set(result.orientation) == sparsifier_edges

    def test_small_t_reduces_size_on_dense_graphs(self):
        g = generators.erdos_renyi(40, 0.6, max_weight=2, seed=9)
        full = spectral_sparsify(g, eps=0.5, seed=10)
        small = spectral_sparsify(g, eps=0.5, seed=10, t_override=1)
        assert small.size < full.size
        assert full.size == g.m  # the paper-size bundle swallows the graph here

    def test_empty_graph_passthrough(self):
        g = WeightedGraph(5)
        result = spectral_sparsify(g, eps=0.5, seed=1)
        assert result.size == 0

    def test_reproducible_with_seed(self):
        g = generators.random_weighted_graph(25, average_degree=8, seed=11)
        a = spectral_sparsify(g, eps=0.5, seed=3, t_override=2)
        b = spectral_sparsify(g, eps=0.5, seed=3, t_override=2)
        assert a.sparsifier == b.sparsifier

    def test_size_bound_of_theorem(self):
        """|H| = O(n eps^-2 log^4 n); at small n the bound far exceeds m, so it
        must trivially hold -- the point is the inequality direction."""
        g = generators.erdos_renyi(32, 0.5, seed=12)
        eps = 0.5
        result = spectral_sparsify(g, eps=eps, seed=13)
        bound = g.n * (math.log2(g.n) ** 4) / eps**2
        assert result.size <= bound

    def test_rounds_scale_with_graph_weight_range(self):
        small_w = generators.random_weighted_graph(20, max_weight=2, seed=14)
        large_w = generators.random_weighted_graph(20, max_weight=2**12, seed=14)
        r_small = spectral_sparsify(small_w, eps=0.5, seed=15, t_override=1)
        r_large = spectral_sparsify(large_w, eps=0.5, seed=15, t_override=1)
        assert r_large.rounds >= r_small.rounds


class TestAprioriSparsifier:
    def test_valid_sparsifier_with_paper_parameters(self):
        g = generators.random_weighted_graph(24, average_degree=6, seed=16)
        result = spectral_sparsify_apriori(g, eps=0.5, seed=17)
        assert is_spectral_sparsifier(g, result.sparsifier, eps=0.5)

    def test_weights_are_power_of_four_multiples(self):
        g = generators.random_weighted_graph(25, average_degree=8, max_weight=4, seed=18)
        result = spectral_sparsify_apriori(g, eps=0.5, seed=19, t_override=2)
        original = {e.key: e.weight for e in g.edges()}
        for edge in result.sparsifier.edges():
            ratio = edge.weight / original[edge.key]
            exponent = math.log(ratio, 4.0)
            assert exponent == pytest.approx(round(exponent), abs=1e-9)

    def test_matches_adhoc_size_distribution_loosely(self):
        """Lemma 3.3 says the two algorithms have the same output distribution;
        compare the mean sparsifier size over several seeds as a smoke check."""
        g = generators.erdos_renyi(20, 0.7, max_weight=2, seed=20)
        adhoc = [spectral_sparsify(g, eps=0.5, seed=s, t_override=1).size for s in range(12)]
        apriori = [
            spectral_sparsify_apriori(g, eps=0.5, seed=s, t_override=1).size for s in range(12)
        ]
        assert abs(np.mean(adhoc) - np.mean(apriori)) <= 0.35 * g.m


class TestQualityImprovesWithBundleSize:
    def test_larger_bundles_tighten_the_spectral_window(self):
        g = generators.erdos_renyi(36, 0.7, max_weight=2, seed=21)
        widths = []
        for t in (1, 4, 16):
            result = spectral_sparsify(g, eps=0.5, seed=22, t_override=t, k_override=2)
            lo, hi = spectral_approximation_factor(g, result.sparsifier)
            widths.append(hi / max(lo, 1e-12))
        assert widths[-1] <= widths[0] + 1e-9
