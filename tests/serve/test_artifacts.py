"""ArtifactCache: hits, LRU eviction, byte accounting, invalidation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import generators
from repro.linalg.sparse_backend import GroundedLaplacianSolver
from repro.serve.artifacts import ArtifactCache, estimate_nbytes
from repro.solvers.laplacian import BCCLaplacianSolver


class CountingBuilder:
    def __init__(self, value_factory):
        self.calls = 0
        self._factory = value_factory

    def __call__(self):
        self.calls += 1
        return self._factory()


class TestEstimateNbytes:
    def test_ndarray_exact(self):
        x = np.zeros((10, 10))
        assert estimate_nbytes(x) == x.nbytes

    def test_sparse_matrix(self):
        m = sp.random(50, 50, density=0.1, format="csr", random_state=0)
        expected = m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
        assert estimate_nbytes(m) == expected

    def test_objects_with_nbytes_method(self):
        graph = generators.grid_graph(8, 8)
        solver = GroundedLaplacianSolver(graph)
        assert estimate_nbytes(solver) == solver.nbytes() > 0

    def test_solver_preprocessing(self):
        graph = generators.random_weighted_graph(40, seed=1)
        prep = BCCLaplacianSolver.prepare(graph, seed=0, t_override=2)
        assert estimate_nbytes(prep) == prep.nbytes() > 0

    def test_graph_scales_with_edges(self):
        small = generators.grid_graph(4, 4)
        big = generators.grid_graph(20, 20)
        assert estimate_nbytes(big) > estimate_nbytes(small) > 0

    def test_containers(self):
        x = np.zeros(1000)
        assert estimate_nbytes({"a": x}) > x.nbytes
        assert estimate_nbytes([x, x]) > x.nbytes


class TestArtifactCache:
    def test_miss_builds_then_hit_reuses(self):
        cache = ArtifactCache()
        builder = CountingBuilder(lambda: np.arange(100))
        value1, hit1 = cache.get_or_build("g", 0, "solver", (), builder)
        value2, hit2 = cache.get_or_build("g", 0, "solver", (), builder)
        assert (not hit1) and hit2
        assert builder.calls == 1
        assert value1 is value2
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_params_and_kind_are_part_of_identity(self):
        cache = ArtifactCache()
        builder = CountingBuilder(lambda: np.arange(10))
        cache.get_or_build("g", 0, "solver", (1,), builder)
        cache.get_or_build("g", 0, "solver", (2,), builder)
        cache.get_or_build("g", 0, "sparsifier", (1,), builder)
        assert builder.calls == 3

    def test_version_is_part_of_identity(self):
        cache = ArtifactCache()
        builder = CountingBuilder(lambda: np.arange(10))
        cache.get_or_build("g", 0, "solver", (), builder)
        _, hit = cache.get_or_build("g", 1, "solver", (), builder)
        assert not hit
        assert builder.calls == 2

    def test_lru_eviction_by_entry_count(self):
        cache = ArtifactCache(max_entries=2)
        builder = CountingBuilder(lambda: np.arange(10))
        cache.get_or_build("a", 0, "k", (), builder)
        cache.get_or_build("b", 0, "k", (), builder)
        cache.get_or_build("a", 0, "k", (), builder)  # touch a -> b is LRU
        cache.get_or_build("c", 0, "k", (), builder)  # evicts b
        assert cache.contains("a", 0, "k")
        assert not cache.contains("b", 0, "k")
        assert cache.contains("c", 0, "k")
        assert cache.stats.evictions == 1

    def test_lru_eviction_by_bytes(self):
        entry_bytes = estimate_nbytes(np.zeros(1000))
        cache = ArtifactCache(max_bytes=int(entry_bytes * 2.5))
        builder = CountingBuilder(lambda: np.zeros(1000))
        for key in ("a", "b", "c"):
            cache.get_or_build(key, 0, "k", (), builder)
        assert len(cache) == 2
        assert not cache.contains("a", 0, "k")
        assert cache.total_bytes <= cache.max_bytes

    def test_oversized_entry_is_kept_until_next_insert(self):
        cache = ArtifactCache(max_bytes=64)
        cache.get_or_build("big", 0, "k", (), lambda: np.zeros(1000))
        assert len(cache) == 1  # never evict the most recent insert
        cache.get_or_build("big2", 0, "k", (), lambda: np.zeros(1000))
        assert len(cache) == 1
        assert cache.contains("big2", 0, "k")

    def test_invalidate_graph_all_versions(self):
        cache = ArtifactCache()
        builder = CountingBuilder(lambda: np.arange(10))
        cache.get_or_build("g", 0, "solver", (), builder)
        cache.get_or_build("g", 1, "solver", (), builder)
        cache.get_or_build("h", 0, "solver", (), builder)
        dropped = cache.invalidate_graph("g")
        assert dropped == 2
        assert len(cache) == 1
        assert cache.contains("h", 0, "solver")
        assert cache.stats.invalidations == 2

    def test_invalidate_graph_keep_current_version(self):
        cache = ArtifactCache()
        builder = CountingBuilder(lambda: np.arange(10))
        cache.get_or_build("g", 0, "solver", (), builder)
        cache.get_or_build("g", 3, "solver", (), builder)
        dropped = cache.invalidate_graph("g", keep_version=3)
        assert dropped == 1
        assert cache.contains("g", 3, "solver")
        assert not cache.contains("g", 0, "solver")

    def test_total_bytes_tracks_removals(self):
        cache = ArtifactCache()
        cache.get_or_build("g", 0, "k", (), lambda: np.zeros(1000))
        before = cache.total_bytes
        assert before >= 8000
        cache.invalidate_graph("g")
        assert cache.total_bytes == 0
        cache.get_or_build("g", 0, "k", (), lambda: np.zeros(1000))
        cache.clear()
        assert cache.total_bytes == 0 and len(cache) == 0

    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_bytes=0)
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)
