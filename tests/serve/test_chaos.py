"""Chaos suite: a seeded mutate/query workload under a randomized FaultPlan.

The three invariants the resilience layer promises, asserted under fire:

* **no hang** -- every ticket is done within a bounded wait;
* **no silent wrong answer** -- every ticket that *resolved* matches a
  fault-free recompute (fresh service, rebuilt artifacts) to 1e-8;
* **no unfailed ticket** -- a ticket either resolves or carries an error;
  failures are loud (typed exceptions) and ledgered (``failures_total``).

Everything is driven by one seed, so a failing run replays exactly.  The
suite is marked ``chaos``: CI runs it as its own job step, and the fast
signal (``-m "not slow and not chaos"``) skips it.
"""

import numpy as np
import pytest

from repro.graphs import generators
from repro.serve import FaultPlan, LaplacianService, ResiliencePolicy, resistance_batch_query, solve_query

pytestmark = pytest.mark.chaos

#: bounded wait proving "no hang" -- generous next to the ~ms workload
TICKET_TIMEOUT_SECONDS = 60.0


def make_service(**kwargs):
    kwargs.setdefault("t_override", 2)
    kwargs.setdefault("auto_flush", False)
    return LaplacianService(**kwargs)


def _mutate(graph, rng):
    """Add one random edge not already present (keeps deltas repairable)."""
    for _ in range(64):
        u, v = rng.integers(0, graph.n, size=2)
        if u != v and not graph.has_edge(int(u), int(v)):
            graph.add_edge(int(u), int(v), float(rng.integers(1, 5)))
            return


def _fault_free_answers(graph, solve_rhs, pair_lists):
    """Recompute every query on a fresh, unarmed service (rebuilt artifacts)."""
    verifier = make_service()
    key = verifier.register(graph)
    solutions = [verifier.solve(key, b).solution for b in solve_rhs]
    resistances = [
        np.asarray(verifier.effective_resistances(key, pairs))
        for pairs in pair_lists
    ]
    return solutions, resistances


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_chaos_workload_contains_failures(seed):
    workload_rng = np.random.default_rng(1000 + seed)
    graph = generators.random_weighted_graph(40, average_degree=6, seed=seed)
    service = make_service(
        resilience=ResiliencePolicy(
            max_retries=2,
            backoff_base_seconds=0.001,
            backoff_max_seconds=0.01,
            breaker_threshold=2,
            breaker_ttl_seconds=0.05,
            seed=seed,
        ),
    )
    injector = service.arm_faults(FaultPlan.chaos(seed=seed))
    key = service.register(graph)

    total_failed = 0
    for round_index in range(4):
        solve_rhs = [workload_rng.normal(size=graph.n) for _ in range(6)]
        pair_lists = [
            [
                (int(a), int(b))
                for a, b in workload_rng.integers(0, graph.n, size=(5, 2))
                if a != b
            ]
            or [(0, 1)]
            for _ in range(2)
        ]
        tickets = [service.submit(solve_query(key, b)) for b in solve_rhs]
        tickets += [
            service.submit(resistance_batch_query(key, pairs))
            for pairs in pair_lists
        ]
        service.flush()

        # no hang, no unfailed ticket: every ticket is done, and carries
        # either a value or a raised error
        outcomes = []
        for ticket in tickets:
            assert ticket.done(), f"round {round_index}: ticket left unresolved"
            try:
                outcomes.append(ticket.result(timeout=TICKET_TIMEOUT_SECONDS))
            except TimeoutError:
                pytest.fail(f"round {round_index}: ticket hung")
            except Exception:
                outcomes.append(None)
                total_failed += 1

        # no silent wrong answer: survivors match a fault-free rebuild
        expected_solutions, expected_resistances = _fault_free_answers(
            graph, solve_rhs, pair_lists
        )
        for outcome, want in zip(outcomes[: len(solve_rhs)], expected_solutions):
            if outcome is not None:
                np.testing.assert_allclose(
                    outcome.value.solution, want, atol=1e-8, rtol=1e-8
                )
        for outcome, want in zip(outcomes[len(solve_rhs):], expected_resistances):
            if outcome is not None:
                np.testing.assert_allclose(
                    np.asarray(outcome.value), want, atol=1e-8, rtol=1e-8
                )

        # mutate between rounds so staleness + repair-crash rules exercise
        _mutate(graph, workload_rng)

    snapshot = service.metrics_snapshot()
    assert snapshot["failures_total"] == total_failed
    # the plan actually fired (otherwise this test proves nothing)
    assert injector.fired_total > 0


@pytest.mark.parametrize("seed", [0, 1])
def test_chaos_with_latency_and_deadline(seed):
    """Latency chaos under a deadline: late answers resolve, misses count."""
    workload_rng = np.random.default_rng(2000 + seed)
    graph = generators.random_weighted_graph(30, average_degree=5, seed=seed)
    service = make_service(
        resilience=ResiliencePolicy(
            deadline_seconds=0.02,
            backoff_base_seconds=0.001,
            breaker_ttl_seconds=0.05,
            seed=seed,
        ),
    )
    service.arm_faults(
        FaultPlan.chaos(seed=seed, delay_seconds=0.01)
    )
    key = service.register(graph)
    tickets = [
        service.submit(solve_query(key, workload_rng.normal(size=graph.n)))
        for _ in range(8)
    ]
    service.flush()
    for ticket in tickets:
        assert ticket.done()
        try:
            result = ticket.result(timeout=TICKET_TIMEOUT_SECONDS)
        except Exception:
            continue
        assert np.all(np.isfinite(result.value.solution))
    # the injected per-query delays exceed the deadline: misses were counted
    assert service.metrics_snapshot()["deadline_misses"] > 0
